"""Winsorization on raw and analysis scales."""

import numpy as np
import pytest

from repro.cleaning.base import CleaningContext
from repro.cleaning.winsorize import WinsorizeOutliers
from repro.glitches.detectors import ScaleTransform


@pytest.fixture()
def treatment():
    return WinsorizeOutliers()


class TestRawScale:
    def test_clips_to_limits(self, tiny_pair, raw_context, treatment):
        treated = treatment.apply(tiny_pair.dirty, raw_context)
        for attr in tiny_pair.dirty.attributes:
            lo, hi = raw_context.limits.bounds(attr)
            col = treated.pooled_column(attr, dropna=True)
            assert col.max() <= hi + 1e-9
            assert col.min() >= lo - 1e-9

    def test_missing_untouched(self, tiny_pair, raw_context, treatment):
        treated = treatment.apply(tiny_pair.dirty, raw_context)
        for before, after in zip(tiny_pair.dirty, treated):
            assert np.array_equal(np.isnan(before.values), np.isnan(after.values))

    def test_in_limit_values_untouched(self, tiny_pair, raw_context, treatment):
        treated = treatment.apply(tiny_pair.dirty, raw_context)
        for before, after in zip(tiny_pair.dirty, treated):
            for j, attr in enumerate(before.attributes):
                lo, hi = raw_context.limits.bounds(attr)
                col = before.values[:, j]
                inside = np.isfinite(col) & (col >= lo) & (col <= hi)
                assert np.array_equal(
                    before.values[inside, j], after.values[inside, j]
                )


class TestLogScale:
    def test_clips_on_analysis_scale(self, tiny_pair, log_context, treatment):
        treated = treatment.apply(tiny_pair.dirty, log_context)
        lo, hi = log_context.limits.bounds("attr1")
        col = treated.pooled_column("attr1", dropna=True)
        logs = np.log(col[col > 0])
        assert logs.max() <= hi + 1e-9
        assert logs.min() >= lo - 1e-9

    def test_negative_values_pass_through(self, tiny_pair, log_context, treatment):
        """Negative attr1 values are inconsistencies, not outliers: the log
        scale cannot even see them, so Winsorization leaves them alone."""
        treated = treatment.apply(tiny_pair.dirty, log_context)
        for before, after in zip(tiny_pair.dirty, treated):
            neg = np.nan_to_num(before.values[:, 0]) < 0
            assert np.array_equal(before.values[neg, 0], after.values[neg, 0])

    def test_repaired_values_back_on_raw_scale(self, tiny_pair, log_context, treatment):
        """Clipped cells hold exp(limit), not the log-scale limit itself."""
        treated = treatment.apply(tiny_pair.dirty, log_context)
        lo, hi = log_context.limits.bounds("attr1")
        for before, after in zip(tiny_pair.dirty, treated):
            col_b = before.values[:, 0]
            col_a = after.values[:, 0]
            with np.errstate(invalid="ignore"):
                clipped_low = np.isfinite(col_b) & (col_b > 0) & (np.log(np.abs(col_b) + 1e-300) < lo)
            if clipped_low.any():
                assert np.allclose(col_a[clipped_low], np.exp(lo))
                return
        pytest.skip("no low-side outliers in this pair")


class TestTailFlip:
    def test_raw_clips_upper_log_clips_lower(self, small_bundle):
        """Section 5.3: the log transform flips the Winsorized tail."""
        from repro.sampling.replication import generate_test_pairs

        pair = next(
            generate_test_pairs(small_bundle.dirty, small_bundle.ideal, 1, 30, seed=3)
        )
        treatment = WinsorizeOutliers()

        def tail_counts(context):
            treated = treatment.apply(pair.dirty, context)
            up = down = 0
            for b, a in zip(pair.dirty, treated):
                col_b, col_a = b.values[:, 0], a.values[:, 0]
                both = np.isfinite(col_b) & np.isfinite(col_a)
                up += int((col_a[both] < col_b[both]).sum())
                down += int((col_a[both] > col_b[both]).sum())
            return up, down

        raw_up, raw_down = tail_counts(CleaningContext(ideal=pair.ideal))
        log_up, log_down = tail_counts(
            CleaningContext(ideal=pair.ideal, transform=ScaleTransform.log_attr1())
        )
        assert raw_up > raw_down          # raw scale: upper tail clipped
        assert log_down > log_up          # log scale: lower tail lifted
