"""Experiment drivers and reports."""

import numpy as np
import pytest

from repro.core.executor import SerialBackend, ThreadBackend
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.errors import ExperimentError
from repro.experiments.config import (
    SCALES,
    backend_from_env,
    build_population,
    experiment_config,
    scale_from_env,
)
from repro.experiments.paper import (
    collect_treatment_scatter,
    figure3_counts,
    figure4_stats,
    figure5_stats,
    run_figure6,
    run_figure7,
    run_table1,
)
from repro.experiments.report import (
    render_cost_summary,
    render_counts_series,
    render_strategy_summaries,
    render_table1,
)
from repro.cleaning.registry import strategy_by_name


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(n_replications=2, sample_size=8, seed=0)


class TestScales:
    def test_three_presets(self):
        assert set(SCALES) == {"tiny", "small", "paper"}

    def test_paper_preset_is_paper_scale(self):
        preset = SCALES["paper"]
        assert preset.generator.n_sectors == 20000
        assert preset.n_replications == 50
        assert preset.sample_size == 100

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert scale_from_env() == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ExperimentError):
            scale_from_env()
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env(default="small") == "small"

    def test_scale_from_env_normalises_case_and_whitespace(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "  PaPeR  ")
        assert scale_from_env() == "paper"

    def test_scale_from_env_overrides_default(self, monkeypatch):
        # precedence: environment beats the caller's default
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert scale_from_env(default="paper") == "tiny"

    def test_scale_from_env_empty_string_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "")
        with pytest.raises(ExperimentError):
            scale_from_env()

    def test_experiment_config_rejects_unknown_scale(self):
        with pytest.raises(ExperimentError):
            experiment_config("huge")

    def test_build_population_rejects_unknown_scale(self):
        with pytest.raises(ExperimentError):
            build_population(scale="huge")

    def test_experiment_config_override(self):
        cfg = experiment_config("tiny", sample_size=99)
        assert cfg.sample_size == 99

    def test_bundle_properties(self, tiny_bundle):
        assert len(tiny_bundle.dirty) + len(tiny_bundle.ideal) == len(
            tiny_bundle.population
        )
        assert tiny_bundle.scale == "tiny"


class TestBackendSelection:
    def test_backend_from_env_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_from_env() is None
        assert backend_from_env(default="thread") == "thread"

    def test_backend_from_env_reads_and_normalises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", " Process:2 ")
        assert backend_from_env() == "process:2"

    def test_backend_from_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        with pytest.raises(ExperimentError):
            backend_from_env()
        monkeypatch.delenv("REPRO_BACKEND")
        with pytest.raises(ExperimentError):
            backend_from_env(default="gpu")

    def test_backend_from_env_normalises_default_too(self, monkeypatch):
        # both resolution paths come back validated and lowercased
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_from_env(default=" Process:4 ") == "process:4"
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert backend_from_env(default="THREAD") == "thread"

    def test_experiment_config_carries_backend(self):
        cfg = experiment_config("tiny", backend="thread", n_workers=2)
        assert cfg.backend == "thread"
        assert cfg.n_workers == 2

    def test_experiment_config_rejects_bad_backend(self):
        with pytest.raises(ExperimentError):
            experiment_config("tiny", backend="warp-drive")

    def test_run_figure6_backend_override(self, tiny_bundle, cfg, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        result = run_figure6(
            tiny_bundle, cfg, backend=ThreadBackend(n_workers=2)
        )
        assert len(result.outcomes) == 2 * 5

    def test_runner_env_precedence_over_config(self, tiny_bundle, monkeypatch):
        # REPRO_BACKEND beats the config's name...
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        runner = ExperimentRunner(
            tiny_bundle.dirty,
            tiny_bundle.ideal,
            config=ExperimentConfig(n_replications=1, sample_size=5, backend="thread"),
        )
        assert isinstance(runner.resolve_backend(), SerialBackend)
        # ...but an explicitly constructed instance beats the environment.
        runner = ExperimentRunner(
            tiny_bundle.dirty,
            tiny_bundle.ideal,
            config=ExperimentConfig(n_replications=1, sample_size=5),
            backend=ThreadBackend(n_workers=1),
        )
        assert isinstance(runner.resolve_backend(), ThreadBackend)


class TestConfigVariant:
    def test_variant_flips_transform(self):
        cfg = ExperimentConfig(log_transform=True)
        assert cfg.transform is not None
        assert cfg.variant(log_transform=False).transform is None

    def test_variant_revalidates(self):
        cfg = ExperimentConfig()
        with pytest.raises(Exception):
            cfg.variant(n_replications=0)
        with pytest.raises(ExperimentError):
            cfg.variant(sigma_k=-1.0)
        with pytest.raises(ExperimentError):
            cfg.variant(backend="bogus")

    def test_variant_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            ExperimentConfig().variant(sample_sise=10)

    def test_variant_preserves_untouched_fields(self):
        cfg = ExperimentConfig(seed=42, backend="process:2", n_workers=2)
        v = cfg.variant(sample_size=7)
        assert (v.seed, v.backend, v.n_workers) == (42, "process:2", 2)
        assert cfg.sample_size == 100  # original untouched (frozen)


class TestFigure3:
    def test_counts_shape_and_scale(self, tiny_bundle):
        counts = figure3_counts(tiny_bundle, n_replications=2, sample_size=10, seed=0)
        assert counts.shape == (tiny_bundle.dirty.max_length, 3)
        # 2 runs x 10 series = 20 records max per time step
        assert counts.max() <= 20

    def test_render_counts(self, tiny_bundle):
        counts = figure3_counts(tiny_bundle, n_replications=1, sample_size=5, seed=0)
        text = render_counts_series(counts, stride=20, title="fig3")
        assert "missing" in text and "outlier" in text and "fig3" in text


class TestScatter:
    def test_categories_partition_cells(self, tiny_bundle, cfg):
        scatter = collect_treatment_scatter(
            tiny_bundle, strategy_by_name("strategy1"), "attr1", cfg
        )
        assert scatter.n_imputed > 0
        assert scatter.untouched.size > 0

    def test_figure4_statistics(self, tiny_bundle, cfg):
        raw = figure4_stats(tiny_bundle, log_transform=False, config=cfg)
        log = figure4_stats(tiny_bundle, log_transform=True, config=cfg)
        # Figure 4a: negatives imputed on the raw scale only.
        assert raw["frac_imputed_negative"] > 0.0
        assert log["frac_imputed_negative"] == 0.0
        # Section 5.3 tail flip.
        assert raw["frac_repaired_upper"] > raw["frac_repaired_lower"]
        assert log["frac_repaired_lower"] > log["frac_repaired_upper"]

    def test_figure5_statistics(self, tiny_bundle, cfg):
        s1 = figure5_stats(tiny_bundle, "strategy1", config=cfg)
        s2 = figure5_stats(tiny_bundle, "strategy2", config=cfg)
        # Figure 5: the imputer plants ratios above 1 under both strategies;
        # strategy 2 ignores outliers entirely.
        assert s1["frac_imputed_above_one"] > 0.05
        assert s2["frac_imputed_above_one"] > 0.05
        assert s2["n_repaired"] == 0


class TestFigure6And7:
    def test_run_figure6_result(self, tiny_bundle, cfg):
        result = run_figure6(tiny_bundle, cfg)
        assert len(result.outcomes) == 2 * 5
        text = render_strategy_summaries(result.summaries(), title="t")
        assert "strategy1" in text and "Winsorize and impute" in text

    def test_run_figure7_result(self, tiny_bundle, cfg):
        sweep = run_figure7(tiny_bundle, cfg, fractions=(1.0, 0.0))
        assert sweep.strategy == "strategy1"
        text = render_cost_summary(sweep, title="fig7")
        assert "100%" in text and "0%" in text

    def test_run_table1_default_configs(self, tiny_bundle, monkeypatch):
        # shrink the default configs through a custom dict for speed
        configs = {
            "n=8, log(attr1)": ExperimentConfig(
                n_replications=2, sample_size=8, log_transform=True, seed=0
            ),
            "n=8, no log": ExperimentConfig(
                n_replications=2, sample_size=8, log_transform=False, seed=0
            ),
        }
        results = run_table1(tiny_bundle, configs)
        assert set(results) == set(configs)
        text = render_table1(results)
        assert "strategy5" in text and "n=8, no log" in text

    def test_run_table1_honours_base_config(self, tiny_bundle, monkeypatch):
        """A custom base config must drive the derived blocks instead of the
        bundle-scale preset silently taking over."""
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        base = ExperimentConfig(
            n_replications=1, sample_size=4, log_transform=True, seed=0
        )
        results = run_table1(tiny_bundle, base_config=base)
        assert set(results) == {
            "n=4, log(attr1)",
            "n=20, log(attr1)",
            "n=4, no log",
        }
        assert results["n=4, log(attr1)"].config.n_replications == 1
        assert results["n=20, log(attr1)"].config.sample_size == 20
        assert results["n=4, no log"].config.log_transform is False

    def test_table1_text_has_numeric_grid(self, tiny_bundle):
        configs = {
            "c": ExperimentConfig(n_replications=1, sample_size=6, seed=0)
        }
        text = render_table1(run_table1(tiny_bundle, configs))
        assert "Miss.Dirty" in text
        # five strategy rows
        assert sum(1 for line in text.splitlines() if "strategy" in line) == 5
