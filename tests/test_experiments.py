"""Experiment drivers and reports."""

import numpy as np
import pytest

from repro.core.framework import ExperimentConfig
from repro.errors import ExperimentError
from repro.experiments.config import (
    SCALES,
    build_population,
    experiment_config,
    scale_from_env,
)
from repro.experiments.paper import (
    collect_treatment_scatter,
    figure3_counts,
    figure4_stats,
    figure5_stats,
    run_figure6,
    run_figure7,
    run_table1,
)
from repro.experiments.report import (
    render_cost_summary,
    render_counts_series,
    render_strategy_summaries,
    render_table1,
)
from repro.cleaning.registry import strategy_by_name


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(n_replications=2, sample_size=8, seed=0)


class TestScales:
    def test_three_presets(self):
        assert set(SCALES) == {"tiny", "small", "paper"}

    def test_paper_preset_is_paper_scale(self):
        preset = SCALES["paper"]
        assert preset.generator.n_sectors == 20000
        assert preset.n_replications == 50
        assert preset.sample_size == 100

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert scale_from_env() == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ExperimentError):
            scale_from_env()
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env(default="small") == "small"

    def test_build_population_rejects_unknown_scale(self):
        with pytest.raises(ExperimentError):
            build_population(scale="huge")

    def test_experiment_config_override(self):
        cfg = experiment_config("tiny", sample_size=99)
        assert cfg.sample_size == 99

    def test_bundle_properties(self, tiny_bundle):
        assert len(tiny_bundle.dirty) + len(tiny_bundle.ideal) == len(
            tiny_bundle.population
        )
        assert tiny_bundle.scale == "tiny"


class TestFigure3:
    def test_counts_shape_and_scale(self, tiny_bundle):
        counts = figure3_counts(tiny_bundle, n_replications=2, sample_size=10, seed=0)
        assert counts.shape == (tiny_bundle.dirty.max_length, 3)
        # 2 runs x 10 series = 20 records max per time step
        assert counts.max() <= 20

    def test_render_counts(self, tiny_bundle):
        counts = figure3_counts(tiny_bundle, n_replications=1, sample_size=5, seed=0)
        text = render_counts_series(counts, stride=20, title="fig3")
        assert "missing" in text and "outlier" in text and "fig3" in text


class TestScatter:
    def test_categories_partition_cells(self, tiny_bundle, cfg):
        scatter = collect_treatment_scatter(
            tiny_bundle, strategy_by_name("strategy1"), "attr1", cfg
        )
        assert scatter.n_imputed > 0
        assert scatter.untouched.size > 0

    def test_figure4_statistics(self, tiny_bundle, cfg):
        raw = figure4_stats(tiny_bundle, log_transform=False, config=cfg)
        log = figure4_stats(tiny_bundle, log_transform=True, config=cfg)
        # Figure 4a: negatives imputed on the raw scale only.
        assert raw["frac_imputed_negative"] > 0.0
        assert log["frac_imputed_negative"] == 0.0
        # Section 5.3 tail flip.
        assert raw["frac_repaired_upper"] > raw["frac_repaired_lower"]
        assert log["frac_repaired_lower"] > log["frac_repaired_upper"]

    def test_figure5_statistics(self, tiny_bundle, cfg):
        s1 = figure5_stats(tiny_bundle, "strategy1", config=cfg)
        s2 = figure5_stats(tiny_bundle, "strategy2", config=cfg)
        # Figure 5: the imputer plants ratios above 1 under both strategies;
        # strategy 2 ignores outliers entirely.
        assert s1["frac_imputed_above_one"] > 0.05
        assert s2["frac_imputed_above_one"] > 0.05
        assert s2["n_repaired"] == 0


class TestFigure6And7:
    def test_run_figure6_result(self, tiny_bundle, cfg):
        result = run_figure6(tiny_bundle, cfg)
        assert len(result.outcomes) == 2 * 5
        text = render_strategy_summaries(result.summaries(), title="t")
        assert "strategy1" in text and "Winsorize and impute" in text

    def test_run_figure7_result(self, tiny_bundle, cfg):
        sweep = run_figure7(tiny_bundle, cfg, fractions=(1.0, 0.0))
        assert sweep.strategy == "strategy1"
        text = render_cost_summary(sweep, title="fig7")
        assert "100%" in text and "0%" in text

    def test_run_table1_default_configs(self, tiny_bundle, monkeypatch):
        # shrink the default configs through a custom dict for speed
        configs = {
            "n=8, log(attr1)": ExperimentConfig(
                n_replications=2, sample_size=8, log_transform=True, seed=0
            ),
            "n=8, no log": ExperimentConfig(
                n_replications=2, sample_size=8, log_transform=False, seed=0
            ),
        }
        results = run_table1(tiny_bundle, configs)
        assert set(results) == set(configs)
        text = render_table1(results)
        assert "strategy5" in text and "n=8, no log" in text

    def test_table1_text_has_numeric_grid(self, tiny_bundle):
        configs = {
            "c": ExperimentConfig(n_replications=1, sample_size=6, seed=0)
        }
        text = render_table1(run_table1(tiny_bundle, configs))
        assert "Miss.Dirty" in text
        # five strategy rows
        assert sum(1 for line in text.splitlines() if "strategy" in line) == 5
