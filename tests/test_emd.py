"""Earth Mover's Distance: exact 1-D path, binned multivariate path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.distance.emd import EarthMoverDistance, emd_1d
from repro.errors import DistanceError

finite = st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=60)


class TestEmd1d:
    def test_point_masses(self):
        assert emd_1d([0.0], [5.0]) == pytest.approx(5.0)

    def test_identity_zero(self):
        assert emd_1d([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_nan_rows_dropped(self):
        assert emd_1d([1.0, np.nan], [1.0]) == 0.0

    @given(finite, finite)
    @settings(max_examples=50, deadline=None)
    def test_matches_scipy(self, a, b):
        assert emd_1d(a, b) == pytest.approx(
            scipy_stats.wasserstein_distance(a, b), rel=1e-9, abs=1e-9
        )

    @given(finite, st.floats(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_translation_equivariance(self, a, shift):
        b = [x + shift for x in a]
        assert emd_1d(a, b) == pytest.approx(abs(shift), rel=1e-6, abs=1e-6)


class TestEarthMoverDistance:
    def test_identity_zero_multid(self, rng):
        x = rng.normal(size=(300, 3))
        assert EarthMoverDistance()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_shift_detected(self, rng):
        x = rng.normal(size=(500, 3))
        y = x + np.array([2.0, 0.0, 0.0])
        d = EarthMoverDistance(n_bins=20)
        assert d(x, y) > 0.5

    def test_larger_shift_larger_distance(self, rng):
        x = rng.normal(size=(500, 2))
        d = EarthMoverDistance(n_bins=20)
        near = d(x, x + np.array([0.5, 0.0]))
        far = d(x, x + np.array([2.0, 0.0]))
        assert far > near

    def test_univariate_uses_exact_path(self, rng):
        x = rng.normal(size=400)
        y = rng.normal(1.0, 1.0, size=400)
        d = EarthMoverDistance()
        # exact path standardises by x's stats: compare against manual calc
        manual = emd_1d((x - x.mean()) / x.std(), (y - x.mean()) / x.std())
        assert d(x, y) == pytest.approx(manual, rel=1e-9)

    def test_univariate_no_standardize(self, rng):
        x = rng.normal(size=300)
        y = x + 3.0
        d = EarthMoverDistance(standardize=False)
        assert d(x, y) == pytest.approx(3.0, rel=1e-6)

    def test_nan_rows_dropped(self, rng):
        x = rng.normal(size=(100, 2))
        x_with_nan = np.vstack([x, [[np.nan, 1.0]]])
        d = EarthMoverDistance(n_bins=6)
        assert d(x_with_nan, x) == pytest.approx(0.0, abs=1e-9)

    def test_all_nan_raises(self):
        with pytest.raises(DistanceError):
            EarthMoverDistance()(np.full((3, 2), np.nan), np.zeros((3, 2)))

    def test_dim_mismatch_raises(self, rng):
        with pytest.raises(DistanceError):
            EarthMoverDistance()(rng.normal(size=(5, 2)), rng.normal(size=(5, 3)))

    def test_backends_agree(self, rng):
        x = rng.normal(size=(300, 2))
        y = rng.normal(0.5, 1.3, size=(300, 2))
        results = [
            EarthMoverDistance(n_bins=6, backend=b)(x, y)
            for b in ("simplex", "highs", "networkx")
        ]
        assert results[0] == pytest.approx(results[1], rel=1e-6)
        assert results[0] == pytest.approx(results[2], rel=1e-3, abs=1e-4)

    def test_binned_approximates_exact_1d(self, rng):
        """Binned multivariate path on a 1-D problem ~ exact CDF distance."""
        x = rng.normal(size=(2000, 1))
        y = rng.normal(0.8, 1.0, size=(2000, 1))
        exact = EarthMoverDistance()(x, y)
        binned = EarthMoverDistance(n_bins=64, exact_1d=False)(x, y)
        assert binned == pytest.approx(exact, rel=0.15)

    def test_bin_count_insensitivity(self, rng):
        """The paper's claim: EMD 'is not affected by binning differences'."""
        x = rng.normal(size=(1500, 2))
        y = x * 1.4 + 0.3
        values = [
            EarthMoverDistance(n_bins=n)(x, y) for n in (8, 16, 32)
        ]
        spread = (max(values) - min(values)) / np.mean(values)
        assert spread < 0.35

    def test_winsorization_visible(self, rng):
        """Uniform bins must see tail mass pulled to a clip limit."""
        x = np.concatenate([rng.normal(size=900), rng.normal(-8, 0.3, 100)])
        y = np.clip(x, -3, None)
        d = EarthMoverDistance(n_bins=16, exact_1d=False)
        assert d(x[:, None], y[:, None]) > 0.1
