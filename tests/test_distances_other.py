"""KL, Jensen-Shannon, Mahalanobis, KS and the approximate EMDs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance import DISTANCES, distance_by_name
from repro.distance.emd import emd_1d
from repro.distance.emd_approx import MarginalEmd, SlicedEmd
from repro.distance.histogram import SparseHistogram
from repro.distance.kl import JensenShannonDistance, KLDivergence, aligned_probs
from repro.distance.ks import KolmogorovSmirnovDistance
from repro.distance.mahalanobis import MahalanobisDistance
from repro.errors import DistanceError


@pytest.fixture()
def pair(rng):
    x = rng.normal(size=(800, 3))
    y = rng.normal(0.7, 1.2, size=(800, 3))
    return x, y


class TestKL:
    def test_identity_near_zero(self, rng):
        x = rng.normal(size=(500, 2))
        assert KLDivergence()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different(self, pair):
        x, y = pair
        assert KLDivergence()(x, y) > 0.05

    def test_asymmetric(self, pair):
        x, y = pair
        kl = KLDivergence()
        assert kl(x, y) != pytest.approx(kl(y, x), rel=1e-3)

    def test_symmetrized_is_symmetric_in_histograms(self, rng):
        # Use standardize=False so the binning frame does not depend on the
        # argument order.
        x = rng.normal(size=(500, 2))
        y = rng.normal(0.5, 1.0, size=(500, 2))
        kl = KLDivergence(symmetrized=True, standardize=False)
        assert kl(x, y) == pytest.approx(kl(y, x), rel=1e-9)

    def test_requires_positive_pseudocount(self):
        with pytest.raises(DistanceError):
            KLDivergence(pseudo_count=0.0)

    def test_more_different_more_divergent(self, rng):
        x = rng.normal(size=(800, 1))
        near = KLDivergence()(x, x + 0.3)
        far = KLDivergence()(x, x + 3.0)
        assert far > near

    def test_per_bin_smoothing_regression(self):
        """Pin the documented smoothing semantics: ``pseudo_count`` is added
        to *each* of the k union bins and the total renormalised by
        ``1 + k * pseudo_count`` (the docstring long promised per-bin mass;
        the implementation used to spread ``pseudo_count / k``)."""
        p = np.array([0.0, 1.0, 2.0, 3.0])[:, None]
        q = np.array([0.0, 0.0, 0.0, 3.0])[:, None]
        kl = KLDivergence(
            n_bins=2, binning="uniform", standardize=False, pseudo_count=0.5
        )
        # Edges [0, 1.5, 3]: hp = [1/2, 1/2], hq = [3/4, 1/4]; k = 2 bins.
        # a = (1/2 + 1/2) / 2 = [1/2, 1/2]; b = [(3/4 + 1/2) / 2, (1/4 + 1/2) / 2]
        expected = 0.5 * np.log(0.5 / 0.625) + 0.5 * np.log(0.5 / 0.375)
        assert kl(p, q) == pytest.approx(expected, rel=1e-12)
        # The old code spread pseudo_count / k and normalised by
        # 1 + pseudo_count — a different number; the doc semantics won.
        hp, hq = np.array([0.5, 0.5]), np.array([0.75, 0.25])
        old = float(np.sum(
            (hp + 0.25) / 1.5 * np.log((hp + 0.25) / (hq + 0.25))
        ))
        assert abs(kl(p, q) - old) > 1e-3

    def test_smoothing_keeps_zero_candidate_bins_finite(self, rng):
        x = rng.normal(size=(300, 1))
        y = np.full((300, 1), float(x.mean()))  # all mass in one bin
        assert np.isfinite(KLDivergence()(x, y))


class TestBinAlignment:
    """Bins align on shared-grid keys, never on centre-coordinate bytes."""

    def test_negative_zero_centers_are_one_bin(self):
        # Same flat key, byte-distinct but equal centres (-0.0 vs 0.0):
        # the old tobytes() alignment split this into two bins and
        # double-counted the mass; key alignment sees one bin.
        hp = SparseHistogram(
            centers=np.array([[0.0], [1.0]]),
            probs=np.array([0.5, 0.5]),
            keys=np.array([3, 7]),
        )
        hq = SparseHistogram(
            centers=np.array([[-0.0], [1.0]]),
            probs=np.array([0.5, 0.5]),
            keys=np.array([3, 7]),
        )
        ap, aq = aligned_probs(hp, hq)
        assert ap.size == 2 and aq.size == 2
        assert np.array_equal(ap, aq)
        kl = KLDivergence(pseudo_count=0.5)
        assert kl.between_histograms_batch(hp, [hq])[0] == pytest.approx(0.0, abs=1e-15)
        js = JensenShannonDistance()
        assert js.between_histograms_batch(hp, [hq])[0] == pytest.approx(0.0, abs=1e-12)

    def test_alignment_scatters_disjoint_bins(self):
        hp = SparseHistogram(
            centers=np.array([[0.0], [1.0]]),
            probs=np.array([0.25, 0.75]),
            keys=np.array([1, 4]),
        )
        hq = SparseHistogram(
            centers=np.array([[2.0]]),
            probs=np.array([1.0]),
            keys=np.array([9]),
        )
        ap, aq = aligned_probs(hp, hq)
        assert np.array_equal(ap, [0.25, 0.75, 0.0])
        assert np.array_equal(aq, [0.0, 0.0, 1.0])

    def test_keyless_histograms_are_rejected(self):
        h = SparseHistogram(
            centers=np.array([[0.0]]), probs=np.array([1.0])
        )
        with pytest.raises(DistanceError):
            aligned_probs(h, h)


class TestJensenShannon:
    def test_identity_zero(self, rng):
        x = rng.normal(size=(400, 2))
        assert JensenShannonDistance()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_bounded_by_sqrt_log2(self, pair):
        x, y = pair
        assert JensenShannonDistance()(x, y) <= np.sqrt(np.log(2)) + 1e-9

    def test_symmetric_without_standardize(self, rng):
        x = rng.normal(size=(400, 2))
        y = rng.normal(1.0, 2.0, size=(400, 2))
        js = JensenShannonDistance(standardize=False)
        assert js(x, y) == pytest.approx(js(y, x), rel=1e-9)


class TestMahalanobis:
    def test_identity_zero(self, rng):
        x = rng.normal(size=(300, 3))
        assert MahalanobisDistance()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_unit_shift_in_unit_covariance(self, rng):
        x = rng.normal(size=(100_000, 2))
        y = x + np.array([1.0, 0.0])
        assert MahalanobisDistance()(x, y) == pytest.approx(1.0, rel=0.05)

    def test_scale_invariant(self, rng):
        x = rng.normal(size=(5000, 2))
        y = x + np.array([0.5, 0.2])
        d1 = MahalanobisDistance()(x, y)
        d2 = MahalanobisDistance()(x * 100, y * 100)
        assert d1 == pytest.approx(d2, rel=1e-6)

    def test_blind_to_mean_preserving_spread(self, rng):
        """Why EMD beats Mahalanobis as a distortion metric: a symmetric
        variance explosion with the same mean is almost invisible."""
        x = rng.normal(size=(5000, 1))
        y = x * 5.0
        assert MahalanobisDistance()(x, y) < 0.2

    def test_rejects_negative_ridge(self):
        with pytest.raises(DistanceError):
            MahalanobisDistance(ridge=-1.0)

    def test_tiny_reference_raises(self):
        with pytest.raises(DistanceError):
            MahalanobisDistance()(np.zeros((1, 2)), np.zeros((5, 2)))


class TestKS:
    def test_identity_zero(self, rng):
        x = rng.normal(size=(200, 2))
        assert KolmogorovSmirnovDistance()(x, x.copy()) == 0.0

    def test_bounded_by_one(self, pair):
        x, y = pair
        assert 0.0 <= KolmogorovSmirnovDistance()(x, y) <= 1.0

    def test_disjoint_supports_give_one(self):
        x = np.zeros((50, 1))
        y = np.ones((50, 1))
        assert KolmogorovSmirnovDistance()(x, y) == pytest.approx(1.0)

    def test_insensitive_to_distance_moved(self, rng):
        """KS only counts how much mass moved, not how far — the contrast
        with EMD the ablation bench explores."""
        x = rng.normal(size=(1000, 1))
        near = np.where(x > 2.0, 2.0, x)
        far = np.where(x > 2.0, 50.0, x)
        ks = KolmogorovSmirnovDistance()
        assert ks(x, near) == pytest.approx(ks(x, far), abs=0.02)

    def test_blanked_column_is_skipped(self, rng):
        """Regression: a cleaner that blanks one column used to blow up in
        Ecdf (ValidationError on an all-NaN sample); the unpopulated
        attribute is now skipped and the rest still scored."""
        x = rng.normal(size=(200, 2))
        y = x.copy()
        y[:, 1] = np.nan
        ks = KolmogorovSmirnovDistance()
        assert ks(x, y) == pytest.approx(ks(x[:, :1], y[:, :1]))
        # Fully unpopulated on both sides -> nothing to compare.
        all_nan = np.full((50, 1), np.nan)
        with pytest.raises(DistanceError):
            ks(all_nan, all_nan)

    def test_nans_stay_out_of_evaluation_grid(self, rng):
        """Scattered NaNs: each attribute keeps its own finite values (the
        per-column pooling semantics) and no NaN reaches union1d — the
        statistic stays finite and matches the hand-filtered value."""
        x = rng.normal(size=(300, 2))
        y = rng.normal(0.5, 1.0, size=(300, 2))
        xm, ym = x.copy(), y.copy()
        xm[::7, 0] = np.nan
        ym[::5, 1] = np.nan
        got = KolmogorovSmirnovDistance()(xm, ym)
        assert np.isfinite(got)
        per_attr = []
        for j in range(2):
            a = xm[:, j][np.isfinite(xm[:, j])]
            b = ym[:, j][np.isfinite(ym[:, j])]
            grid = np.union1d(a, b)
            fa = np.searchsorted(np.sort(a), grid, side="right") / a.size
            fb = np.searchsorted(np.sort(b), grid, side="right") / b.size
            per_attr.append(float(np.max(np.abs(fa - fb))))
        assert got == max(per_attr)


class TestDivergenceProperties:
    """Property tests over random sample pairs (satellite of the streaming
    distances PR): JS stays within its analytic bound, symmetrized KL is
    symmetric, under any draw."""

    @given(st.integers(0, 10_000), st.floats(-3, 3), st.floats(0.1, 4))
    @settings(max_examples=25, deadline=None)
    def test_js_bounded_by_sqrt_log2(self, seed, shift, spread):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(200, 2))
        y = rng.normal(shift, spread, size=(150, 2))
        assert 0.0 <= JensenShannonDistance()(x, y) <= np.sqrt(np.log(2)) + 1e-12

    @given(st.integers(0, 10_000), st.floats(-2, 2))
    @settings(max_examples=25, deadline=None)
    def test_symmetrized_kl_is_symmetric(self, seed, shift):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(150, 2))
        y = rng.normal(shift, 1.4, size=(150, 2))
        kl = KLDivergence(symmetrized=True, standardize=False)
        assert kl(x, y) == pytest.approx(kl(y, x), rel=1e-9, abs=1e-12)


class TestDistanceRegistry:
    def test_names_round_trip(self):
        for name, cls in DISTANCES.items():
            assert isinstance(distance_by_name(name), cls)
            assert cls.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(DistanceError):
            distance_by_name("wasserstein-3000")

    def test_kwargs_forwarded(self):
        kl = distance_by_name("kl", binning="uniform", pseudo_count=0.25)
        assert kl.binner.binning == "uniform"
        assert kl.pseudo_count == 0.25


class TestSlicedEmd:
    def test_identity_zero(self, rng):
        x = rng.normal(size=(300, 3))
        assert SlicedEmd()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_deterministic_given_seed(self, pair):
        x, y = pair
        assert SlicedEmd(seed=5)(x, y) == SlicedEmd(seed=5)(x, y)

    def test_1d_equals_exact(self, rng):
        x = rng.normal(size=400)
        y = rng.normal(1.0, 1.0, 400)
        sliced = SlicedEmd(standardize=False)(x, y)
        assert sliced == pytest.approx(emd_1d(x, y), rel=1e-9)

    def test_correlates_with_exact_emd(self, rng):
        from repro.distance.emd import EarthMoverDistance

        x = rng.normal(size=(600, 2))
        shifts = [0.2, 1.0, 2.5]
        exact = [EarthMoverDistance(n_bins=16)(x, x + s) for s in shifts]
        sliced = [SlicedEmd(n_projections=64)(x, x + s) for s in shifts]
        assert np.argsort(exact).tolist() == np.argsort(sliced).tolist()


class TestMarginalEmd:
    def test_identity_zero(self, rng):
        x = rng.normal(size=(300, 3))
        assert MarginalEmd()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_average_of_univariate_distances(self, rng):
        x = rng.normal(size=(500, 2))
        y = x + np.array([1.0, 3.0])
        d = MarginalEmd(standardize=False)(x, y)
        assert d == pytest.approx(2.0, rel=1e-6)
