"""KL, Jensen-Shannon, Mahalanobis, KS and the approximate EMDs."""

import numpy as np
import pytest

from repro.distance.emd import emd_1d
from repro.distance.emd_approx import MarginalEmd, SlicedEmd
from repro.distance.kl import JensenShannonDistance, KLDivergence
from repro.distance.ks import KolmogorovSmirnovDistance
from repro.distance.mahalanobis import MahalanobisDistance
from repro.errors import DistanceError


@pytest.fixture()
def pair(rng):
    x = rng.normal(size=(800, 3))
    y = rng.normal(0.7, 1.2, size=(800, 3))
    return x, y


class TestKL:
    def test_identity_near_zero(self, rng):
        x = rng.normal(size=(500, 2))
        assert KLDivergence()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different(self, pair):
        x, y = pair
        assert KLDivergence()(x, y) > 0.05

    def test_asymmetric(self, pair):
        x, y = pair
        kl = KLDivergence()
        assert kl(x, y) != pytest.approx(kl(y, x), rel=1e-3)

    def test_symmetrized_is_symmetric_in_histograms(self, rng):
        # Use standardize=False so the binning frame does not depend on the
        # argument order.
        x = rng.normal(size=(500, 2))
        y = rng.normal(0.5, 1.0, size=(500, 2))
        kl = KLDivergence(symmetrized=True, standardize=False)
        assert kl(x, y) == pytest.approx(kl(y, x), rel=1e-9)

    def test_requires_positive_pseudocount(self):
        with pytest.raises(DistanceError):
            KLDivergence(pseudo_count=0.0)

    def test_more_different_more_divergent(self, rng):
        x = rng.normal(size=(800, 1))
        near = KLDivergence()(x, x + 0.3)
        far = KLDivergence()(x, x + 3.0)
        assert far > near


class TestJensenShannon:
    def test_identity_zero(self, rng):
        x = rng.normal(size=(400, 2))
        assert JensenShannonDistance()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_bounded_by_sqrt_log2(self, pair):
        x, y = pair
        assert JensenShannonDistance()(x, y) <= np.sqrt(np.log(2)) + 1e-9

    def test_symmetric_without_standardize(self, rng):
        x = rng.normal(size=(400, 2))
        y = rng.normal(1.0, 2.0, size=(400, 2))
        js = JensenShannonDistance(standardize=False)
        assert js(x, y) == pytest.approx(js(y, x), rel=1e-9)


class TestMahalanobis:
    def test_identity_zero(self, rng):
        x = rng.normal(size=(300, 3))
        assert MahalanobisDistance()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_unit_shift_in_unit_covariance(self, rng):
        x = rng.normal(size=(100_000, 2))
        y = x + np.array([1.0, 0.0])
        assert MahalanobisDistance()(x, y) == pytest.approx(1.0, rel=0.05)

    def test_scale_invariant(self, rng):
        x = rng.normal(size=(5000, 2))
        y = x + np.array([0.5, 0.2])
        d1 = MahalanobisDistance()(x, y)
        d2 = MahalanobisDistance()(x * 100, y * 100)
        assert d1 == pytest.approx(d2, rel=1e-6)

    def test_blind_to_mean_preserving_spread(self, rng):
        """Why EMD beats Mahalanobis as a distortion metric: a symmetric
        variance explosion with the same mean is almost invisible."""
        x = rng.normal(size=(5000, 1))
        y = x * 5.0
        assert MahalanobisDistance()(x, y) < 0.2

    def test_rejects_negative_ridge(self):
        with pytest.raises(DistanceError):
            MahalanobisDistance(ridge=-1.0)

    def test_tiny_reference_raises(self):
        with pytest.raises(DistanceError):
            MahalanobisDistance()(np.zeros((1, 2)), np.zeros((5, 2)))


class TestKS:
    def test_identity_zero(self, rng):
        x = rng.normal(size=(200, 2))
        assert KolmogorovSmirnovDistance()(x, x.copy()) == 0.0

    def test_bounded_by_one(self, pair):
        x, y = pair
        assert 0.0 <= KolmogorovSmirnovDistance()(x, y) <= 1.0

    def test_disjoint_supports_give_one(self):
        x = np.zeros((50, 1))
        y = np.ones((50, 1))
        assert KolmogorovSmirnovDistance()(x, y) == pytest.approx(1.0)

    def test_insensitive_to_distance_moved(self, rng):
        """KS only counts how much mass moved, not how far — the contrast
        with EMD the ablation bench explores."""
        x = rng.normal(size=(1000, 1))
        near = np.where(x > 2.0, 2.0, x)
        far = np.where(x > 2.0, 50.0, x)
        ks = KolmogorovSmirnovDistance()
        assert ks(x, near) == pytest.approx(ks(x, far), abs=0.02)


class TestSlicedEmd:
    def test_identity_zero(self, rng):
        x = rng.normal(size=(300, 3))
        assert SlicedEmd()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_deterministic_given_seed(self, pair):
        x, y = pair
        assert SlicedEmd(seed=5)(x, y) == SlicedEmd(seed=5)(x, y)

    def test_1d_equals_exact(self, rng):
        x = rng.normal(size=400)
        y = rng.normal(1.0, 1.0, 400)
        sliced = SlicedEmd(standardize=False)(x, y)
        assert sliced == pytest.approx(emd_1d(x, y), rel=1e-9)

    def test_correlates_with_exact_emd(self, rng):
        from repro.distance.emd import EarthMoverDistance

        x = rng.normal(size=(600, 2))
        shifts = [0.2, 1.0, 2.5]
        exact = [EarthMoverDistance(n_bins=16)(x, x + s) for s in shifts]
        sliced = [SlicedEmd(n_projections=64)(x, x + s) for s in shifts]
        assert np.argsort(exact).tolist() == np.argsort(sliced).tolist()


class TestMarginalEmd:
    def test_identity_zero(self, rng):
        x = rng.normal(size=(300, 3))
        assert MarginalEmd()(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_average_of_univariate_distances(self, rng):
        x = rng.normal(size=(500, 2))
        y = x + np.array([1.0, 3.0])
        d = MarginalEmd(standardize=False)(x, y)
        assert d == pytest.approx(2.0, rel=1e-6)
