"""Distributed-sketch properties: shard unions and unbiased subset sums.

The indexed builds draw every item's rank from its own stream spawned by
global item index, so sketching shard streams and unioning is *exactly*
sketching the whole population — the distributed-collection setting of the
paper's references [4] (bottom-k) and [5] (priority sampling).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import (
    BottomKSketch,
    PrioritySample,
    indexed_ranks,
    priority_sample,
    priority_sample_indexed,
    union_sketches,
)


def _weights(n, seed):
    rng = np.random.default_rng(seed)
    w = rng.gamma(0.8, 2.0, size=n)
    w[rng.random(n) < 0.15] = 0.0  # zero-weight items are never sketched
    return w


class TestShardUnionIdentity:
    @pytest.mark.parametrize("cuts", [(20,), (7, 31), (1, 2, 3, 50)])
    def test_union_of_shard_sketches_is_sketch_of_union(self, cuts):
        n, k, seed = 60, 8, 42
        weights = _weights(n, 3)
        keys = [f"s{i}" for i in range(n)]
        whole = BottomKSketch.from_weights(keys, weights, k=k, seed=seed)
        bounds = [0, *cuts, n]
        shards = [
            BottomKSketch.from_weights(
                keys[a:b], weights[a:b], k=k, seed=seed, start=a
            )
            for a, b in zip(bounds[:-1], bounds[1:])
        ]
        merged = union_sketches(shards)
        assert merged.keys == whole.keys
        assert merged.tau == whole.tau
        for key in whole.keys:
            assert merged.adjusted_weight(key) == whole.adjusted_weight(key)

    def test_precomputed_ranks_match_per_shard_spawning(self):
        n, seed = 25, 9
        weights = _weights(n, 1)
        ranks = indexed_ranks(n, seed)
        for a, b in [(0, 10), (10, 25)]:
            assert np.array_equal(ranks[a:b], indexed_ranks(b - a, seed, start=a))

    def test_priority_sample_layout_invariant(self):
        n, k, seed = 40, 6, 7
        weights = _weights(n, 5)
        keys = list(range(n))
        ranks = indexed_ranks(n, seed)
        whole = priority_sample_indexed(keys, weights, k=k, seed=seed)
        sliced = priority_sample_indexed(
            keys, weights, k=k, ranks=ranks
        )
        assert whole.keys == sliced.keys
        assert whole.tau == sliced.tau

    def test_union_rejects_mismatched_k(self):
        a = BottomKSketch.from_weights([1, 2], [1.0, 2.0], k=2, seed=0)
        b = BottomKSketch.from_weights([3], [1.0], k=3, seed=0, start=2)
        with pytest.raises(SamplingError):
            a.union(b)
        with pytest.raises(SamplingError):
            union_sketches([])


class TestUnbiasedEstimation:
    """Rank-conditioned adjusted weights are unbiased for any subset sum."""

    def _mean_estimate(self, build, predicate, n_trials=400):
        return float(
            np.mean([build(seed).estimate_subset_sum(predicate) for seed in range(n_trials)])
        )

    def test_bottom_k_subset_sum_unbiased(self):
        n, k = 30, 10
        weights = np.linspace(0.2, 3.0, n)
        keys = list(range(n))
        subset = lambda key: key % 3 == 0  # noqa: E731
        truth = float(sum(w for key, w in zip(keys, weights) if subset(key)))
        est = self._mean_estimate(
            lambda seed: BottomKSketch.from_weights(keys, weights, k=k, seed=seed),
            subset,
        )
        assert est == pytest.approx(truth, rel=0.15)

    def test_priority_subset_sum_unbiased(self):
        n, k = 30, 10
        weights = np.linspace(0.2, 3.0, n)
        keys = list(range(n))
        subset = lambda key: key < 12  # noqa: E731
        truth = float(weights[:12].sum())
        est = self._mean_estimate(
            lambda seed: priority_sample_indexed(keys, weights, k=k, seed=seed),
            subset,
        )
        assert est == pytest.approx(truth, rel=0.15)

    def test_small_population_estimates_exact(self):
        # Fewer positive-weight items than k: everything is retained and the
        # estimators are exact, not just unbiased.
        keys = ["a", "b", "c"]
        weights = [1.0, 0.0, 2.5]
        sketch = BottomKSketch.from_weights(keys, weights, k=5, seed=1)
        assert sketch.estimate_total() == pytest.approx(3.5)
        sample = priority_sample_indexed(keys, weights, k=5, seed=1)
        assert sample.tau == 0.0
        assert sample.estimate_total() == pytest.approx(3.5)

    def test_invalid_weights_rejected(self):
        with pytest.raises(SamplingError):
            BottomKSketch.from_weights(["a"], [-1.0], k=2, seed=0)
        with pytest.raises(SamplingError):
            priority_sample_indexed(["a"], [np.inf], k=2, seed=0)
        with pytest.raises(SamplingError):
            BottomKSketch.from_weights(["a", "b"], [1.0], k=2, seed=0)

    def test_sequential_builder_still_works(self):
        # The legacy single-stream builders remain supported alongside.
        sketch = BottomKSketch.build([("a", 1.0), ("b", 2.0)], k=1, seed=0)
        assert len(sketch) == 1
        sample = priority_sample([("a", 1.0), ("b", 2.0)], k=1, seed=0)
        assert isinstance(sample, PrioritySample)
