"""The incremental fold core's bitwise replay contracts.

Every fold here must reproduce the one-shot batch computation *bitwise* —
for any window widths, any arrival order, and any duplication the journal
deduplicates — because the folds hold exact integer state and derive the
reported floats by replaying the batch expressions at read time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.glitch_index import GlitchWeights, series_glitch_score
from repro.core.incremental import (
    CleanlinessFold,
    DistortionFold,
    GlitchFold,
    IncrementalScorer,
    WindowJournal,
    analysis_column,
    cut_series_windows,
    outlier_record_fraction,
)
from repro.data.stream import TimeSeries
from repro.data.topology import NodeId
from repro.data.window import StreamWindow
from repro.distance.kl import KLDivergence
from repro.errors import DistanceError, ValidationError
from repro.glitches.constraints import paper_constraints
from repro.glitches.detectors import (
    DetectorSuite,
    ScaleTransform,
    SigmaLimits,
    SigmaOutlierDetector,
)
from repro.glitches.missing import detect_missing
from repro.stats.ecdf import EcdfSketch

ATTRS = ("attr1", "attr2", "attr3")


def _series(seed, length=60, n_nan=6, n_neg=4):
    rng = np.random.default_rng(seed)
    values = rng.gamma(2.0, 3.0, size=(length, len(ATTRS)))
    flat = values.reshape(-1)
    flat[rng.choice(flat.size, size=n_nan, replace=False)] = np.nan
    neg = rng.choice(flat.size, size=n_neg, replace=False)
    flat[neg] = -np.abs(flat[neg])
    return TimeSeries(NodeId(0, 0, seed % 7), values, ATTRS)


def _suite():
    limits = SigmaLimits({a: (0.5, 12.0) for a in ATTRS})
    return DetectorSuite(
        constraints=paper_constraints(),
        outlier_detector=SigmaOutlierDetector(limits),
        transform=None,
    )


def _shuffled_windows(series_list, width, seed):
    windows = [
        w
        for i, s in enumerate(series_list)
        for w in cut_series_windows(s, i, width)
    ]
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(windows))
    return [windows[i] for i in order]


class TestJournal:
    def test_seq_order_reassembly_is_bitwise(self):
        s = _series(3, length=57)
        journal = WindowJournal()
        for w in _shuffled_windows([s], width=13, seed=1):
            assert journal.offer(w)
        back = journal.series(0)
        assert np.array_equal(back.values, s.values, equal_nan=True)
        assert back.attributes == s.attributes
        assert back.node == s.node

    def test_duplicates_refused_without_state_change(self):
        s = _series(4)
        journal = WindowJournal()
        windows = cut_series_windows(s, 0, 16)
        for w in windows:
            assert journal.offer(w)
        for w in windows:
            assert not journal.offer(w)
        assert journal.n_windows == len(windows)

    def test_gap_detection(self):
        s = _series(5)
        journal = WindowJournal()
        windows = cut_series_windows(s, 0, 16)
        journal.offer(windows[0])
        journal.offer(windows[2])
        with pytest.raises(ValidationError, match="gaps"):
            journal.series(0)

    def test_assemble_requires_dense_stream_ids(self):
        s = _series(6)
        journal = WindowJournal()
        for w in cut_series_windows(s, 2, 16):
            journal.offer(w)
        with pytest.raises(ValidationError, match="missing streams"):
            journal.assemble()

    def test_attribute_schema_mismatch_rejected(self):
        journal = WindowJournal()
        journal.offer(
            StreamWindow(0, 0, np.zeros((4, 3)), ATTRS)
        )
        with pytest.raises(ValidationError, match="attributes"):
            journal.offer(
                StreamWindow(1, 0, np.zeros((4, 2)), ("a", "b"))
            )

    def test_truth_rides_along(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(30, 3))
        truth = rng.normal(size=(30, 3))
        s = TimeSeries(NodeId(0, 0, 0), values, ATTRS, truth)
        journal = WindowJournal()
        for w in _shuffled_windows([s], width=7, seed=2):
            journal.offer(w)
        assert np.array_equal(journal.series(0).truth, truth)


class TestCleanlinessFold:
    @pytest.mark.parametrize("width", [1, 7, 16, 200])
    def test_fractions_bitwise_match_batch_mean(self, width):
        constraints = paper_constraints()
        suite = _suite()
        fold = CleanlinessFold(constraints, suite=suite)
        series_list = [_series(i) for i in range(4)]
        for w in _shuffled_windows(series_list, width, seed=9):
            fold.fold(
                w.stream_id, TimeSeries(w.node, w.values, w.attributes)
            )
        for i, s in enumerate(series_list):
            assert fold.miss_fraction(i) == float(
                detect_missing(s).any(axis=1).mean()
            )
            assert fold.inc_fraction(i) == float(
                constraints.evaluate(s).any(axis=1).mean()
            )
            assert fold.out_fraction(i) == outlier_record_fraction(s, suite)


class TestGlitchFold:
    @pytest.mark.parametrize("width", [1, 11, 60])
    def test_score_bitwise_matches_series_glitch_score(self, width):
        suite = _suite()
        weights = GlitchWeights()
        fold = GlitchFold(suite, weights)
        series_list = [_series(i + 10) for i in range(3)]
        for w in _shuffled_windows(series_list, width, seed=3):
            fold.fold(
                w.stream_id, TimeSeries(w.node, w.values, w.attributes)
            )
        for i, s in enumerate(series_list):
            assert fold.score(i) == series_glitch_score(
                suite.annotate(s), weights
            )


class TestAnalysisColumn:
    def test_transformed_column_replays_pooling(self):
        transform = ScaleTransform.log_attr1()
        s = _series(21)
        col = analysis_column(s, 0, "attr1", transform)
        raw = s.values[:, 0]
        with np.errstate(invalid="ignore", divide="ignore"):
            expected = np.log(raw)
        expected = expected[np.isfinite(expected)]
        assert np.array_equal(col, expected)
        # Untransformed attributes: NaN drop only.
        col2 = analysis_column(s, 1, "attr2", transform)
        raw2 = s.values[:, 1]
        assert np.array_equal(col2, raw2[~np.isnan(raw2)])


class TestEcdfQuantile:
    @pytest.mark.parametrize("width", [1, 13, 97])
    def test_quantile_bitwise_matches_np_quantile(self, width):
        rng = np.random.default_rng(7)
        pooled = rng.gamma(1.5, 2.0, size=500)
        pooled[rng.choice(500, size=20, replace=False)] = pooled[0]  # ties
        sketch = EcdfSketch()
        for a in range(0, pooled.size, width):
            sketch.add(pooled[a : a + width])
        q = np.linspace(0.0, 1.0, 17)
        assert np.array_equal(sketch.quantile(q), np.quantile(pooled, q))
        assert sketch.quantile(0.5) == np.quantile(pooled, 0.5)

    def test_empty_and_bad_levels(self):
        sketch = EcdfSketch()
        with pytest.raises(ValidationError):
            sketch.quantile(0.5)
        sketch.add(np.arange(5.0))
        with pytest.raises(ValidationError):
            sketch.quantile(1.5)


class TestDistortionFold:
    def test_quantile_histogram_slab_invariance(self):
        rng = np.random.default_rng(11)
        p = rng.gamma(1.5, 2.0, size=(300, 2))
        q = rng.gamma(1.7, 2.1, size=(300, 2))

        def run(width):
            fold = DistortionFold(1, distance=KLDivergence())
            for a in range(0, 300, width):
                fold.observe_reference(p[a : a + width])
            fold.freeze()
            for a in range(0, 300, width):
                fold.observe(p[a : a + width], [q[a : a + width]])
            return fold.finalize()

        assert run(64) == run(17) == run(300)

    def test_error_messages_preserved(self):
        with pytest.raises(DistanceError, match="at least one candidate"):
            DistortionFold(0)
        fold = DistortionFold(1)
        with pytest.raises(DistanceError, match="no reference rows"):
            fold.freeze()
        fold.observe_reference(np.ones((5, 2)))
        with pytest.raises(DistanceError, match="dimension mismatch"):
            fold.observe_reference(np.ones((5, 3)))
        fold.freeze()
        with pytest.raises(DistanceError, match="no more reference slabs"):
            fold.observe_reference(np.ones((5, 2)))
        with pytest.raises(DistanceError, match="expected 1 candidate"):
            fold.observe(np.ones((2, 2)), [])

    def test_finalize_is_repeatable_and_non_destructive(self):
        rng = np.random.default_rng(12)
        p = rng.normal(size=(100, 2))
        q = rng.normal(size=(100, 2))
        fold = DistortionFold(1, distance=KLDivergence(binning="uniform"))
        fold.observe_reference(p)
        fold.freeze()
        fold.observe(p[:50], [q[:50]])
        first = fold.finalize()
        assert fold.finalize() == first  # read again, same answer
        fold.observe(p[50:], [q[50:]])  # live read then more folding
        assert fold.finalize() is not None


class TestIncrementalScorer:
    def test_live_scores_are_arrival_order_invariant(self):
        series_list = [_series(i + 30) for i in range(3)]
        suite = _suite()

        def final_state(seed):
            scorer = IncrementalScorer(paper_constraints())
            scorer.freeze_suite(suite)
            for w in _shuffled_windows(series_list, 9, seed=seed):
                scorer.fold(w)
            return [
                (
                    scorer.cleanliness.miss_fraction(i),
                    scorer.cleanliness.inc_fraction(i),
                    scorer.glitch_score(i),
                )
                for i in range(len(series_list))
            ]

        assert final_state(1) == final_state(2) == final_state(3)

    def test_late_freeze_equals_early_freeze(self):
        series_list = [_series(i + 40) for i in range(2)]
        suite = _suite()
        windows = _shuffled_windows(series_list, 8, seed=5)

        early = IncrementalScorer(paper_constraints())
        early.freeze_suite(suite)
        for w in windows:
            early.fold(w)

        late = IncrementalScorer(paper_constraints())
        for w in windows:
            late.fold(w)
        late.freeze_suite(suite)  # backfills the journal

        for i in range(len(series_list)):
            assert early.glitch_score(i) == late.glitch_score(i)

    def test_duplicates_do_not_move_state(self):
        series_list = [_series(50)]
        scorer = IncrementalScorer(paper_constraints())
        windows = cut_series_windows(series_list[0], 0, 10)
        for w in windows:
            assert scorer.fold(w).accepted
        before = scorer.cleanliness.miss_fraction(0)
        delta = scorer.fold(windows[0])
        assert not delta.accepted
        assert scorer.n_duplicates == 1
        assert scorer.cleanliness.miss_fraction(0) == before
