"""Experiment framework: configs, runner, outcomes, distortion wiring."""

import numpy as np
import pytest

from repro.cleaning.registry import paper_strategies, strategy_by_name
from repro.core.distortion import statistical_distortion
from repro.core.evaluation import glitch_fraction_table, summarize_outcomes
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.distance.emd_approx import MarginalEmd
from repro.errors import DistanceError, ExperimentError
from repro.glitches.detectors import ScaleTransform
from repro.glitches.types import GlitchType


@pytest.fixture(scope="module")
def mini_result(tiny_bundle):
    cfg = ExperimentConfig(n_replications=3, sample_size=10, seed=0)
    runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal, config=cfg)
    return runner.run(paper_strategies())


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ExperimentConfig()
        assert cfg.n_replications == 50
        assert cfg.sample_size == 100
        assert cfg.log_transform

    def test_transform_property(self):
        assert ExperimentConfig(log_transform=True).transform is not None
        assert ExperimentConfig(log_transform=False).transform is None

    def test_variant(self):
        cfg = ExperimentConfig().variant(sample_size=500)
        assert cfg.sample_size == 500
        assert cfg.n_replications == 50

    def test_rejects_bad_values(self):
        with pytest.raises(Exception):
            ExperimentConfig(n_replications=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(sigma_k=0.0)


class TestDistortionFunction:
    def test_identity_zero(self, tiny_bundle):
        assert statistical_distortion(
            tiny_bundle.dirty, tiny_bundle.dirty
        ) == pytest.approx(0.0, abs=1e-9)

    def test_transform_changes_value(self, tiny_pair, log_context):
        treated = strategy_by_name("strategy4").clean(tiny_pair.dirty, log_context)
        raw = statistical_distortion(tiny_pair.dirty, treated)
        logd = statistical_distortion(
            tiny_pair.dirty, treated, transform=ScaleTransform.log_attr1()
        )
        assert raw != pytest.approx(logd, rel=1e-3)

    def test_custom_distance(self, tiny_pair, raw_context):
        treated = strategy_by_name("strategy4").clean(tiny_pair.dirty, raw_context)
        d = statistical_distortion(tiny_pair.dirty, treated, distance=MarginalEmd())
        assert d > 0


class TestRunner:
    def test_outcome_count(self, mini_result):
        assert len(mini_result.outcomes) == 3 * 5

    def test_strategies_listed_in_order(self, mini_result):
        assert mini_result.strategies == [f"strategy{i}" for i in range(1, 6)]

    def test_for_strategy(self, mini_result):
        rows = mini_result.for_strategy("strategy3")
        assert len(rows) == 3
        assert {r.replication for r in rows} == {0, 1, 2}

    def test_scatter_shapes(self, mini_result):
        xs, ys = mini_result.scatter("strategy1")
        assert len(xs) == len(ys) == 3

    def test_dirty_fractions_shared_across_strategies(self, mini_result):
        by_rep: dict[int, dict] = {}
        by_rep_g: dict[int, float] = {}
        for o in mini_result.outcomes:
            key = o.replication
            if key in by_rep:
                assert o.dirty_fractions == by_rep[key]
                assert o.glitch_index_dirty == pytest.approx(by_rep_g[key])
            else:
                by_rep[key] = o.dirty_fractions
                by_rep_g[key] = o.glitch_index_dirty

    def test_glitch_index_consistency(self, mini_result):
        for o in mini_result.outcomes:
            assert o.improvement == pytest.approx(
                o.glitch_index_dirty - o.glitch_index_treated
            )

    def test_distortion_nonnegative(self, mini_result):
        assert all(o.distortion >= 0 for o in mini_result.outcomes)

    def test_duplicate_strategy_names_rejected(self, tiny_bundle):
        runner = ExperimentRunner(
            tiny_bundle.dirty,
            tiny_bundle.ideal,
            config=ExperimentConfig(n_replications=1, sample_size=5),
        )
        s = strategy_by_name("strategy4")
        with pytest.raises(ExperimentError):
            runner.run([s, s])

    def test_empty_strategy_list_rejected(self, tiny_bundle):
        runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal)
        with pytest.raises(ExperimentError):
            runner.run([])

    def test_deterministic(self, tiny_bundle):
        cfg = ExperimentConfig(n_replications=2, sample_size=8, seed=5)
        a = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal, config=cfg).run(
            [strategy_by_name("strategy4")]
        )
        b = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal, config=cfg).run(
            [strategy_by_name("strategy4")]
        )
        for oa, ob in zip(a.outcomes, b.outcomes):
            assert oa.improvement == pytest.approx(ob.improvement)
            assert oa.distortion == pytest.approx(ob.distortion)


class TestSummaries:
    def test_one_summary_per_strategy(self, mini_result):
        summaries = mini_result.summaries()
        assert [s.strategy for s in summaries] == mini_result.strategies

    def test_summary_stats(self, mini_result):
        s = mini_result.summaries()[0]
        rows = mini_result.for_strategy(s.strategy)
        assert s.n_replications == len(rows)
        assert s.improvement_mean == pytest.approx(
            np.mean([r.improvement for r in rows])
        )
        assert s.distortion_std == pytest.approx(
            np.std([r.distortion for r in rows], ddof=1)
        )

    def test_fraction_table_keys(self, mini_result):
        table = glitch_fraction_table(mini_result.outcomes)
        row = table["strategy1"]
        assert set(row) == {
            f"{g.label}_{side}" for g in GlitchType for side in ("dirty", "treated")
        }

    def test_fraction_table_percent_scale(self, mini_result):
        table = glitch_fraction_table(mini_result.outcomes)
        assert 1.0 < table["strategy1"]["missing_dirty"] < 60.0

    def test_empty_outcomes_empty_summary(self):
        assert summarize_outcomes([]) == []
