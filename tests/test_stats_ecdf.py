"""ECDF correctness — the foundation of the exact 1-D EMD — and the
mergeable :class:`EcdfSketch` that carries the same information slab by
slab for the streaming KS / exact-EMD paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.errors import ValidationError
from repro.stats.ecdf import Ecdf, EcdfSketch

finite_samples = st.lists(
    st.floats(-1e4, 1e4, allow_nan=False), min_size=1, max_size=80
)


class TestEcdfBasics:
    def test_values(self):
        f = Ecdf([1.0, 2.0, 3.0, 4.0])
        assert f(0.5) == 0.0
        assert f(1.0) == 0.25
        assert f(2.5) == 0.5
        assert f(4.0) == 1.0

    def test_right_continuity(self):
        f = Ecdf([1.0, 1.0, 2.0])
        assert f(1.0) == pytest.approx(2 / 3)

    def test_drops_nan(self):
        assert Ecdf([1.0, np.nan]).n == 1

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            Ecdf([np.nan])

    def test_support(self):
        assert Ecdf([3.0, 1.0, 2.0]).support == (1.0, 3.0)

    def test_quantile_inverse(self):
        f = Ecdf([1.0, 2.0, 3.0, 4.0])
        assert f.quantile(0.25) == 1.0
        assert f.quantile(1.0) == 4.0
        assert f.quantile(0.0) == 1.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            Ecdf([1.0]).quantile(1.5)


class TestL1Distance:
    def test_identical_is_zero(self):
        f = Ecdf([1.0, 2.0, 3.0])
        assert f.l1_distance(Ecdf([1.0, 2.0, 3.0])) == 0.0

    def test_point_masses(self):
        assert Ecdf([0.0]).l1_distance(Ecdf([3.0])) == pytest.approx(3.0)

    @given(finite_samples, finite_samples)
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_wasserstein(self, a, b):
        ours = Ecdf(a).l1_distance(Ecdf(b))
        theirs = scipy_stats.wasserstein_distance(a, b)
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)

    @given(finite_samples, finite_samples)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a, b):
        assert Ecdf(a).l1_distance(Ecdf(b)) == pytest.approx(
            Ecdf(b).l1_distance(Ecdf(a)), rel=1e-9, abs=1e-12
        )

    @given(finite_samples, finite_samples, finite_samples)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        fa, fb, fc = Ecdf(a), Ecdf(b), Ecdf(c)
        assert fa.l1_distance(fc) <= fa.l1_distance(fb) + fb.l1_distance(fc) + 1e-9


def _slabs(values, cuts):
    bounds = [0, *cuts, len(values)]
    return [values[a:b] for a, b in zip(bounds[:-1], bounds[1:])]


class TestEcdfSketchExact:
    """Exact mode must equal the pooled Ecdf bitwise, any slab slicing."""

    @pytest.mark.parametrize("cuts", [(), (1,), (13, 200), (100, 101, 102)])
    def test_cdf_matches_pooled_bitwise(self, rng, cuts):
        x = rng.gamma(2.0, 1.5, size=400)
        sketch = EcdfSketch()
        for slab in _slabs(x, cuts):
            sketch.add(slab)
        pooled = Ecdf(x)
        grid = np.concatenate([x, rng.normal(size=100)])
        assert np.array_equal(sketch(grid), pooled(grid))
        assert sketch.n == pooled.n
        assert sketch.support == pooled.support
        assert sketch.exact

    def test_distances_match_pooled_bitwise(self, rng):
        x = rng.normal(size=500)
        y = rng.normal(0.4, 1.3, size=300)
        sx = EcdfSketch().add(x[:123]).add(x[123:])
        sy = EcdfSketch().add(y)
        ex, ey = Ecdf(x), Ecdf(y)
        assert sx.l1_distance(sy) == ex.l1_distance(ey)
        grid = np.union1d(x, y)
        assert sx.ks_distance(sy) == float(np.max(np.abs(ex(grid) - ey(grid))))

    @given(
        st.lists(finite_samples, min_size=2, max_size=5),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_associativity(self, slabs, shuffler):
        """Any merge-tree order over per-slab sketches yields the identical
        summary — the distributed-collection property the streaming layer
        leans on."""
        parts = [EcdfSketch().add(np.array(s)) for s in slabs]
        left = EcdfSketch()
        for p in parts:
            left.merge(p)
        # Rebuild (merge consumes nothing, but fold in a shuffled order and
        # as a nested tree) — same values, same weights, bit for bit.
        parts2 = [EcdfSketch().add(np.array(s)) for s in slabs]
        shuffler.shuffle(parts2)
        mid = len(parts2) // 2
        tree_a, tree_b = EcdfSketch(), EcdfSketch()
        for p in parts2[:mid]:
            tree_a.merge(p)
        for p in parts2[mid:]:
            tree_b.merge(p)
        tree = tree_a.merge(tree_b)
        left._consolidate()
        tree._consolidate()
        assert np.array_equal(left._values, tree._values)
        assert np.array_equal(left._weights, tree._weights)
        assert left.n == tree.n

    def test_non_finite_dropped(self):
        sketch = EcdfSketch().add([1.0, np.nan, np.inf, -np.inf, 2.0])
        assert sketch.n == 2
        assert sketch.support == (1.0, 2.0)

    def test_empty_sketch_signals_unpopulated(self):
        empty = EcdfSketch().add([np.nan])
        assert empty.n == 0
        with pytest.raises(ValidationError):
            empty.support
        with pytest.raises(ValidationError):
            empty(0.5)
        with pytest.raises(ValidationError):
            empty.ks_distance(EcdfSketch().add([1.0]))


class TestEcdfSketchCompressed:
    def test_max_size_validation(self):
        with pytest.raises(ValidationError):
            EcdfSketch(max_size=1)

    def test_bounded_size_and_rank_error(self, rng):
        x = rng.normal(size=5000)
        sketch = EcdfSketch(max_size=64).add(x)
        assert not sketch.exact
        assert sketch.n == 5000
        assert sketch._values.size <= 65  # max_size plus the kept minimum
        pooled = Ecdf(x)
        grid = np.linspace(x.min(), x.max(), 1000)
        # One compaction: CDF exact at retained points, rank error between
        # them bounded by one compaction bucket.
        assert float(np.max(np.abs(sketch(grid) - pooled(grid)))) <= 2.0 / 64

    def test_compressed_distances_near_exact(self, rng):
        x = rng.normal(size=4000)
        y = rng.normal(0.5, 1.2, size=4000)
        exact = Ecdf(x).l1_distance(Ecdf(y))
        ks_exact = EcdfSketch().add(x).ks_distance(EcdfSketch().add(y))
        sx = EcdfSketch(max_size=128).add(x)
        sy = EcdfSketch(max_size=128).add(y)
        assert sx.l1_distance(sy) == pytest.approx(exact, rel=0.1, abs=0.02)
        assert sx.ks_distance(sy) == pytest.approx(ks_exact, abs=4.0 / 128)

    def test_support_minimum_survives_compression(self, rng):
        x = rng.normal(size=2000)
        sketch = EcdfSketch(max_size=16).add(x)
        assert sketch.support == (float(x.min()), float(x.max()))

    def test_buffered_folding_never_changes_exact_results(self, rng):
        # The amortisation buffer is invisible: many tiny adds equal one
        # big add bit for bit, whatever consolidation points they hit.
        x = rng.normal(size=3000)
        one_shot = EcdfSketch().add(x)
        dribbled = EcdfSketch()
        for a in range(0, 3000, 7):
            dribbled.add(x[a : a + 7])
        grid = rng.normal(size=500)
        assert np.array_equal(one_shot(grid), dribbled(grid))
        assert one_shot.ks_distance(dribbled) == 0.0
