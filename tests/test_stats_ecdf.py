"""ECDF correctness — the foundation of the exact 1-D EMD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.errors import ValidationError
from repro.stats.ecdf import Ecdf

finite_samples = st.lists(
    st.floats(-1e4, 1e4, allow_nan=False), min_size=1, max_size=80
)


class TestEcdfBasics:
    def test_values(self):
        f = Ecdf([1.0, 2.0, 3.0, 4.0])
        assert f(0.5) == 0.0
        assert f(1.0) == 0.25
        assert f(2.5) == 0.5
        assert f(4.0) == 1.0

    def test_right_continuity(self):
        f = Ecdf([1.0, 1.0, 2.0])
        assert f(1.0) == pytest.approx(2 / 3)

    def test_drops_nan(self):
        assert Ecdf([1.0, np.nan]).n == 1

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            Ecdf([np.nan])

    def test_support(self):
        assert Ecdf([3.0, 1.0, 2.0]).support == (1.0, 3.0)

    def test_quantile_inverse(self):
        f = Ecdf([1.0, 2.0, 3.0, 4.0])
        assert f.quantile(0.25) == 1.0
        assert f.quantile(1.0) == 4.0
        assert f.quantile(0.0) == 1.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            Ecdf([1.0]).quantile(1.5)


class TestL1Distance:
    def test_identical_is_zero(self):
        f = Ecdf([1.0, 2.0, 3.0])
        assert f.l1_distance(Ecdf([1.0, 2.0, 3.0])) == 0.0

    def test_point_masses(self):
        assert Ecdf([0.0]).l1_distance(Ecdf([3.0])) == pytest.approx(3.0)

    @given(finite_samples, finite_samples)
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_wasserstein(self, a, b):
        ours = Ecdf(a).l1_distance(Ecdf(b))
        theirs = scipy_stats.wasserstein_distance(a, b)
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)

    @given(finite_samples, finite_samples)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a, b):
        assert Ecdf(a).l1_distance(Ecdf(b)) == pytest.approx(
            Ecdf(b).l1_distance(Ecdf(a)), rel=1e-9, abs=1e-12
        )

    @given(finite_samples, finite_samples, finite_samples)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        fa, fb, fc = Ecdf(a), Ecdf(b), Ecdf(c)
        assert fa.l1_distance(fc) <= fa.l1_distance(fb) + fb.l1_distance(fc) + 1e-9
