"""The exception hierarchy contract: everything derives from ReproError."""

import pytest

from repro import errors


def test_all_exported_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        if issubclass(cls, Warning):
            assert issubclass(cls, errors.ReproWarning)
        else:
            assert issubclass(cls, errors.ReproError)


def test_warning_categories_are_user_warnings():
    assert issubclass(errors.ReproWarning, UserWarning)
    assert issubclass(errors.StoreWarning, errors.ReproWarning)
    assert issubclass(errors.ResilienceWarning, errors.ReproWarning)


def test_validation_error_is_value_error():
    assert issubclass(errors.ValidationError, ValueError)


def test_data_shape_error_is_value_error():
    assert issubclass(errors.DataShapeError, ValueError)


def test_constraint_error_is_value_error():
    assert issubclass(errors.ConstraintError, ValueError)


def test_sampling_error_is_value_error():
    assert issubclass(errors.SamplingError, ValueError)


def test_transport_error_is_distance_error():
    assert issubclass(errors.TransportError, errors.DistanceError)


def test_catching_repro_error_catches_subclasses():
    with pytest.raises(errors.ReproError):
        raise errors.TransportError("boom")
