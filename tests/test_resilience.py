"""Fault-matrix identity suite: every injected failure mode must complete
**bitwise-identically** to a clean run.

The determinism contract (pre-spawned per-unit RNG streams, pure work
units) is what makes retry-anywhere sound; these tests drive every fault
site the library probes — transient unit exceptions, hard worker kills,
torn and ENOSPC slab writes, locked and corrupt catalogs — and assert the
payloads match a fault-free reference float for float, across the serial,
thread and process backends.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import threading
import time

import numpy as np
import pytest

from repro.cleaning.registry import strategy_by_name
from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.core.resilience import (
    Resilient,
    RetryPolicy,
    is_retryable,
    resilient,
    resolve_retry_policy,
)
from repro.core.streaming import StreamingExperiment
from repro.data.generator import GeneratorConfig
from repro.data.slab import SlabFeed, load_slab
from repro.errors import (
    ExperimentError,
    FaultInjectedError,
    ResilienceWarning,
    StoreError,
    StoreWarning,
    UnitTimeoutError,
    ValidationError,
)
from repro.experiments.sweep import SweepCell, run_sweep
from repro.store.catalog import Catalog, resolve_catalog
from repro.store.shards import read_shard, write_shard
from repro.testing.faults import (
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_fires,
    install_plan,
)

STRATEGIES = [strategy_by_name("strategy1"), strategy_by_name("strategy4")]

TINY_GEN = GeneratorConfig(
    n_rnc=1, towers_per_rnc=2, sectors_per_tower=5, series_length=30, min_length=30
)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """No ambient plan or resilience knobs leak into (or out of) any test."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_UNIT_TIMEOUT", raising=False)
    install_plan(None)
    yield
    install_plan(None)


def _key(o):
    return (
        o.strategy,
        o.replication,
        o.improvement,
        o.distortion,
        o.glitch_index_dirty,
        o.glitch_index_treated,
        o.cost_fraction,
        tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
        tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())),
    )


def _keys(result):
    return [_key(o) for o in result.outcomes]


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_grammar(self):
        plan = FaultPlan.parse("unit:2, slab.torn, catalog.locked:0.25; seed=7")
        assert plan.seed == 7
        assert plan.specs["unit"] == FaultSpec("unit", times=2)
        assert plan.specs["slab.torn"] == FaultSpec("slab.torn", times=1)
        assert plan.specs["catalog.locked"].rate == 0.25

    def test_unknown_site_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault site"):
            FaultPlan.parse("unti:2")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValidationError, match="rate"):
            FaultSpec("unit", rate=1.5)

    def test_count_semantics(self):
        plan = FaultPlan.parse("unit:2")
        assert [plan.fires("unit") for _ in range(4)] == [True, True, False, False]
        assert not plan.fires("worker")  # unplanned site never fires
        plan.reset()
        assert plan.fires("unit")

    def test_rate_is_seed_deterministic(self):
        a = FaultPlan.parse("unit:0.5;seed=3")
        b = FaultPlan.parse("unit:0.5;seed=3")
        decisions = [a.fires("unit") for _ in range(32)]
        assert decisions == [b.fires("unit") for _ in range(32)]
        assert True in decisions and False in decisions

    def test_installed_plan_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "unit:100")
        install_plan(FaultPlan())  # empty plan masks the env
        assert not fault_fires("unit")
        install_plan(None)
        assert fault_fires("unit")

    def test_env_cache_tracks_value_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "unit:1")
        assert "unit" in active_plan().specs
        monkeypatch.setenv("REPRO_FAULTS", "worker:1")
        assert "unit" not in active_plan().specs
        monkeypatch.delenv("REPRO_FAULTS")
        assert not active_plan().specs


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class _Flaky:
    def __init__(self, failures, exc=FaultInjectedError("boom")):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self, x=0):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return x + 1


class TestRetryPolicy:
    def test_delay_is_deterministic_and_bounded(self):
        p = RetryPolicy(base_delay=0.05, max_delay=2.0, jitter_seed=9)
        for attempt in range(8):
            d1, d2 = p.delay(attempt, unit=4), p.delay(attempt, unit=4)
            assert d1 == d2
            cap = min(0.05 * 2**attempt, 2.0)
            assert 0.5 * cap <= d1 < 1.5 * cap
        assert p.delay(1, unit=0) != p.delay(1, unit=1)

    def test_transient_failure_is_retried(self):
        fn = _Flaky(2)
        assert RetryPolicy(max_attempts=3, base_delay=0).call(fn, 10) == 11
        assert fn.calls == 3

    def test_deterministic_error_is_not_retried(self):
        fn = _Flaky(5, exc=ValidationError("bad input"))
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=5, base_delay=0).call(fn)
        assert fn.calls == 1

    def test_exhausted_attempts_raise(self):
        fn = _Flaky(10)
        with pytest.raises(FaultInjectedError):
            RetryPolicy(max_attempts=2, base_delay=0).call(fn)
        assert fn.calls == 2

    def test_retryability_taxonomy(self):
        assert is_retryable(FaultInjectedError("x"))
        assert is_retryable(OSError("disk hiccup"))
        assert not is_retryable(ValidationError("x"))
        assert not is_retryable(MemoryError())
        assert not is_retryable(KeyboardInterrupt())

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "2.5")
        p = resolve_retry_policy()
        assert p.max_attempts == 5 and p.unit_timeout == 2.5
        monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "0")
        assert resolve_retry_policy().unit_timeout is None
        monkeypatch.setenv("REPRO_RETRIES", "nope")
        with pytest.raises(ValidationError):
            resolve_retry_policy()

    def test_resilient_is_identity_when_disabled(self):
        def fn(x):
            return x

        assert resilient(fn, RetryPolicy(max_attempts=1)) is fn
        wrapped = resilient(fn, RetryPolicy(max_attempts=3))
        assert isinstance(wrapped, Resilient)

    def test_resilient_wrapper_pickles(self):
        import math

        wrapped = Resilient(math.sqrt, RetryPolicy(max_attempts=2))
        clone = pickle.loads(pickle.dumps(wrapped))
        assert clone(9.0) == 3.0


# ---------------------------------------------------------------------------
# Fault matrix: work-unit faults across all backends
# ---------------------------------------------------------------------------


BACKENDS = [
    SerialBackend(),
    ThreadBackend(n_workers=2),
    ProcessBackend(n_workers=2, min_units=1),
]


@pytest.fixture(scope="module")
def matrix_cfg():
    return ExperimentConfig(n_replications=4, sample_size=10, seed=11)


@pytest.fixture(scope="module")
def clean_reference(tiny_bundle, matrix_cfg):
    runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal, config=matrix_cfg)
    return _keys(runner.run(STRATEGIES))


class TestUnitFaultIdentity:
    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
    def test_transient_unit_fault_is_invisible(
        self, tiny_bundle, matrix_cfg, clean_reference, backend
    ):
        install_plan(FaultPlan.parse("unit:2"))
        runner = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=matrix_cfg, backend=backend
        )
        assert _keys(runner.run(STRATEGIES)) == clean_reference

    def test_exhausted_retries_do_surface(self, tiny_bundle, matrix_cfg, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "2")
        install_plan(FaultPlan.parse("unit:100"))
        runner = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=matrix_cfg
        )
        with pytest.raises(FaultInjectedError):
            runner.run(STRATEGIES)


class TestWorkerDeathRecovery:
    def test_worker_kill_degrades_and_matches(
        self, tiny_bundle, matrix_cfg, clean_reference, monkeypatch
    ):
        # Forked workers re-count the plan from zero, so every fresh pool
        # dies — the full process→thread degrade ladder runs, and the
        # payload must still match the clean serial reference.
        monkeypatch.setenv("REPRO_FAULTS", "worker:1")
        backend = ProcessBackend(n_workers=2, min_units=1, max_pool_rebuilds=1)
        runner = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=matrix_cfg, backend=backend
        )
        with pytest.warns(ResilienceWarning, match="pool died"):
            result = runner.run(STRATEGIES)
        assert _keys(result) == clean_reference

    def test_single_pool_death_rebuilds_without_degrading(
        self, tiny_bundle, matrix_cfg, clean_reference, monkeypatch
    ):
        # One chunk's worth of kills, then the rebuilt pool finishes: only
        # the re-dispatch warning fires, never the degrade warning.
        monkeypatch.setenv("REPRO_FAULTS", "worker:0.2;seed=1")
        backend = ProcessBackend(n_workers=2, min_units=1, max_pool_rebuilds=10)
        runner = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=matrix_cfg, backend=backend
        )
        assert _keys(runner.run(STRATEGIES)) == clean_reference


class TestDegradationProvenance:
    """Backend ladder steps land on the result as ``degradations`` /
    ``n_degraded`` — a run that silently fell back is visible in saved
    outcomes, not just in the warning stream."""

    def test_ladder_steps_land_on_experiment_result(
        self, tiny_bundle, matrix_cfg, clean_reference, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "worker:1")
        backend = ProcessBackend(n_workers=2, min_units=1, max_pool_rebuilds=1)
        runner = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=matrix_cfg, backend=backend
        )
        with pytest.warns(ResilienceWarning, match="degrading"):
            result = runner.run(STRATEGIES)
        assert _keys(result) == clean_reference
        assert result.n_degraded >= 1
        assert any("degrading" in event for event in result.degradations)

    def test_clean_run_records_no_degradations(self, tiny_bundle, matrix_cfg):
        runner = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=matrix_cfg
        )
        result = runner.run(STRATEGIES)
        assert result.n_degraded == 0
        assert result.degradations == []

    def test_old_payloads_backfill_empty_degradations(self, tiny_bundle, matrix_cfg):
        # Results unpickled from a pre-provenance catalog lack the
        # attribute; the accessor backfills an empty history.
        runner = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=matrix_cfg
        )
        result = runner.run(STRATEGIES)
        result.__dict__.pop("degradations")
        assert result.degradations == []
        assert result.n_degraded == 0

    def test_sweep_aggregates_per_cell_degradations(self, tiny_bundle, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker:1")
        cfg = ExperimentConfig(n_replications=2, sample_size=8, seed=5)
        cells = [
            SweepCell(
                name=f"cell{i}",
                config=cfg.variant(seed=5 + i),
                strategies=(STRATEGIES[0],),
                bundle=tiny_bundle,
            )
            for i in range(2)
        ]
        backend = ProcessBackend(n_workers=2, min_units=1, max_pool_rebuilds=1)
        with pytest.warns(ResilienceWarning, match="degrading"):
            sweep = run_sweep(cells, backend=backend)
        assert sweep.n_failed == 0
        assert sweep.n_degraded >= 1
        per_cell = sweep.degradations()
        assert per_cell
        assert all(name in sweep.keys() for name in per_cell)
        assert all(events for events in per_cell.values())


def _sleep_in_worker(x):
    import multiprocessing as mp

    if mp.parent_process() is not None:
        time.sleep(60)
    return x * 3


class TestWedgedPoolWatchdog:
    def test_unit_timeout_terminates_wedged_pool(self):
        backend = ProcessBackend(
            n_workers=2,
            min_units=1,
            retry_policy=RetryPolicy(max_attempts=1, unit_timeout=0.1),
            max_pool_rebuilds=1,
        )
        with pytest.warns(ResilienceWarning, match="wedged"):
            out = backend.map(_sleep_in_worker, range(4))
        assert out == [0, 3, 6, 9]


# Items whose first attempt has wedged in this process; the wedging attempt
# records itself *before* sleeping, so the retried attempt returns promptly.
_WEDGED_ONCE: set = set()


def _wedge_first_attempt(x):
    if x not in _WEDGED_ONCE:
        _WEDGED_ONCE.add(x)
        time.sleep(60)
    return x * 3


IN_PROCESS_BACKENDS = [
    lambda **kw: SerialBackend(**kw),
    lambda **kw: ThreadBackend(n_workers=2, **kw),
]


class TestInProcessUnitTimeout:
    """`unit_timeout` coverage for the serial and thread backends: a wedged
    unit raises a retryable :class:`UnitTimeoutError` instead of hanging
    the map (the process pool has its own watchdog, tested above)."""

    @pytest.fixture(autouse=True)
    def _fresh_wedge_log(self):
        _WEDGED_ONCE.clear()
        yield
        _WEDGED_ONCE.clear()

    @pytest.mark.parametrize(
        "make_backend", IN_PROCESS_BACKENDS, ids=["serial", "thread"]
    )
    def test_wedged_unit_raises_without_retries(self, make_backend):
        backend = make_backend(
            retry_policy=RetryPolicy(max_attempts=1, unit_timeout=0.1)
        )
        with pytest.raises(UnitTimeoutError) as excinfo:
            backend.map(_wedge_first_attempt, range(2))
        assert is_retryable(excinfo.value)

    @pytest.mark.parametrize(
        "make_backend", IN_PROCESS_BACKENDS, ids=["serial", "thread"]
    )
    def test_timed_out_unit_is_retried_like_any_transient(self, make_backend):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, unit_timeout=0.3)
        backend = make_backend(retry_policy=policy)
        assert backend.map(_wedge_first_attempt, range(3)) == [0, 3, 6]

    def test_env_knob_reaches_the_serial_map(self, monkeypatch):
        monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "0.3")
        monkeypatch.setenv("REPRO_RETRIES", "2")
        assert SerialBackend().map(_wedge_first_attempt, range(2)) == [0, 3]


def _triple(x):
    return x * 3


class TestFaultPlansCrossProcessBoundaries:
    """``REPRO_FAULTS`` is carried by the environment, so it must reach
    workers that are *spawned* (fresh interpreter, nothing inherited but
    env + pickles), not just forked ones."""

    def test_spawned_workers_inherit_env_plan(self, monkeypatch):
        # Positive proof: the pool can only die if the spawned worker read
        # REPRO_FAULTS from its (inherited) environment and fired the
        # `worker` site — a fresh interpreter shares no memory with us.
        monkeypatch.setenv("REPRO_FAULTS", "worker:1")
        backend = ProcessBackend(
            n_workers=2, min_units=1, start_method="spawn", max_pool_rebuilds=1
        )
        with pytest.warns(ResilienceWarning, match="pool died"):
            out = backend.map(_triple, range(6))
        assert out == [x * 3 for x in range(6)]

    def test_slab_torn_and_worker_death_in_one_streaming_run(
        self, tmp_path, monkeypatch
    ):
        # Matrix cell crossing layers *and* processes at once: a torn slab
        # spill in the coordinator plus worker death in the pool, one
        # streaming run, payload bitwise-identical to the clean reference.
        cfg = ExperimentConfig(n_replications=3, sample_size=10, seed=11)
        clean = StreamingExperiment.from_scale(
            "tiny", seed=0, config=cfg, spill_dir=os.fspath(tmp_path / "clean")
        ).run(STRATEGIES)
        monkeypatch.setenv("REPRO_FAULTS", "slab.torn:1,worker:1")
        backend = ProcessBackend(n_workers=2, min_units=1, max_pool_rebuilds=1)
        with pytest.warns(ResilienceWarning):
            faulted = StreamingExperiment.from_scale(
                "tiny",
                seed=0,
                config=cfg,
                spill_dir=os.fspath(tmp_path / "faulted"),
                backend=backend,
            ).run(STRATEGIES)
        assert _keys(faulted.result) == _keys(clean.result)


# ---------------------------------------------------------------------------
# Fault matrix: store layer (slab spill + shard files)
# ---------------------------------------------------------------------------


def _shard_payload(n=6, v=2, seed=0):
    rng = np.random.default_rng(seed)
    lengths = np.full(n, 5, dtype=np.int64)
    values = rng.normal(size=(int(lengths.sum()), v))
    return lengths, values


class TestShardFaults:
    def test_enospc_leaves_no_tmp_and_recovers(self, tmp_path):
        path = os.fspath(tmp_path / "shard.slab")
        lengths, values = _shard_payload()
        install_plan(FaultPlan.parse("slab.enospc:1"))
        with pytest.raises(OSError, match="No space left"):
            write_shard(path, lengths, values, fingerprint="fp")
        assert os.listdir(tmp_path) == []  # no torn tmp file left behind
        write_shard(path, lengths, values, fingerprint="fp")
        handle = read_shard(path)
        assert handle.fingerprint == "fp"

    def test_torn_write_is_rejected_by_reader(self, tmp_path):
        path = os.fspath(tmp_path / "shard.slab")
        lengths, values = _shard_payload()
        install_plan(FaultPlan.parse("slab.torn:1"))
        write_shard(path, lengths, values, fingerprint="fp")
        with pytest.raises(StoreError):
            read_shard(path)
        write_shard(path, lengths, values, fingerprint="fp")  # fault consumed
        assert np.array_equal(read_shard(path).values, values)


class TestSlabDegradation:
    def _feed(self, tmp_path, seed=0):
        return SlabFeed(
            generator_config=TINY_GEN, seed=seed, spill_dir=os.fspath(tmp_path)
        )

    def test_load_slab_warns_on_unreadable_file(self, tmp_path):
        source = self._feed(tmp_path).sources[0]
        first = load_slab(source, spill=True)
        assert os.path.exists(source.store_path)
        with open(source.store_path, "r+b") as fh:  # tear the published file
            fh.truncate(16)
        with pytest.warns(StoreWarning, match="unreadable"):
            again = load_slab(source)
        assert all(
            np.array_equal(a.values, b.values, equal_nan=True)
            for a, b in zip(first, again)
        )

    def test_load_slab_warns_on_fingerprint_mismatch(self, tmp_path):
        old = self._feed(tmp_path, seed=0).sources[0]
        load_slab(old, spill=True)
        foreign = self._feed(tmp_path, seed=1).sources[0]  # same store_path
        assert foreign.store_path == old.store_path
        with pytest.warns(StoreWarning, match="fingerprint mismatch"):
            load_slab(foreign)

    def test_spill_failure_degrades_to_memory(self, tmp_path):
        source = self._feed(tmp_path).sources[0]
        install_plan(FaultPlan.parse("slab.enospc:1"))
        with pytest.warns(StoreWarning, match="could not spill"):
            series = load_slab(source, spill=True)
        assert not os.path.exists(source.store_path)
        again = load_slab(source, spill=True)  # fault consumed: spills now
        assert os.path.exists(source.store_path)
        assert all(
            np.array_equal(a.values, b.values, equal_nan=True)
            for a, b in zip(series, again)
        )

    @pytest.mark.parametrize("plan", ["slab.torn:1", "slab.enospc:1"])
    def test_streaming_identity_under_slab_faults(self, tmp_path, plan):
        cfg = ExperimentConfig(n_replications=3, sample_size=10, seed=11)
        clean = StreamingExperiment.from_scale(
            "tiny", seed=0, config=cfg, spill_dir=os.fspath(tmp_path / "clean")
        ).run(STRATEGIES)
        install_plan(FaultPlan.parse(plan))
        faulted = StreamingExperiment.from_scale(
            "tiny", seed=0, config=cfg, spill_dir=os.fspath(tmp_path / "faulted")
        ).run(STRATEGIES)
        assert _keys(faulted.result) == _keys(clean.result)


# ---------------------------------------------------------------------------
# Fault matrix: catalog (locked + corrupt)
# ---------------------------------------------------------------------------


class TestCatalogLocked:
    def test_injected_lock_contention_is_retried(self, tmp_path):
        with Catalog(os.fspath(tmp_path / "cat.sqlite")) as cat:
            install_plan(FaultPlan.parse("catalog.locked:2"))
            cat.record_population("pop", "recipe")
            install_plan(FaultPlan.parse("catalog.locked:2"))
            assert cat.get_outcome("missing") is None

    def test_real_write_lock_from_second_connection(self, tmp_path):
        """Regression: a concurrent writer holding the lock must delay the
        catalog write, not kill it — ``busy_timeout`` alone is not enough
        (kept deliberately tiny here so the bounded retry does the work)."""
        path = os.fspath(tmp_path / "cat.sqlite")
        cfg = ExperimentConfig(n_replications=1, sample_size=5, seed=0)
        with Catalog(path, busy_timeout_ms=20) as cat:
            blocker = sqlite3.connect(path, check_same_thread=False)
            blocker.execute("BEGIN IMMEDIATE")  # hold the write lock
            timer = threading.Timer(0.15, blocker.commit)
            timer.start()
            try:
                cat.put_outcome(
                    "k", {"payload": 1}, population_key="p",
                    config=cfg, strategies=STRATEGIES,
                )
            finally:
                timer.join()
                blocker.close()
            assert cat.get_outcome("k") == {"payload": 1}


class TestCatalogCorruption:
    def test_corrupt_file_is_quarantined(self, tmp_path):
        path = os.fspath(tmp_path / "cat.sqlite")
        with open(path, "wb") as fh:
            fh.write(b"this is not a sqlite database, not even close....")
        with pytest.warns(StoreWarning, match="quarantined"):
            cat = Catalog(path)
        with cat:
            cat.record_population("pop", "recipe")  # fresh catalog works
            assert cat.stats()["populations"] == 1
        quarantined = os.fspath(tmp_path / "cat.sqlite.corrupt")
        assert os.path.exists(quarantined)
        with open(quarantined, "rb") as fh:
            assert fh.read().startswith(b"this is not")

    def test_injected_corruption_quarantines_once(self, tmp_path):
        path = os.fspath(tmp_path / "cat.sqlite")
        install_plan(FaultPlan.parse("catalog.corrupt:1"))
        with pytest.warns(StoreWarning, match="quarantined"):
            with Catalog(path) as cat:
                cat.record_population("pop", "recipe")

    def test_unopenable_path_degrades_to_no_catalog(self, tmp_path):
        target = tmp_path / "not-a-file"
        target.mkdir()
        with pytest.warns(StoreWarning, match="continuing without a catalog"):
            cat, owned = resolve_catalog(os.fspath(target))
        assert cat is None and owned is False

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        path = os.fspath(tmp_path / "cat.sqlite")
        cfg = ExperimentConfig(n_replications=1, sample_size=5, seed=0)
        with Catalog(path) as cat:
            cat.put_outcome(
                "k", {"payload": 1}, population_key="p",
                config=cfg, strategies=STRATEGIES,
            )
            cat._conn.execute(
                "UPDATE outcomes SET payload = ? WHERE key = ?", (b"junk", "k")
            )
            cat._conn.commit()
            misses = cat.misses
            with pytest.warns(StoreWarning, match="unreadable payload"):
                assert cat.get_outcome("k") is None
            assert cat.misses == misses + 1


# ---------------------------------------------------------------------------
# Sweep-level degradation and identity
# ---------------------------------------------------------------------------


class _PoisonBundle:
    """Keyable-looking bundle whose data access dies at evaluation time."""

    scale = "tiny"

    def content_key(self):
        raise ValidationError("no replayable identity")

    @property
    def dirty(self):
        raise RuntimeError("disk died mid-run")

    @property
    def ideal(self):  # pragma: no cover - dirty raises first
        raise RuntimeError("disk died mid-run")


def _sweep_cells(bundle, n=2):
    cfg = ExperimentConfig(n_replications=2, sample_size=8, seed=5)
    return [
        SweepCell(
            name=f"cell{i}",
            config=cfg.variant(seed=5 + i),
            strategies=(STRATEGIES[0],),
            bundle=bundle,
        )
        for i in range(n)
    ]


class TestSweepFailureRecording:
    def test_partial_failure_keeps_completed_frontier(self, tiny_bundle):
        cells = _sweep_cells(tiny_bundle, n=2)
        cells.append(
            SweepCell(
                name="poisoned",
                config=ExperimentConfig(n_replications=2, sample_size=8, seed=9),
                strategies=(STRATEGIES[0],),
                bundle=_PoisonBundle(),
            )
        )
        with pytest.warns(ResilienceWarning, match="'poisoned' failed"):
            result = run_sweep(cells)
        assert result.n_failed == 1
        assert result.n_recomputed == 2
        assert result.failed() == {"poisoned": "RuntimeError: disk died mid-run"}
        assert result.cell("poisoned").source == "failed"
        assert result["cell0"].outcomes  # completed cells still served
        with pytest.raises(ExperimentError, match="disk died"):
            result["poisoned"]

    def test_total_failure_still_returns(self, tiny_bundle, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "2")
        monkeypatch.setenv("REPRO_FAULTS", "unit:1000")
        cells = _sweep_cells(tiny_bundle, n=2)
        with pytest.warns(ResilienceWarning):
            result = run_sweep(cells)
        assert result.n_failed == 2
        assert all("FaultInjectedError" in err for err in result.failed().values())

    def test_failed_cells_are_retried_next_run(self, tiny_bundle, tmp_path):
        cat_path = os.fspath(tmp_path / "cat.sqlite")
        cells = _sweep_cells(tiny_bundle, n=1)
        install_plan(FaultPlan.parse("unit:1000"))
        with pytest.warns(ResilienceWarning):
            first = run_sweep(cells, catalog=cat_path)
        assert first.n_failed == 1
        install_plan(None)
        second = run_sweep(cells, catalog=cat_path)
        assert second.n_failed == 0 and second.n_recomputed == 1

    def test_retry_failed_reruns_exactly_the_failed_cells(
        self, tiny_bundle, tmp_path
    ):
        cat_path = os.fspath(tmp_path / "cat.sqlite")
        cells = _sweep_cells(tiny_bundle, n=3)
        run_sweep([cells[0]], catalog=cat_path)  # warm exactly one cell
        install_plan(FaultPlan.parse("unit:1000"))
        with pytest.warns(ResilienceWarning):
            first = run_sweep(cells, catalog=cat_path)
        install_plan(None)
        # The warmed cell was served (no compute, so no fault); the rest died.
        assert first.n_hits == 1 and first.n_failed == 2
        retried = first.retry_failed(catalog=cat_path)
        assert retried.n_failed == 0
        assert retried.n_recomputed == 2  # exactly the failed frontier re-ran
        assert retried.n_hits == 1  # the completed cell carried over untouched
        assert retried.keys() == first.keys()
        assert _keys(retried["cell0"]) == _keys(first["cell0"])
        assert retried["cell1"].outcomes and retried["cell2"].outcomes
        assert retried.failed() == {}

    def test_retry_failed_is_noop_when_nothing_failed(self, tiny_bundle):
        result = run_sweep(_sweep_cells(tiny_bundle, n=1))
        assert result.retry_failed() is result

    def test_retry_failed_requires_retained_source_cells(self, tiny_bundle):
        install_plan(FaultPlan.parse("unit:1000"))
        with pytest.warns(ResilienceWarning):
            result = run_sweep(_sweep_cells(tiny_bundle, n=1))
        install_plan(None)
        result.source_cells.clear()  # simulate a pre-retry-support result
        with pytest.raises(ExperimentError, match="cannot retry"):
            result.retry_failed()


class TestSweepIdentityUnderCatalogFaults:
    def test_locked_catalog_sweep_is_bitwise_identical(self, tiny_bundle, tmp_path):
        cells = _sweep_cells(tiny_bundle)
        clean = run_sweep(cells)
        install_plan(FaultPlan.parse("catalog.locked:3"))
        faulted = run_sweep(cells, catalog=os.fspath(tmp_path / "cat.sqlite"))
        for name in clean.keys():
            assert _keys(faulted[name]) == _keys(clean[name])

    def test_corrupt_catalog_sweep_is_bitwise_identical(self, tiny_bundle, tmp_path):
        path = os.fspath(tmp_path / "cat.sqlite")
        with open(path, "wb") as fh:
            fh.write(b"garbage garbage garbage garbage garbage garbage")
        cells = _sweep_cells(tiny_bundle)
        clean = run_sweep(cells)
        with pytest.warns(StoreWarning, match="quarantined"):
            faulted = run_sweep(cells, catalog=path)
        for name in clean.keys():
            assert _keys(faulted[name]) == _keys(clean[name])
        assert faulted.n_recomputed == len(cells)
