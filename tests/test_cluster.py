"""Cluster backend suite: framing, leases, speculation, degradation.

Every recovery path — dropped/corrupt connections, expired leases, killed
and straggling workers, a worker set below quorum — must complete with a
payload **bitwise-identical** to the serial reference. Localhost workers
are spawned per module (clean environment) or per test (fault plans in the
inherited environment).
"""

from __future__ import annotations

import os
import socket
import threading
import time

import pytest

from repro.cleaning.registry import strategy_by_name
from repro.core.cluster import (
    ClusterBackend,
    LocalWorker,
    local_workers,
    parse_cluster_spec,
    recv_message,
    resolve_lease_ttl,
    resolve_speculate_quantile,
    send_message,
    start_local_workers,
)
from repro.core.executor import BACKEND_NAMES, parse_backend_spec, resolve_backend
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.core.resilience import RetryPolicy
from repro.errors import (
    ClusterError,
    ExperimentError,
    FaultInjectedError,
    ResilienceWarning,
    ValidationError,
)
from repro.testing.faults import FaultPlan, install_plan

STRATEGIES = [strategy_by_name("strategy1"), strategy_by_name("strategy4")]

_TESTS_DIR = os.path.dirname(os.path.abspath(__file__))


def _with_tests_on_path() -> str:
    """``PYTHONPATH`` value letting spawned workers import this module.

    Worker-side execution unpickles map functions by reference; the ones
    defined here live in ``test_cluster``, which is importable in the
    pytest process but not in a fresh worker unless ``tests/`` is on its
    path.
    """
    existing = os.environ.get("PYTHONPATH", "")
    if _TESTS_DIR in existing.split(os.pathsep):
        return existing
    return _TESTS_DIR + os.pathsep + existing if existing else _TESTS_DIR


@pytest.fixture(autouse=True)
def _worker_import_path(monkeypatch):
    """Per-test spawned workers can import this test module."""
    monkeypatch.setenv("PYTHONPATH", _with_tests_on_path())


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """No ambient plan or cluster knobs leak into (or out of) any test."""
    for var in (
        "REPRO_FAULTS",
        "REPRO_RETRIES",
        "REPRO_UNIT_TIMEOUT",
        "REPRO_BACKEND",
        "REPRO_CLUSTER_WORKERS",
        "REPRO_LEASE_TTL",
        "REPRO_SPECULATE_QUANTILE",
    ):
        monkeypatch.delenv(var, raising=False)
    install_plan(None)
    yield
    install_plan(None)


@pytest.fixture(scope="module")
def workers():
    """Two clean localhost workers shared by this module's identity tests.

    Module-scoped fixtures are set up before function-scoped ones, so the
    import-path env is applied by hand here.
    """
    saved = os.environ.get("PYTHONPATH")
    os.environ["PYTHONPATH"] = _with_tests_on_path()
    try:
        spawned = start_local_workers(2)
    finally:
        if saved is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = saved
    yield spawned
    for worker in spawned:
        worker.terminate()


def _key(o):
    return (
        o.strategy,
        o.replication,
        o.improvement,
        o.distortion,
        o.glitch_index_dirty,
        o.glitch_index_treated,
        o.cost_fraction,
        tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
        tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())),
    )


def _keys(result):
    return [_key(o) for o in result.outcomes]


def _square(x):
    return x * x


def _busy_square(x):
    """~30 ms of wall per unit — enough to build a latency profile."""
    deadline = time.perf_counter() + 0.03
    while time.perf_counter() < deadline:
        pass
    return x * x


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFraming:
    def _pair(self):
        server, client = socket.socketpair()
        server.settimeout(5.0)
        client.settimeout(5.0)
        return server, client

    def test_roundtrip(self):
        a, b = self._pair()
        try:
            send_message(a, {"type": "task", "unit": 3, "item": [1, 2, 3]})
            message = recv_message(b)
            assert message == {"type": "task", "unit": 3, "item": [1, 2, 3]}
        finally:
            a.close()
            b.close()

    def test_corrupt_payload_rejected(self):
        import pickle
        import struct
        import zlib

        from repro.core.cluster import _HEADER, MAGIC

        a, b = self._pair()
        try:
            payload = pickle.dumps({"type": "heartbeat"})
            frame = bytearray(
                MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            )
            frame[-1] ^= 0xFF  # flip one payload byte
            a.sendall(bytes(frame))
            with pytest.raises(ClusterError, match="checksum"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_torn_frame_rejected(self):
        import pickle
        import zlib

        from repro.core.cluster import _HEADER, MAGIC

        a, b = self._pair()
        try:
            payload = pickle.dumps({"type": "heartbeat"})
            frame = MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            a.sendall(frame[: len(frame) - 4])  # truncate mid-payload
            a.close()
            with pytest.raises(ClusterError, match="torn"):
                recv_message(b)
        finally:
            b.close()

    def test_bad_magic_rejected(self):
        a, b = self._pair()
        try:
            a.sendall(b"JUNK" + b"\x00" * 8)
            with pytest.raises(ClusterError, match="magic"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_closed_connection_is_connection_error(self):
        a, b = self._pair()
        a.close()
        try:
            with pytest.raises(ConnectionError):
                recv_message(b)
        finally:
            b.close()


# ---------------------------------------------------------------------------
# Spec parsing and knobs
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_cluster_is_a_backend_name(self):
        assert "cluster" in BACKEND_NAMES
        assert parse_backend_spec("cluster") == ("cluster", None)
        assert parse_backend_spec("cluster:3") == ("cluster", 3)
        assert parse_backend_spec(" CLUSTER : 4 ") == ("cluster", 4)

    def test_address_list_spec(self):
        addresses, count = parse_cluster_spec("cluster:127.0.0.1:7001,localhost:7002")
        assert addresses == [("127.0.0.1", 7001), ("localhost", 7002)]
        assert count is None
        assert parse_backend_spec("cluster:127.0.0.1:7001") == ("cluster", None)

    def test_bare_and_count_specs(self):
        assert parse_cluster_spec("cluster") == (None, None)
        assert parse_cluster_spec("cluster:4") == (None, 4)

    @pytest.mark.parametrize(
        "spec",
        ["cluster:host", "cluster:host:notaport", "cluster:host:0", "cluster:0"],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ExperimentError):
            parse_backend_spec(spec)

    def test_resolve_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cluster:127.0.0.1:7001")
        backend = resolve_backend("serial")
        assert isinstance(backend, ClusterBackend)
        assert backend.addresses == [("127.0.0.1", 7001)]

    def test_resolve_backend_count(self):
        backend = resolve_backend("cluster:3")
        assert isinstance(backend, ClusterBackend)
        assert backend.addresses is None and backend.n_workers == 3

    def test_lease_ttl_knob(self, monkeypatch):
        assert resolve_lease_ttl() == 10.0
        monkeypatch.setenv("REPRO_LEASE_TTL", "2.5")
        assert resolve_lease_ttl() == 2.5
        assert resolve_lease_ttl(1.0) == 1.0
        monkeypatch.setenv("REPRO_LEASE_TTL", "nope")
        with pytest.raises(ValidationError):
            resolve_lease_ttl()
        with pytest.raises(ValidationError):
            resolve_lease_ttl(-1.0)

    def test_speculate_knob(self, monkeypatch):
        assert resolve_speculate_quantile() == 0.9
        monkeypatch.setenv("REPRO_SPECULATE_QUANTILE", "0.5")
        assert resolve_speculate_quantile() == 0.5
        monkeypatch.setenv("REPRO_SPECULATE_QUANTILE", "off")
        assert resolve_speculate_quantile() is None
        assert resolve_speculate_quantile(0) is None
        monkeypatch.setenv("REPRO_SPECULATE_QUANTILE", "1.5")
        with pytest.raises(ValidationError):
            resolve_speculate_quantile()


# ---------------------------------------------------------------------------
# Plain maps
# ---------------------------------------------------------------------------


class TestClusterMap:
    def test_map_matches_serial_and_preserves_order(self, workers):
        backend = ClusterBackend(addresses=[w.address for w in workers])
        assert backend.map(_square, range(40)) == [x * x for x in range(40)]
        assert backend.last_map_stats["n_workers"] == 2
        assert backend.last_map_stats["n_degraded_units"] == 0

    def test_sequential_maps_reuse_workers(self, workers):
        backend = ClusterBackend(addresses=[w.address for w in workers])
        for _ in range(3):
            assert backend.map(_square, range(10)) == [x * x for x in range(10)]

    def test_small_maps_run_serially_without_connecting(self):
        # Port 1 is never listening: a connection attempt would fail loudly.
        backend = ClusterBackend(addresses=[("127.0.0.1", 1)], min_units=4)
        assert backend.map(_square, [7]) == [49]
        assert backend.map(_square, []) == []

    def test_worker_error_propagates(self, workers, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "1")
        backend = ClusterBackend(addresses=[w.address for w in workers])
        with pytest.raises(ValidationError):
            backend.map(_raise_validation, range(8))


def _raise_validation(x):
    from repro.errors import ValidationError

    raise ValidationError(f"deterministic failure on {x}")


# ---------------------------------------------------------------------------
# Experiment identity
# ---------------------------------------------------------------------------


class TestExperimentIdentity:
    def test_cluster_matches_serial_bitwise(self, workers, tiny_bundle):
        config = ExperimentConfig(n_replications=6, sample_size=20, seed=11)
        serial = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=config
        ).run(STRATEGIES)
        backend = ClusterBackend(addresses=[w.address for w in workers], min_units=1)
        clustered = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=config, backend=backend
        ).run(STRATEGIES)
        assert _keys(clustered) == _keys(serial)
        assert clustered.n_degraded == 0


# ---------------------------------------------------------------------------
# Fault matrix — every recovery path is bitwise-identical to serial
# ---------------------------------------------------------------------------


class TestClusterFaultMatrix:
    @pytest.fixture()
    def reference(self, tiny_bundle):
        config = ExperimentConfig(n_replications=6, sample_size=20, seed=11)
        result = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=config
        ).run(STRATEGIES)
        return config, _keys(result)

    @pytest.mark.parametrize(
        "plan", ["conn.drop:2", "conn.corrupt:1", "lease.expire:1"]
    )
    def test_coordinator_faults_recover_identically(
        self, workers, tiny_bundle, reference, plan
    ):
        config, expected = reference
        install_plan(FaultPlan.parse(plan))
        backend = ClusterBackend(addresses=[w.address for w in workers], min_units=1)
        with pytest.warns(ResilienceWarning):
            result = ExperimentRunner(
                tiny_bundle.dirty, tiny_bundle.ideal, config=config, backend=backend
            ).run(STRATEGIES)
        assert _keys(result) == expected
        assert backend.last_map_stats["n_requeued"] >= 1

    def test_worker_lost_recovers_identically(
        self, tiny_bundle, reference, monkeypatch
    ):
        """Spawned (not forked) workers inherit ``REPRO_FAULTS`` and die on
        their first task; the map degrades below quorum and still matches."""
        config, expected = reference
        monkeypatch.setenv("REPRO_FAULTS", "worker.lost:1")
        with local_workers(2) as spawned:
            backend = ClusterBackend(
                addresses=[w.address for w in spawned], min_units=1
            )
            monkeypatch.delenv("REPRO_FAULTS")  # coordinator side stays clean
            with pytest.warns(ResilienceWarning):
                result = ExperimentRunner(
                    tiny_bundle.dirty, tiny_bundle.ideal, config=config, backend=backend
                ).run(STRATEGIES)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and any(w.alive() for w in spawned):
                time.sleep(0.05)
            # Positive proof the plan crossed the spawn boundary: both
            # workers consumed their injected kill.
            assert not any(w.alive() for w in spawned)
        assert _keys(result) == expected
        assert result.n_degraded >= 1
        assert any("quorum" in event for event in result.degradations)

    def test_worker_slow_triggers_speculation(self, monkeypatch):
        """A straggling worker's unit is speculatively duplicated on the
        idle fast worker and resolved first-result-wins."""
        monkeypatch.setenv("REPRO_FAULTS", "worker.slow:5")
        slow = start_local_workers(1)
        monkeypatch.delenv("REPRO_FAULTS")
        fast = start_local_workers(1)
        try:
            backend = ClusterBackend(
                addresses=[slow[0].address, fast[0].address],
                speculate_quantile=0.8,
            )
            out = backend.map(_busy_square, range(24))
            assert out == [x * x for x in range(24)]
            assert backend.last_map_stats["n_speculated"] >= 1
            assert backend.last_map_stats["n_degraded_units"] == 0
        finally:
            for worker in slow + fast:
                worker.terminate()

    def test_kill_one_worker_mid_run_redispatches_only_its_units(self):
        """Terminating one of two workers mid-map re-dispatches its leased
        units to the survivor; the map completes without degradation."""
        with local_workers(2) as spawned:
            backend = ClusterBackend(
                addresses=[w.address for w in spawned],
                retry_policy=RetryPolicy(max_attempts=2, base_delay=0.01),
            )
            killer = threading.Timer(0.4, spawned[0].terminate)
            killer.start()
            try:
                with pytest.warns(ResilienceWarning):
                    out = backend.map(_busy_square, range(60))
            finally:
                killer.cancel()
            assert out == [x * x for x in range(60)]
            assert backend.last_map_stats["n_dead_links"] == 1
            assert backend.last_map_stats["n_requeued"] >= 1
            assert backend.last_map_stats["n_degraded_units"] == 0

    def test_quorum_loss_degrades_to_local_identically(self, monkeypatch):
        """No worker ever connects: the whole map falls back to the local
        process ladder, bitwise-identically, and records the step."""
        monkeypatch.setenv("REPRO_RETRIES", "2")
        backend = ClusterBackend(
            addresses=[("127.0.0.1", 1)],
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.01),
        )
        with pytest.warns(ResilienceWarning, match="quorum"):
            out = backend.map(_square, range(20))
        assert out == [x * x for x in range(20)]
        assert backend.last_map_stats["n_degraded_units"] == 20

    def test_injected_unit_fault_retries_inside_worker(self, monkeypatch):
        """A ``unit`` fault plan shipped via the environment is consumed by
        the worker-side retry wrapper, not surfaced to the coordinator."""
        # With retries disabled the injected failure must propagate —
        # proving the unit actually ran remotely under the inherited plan...
        monkeypatch.setenv("REPRO_FAULTS", "unit:1000")
        with local_workers(1) as planned:
            monkeypatch.delenv("REPRO_FAULTS")
            with pytest.raises(FaultInjectedError):
                ClusterBackend(
                    addresses=[planned[0].address],
                    retry_policy=RetryPolicy(max_attempts=1),
                ).map(_probed_unit, range(8))
        # ...and with retries enabled the same plan is absorbed remotely.
        monkeypatch.setenv("REPRO_FAULTS", "unit:1")
        with local_workers(1) as planned:
            monkeypatch.delenv("REPRO_FAULTS")
            backend = ClusterBackend(
                addresses=[planned[0].address],
                retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
            )
            assert backend.map(_probed_unit, range(8)) == [x * x for x in range(8)]


def _probed_unit(x):
    from repro.testing.faults import inject_fault

    inject_fault("unit")
    return x * x


# ---------------------------------------------------------------------------
# Worker entrypoint
# ---------------------------------------------------------------------------


class TestWorkerEntrypoint:
    def test_banner_announces_bound_port(self):
        with local_workers(1) as spawned:
            worker = spawned[0]
            assert isinstance(worker, LocalWorker)
            assert worker.alive()
            assert 1 <= worker.port <= 65535
            # The announced port really is listening.
            with socket.create_connection(worker.address, timeout=5.0) as sock:
                hello = recv_message(sock, timeout=5.0)
                assert hello["type"] == "hello"
                assert hello["pid"] == worker.process.pid

    def test_terminate_is_idempotent(self):
        spawned = start_local_workers(1)
        spawned[0].terminate()
        spawned[0].terminate()
        assert not spawned[0].alive()
