"""EM for the multivariate normal and the PROC-MI-style imputation."""

import numpy as np
import pytest

from repro.cleaning.base import CleaningContext
from repro.cleaning.mvn_imputation import (
    MvnImputation,
    draw_conditional,
    fit_mvn_em,
)
from repro.errors import CleaningError
from repro.glitches.detectors import ScaleTransform


def mcar_sample(rng, n=3000, missing=0.2):
    mean = np.array([1.0, -2.0, 0.5])
    cov = np.array([[2.0, 0.8, 0.3], [0.8, 1.5, -0.4], [0.3, -0.4, 1.0]])
    x = rng.multivariate_normal(mean, cov, size=n)
    mask = rng.random(x.shape) < missing
    x[mask] = np.nan
    return x, mean, cov


class TestFitMvnEm:
    def test_recovers_parameters_under_mcar(self, rng):
        x, mean, cov = mcar_sample(rng)
        est = fit_mvn_em(x)
        assert est.converged
        assert np.allclose(est.mean, mean, atol=0.15)
        assert np.allclose(est.cov, cov, atol=0.3)

    def test_complete_data_matches_mle(self, rng):
        x = rng.multivariate_normal([0, 0], [[1, 0.5], [0.5, 2]], size=2000)
        est = fit_mvn_em(x)
        assert np.allclose(est.mean, x.mean(axis=0), atol=1e-6)
        assert np.allclose(est.cov, np.cov(x, rowvar=False, ddof=0), atol=1e-3)

    def test_fully_missing_rows_dropped(self, rng):
        x, _, _ = mcar_sample(rng, n=500)
        x_with_empty = np.vstack([x, np.full((5, 3), np.nan)])
        a = fit_mvn_em(x)
        b = fit_mvn_em(x_with_empty)
        assert np.allclose(a.mean, b.mean)

    def test_rejects_1d(self):
        with pytest.raises(CleaningError):
            fit_mvn_em(np.zeros(5))

    def test_rejects_all_missing_column(self):
        x = np.array([[1.0, np.nan], [2.0, np.nan], [3.0, np.nan]])
        with pytest.raises(CleaningError):
            fit_mvn_em(x)

    def test_rejects_too_few_rows(self):
        with pytest.raises(CleaningError):
            fit_mvn_em(np.array([[1.0, 2.0]]))

    def test_covariance_positive_definite(self, rng):
        x, _, _ = mcar_sample(rng, n=400, missing=0.4)
        est = fit_mvn_em(x)
        assert np.linalg.eigvalsh(est.cov).min() > 0


class TestDrawConditional:
    def test_fills_all_nans(self, rng):
        x, _, _ = mcar_sample(rng, n=400)
        est = fit_mvn_em(x)
        out = draw_conditional(x, est, rng)
        assert not np.isnan(out).any()

    def test_observed_untouched(self, rng):
        x, _, _ = mcar_sample(rng, n=400)
        est = fit_mvn_em(x)
        out = draw_conditional(x, est, rng)
        obs = ~np.isnan(x)
        assert np.array_equal(out[obs], x[obs])

    def test_draws_follow_conditional_mean(self, rng):
        """With strong correlation, imputed x2 tracks observed x1."""
        cov = np.array([[1.0, 0.95], [0.95, 1.0]])
        x = rng.multivariate_normal([0, 0], cov, size=4000)
        holes = x.copy()
        holes[:2000, 1] = np.nan
        est = fit_mvn_em(holes)
        out = draw_conditional(holes, est, rng)
        corr = np.corrcoef(out[:2000, 0], out[:2000, 1])[0, 1]
        assert corr > 0.8

    def test_wrong_width_raises(self, rng):
        x, _, _ = mcar_sample(rng, n=300)
        est = fit_mvn_em(x)
        with pytest.raises(CleaningError):
            draw_conditional(np.zeros((5, 2)), est, rng)

    def test_fully_missing_row_drawn_from_marginal(self, rng):
        x, mean, _ = mcar_sample(rng, n=500, missing=0.1)
        est = fit_mvn_em(x)
        empty = np.full((2000, 3), np.nan)
        out = draw_conditional(empty, est, rng)
        assert np.allclose(out.mean(axis=0), est.mean, atol=0.2)


class TestMvnImputationTreatment:
    def test_no_missing_after(self, tiny_pair, raw_context):
        treated = MvnImputation().apply(tiny_pair.dirty, raw_context)
        assert treated.missing_fraction == 0.0

    def test_untreatable_cells_unchanged(self, tiny_pair, raw_context):
        treated = MvnImputation().apply(tiny_pair.dirty, raw_context)
        for before, after in zip(tiny_pair.dirty, treated):
            mask = raw_context.treatable_mask(before)
            assert np.array_equal(before.values[~mask], after.values[~mask])

    def test_raw_scale_imputes_negative_attr1(self, tiny_pair, raw_context):
        """Figure 4a: Gaussian on the raw skewed scale imputes negatives."""
        treated = MvnImputation().apply(tiny_pair.dirty, raw_context)
        negatives = 0
        for before, after in zip(tiny_pair.dirty, treated):
            mask = raw_context.treatable_mask(before)[:, 0]
            negatives += int((after.values[mask, 0] < 0).sum())
        assert negatives > 0

    def test_log_scale_never_imputes_negative_attr1(self, tiny_pair, log_context):
        """Figure 4b: on the log scale the back-transform is positive."""
        treated = MvnImputation().apply(tiny_pair.dirty, log_context)
        for before, after in zip(tiny_pair.dirty, treated):
            mask = log_context.treatable_mask(before)[:, 0]
            assert (after.values[mask, 0] > 0).all()

    def test_imputes_attr3_above_one(self, tiny_pair, raw_context):
        """Figure 5: the Gaussian plants impossible ratios above 1."""
        treated = MvnImputation().apply(tiny_pair.dirty, raw_context)
        above = 0
        for before, after in zip(tiny_pair.dirty, treated):
            mask = raw_context.treatable_mask(before)[:, 2]
            above += int((after.values[mask, 2] > 1).sum())
        assert above > 0

    def test_deterministic_given_context_seed(self, tiny_pair):
        a = MvnImputation().apply(
            tiny_pair.dirty, CleaningContext(ideal=tiny_pair.ideal, seed=3)
        )
        b = MvnImputation().apply(
            tiny_pair.dirty, CleaningContext(ideal=tiny_pair.ideal, seed=3)
        )
        for sa, sb in zip(a, b):
            assert np.array_equal(sa.values, sb.values)

    def test_rejects_bad_tol(self):
        with pytest.raises(CleaningError):
            MvnImputation(tol=0.0)
