"""Mean imputation, interpolation, regression imputation, re-measurement,
partial cleaning and the strategy registry."""

import numpy as np
import pytest

from repro.cleaning.base import CleaningContext
from repro.cleaning.interpolation import InterpolationImputation, _interpolate_column
from repro.cleaning.mean_imputation import MeanImputation
from repro.cleaning.partial import PartialCleaner
from repro.cleaning.registry import (
    STRATEGY_LABELS,
    paper_strategies,
    strategy_by_name,
)
from repro.cleaning.regression_imputation import RegressionImputation
from repro.cleaning.remeasure import RemeasureStrategy
from repro.errors import CleaningError
from repro.glitches.detectors import ScaleTransform

from helpers import make_series


class TestMeanImputation:
    def test_fills_everything(self, tiny_pair, raw_context):
        treated = MeanImputation().apply(tiny_pair.dirty, raw_context)
        assert treated.missing_fraction == 0.0

    def test_fills_with_raw_ideal_mean(self, tiny_pair, raw_context):
        treated = MeanImputation().apply(tiny_pair.dirty, raw_context)
        mean3 = raw_context.ideal_means["attr3"]
        for before, after in zip(tiny_pair.dirty, treated):
            mask = raw_context.treatable_mask(before)[:, 2]
            if mask.any():
                assert np.allclose(after.values[mask, 2], mean3)

    def test_log_config_uses_geometric_mean(self, tiny_pair, log_context):
        treated = MeanImputation().apply(tiny_pair.dirty, log_context)
        expected = np.exp(log_context.analysis_means["attr1"])
        for before, after in zip(tiny_pair.dirty, treated):
            mask = log_context.treatable_mask(before)[:, 0]
            if mask.any():
                assert np.allclose(after.values[mask, 0], expected)
                return

    def test_never_creates_inconsistencies(self, tiny_pair, raw_context):
        """Table 1: Strategies 4/5 have exactly zero treated inconsistent."""
        treated = MeanImputation().apply(tiny_pair.dirty, raw_context)
        for series in treated:
            assert not raw_context.constraints.evaluate(series).any()


class TestInterpolation:
    def test_interpolate_column_linear(self):
        col = np.array([0.0, np.nan, 2.0])
        gaps = np.isnan(col)
        out = _interpolate_column(col, gaps)
        assert out[1] == pytest.approx(1.0)

    def test_leading_gap_takes_first_valid(self):
        col = np.array([np.nan, 5.0, 6.0])
        out = _interpolate_column(col, np.isnan(col))
        assert out[0] == 5.0

    def test_all_invalid_returns_unchanged(self):
        col = np.array([np.nan, np.nan])
        out = _interpolate_column(col, np.isnan(col))
        assert np.isnan(out).all()

    def test_treatment_fills_everything(self, tiny_pair, raw_context):
        treated = InterpolationImputation().apply(tiny_pair.dirty, raw_context)
        assert treated.missing_fraction == 0.0

    def test_interpolated_attr3_stays_in_range(self, tiny_pair, raw_context):
        """Convex combinations of in-range endpoints cannot violate
        constraint 2 — interpolation never plants range violations on the
        ratio attribute (unlike the Gaussian imputer)."""
        treated = InterpolationImputation().apply(tiny_pair.dirty, raw_context)
        for before, after in zip(tiny_pair.dirty, treated):
            gaps = raw_context.treatable_mask(before)[:, 2]
            filled = after.values[gaps, 2]
            assert (filled >= 0.0).all() and (filled <= 1.0 + 1e-9).all()


class TestRegressionImputation:
    def test_fills_everything(self, tiny_pair, raw_context):
        treated = RegressionImputation().apply(tiny_pair.dirty, raw_context)
        assert treated.missing_fraction == 0.0

    def test_deterministic(self, tiny_pair):
        ctx = CleaningContext(ideal=tiny_pair.ideal, seed=0)
        a = RegressionImputation().apply(tiny_pair.dirty, ctx)
        b = RegressionImputation().apply(tiny_pair.dirty, ctx)
        for sa, sb in zip(a, b):
            assert np.array_equal(sa.values, sb.values)

    def test_rejects_negative_ridge(self):
        with pytest.raises(CleaningError):
            RegressionImputation(ridge=-1)


class TestRemeasure:
    def test_full_coverage_restores_truth_on_treatable(self, tiny_pair, raw_context):
        treated = RemeasureStrategy(coverage=1.0).clean(tiny_pair.dirty, raw_context)
        for before, after in zip(tiny_pair.dirty, treated):
            mask = raw_context.treatable_mask(before)
            assert np.array_equal(after.values[mask], before.truth[mask])

    def test_zero_coverage_is_identity(self, tiny_pair, raw_context):
        treated = RemeasureStrategy(coverage=0.0).clean(tiny_pair.dirty, raw_context)
        for before, after in zip(tiny_pair.dirty, treated):
            assert np.array_equal(before.values, after.values, equal_nan=True)

    def test_partial_coverage_between(self, tiny_pair, raw_context):
        treated = RemeasureStrategy(coverage=0.5).clean(tiny_pair.dirty, raw_context)
        remaining = treated.missing_fraction
        assert 0.0 < remaining < tiny_pair.dirty.missing_fraction

    def test_zero_distortion_at_full_coverage_of_everything(self, tiny_pair, raw_context):
        """Re-measurement is the gold standard: it can only move values
        toward the truth, never into impossible regions."""
        treated = RemeasureStrategy(coverage=1.0, include_outliers=True).clean(
            tiny_pair.dirty, raw_context
        )
        for series in treated:
            assert not raw_context.constraints.evaluate(series).any()

    def test_requires_truth(self, raw_context, tiny_pair):
        from repro.data.dataset import StreamDataset

        no_truth = StreamDataset(
            s.with_values(s.values) for s in tiny_pair.dirty
        )  # with_values keeps truth; strip it manually
        from repro.data.stream import TimeSeries

        stripped = StreamDataset(
            TimeSeries(s.node, s.values.copy(), s.attributes, truth=None)
            for s in tiny_pair.dirty
        )
        with pytest.raises(CleaningError):
            RemeasureStrategy().clean(stripped, raw_context)


class TestPartialCleaner:
    def test_zero_fraction_identity(self, tiny_pair, raw_context):
        from repro.cleaning.registry import strategy_by_name

        cleaner = PartialCleaner(strategy_by_name("strategy4"), fraction=0.0)
        treated = cleaner.clean(tiny_pair.dirty, raw_context)
        for a, b in zip(treated, tiny_pair.dirty):
            assert np.array_equal(a.values, b.values, equal_nan=True)

    def test_full_fraction_equals_plain_strategy(self, tiny_pair):
        ctx1 = CleaningContext(ideal=tiny_pair.ideal, seed=1)
        ctx2 = CleaningContext(ideal=tiny_pair.ideal, seed=1)
        base = strategy_by_name("strategy4")
        full = PartialCleaner(base, fraction=1.0).clean(tiny_pair.dirty, ctx1)
        plain = base.clean(tiny_pair.dirty, ctx2)
        for a, b in zip(full, plain):
            assert np.array_equal(a.values, b.values, equal_nan=True)

    def test_half_fraction_cleans_dirtiest(self, tiny_pair, raw_context):
        cleaner = PartialCleaner(strategy_by_name("strategy4"), fraction=0.5)
        treated = cleaner.clean(tiny_pair.dirty, raw_context)
        changed = [
            not np.array_equal(a.values, b.values, equal_nan=True)
            for a, b in zip(treated, tiny_pair.dirty)
        ]
        n = len(tiny_pair.dirty)
        assert sum(changed) <= round(0.5 * n) + 1

    def test_name_encodes_percentage(self):
        cleaner = PartialCleaner(strategy_by_name("strategy1"), fraction=0.2)
        assert cleaner.name == "strategy1@20%"


class TestRegistry:
    def test_five_paper_strategies(self):
        strategies = paper_strategies()
        assert [s.name for s in strategies] == [
            f"strategy{i}" for i in range(1, 6)
        ]

    def test_labels_cover_all(self):
        assert set(STRATEGY_LABELS) == {f"strategy{i}" for i in range(1, 6)}

    def test_aliases(self):
        assert strategy_by_name("Impute only").name == "strategy2"
        assert strategy_by_name("s3").name == "strategy3"
        assert strategy_by_name("winsorize and replace with mean").name == "strategy5"

    def test_extension_strategies(self):
        assert strategy_by_name("interpolate").name == "interpolate"
        assert strategy_by_name("regression").name == "regression"

    def test_unknown_raises(self):
        with pytest.raises(CleaningError):
            strategy_by_name("strategy9")

    def test_compositions_match_paper_table(self):
        s1, s2, s3, s4, s5 = paper_strategies()
        assert s1.mi_treatment is not None and s1.outlier_treatment is not None
        assert s2.mi_treatment is not None and s2.outlier_treatment is None
        assert s3.mi_treatment is None and s3.outlier_treatment is not None
        assert s4.mi_treatment is not None and s4.outlier_treatment is None
        assert s5.mi_treatment is not None and s5.outlier_treatment is not None
        assert type(s1.mi_treatment).__name__ == "MvnImputation"
        assert type(s4.mi_treatment).__name__ == "MeanImputation"
