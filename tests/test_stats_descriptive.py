"""Robust/streaming statistics behind detection and Winsorization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.stats.descriptive import (
    RunningMoments,
    mad,
    nan_skewness,
    robust_sigma_limits,
    sigma_limits,
    winsorize_array,
)


class TestRunningMoments:
    def test_matches_numpy(self, rng):
        data = rng.normal(3, 2, 100)
        acc = RunningMoments()
        acc.update_many(data)
        assert acc.count == 100
        assert acc.mean == pytest.approx(data.mean())
        assert acc.variance == pytest.approx(data.var(ddof=1))
        assert acc.std == pytest.approx(data.std(ddof=1))

    def test_ignores_nan(self):
        acc = RunningMoments()
        acc.update_many([1.0, np.nan, 3.0])
        assert acc.count == 2
        assert acc.mean == pytest.approx(2.0)

    def test_variance_nan_with_single_observation(self):
        acc = RunningMoments()
        acc.update(1.0)
        assert np.isnan(acc.variance)

    def test_merge_empty(self):
        acc = RunningMoments()
        acc.update_many([1.0, 2.0])
        merged = acc.merge(RunningMoments())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    @given(
        a=st.lists(st.floats(-100, 100), min_size=2, max_size=30),
        b=st.lists(st.floats(-100, 100), min_size=2, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        left = RunningMoments()
        left.update_many(np.array(a))
        right = RunningMoments()
        right.update_many(np.array(b))
        merged = left.merge(right)
        both = RunningMoments()
        both.update_many(np.array(a + b))
        assert merged.count == both.count
        assert merged.mean == pytest.approx(both.mean, abs=1e-9)
        assert merged.variance == pytest.approx(both.variance, rel=1e-9, abs=1e-9)


class TestSigmaLimits:
    def test_symmetric_around_mean(self, rng):
        data = rng.normal(0, 1, 1000)
        lo, hi = sigma_limits(data, k=3.0)
        assert lo == pytest.approx(data.mean() - 3 * data.std(ddof=1))
        assert hi == pytest.approx(data.mean() + 3 * data.std(ddof=1))

    def test_ignores_nan(self):
        lo, hi = sigma_limits(np.array([1.0, 2.0, 3.0, np.nan]))
        lo2, hi2 = sigma_limits(np.array([1.0, 2.0, 3.0]))
        assert (lo, hi) == (lo2, hi2)

    def test_needs_two_values(self):
        with pytest.raises(ValidationError):
            sigma_limits(np.array([1.0]))

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValidationError):
            sigma_limits(np.array([1.0, 2.0]), k=0)


class TestMad:
    def test_consistent_with_normal_sd(self, rng):
        data = rng.normal(0, 2, 20000)
        assert mad(data) == pytest.approx(2.0, rel=0.05)

    def test_robust_to_outliers(self):
        data = np.concatenate([np.ones(99), [1e9]])
        assert mad(data) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            mad(np.array([np.nan]))


class TestRobustSigmaLimits:
    def test_centered_on_median(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
        lo, hi = robust_sigma_limits(data, k=1.0)
        assert (lo + hi) / 2 == pytest.approx(np.median(data))

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValidationError):
            robust_sigma_limits(np.array([1.0, 2.0]), k=-1)


class TestNanSkewness:
    def test_right_skewed_positive(self, rng):
        assert nan_skewness(rng.lognormal(0, 1, 5000)) > 1.0

    def test_left_skewed_negative(self, rng):
        assert nan_skewness(-rng.lognormal(0, 1, 5000)) < -1.0

    def test_symmetric_near_zero(self, rng):
        assert abs(nan_skewness(rng.normal(0, 1, 50000))) < 0.1

    def test_constant_is_zero(self):
        assert nan_skewness(np.ones(10)) == 0.0

    def test_too_few_values_nan(self):
        assert np.isnan(nan_skewness(np.array([1.0, 2.0])))


class TestWinsorizeArray:
    def test_clips_both_tails(self):
        out, changed = winsorize_array(np.array([-10.0, 0.0, 10.0]), -5.0, 5.0)
        assert out.tolist() == [-5.0, 0.0, 5.0]
        assert changed.tolist() == [True, False, True]

    def test_nan_passes_through(self):
        out, changed = winsorize_array(np.array([np.nan, 1.0]), 0.0, 2.0)
        assert np.isnan(out[0])
        assert not changed[0]

    def test_rejects_inverted_limits(self):
        with pytest.raises(ValidationError):
            winsorize_array(np.array([1.0]), 2.0, 1.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, values):
        arr = np.array(values)
        once, _ = winsorize_array(arr, -10.0, 10.0)
        twice, changed = winsorize_array(once, -10.0, 10.0)
        assert np.array_equal(once, twice, equal_nan=True)
        assert not changed.any()
