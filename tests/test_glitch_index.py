"""The glitch index G(D): weights, normalisation, improvement."""

import numpy as np
import pytest

from repro.core.glitch_index import (
    GlitchWeights,
    glitch_improvement,
    glitch_index,
    series_glitch_score,
    series_glitch_scores,
)
from repro.errors import ValidationError
from repro.glitches.types import DatasetGlitches, GlitchMatrix, GlitchType


def matrix_with(missing=0, inconsistent=0, outliers=0, length=10, v=3):
    bits = np.zeros((length, v, 3), dtype=bool)
    bits[:missing, 0, int(GlitchType.MISSING)] = True
    bits[:inconsistent, 1, int(GlitchType.INCONSISTENT)] = True
    bits[:outliers, 2, int(GlitchType.OUTLIER)] = True
    return GlitchMatrix(bits)


class TestWeights:
    def test_paper_defaults(self):
        w = GlitchWeights()
        assert (w.missing, w.inconsistent, w.outlier) == (0.25, 0.25, 0.5)

    def test_as_array_order(self):
        arr = GlitchWeights(0.1, 0.2, 0.7).as_array()
        assert arr.tolist() == [0.1, 0.2, 0.7]

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            GlitchWeights(missing=-0.1)

    def test_rejects_all_zero(self):
        with pytest.raises(ValidationError):
            GlitchWeights(0.0, 0.0, 0.0)


class TestSeriesScore:
    def test_formula(self):
        # 2/10 missing on attr1, 4/10 inconsistent on attr2, 1/10 outlier.
        m = matrix_with(missing=2, inconsistent=4, outliers=1)
        score = series_glitch_score(m)
        assert score == pytest.approx(0.25 * 0.2 + 0.25 * 0.4 + 0.5 * 0.1)

    def test_length_normalisation(self):
        """Same glitch *fractions* at different lengths score identically —
        the paper's equal-contribution normalisation (Section 3.4)."""
        short = matrix_with(missing=1, length=5)
        long = matrix_with(missing=2, length=10)
        assert series_glitch_score(short) == pytest.approx(series_glitch_score(long))

    def test_custom_weights(self):
        m = matrix_with(outliers=5)
        assert series_glitch_score(m, GlitchWeights(0, 0, 1.0)) == pytest.approx(0.5)

    def test_clean_is_zero(self):
        assert series_glitch_score(GlitchMatrix.empty(10, 3)) == 0.0

    def test_scores_vector(self):
        scores = series_glitch_scores(
            DatasetGlitches([matrix_with(missing=5), GlitchMatrix.empty(10, 3)])
        )
        assert scores.shape == (2,)
        assert scores[1] == 0.0


class TestGlitchIndex:
    def test_additive_over_series(self, tiny_bundle):
        suite = tiny_bundle.suite
        total = glitch_index(tiny_bundle.dirty, suite)
        manual = sum(
            series_glitch_score(suite.annotate(s)) for s in tiny_bundle.dirty
        )
        assert total == pytest.approx(manual)

    def test_ideal_scores_below_dirty(self, tiny_bundle):
        suite = tiny_bundle.suite
        dirty_rate = glitch_index(tiny_bundle.dirty, suite) / len(tiny_bundle.dirty)
        ideal_rate = glitch_index(tiny_bundle.ideal, suite) / len(tiny_bundle.ideal)
        assert ideal_rate < dirty_rate

    def test_improvement_zero_for_identity(self, tiny_bundle):
        suite = tiny_bundle.suite
        assert glitch_improvement(
            tiny_bundle.dirty, tiny_bundle.dirty, suite
        ) == pytest.approx(0.0)

    def test_improvement_positive_after_cleaning(self, tiny_pair, raw_context):
        from repro.cleaning.registry import strategy_by_name
        from repro.glitches.detectors import DetectorSuite
        from repro.glitches.outliers import SigmaOutlierDetector

        treated = strategy_by_name("strategy5").clean(tiny_pair.dirty, raw_context)
        suite = DetectorSuite(
            outlier_detector=SigmaOutlierDetector(raw_context.limits)
        )
        assert glitch_improvement(tiny_pair.dirty, treated, suite) > 0
