"""TimeSeries container: shapes, masks, transforms, copies."""

import numpy as np
import pytest

from repro.data.stream import DEFAULT_ATTRIBUTES, TimeSeries
from repro.data.topology import NodeId
from repro.errors import DataShapeError

from helpers import make_series


class TestConstruction:
    def test_default_attribute_names_for_three_columns(self):
        s = make_series([[1.0, 2.0, 3.0]])
        assert s.attributes == DEFAULT_ATTRIBUTES

    def test_generated_names_for_other_widths(self):
        s = TimeSeries(NodeId(0, 0, 0), np.zeros((2, 5)))
        assert s.attributes == ("attr1", "attr2", "attr3", "attr4", "attr5")

    def test_rejects_1d(self):
        with pytest.raises(DataShapeError):
            TimeSeries(NodeId(0, 0, 0), np.zeros(3))

    def test_rejects_mismatched_attribute_names(self):
        with pytest.raises(DataShapeError):
            TimeSeries(NodeId(0, 0, 0), np.zeros((2, 3)), attributes=("a",))

    def test_rejects_mismatched_truth_shape(self):
        with pytest.raises(DataShapeError):
            TimeSeries(NodeId(0, 0, 0), np.zeros((2, 3)), truth=np.zeros((3, 3)))

    def test_length_and_width(self, simple_series):
        assert simple_series.length == 5
        assert len(simple_series) == 5
        assert simple_series.n_attributes == 3


class TestAccess:
    def test_attribute_index(self, simple_series):
        assert simple_series.attribute_index("attr2") == 1

    def test_unknown_attribute_raises_keyerror(self, simple_series):
        with pytest.raises(KeyError, match="nope"):
            simple_series.attribute_index("nope")

    def test_column_is_view(self, simple_series):
        col = simple_series.column("attr1")
        col[0] = 99.0
        assert simple_series.values[0, 0] == 99.0


class TestMasks:
    def test_missing_mask(self, simple_series):
        mask = simple_series.missing_mask
        assert mask.sum() == 3
        assert mask[1, 0] and mask[3, 1] and mask[4, 2]

    def test_missing_fraction(self, simple_series):
        assert simple_series.missing_fraction == pytest.approx(3 / 15)


class TestCopies:
    def test_copy_is_deep_for_values(self, simple_series):
        c = simple_series.copy()
        c.values[0, 0] = -1.0
        assert simple_series.values[0, 0] != -1.0

    def test_with_values_keeps_node_and_truth(self):
        truth = np.ones((2, 3))
        s = TimeSeries(NodeId(1, 2, 3), np.zeros((2, 3)), truth=truth)
        out = s.with_values(np.full((2, 3), 7.0))
        assert out.node == NodeId(1, 2, 3)
        assert out.truth is truth
        assert out.values[0, 0] == 7.0


class TestTransformed:
    def test_log_transform_applies_to_one_column(self, simple_series):
        out = simple_series.transformed("attr1", np.log)
        assert out.values[0, 0] == pytest.approx(np.log(10.0))
        # other columns untouched
        assert out.values[0, 1] == 2.0

    def test_log_of_negative_becomes_nan(self, simple_series):
        out = simple_series.transformed("attr1", np.log)
        assert np.isnan(out.values[2, 0])

    def test_nan_propagates(self, simple_series):
        out = simple_series.transformed("attr1", np.log)
        assert np.isnan(out.values[1, 0])

    def test_original_untouched(self, simple_series):
        before = simple_series.values.copy()
        simple_series.transformed("attr1", np.log)
        assert np.array_equal(simple_series.values, before, equal_nan=True)
