"""Three-level hierarchy: structure, neighbours, graph view."""

import networkx as nx
import pytest

from repro.data.topology import NetworkTopology, NodeId
from repro.errors import TopologyError, ValidationError


@pytest.fixture()
def topo():
    return NetworkTopology(n_rnc=2, towers_per_rnc=3, sectors_per_tower=4)


class TestNodeId:
    def test_ordering(self):
        assert NodeId(0, 0, 1) < NodeId(0, 1, 0) < NodeId(1, 0, 0)

    def test_tower_key(self):
        assert NodeId(2, 5, 1).tower_key == (2, 5)

    def test_hashable(self):
        assert len({NodeId(0, 0, 0), NodeId(0, 0, 0), NodeId(0, 0, 1)}) == 2


class TestTopology:
    def test_size(self, topo):
        assert len(topo) == 2 * 3 * 4
        assert topo.n_sectors == 24

    def test_iteration_order_deterministic(self, topo):
        nodes = list(topo)
        assert nodes == sorted(nodes)
        assert nodes[0] == NodeId(0, 0, 0)
        assert nodes[-1] == NodeId(1, 2, 3)

    def test_contains(self, topo):
        assert NodeId(1, 2, 3) in topo
        assert NodeId(2, 0, 0) not in topo

    def test_sectors_of_tower(self, topo):
        sectors = topo.sectors_of_tower(0, 1)
        assert len(sectors) == 4
        assert all(s.tower_key == (0, 1) for s in sectors)

    def test_sectors_of_tower_unknown_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.sectors_of_tower(5, 0)

    def test_sectors_of_rnc(self, topo):
        assert len(topo.sectors_of_rnc(1)) == 12

    def test_sectors_of_rnc_unknown_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.sectors_of_rnc(9)

    def test_neighbors_are_tower_siblings(self, topo):
        node = NodeId(0, 1, 2)
        nbrs = topo.neighbors(node)
        assert node not in nbrs
        assert len(nbrs) == 3
        assert all(n.tower_key == node.tower_key for n in nbrs)

    def test_neighbors_unknown_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.neighbors(NodeId(9, 9, 9))

    def test_tower_of(self, topo):
        assert topo.tower_of(NodeId(1, 2, 0)) == (1, 2)

    def test_rejects_nonpositive_shape(self):
        with pytest.raises(ValidationError):
            NetworkTopology(0, 1, 1)


class TestGraphView:
    def test_graph_is_tree(self, topo):
        graph = topo.to_graph()
        # 1 core + 2 rnc + 6 towers + 24 sectors = 33 nodes; tree: n-1 edges.
        assert graph.number_of_nodes() == 33
        assert graph.number_of_edges() == 32
        assert nx.is_connected(graph)

    def test_levels_annotated(self, topo):
        graph = topo.to_graph()
        levels = nx.get_node_attributes(graph, "level")
        assert sum(1 for v in levels.values() if v == "sector") == 24
