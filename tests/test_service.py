"""The push-driven monitoring service's identity and recovery contracts.

The acceptance bar: a session fed the same windows out-of-order, with
duplicates, in bursts — on any backend, for every selectable distance, on
ragged populations — reports final scores bitwise-identical to
:class:`StreamingExperiment` on the batch path; the asyncio front survives
the ``feed.*`` fault sites without a numbers change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning.registry import strategy_by_name
from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.framework import ExperimentConfig
from repro.core.streaming import StreamingExperiment
from repro.data.generator import GeneratorConfig
from repro.data.slab import SlabFeed
from repro.errors import ValidationError
from repro.experiments.config import SCALES
from repro.service import (
    AlertSink,
    IngestionService,
    MonitoringSession,
    arrival_schedule,
    frame_key,
    serve_windows,
    session_backpressure,
    session_ring_capacity,
    simulated_feed,
)
from repro.store.catalog import Catalog, population_recipe_key
from repro.testing.faults import FaultPlan, install_plan

STRATEGIES = [strategy_by_name("strategy1"), strategy_by_name("strategy4")]


def _key(o):
    return (
        o.strategy,
        o.replication,
        o.improvement,
        o.distortion,
        o.glitch_index_dirty,
        o.glitch_index_treated,
        o.cost_fraction,
        tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
        tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())),
    )


def _keys(result):
    return [_key(o) for o in result.outcomes]


def _windows(generator_config=None, seed=0, width=16):
    feed = SlabFeed(
        generator_config or SCALES["tiny"].generator, None, seed=seed
    )
    try:
        return list(feed.iter_stream_windows(width=width))
    finally:
        feed.cleanup()


@pytest.fixture(scope="module")
def tiny_cfg():
    return ExperimentConfig(n_replications=3, sample_size=10, seed=11)


@pytest.fixture(scope="module")
def tiny_windows():
    return _windows()


@pytest.fixture(scope="module")
def batch_reference(tiny_cfg):
    engine = StreamingExperiment.from_scale("tiny", seed=0, config=tiny_cfg)
    return engine.run(STRATEGIES)


class TestArrivalOrderInvariance:
    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ThreadBackend(2), ProcessBackend(2, min_units=1)],
        ids=lambda b: b.name,
    )
    def test_hostile_delivery_bitwise_matches_batch(
        self, tiny_cfg, tiny_windows, batch_reference, backend
    ):
        plan = arrival_schedule(
            tiny_windows, seed=99, reorder=1.0, duplicate=0.3, burst=3
        )
        session = MonitoringSession(config=tiny_cfg)
        session.ingest_all(plan)
        assert session.scorer.n_duplicates > 0
        result = session.finalize(STRATEGIES, backend=backend)
        assert _keys(result) == _keys(batch_reference.result)

    @pytest.mark.parametrize("selector", ["kl", "js", "ks"])
    def test_every_selectable_distance_is_identical(
        self, tiny_windows, selector
    ):
        cfg = ExperimentConfig(
            n_replications=2, sample_size=8, seed=11, distance=selector
        )
        reference = StreamingExperiment.from_scale(
            "tiny", seed=0, config=cfg
        ).run(STRATEGIES)
        plan = arrival_schedule(
            tiny_windows, seed=7, reorder=1.0, duplicate=0.25
        )
        session = MonitoringSession(config=cfg)
        session.ingest_all(plan)
        assert _keys(session.finalize(STRATEGIES)) == _keys(reference.result)

    def test_delivery_order_never_moves_final_floats(
        self, tiny_cfg, tiny_windows
    ):
        results = []
        for seed in (1, 2):
            session = MonitoringSession(config=tiny_cfg)
            session.ingest_all(
                arrival_schedule(
                    tiny_windows, seed=seed, reorder=1.0, duplicate=0.5
                )
            )
            results.append(_keys(session.finalize(STRATEGIES)))
        assert results[0] == results[1]

    def test_ragged_population_identity(self):
        ragged = GeneratorConfig(
            n_rnc=2,
            towers_per_rnc=5,
            sectors_per_tower=10,
            series_length=60,
            min_length=40,
        )
        cfg = ExperimentConfig(n_replications=2, sample_size=8, seed=5)
        reference = StreamingExperiment(
            generator_config=ragged, seed=0, config=cfg
        ).run(STRATEGIES)
        windows = _windows(generator_config=ragged, width=13)
        session = MonitoringSession(config=cfg)
        session.ingest_all(
            arrival_schedule(windows, seed=3, reorder=1.0, duplicate=0.2)
        )
        assert _keys(session.finalize(STRATEGIES)) == _keys(reference.result)

    def test_identification_matches_batch_engine(
        self, tiny_cfg, tiny_windows, batch_reference
    ):
        session = MonitoringSession(config=tiny_cfg)
        session.ingest_all(arrival_schedule(tiny_windows, seed=4, reorder=1.0))
        verdicts, suite = session.identify()
        dirty = [int(i) for i in np.flatnonzero(~verdicts)]
        ideal = [int(i) for i in np.flatnonzero(verdicts)]
        assert dirty == batch_reference.dirty_indices
        assert ideal == batch_reference.ideal_indices
        ref_limits = batch_reference.suite.outlier_detector.limits
        for attr, (lo, hi) in suite.outlier_detector.limits.items():
            assert (lo, hi) == ref_limits.bounds(attr)


class TestSessionMechanics:
    def test_seed_must_be_int(self):
        with pytest.raises(ValidationError, match="int ExperimentConfig.seed"):
            MonitoringSession(
                config=ExperimentConfig(seed=np.random.SeedSequence(3))
            )

    def test_ring_is_bounded_and_recent(self, tiny_cfg, tiny_windows):
        session = MonitoringSession(config=tiny_cfg, ring_capacity=3)
        session.ingest_all(tiny_windows)
        assert len(session.ring) == 3
        assert [w.key for w in session.ring] == [
            w.key for w in tiny_windows[-3:]
        ]

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SESSION_RING", "7")
        monkeypatch.setenv("REPRO_SESSION_BACKPRESSURE", "9")
        assert session_ring_capacity() == 7
        assert session_backpressure() == 9
        session = MonitoringSession()
        assert session.ring.maxlen == 7
        monkeypatch.setenv("REPRO_SESSION_RING", "zero")
        with pytest.raises(ValidationError):
            session_ring_capacity()

    def test_alert_sink_audits_and_alerts(self, tiny_cfg, tiny_windows):
        sink = AlertSink(fraction_threshold=0.05)
        session = MonitoringSession(config=tiny_cfg, alerts=sink)
        plan = arrival_schedule(tiny_windows, seed=8, duplicate=0.2)
        session.ingest_all(plan)
        assert len(sink.records) == len(plan)
        assert sink.n_duplicates == session.scorer.n_duplicates
        # The tiny population plants glitches well above 5% on some streams.
        assert sink.alerts
        alerted = {r.stream_id for r in sink.alerts}
        verdicts, _ = session.identify()
        dirty = set(int(i) for i in np.flatnonzero(~verdicts))
        assert alerted <= dirty | alerted  # audit trail is self-consistent
        for rec in sink.alerts:
            assert rec.alert and rec.session == session.name


class TestCatalogFrameSharing:
    def test_second_session_reuses_frame_bitwise(
        self, tiny_cfg, tiny_windows, batch_reference, tmp_path
    ):
        pop_key = population_recipe_key(SCALES["tiny"].generator, None, 0)
        catalog = Catalog(tmp_path / "catalog.sqlite")
        try:
            first = MonitoringSession(
                name="tenant-a",
                config=tiny_cfg,
                population_key=pop_key,
                catalog=catalog,
            )
            first.ingest_all(
                arrival_schedule(tiny_windows, seed=1, reorder=1.0)
            )
            a = _keys(first.finalize(STRATEGIES))
            assert first.frame_hits == 0

            second = MonitoringSession(
                name="tenant-b",
                config=tiny_cfg,
                population_key=pop_key,
                catalog=catalog,
            )
            second.ingest_all(
                arrival_schedule(tiny_windows, seed=2, duplicate=0.4)
            )
            b = _keys(second.finalize(STRATEGIES))
            assert second.frame_hits == 1  # identification was a catalog read
            assert a == b == _keys(batch_reference.result)
        finally:
            catalog.close()

    def test_frame_key_separates_parameters(self):
        from repro.glitches.constraints import paper_constraints

        base = frame_key("pop", paper_constraints(), None, 3.0, 0.05, 3)
        assert base != frame_key("pop", paper_constraints(), None, 2.5, 0.05, 3)
        assert base != frame_key("pop2", paper_constraints(), None, 3.0, 0.05, 3)


class TestAsyncIngestion:
    def _per_feed(self, windows, n_feeds):
        by_stream = {}
        for w in windows:
            by_stream.setdefault(w.stream_id % n_feeds, []).append(w)
        return [by_stream[i] for i in sorted(by_stream)]

    def test_concurrent_feeds_match_batch(
        self, tiny_cfg, tiny_windows, batch_reference
    ):
        session = MonitoringSession(config=tiny_cfg)
        feeds = [
            simulated_feed(chunk)
            for chunk in self._per_feed(tiny_windows, 4)
        ]
        deltas = serve_windows(session, feeds)
        # The CI service smoke re-runs this test with REPRO_FAULTS arming
        # feed.dup — the journal refuses the re-deliveries, so the count of
        # extra deltas is exactly the duplicate count either way.
        assert len(deltas) == len(tiny_windows) + session.scorer.n_duplicates
        assert _keys(session.finalize(STRATEGIES)) == _keys(
            batch_reference.result
        )

    def test_feed_faults_do_not_move_the_numbers(
        self, tiny_cfg, tiny_windows, batch_reference
    ):
        previous = install_plan(
            FaultPlan.parse("feed.stall:3,feed.dup:2,feed.reorder:2")
        )
        try:
            session = MonitoringSession(config=tiny_cfg)
            feeds = [
                simulated_feed(chunk)
                for chunk in self._per_feed(tiny_windows, 3)
            ]
            deltas = serve_windows(session, feeds)
        finally:
            install_plan(previous)
        # feed.dup:2 delivered two windows twice; the journal refused them.
        assert session.scorer.n_duplicates == 2
        assert len(deltas) == len(tiny_windows) + 2
        assert _keys(session.finalize(STRATEGIES)) == _keys(
            batch_reference.result
        )

    def test_backpressure_bound_is_respected(self, tiny_cfg, tiny_windows):
        session = MonitoringSession(config=tiny_cfg)
        service = IngestionService(session, backpressure=2)
        assert service.backpressure == 2
        feeds = [simulated_feed(list(tiny_windows))]
        import asyncio

        deltas = asyncio.run(service.run(feeds))
        assert len(deltas) == len(tiny_windows)
