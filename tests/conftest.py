"""Shared fixtures.

Population construction is the expensive part of most tests, so the tiny and
small bundles are built once per session and treated as read-only by every
test (strategies always copy; nothing mutates a StreamDataset in place).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning.base import CleaningContext
from repro.experiments.config import build_population
from repro.glitches.detectors import ScaleTransform
from repro.sampling.replication import generate_test_pairs

from helpers import make_series


@pytest.fixture(scope="session")
def tiny_bundle():
    """A tiny generated population (100 series x 60 steps), session-shared."""
    return build_population(scale="tiny", seed=0)


@pytest.fixture(scope="session")
def small_bundle():
    """The small-scale population (600 series x 170 steps), session-shared."""
    return build_population(scale="small", seed=0)


@pytest.fixture(scope="session")
def tiny_pair(tiny_bundle):
    """One replication pair from the tiny bundle."""
    return next(
        generate_test_pairs(tiny_bundle.dirty, tiny_bundle.ideal, 1, 12, seed=0)
    )


@pytest.fixture()
def raw_context(tiny_pair):
    """Cleaning context on the raw analysis scale."""
    return CleaningContext(ideal=tiny_pair.ideal, transform=None, seed=7)


@pytest.fixture()
def log_context(tiny_pair):
    """Cleaning context with the paper's log-attr1 analysis scale."""
    return CleaningContext(
        ideal=tiny_pair.ideal, transform=ScaleTransform.log_attr1(), seed=7
    )


@pytest.fixture()
def rng():
    """A deterministic generator for ad-hoc draws."""
    return np.random.default_rng(123)


@pytest.fixture()
def simple_series():
    """A 5-step, 3-attribute series with one missing and one negative value."""
    return make_series(
        [
            [10.0, 2.0, 0.95],
            [np.nan, 3.0, 0.90],
            [-5.0, 1.0, 0.99],
            [12.0, np.nan, 1.20],
            [11.0, 2.5, np.nan],
        ]
    )
