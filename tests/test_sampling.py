"""Sampling schemes: simple, weighted, replications, sketches."""

import numpy as np
import pytest

from repro.errors import SamplingError, ValidationError
from repro.sampling.bottom_k import BottomKSketch
from repro.sampling.priority import priority_sample
from repro.sampling.replication import generate_test_pairs
from repro.sampling.simple import sample_indices, sample_series
from repro.sampling.weighted import weighted_sample_indices, weighted_sample_series


class TestSimple:
    def test_indices_in_range(self):
        idx = sample_indices(10, 50, seed=0)
        assert idx.shape == (50,)
        assert idx.min() >= 0 and idx.max() < 10

    def test_with_replacement(self):
        idx = sample_indices(3, 100, seed=0)
        assert len(np.unique(idx)) <= 3

    def test_deterministic(self):
        assert np.array_equal(sample_indices(10, 20, seed=1), sample_indices(10, 20, seed=1))

    def test_sample_series(self, tiny_bundle):
        sample = sample_series(tiny_bundle.dirty, 7, seed=0)
        assert len(sample) == 7

    def test_rejects_zero_size(self, tiny_bundle):
        with pytest.raises(ValidationError):
            sample_series(tiny_bundle.dirty, 0)


class TestWeighted:
    def test_zero_weight_never_drawn(self):
        weights = np.array([1.0, 0.0, 1.0])
        idx = weighted_sample_indices(weights, 500, seed=0)
        assert 1 not in idx

    def test_proportionality(self):
        weights = np.array([1.0, 3.0])
        idx = weighted_sample_indices(weights, 40000, seed=0)
        assert (idx == 1).mean() == pytest.approx(0.75, abs=0.02)

    def test_rejects_negative(self):
        with pytest.raises(SamplingError):
            weighted_sample_indices(np.array([-1.0, 2.0]), 5)

    def test_rejects_all_zero(self):
        with pytest.raises(SamplingError):
            weighted_sample_indices(np.array([0.0, 0.0]), 5)

    def test_series_wrapper_checks_length(self, tiny_bundle):
        with pytest.raises(SamplingError):
            weighted_sample_series(tiny_bundle.dirty, np.ones(3), 5)


class TestReplications:
    def test_count_and_sizes(self, tiny_bundle):
        pairs = list(
            generate_test_pairs(tiny_bundle.dirty, tiny_bundle.ideal, 4, 9, seed=0)
        )
        assert len(pairs) == 4
        assert all(len(p.dirty) == 9 and len(p.ideal) == 9 for p in pairs)
        assert [p.index for p in pairs] == [0, 1, 2, 3]

    def test_deterministic(self, tiny_bundle):
        a = list(generate_test_pairs(tiny_bundle.dirty, tiny_bundle.ideal, 2, 5, seed=3))
        b = list(generate_test_pairs(tiny_bundle.dirty, tiny_bundle.ideal, 2, 5, seed=3))
        for pa, pb in zip(a, b):
            for sa, sb in zip(pa.dirty, pb.dirty):
                assert np.array_equal(sa.values, sb.values, equal_nan=True)

    def test_prefix_stability(self, tiny_bundle):
        """Replication i is identical regardless of how many are generated."""
        few = list(generate_test_pairs(tiny_bundle.dirty, tiny_bundle.ideal, 1, 5, seed=3))
        many = list(generate_test_pairs(tiny_bundle.dirty, tiny_bundle.ideal, 5, 5, seed=3))
        assert np.array_equal(
            few[0].dirty[0].values, many[0].dirty[0].values, equal_nan=True
        )

    def test_replications_differ(self, tiny_bundle):
        a, b = list(
            generate_test_pairs(tiny_bundle.dirty, tiny_bundle.ideal, 2, 8, seed=0)
        )
        assert not all(
            np.array_equal(x.values, y.values, equal_nan=True)
            for x, y in zip(a.dirty, b.dirty)
        )


class TestBottomK:
    def items(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        return [(i, float(w)) for i, w in enumerate(rng.gamma(2.0, 1.0, n))]

    def test_size_capped_at_k(self):
        sketch = BottomKSketch.build(self.items(), k=20, seed=0)
        assert len(sketch) == 20

    def test_small_population_kept_whole(self):
        items = [(0, 1.0), (1, 2.0)]
        sketch = BottomKSketch.build(items, k=10, seed=0)
        assert len(sketch) == 2
        assert np.isinf(sketch.tau)
        assert sketch.estimate_total() == pytest.approx(3.0)

    def test_zero_weight_skipped(self):
        sketch = BottomKSketch.build([(0, 0.0), (1, 1.0)], k=5, seed=0)
        assert 0 not in sketch

    def test_rejects_negative_weight(self):
        with pytest.raises(SamplingError):
            BottomKSketch.build([(0, -1.0)], k=2)

    def test_subset_sum_unbiased(self):
        items = self.items(300, seed=1)
        truth = sum(w for key, w in items if key % 3 == 0)
        estimates = [
            BottomKSketch.build(items, k=60, seed=s).estimate_subset_sum(
                lambda key: key % 3 == 0
            )
            for s in range(60)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.12)

    def test_union_estimates_combined_total(self):
        left = self.items(100, seed=2)
        right = [(k + 1000, w) for k, w in self.items(100, seed=3)]
        sl = BottomKSketch.build(left, k=40, seed=4)
        sr = BottomKSketch.build(right, k=40, seed=5)
        merged = sl.union(sr)
        assert len(merged) == 40
        truth = sum(w for _, w in left) + sum(w for _, w in right)
        assert merged.estimate_total() == pytest.approx(truth, rel=0.35)

    def test_union_k_mismatch_raises(self):
        a = BottomKSketch.build(self.items(50), k=5, seed=0)
        b = BottomKSketch.build(self.items(50), k=6, seed=0)
        with pytest.raises(SamplingError):
            a.union(b)

    def test_adjusted_weight_absent_is_zero(self):
        sketch = BottomKSketch.build(self.items(50), k=10, seed=0)
        assert sketch.adjusted_weight("nope") == 0.0


class TestPrioritySampling:
    def items(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        return [(i, float(w)) for i, w in enumerate(rng.gamma(2.0, 1.0, n))]

    def test_size(self):
        sample = priority_sample(self.items(), k=25, seed=0)
        assert len(sample) == 25

    def test_small_population_exact(self):
        sample = priority_sample([(0, 1.0), (1, 2.0)], k=5, seed=0)
        assert sample.tau == 0.0
        assert sample.estimate_total() == pytest.approx(3.0)

    def test_rejects_bad_weight(self):
        with pytest.raises(SamplingError):
            priority_sample([(0, float("inf"))], k=2)

    def test_total_estimate_unbiased(self):
        items = self.items(300, seed=7)
        truth = sum(w for _, w in items)
        estimates = [
            priority_sample(items, k=50, seed=s).estimate_total() for s in range(80)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.1)

    def test_subset_sum_unbiased(self):
        items = self.items(300, seed=8)
        truth = sum(w for key, w in items if key < 100)
        estimates = [
            priority_sample(items, k=60, seed=s).estimate_subset_sum(
                lambda key: key < 100
            )
            for s in range(80)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.12)

    def test_heavy_items_almost_always_sampled(self):
        items = [(i, 1.0) for i in range(100)] + [("whale", 500.0)]
        hits = sum(
            "whale" in priority_sample(items, k=20, seed=s) for s in range(30)
        )
        assert hits == 30
