"""RNG plumbing: determinism, pass-through, and independent spawning."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


def test_as_generator_from_int_is_deterministic():
    a = as_generator(42).random(5)
    b = as_generator(42).random(5)
    assert np.array_equal(a, b)


def test_as_generator_passes_generator_through():
    gen = np.random.default_rng(0)
    assert as_generator(gen) is gen


def test_as_generator_none_gives_fresh_stream():
    a = as_generator(None).random(5)
    b = as_generator(None).random(5)
    assert not np.array_equal(a, b)


def test_as_generator_accepts_seed_sequence():
    seq = np.random.SeedSequence(7)
    gen = as_generator(seq)
    assert isinstance(gen, np.random.Generator)


def test_spawn_generators_count():
    assert len(spawn_generators(0, 5)) == 5


def test_spawn_generators_zero():
    assert spawn_generators(0, 0) == []


def test_spawn_generators_negative_raises():
    with pytest.raises(ValueError):
        spawn_generators(0, -1)


def test_spawned_streams_are_deterministic_and_distinct():
    first = [g.random(3) for g in spawn_generators(9, 3)]
    second = [g.random(3) for g in spawn_generators(9, 3)]
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
    assert not np.array_equal(first[0], first[1])


def test_spawn_prefix_stability():
    """Child i is the same stream no matter how many children are spawned."""
    few = spawn_generators(5, 2)
    many = spawn_generators(5, 10)
    assert np.array_equal(few[0].random(4), many[0].random(4))
    assert np.array_equal(few[1].random(4), many[1].random(4))


def test_spawn_from_generator():
    gen = np.random.default_rng(3)
    children = spawn_generators(gen, 2)
    assert len(children) == 2
    assert not np.array_equal(children[0].random(3), children[1].random(3))
