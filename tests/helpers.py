"""Importable test helpers.

These live outside ``conftest.py`` on purpose: test modules import them by
name (``from helpers import make_series``), and ``conftest`` is not a safe
import target — with both ``tests/`` and ``benchmarks/`` on ``sys.path``
during a whole-repo pytest run, the module name ``conftest`` is ambiguous
and resolves to whichever directory was collected first.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.data.topology import NodeId

__all__ = ["make_series", "make_dataset"]


def make_series(values, node=NodeId(0, 0, 0), truth=None) -> TimeSeries:
    """Build a TimeSeries from a plain nested list."""
    return TimeSeries(node, np.asarray(values, dtype=float), truth=truth)


def make_dataset(*value_blocks) -> StreamDataset:
    """Build a StreamDataset of series from nested lists."""
    return StreamDataset(
        make_series(block, NodeId(0, 0, k)) for k, block in enumerate(value_blocks)
    )
