"""Validation helpers reject bad inputs with ValidationError."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
    ensure_1d,
    ensure_2d,
)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "n") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(4), "n") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="n"):
            check_positive_int(0, "n")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive_int(-2, "n")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "n")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "n")


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_fraction(value, "f") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValidationError):
            check_fraction(value, "f")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_fraction("half", "f")

    def test_coerces_int(self):
        assert check_fraction(1, "f") == 1.0


class TestCheckProbability:
    def test_accepts_half(self):
        assert check_probability(0.5, "p") == 0.5

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_probability(float("nan"), "p")


class TestEnsureDims:
    def test_ensure_1d_accepts_list(self):
        out = ensure_1d([1, 2, 3], "x")
        assert out.shape == (3,)
        assert out.dtype == float

    def test_ensure_1d_rejects_2d(self):
        with pytest.raises(ValidationError):
            ensure_1d([[1, 2]], "x")

    def test_ensure_2d_accepts_nested(self):
        out = ensure_2d([[1, 2], [3, 4]], "x")
        assert out.shape == (2, 2)

    def test_ensure_2d_rejects_1d(self):
        with pytest.raises(ValidationError):
            ensure_2d([1, 2], "x")

    def test_ensure_2d_rejects_3d(self):
        with pytest.raises(ValidationError):
            ensure_2d(np.zeros((2, 2, 2)), "x")
