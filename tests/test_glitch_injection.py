"""Glitch injector: masks, truth preservation, the designed asymmetries."""

import numpy as np
import pytest

from repro.data.generator import GeneratorConfig, NetworkDataGenerator
from repro.data.glitch_injection import (
    GlitchInjectionConfig,
    GlitchInjector,
    _burst_mask,
)
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def injected():
    cfg = GeneratorConfig(
        n_rnc=2, towers_per_rnc=5, sectors_per_tower=10, series_length=120,
        min_length=120,
    )
    clean = NetworkDataGenerator(cfg, seed=1).generate()
    return clean, GlitchInjector(seed=2).inject(clean)


class TestConfigValidation:
    def test_defaults_valid(self):
        GlitchInjectionConfig()

    def test_rejects_bad_probability(self):
        with pytest.raises(ValidationError):
            GlitchInjectionConfig(outage_enter=1.5)

    def test_rejects_bad_event_range(self):
        with pytest.raises(ValidationError):
            GlitchInjectionConfig(event_length_range=(5, 2))

    def test_rejects_bad_factor_range(self):
        with pytest.raises(ValidationError):
            GlitchInjectionConfig(spike_factor_range=(10.0, 2.0))

    def test_rejects_negative_events(self):
        with pytest.raises(ValidationError):
            GlitchInjectionConfig(n_events=-1)


class TestBurstMask:
    def test_length_and_dtype(self, rng):
        mask = _burst_mask(rng, 200, 0.05, 0.2)
        assert mask.shape == (200,)
        assert mask.dtype == bool

    def test_zero_enter_gives_empty(self, rng):
        assert not _burst_mask(rng, 100, 0.0, 0.2).any()

    def test_stationary_fraction(self, rng):
        """E[frac] = E[len] / (E[gap] + E[len]) for the two-state chain."""
        total = sum(
            _burst_mask(rng, 1000, 0.05, 0.25).mean() for _ in range(50)
        ) / 50
        expected = (1 / 0.25) / (1 / 0.05 + 1 / 0.25)
        assert total == pytest.approx(expected, rel=0.2)

    def test_bursts_are_contiguous(self, rng):
        mask = _burst_mask(rng, 500, 0.02, 0.3)
        # Number of 0->1 transitions should be far below the number of True
        # steps if values cluster into bursts.
        starts = (mask & ~np.roll(mask, 1)).sum()
        if mask.sum() > 10:
            assert starts < mask.sum()


class TestInjection:
    def test_truth_preserved(self, injected):
        clean, result = injected
        for s_clean, s_dirty in zip(clean, result.dataset):
            assert s_dirty.truth is not None
            assert np.array_equal(s_dirty.truth, s_clean.values)

    def test_missing_mask_matches_nan(self, injected):
        _, result = injected
        for series, record in zip(result.dataset, result.records):
            assert np.array_equal(np.isnan(series.values), record.missing_mask)

    def test_masks_disjoint(self, injected):
        _, result = injected
        for record in result.records:
            assert not (record.missing_mask & record.corruption_mask).any()
            assert not (record.missing_mask & record.anomaly_mask).any()

    def test_untouched_cells_keep_truth(self, injected):
        _, result = injected
        for series, record in zip(result.dataset, result.records):
            untouched = ~record.any_glitch_mask
            assert np.array_equal(
                series.values[untouched], series.truth[untouched]
            )

    def test_glitchy_and_healthy_split(self, injected):
        _, result = injected
        n = len(result.records)
        assert len(result.glitchy_indices) + len(result.healthy_indices) == n
        assert 0.4 < len(result.glitchy_indices) / n < 0.9

    def test_healthy_series_much_cleaner(self, injected):
        _, result = injected
        def rate(indices):
            cells = sum(result.records[i].any_glitch_mask.sum() for i in indices)
            total = sum(result.records[i].missing_mask.size for i in indices)
            return cells / total
        assert rate(result.healthy_indices) < 0.3 * rate(result.glitchy_indices)

    def test_injected_missing_fraction_in_band(self, injected):
        _, result = injected
        assert 0.03 < result.injected_missing_fraction() < 0.25

    def test_negative_attr1_values_exist(self, injected):
        _, result = injected
        col = result.dataset.pooled_column("attr1")
        assert (col < 0).any()

    def test_attr3_out_of_range_values_exist(self, injected):
        _, result = injected
        col = result.dataset.pooled_column("attr3")
        assert (col > 1).any()
        assert (col < 0).any()

    def test_determinism(self):
        cfg = GeneratorConfig(n_rnc=1, towers_per_rnc=2, sectors_per_tower=5)
        clean = NetworkDataGenerator(cfg, seed=3).generate()
        a = GlitchInjector(seed=9).inject(clean)
        b = GlitchInjector(seed=9).inject(clean)
        for sa, sb in zip(a.dataset, b.dataset):
            assert np.array_equal(sa.values, sb.values, equal_nan=True)


class TestDesignedAsymmetries:
    """The paper-shaped mechanisms documented in the module docstring."""

    def test_stress_is_invisible_to_complete_rows(self, injected):
        """Stressed/counter-fault cells live only in incomplete records."""
        _, result = injected
        for series, record in zip(result.dataset, result.records):
            complete = ~np.isnan(series.values).any(axis=1)
            # anomaly cells in complete rows must come from the independent
            # anomaly channel (attr1/attr2 dips and spikes or attr3 crash),
            # never from outage stress; outage stress rows have attr3 or
            # attr1/2 missing, hence are incomplete.
            stressed_rows = record.anomaly_mask.any(axis=1) & complete
            # Those rows exist (independent anomalies), but every stressed
            # row flagged during an outage is incomplete:
            outage_rows = record.missing_mask.any(axis=1)
            assert not (stressed_rows & outage_rows).any()

    def test_constraint3_overlap_built_in(self, injected):
        """Records with attr3 missing and attr1 populated exist in volume."""
        _, result = injected
        overlap = 0
        total = 0
        for series in result.dataset:
            attr3_missing = np.isnan(series.values[:, 2])
            attr1_present = ~np.isnan(series.values[:, 0])
            overlap += int((attr3_missing & attr1_present).sum())
            total += series.length
        assert overlap / total > 0.02

    def test_dips_dominate_anomalies(self, injected):
        """Low-side anomalies outnumber high-side ones on attr1."""
        clean, result = injected
        dips = spikes = 0
        for series, record in zip(result.dataset, result.records):
            cells = record.anomaly_mask[:, 0] & ~np.isnan(series.values[:, 0])
            ratio = series.values[cells, 0] / series.truth[cells, 0]
            dips += int((ratio < 1).sum())
            spikes += int((ratio > 1).sum())
        assert dips > spikes
