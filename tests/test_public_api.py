"""Public API contract: exports resolve, are documented, and stay stable."""

import inspect

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} has no docstring"

    def test_subpackages_documented(self):
        import repro.cleaning
        import repro.core
        import repro.data
        import repro.distance
        import repro.experiments
        import repro.glitches
        import repro.sampling
        import repro.stats

        for mod in (
            repro.data,
            repro.glitches,
            repro.cleaning,
            repro.distance,
            repro.sampling,
            repro.core,
            repro.experiments,
            repro.stats,
        ):
            assert mod.__doc__

    def test_strategy_names_stable(self):
        names = [s.name for s in repro.paper_strategies()]
        assert names == ["strategy1", "strategy2", "strategy3", "strategy4", "strategy5"]

    def test_distances_share_protocol(self):
        import numpy as np

        distances = [
            repro.EarthMoverDistance(n_bins=4),
            repro.SlicedEmd(n_projections=4),
            repro.MarginalEmd(),
            repro.KLDivergence(n_bins=4),
            repro.JensenShannonDistance(n_bins=4),
            repro.KolmogorovSmirnovDistance(),
            repro.MahalanobisDistance(),
        ]
        rng = np.random.default_rng(0)
        x = rng.normal(size=(60, 2))
        y = rng.normal(0.5, 1.0, size=(60, 2))
        for d in distances:
            value = d(x, y)
            assert value >= 0.0
            assert isinstance(value, float)
            assert d.name


class TestReadmeQuickstartRuns:
    def test_quickstart_snippet(self, tiny_bundle):
        """The README's quickstart, at test scale."""
        config = repro.experiment_config("tiny", log_transform=True)
        result = repro.run_figure6(tiny_bundle, config)
        text = repro.render_strategy_summaries(result.summaries())
        assert "strategy5" in text
        front = repro.pareto_front(result.summaries())
        assert len(front) >= 1
