"""Incremental sweep engine tests: planning, invalidation, batching.

The contract under test is the planner's double promise: (1) a cell whose
key did not move is served from the catalog bitwise-identically without
building anything, and exactly the cells a change invalidates recompute;
(2) the cells that do run share population builds and reference frames
without changing a single float relative to standalone per-cell runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning.partial import PartialCleaner
from repro.cleaning.registry import paper_strategies, strategy_by_name
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.errors import ExperimentError
from repro.experiments.config import build_population, experiment_config
from repro.experiments.sweep import (
    SWEEP_INCREMENTAL_ENV_VAR,
    PlanDiff,
    SweepCell,
    cell_key,
    cost_cells,
    diff_manifests,
    figure6_cells,
    plan_sweep,
    run_sweep,
    sweep_incremental_enabled,
)
from repro.store.catalog import CODE_SALT_ENV_VAR, Catalog


def _keys(result):
    return [
        (
            o.strategy,
            o.replication,
            o.improvement,
            o.distortion,
            o.glitch_index_dirty,
            o.glitch_index_treated,
            o.cost_fraction,
        )
        for o in result.outcomes
    ]


@pytest.fixture
def cfg():
    return ExperimentConfig(n_replications=2, sample_size=8, seed=0)


def _standalone(bundle, cell):
    strategies = list(cell.strategies) if cell.strategies else paper_strategies()
    runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=cell.config)
    return runner.run(strategies)


# ---------------------------------------------------------------------------
# Planning and diffing
# ---------------------------------------------------------------------------


class TestPlan:
    def test_plan_keys_every_cell(self, cfg):
        cells = figure6_cells(scale="tiny", base_config=cfg)
        plan = plan_sweep(cells)
        assert set(plan.keys) == {c.name for c in cells}
        assert all(k is not None for k in plan.keys.values())
        outcomes = [k.outcome for k in plan.keys.values()]
        assert len(set(outcomes)) == len(outcomes)  # distinct cells

    def test_plan_rejects_duplicate_names(self, cfg):
        cells = [
            SweepCell(name="same", config=cfg, scale="tiny"),
            SweepCell(name="same", config=cfg.variant(seed=1), scale="tiny"),
        ]
        with pytest.raises(ExperimentError):
            plan_sweep(cells)

    def test_unkeyable_cell_is_marked(self, cfg):
        cells = [
            SweepCell(
                name="live",
                config=cfg,
                scale="tiny",
                seed=np.random.default_rng(0),
            )
        ]
        plan = plan_sweep(cells)
        assert plan.keys["live"] is None
        assert plan.manifest() == {}

    def test_diff_against_empty(self, cfg):
        manifest = plan_sweep(figure6_cells(scale="tiny", base_config=cfg)).manifest()
        diff = diff_manifests(None, manifest)
        assert sorted(diff.added) == sorted(manifest)
        assert not diff.changed and not diff.removed and not diff.unchanged

    def test_seed_change_invalidates_every_cell(self, cfg):
        """The population seed feeds every cell's key — changing it leaves
        nothing servable, and the diff names the population component."""
        old = plan_sweep(figure6_cells(scale="tiny", seed=0, base_config=cfg))
        new = plan_sweep(figure6_cells(scale="tiny", seed=1, base_config=cfg))
        diff = diff_manifests(old.manifest(), new.manifest())
        assert not diff.unchanged
        assert set(diff.changed) == set(old.manifest())
        assert all("population" in parts for parts in diff.changed.values())

    def test_single_panel_edit_invalidates_one_cell(self, cfg):
        """Editing one cell's ``cost_fraction`` moves only that cell's
        strategies component; every other cell stays valid."""
        s1 = strategy_by_name("strategy1")
        base = [
            SweepCell(
                name=f"f={f}",
                config=cfg,
                strategies=(PartialCleaner(s1, fraction=f),),
                scale="tiny",
            )
            for f in (0.2, 0.5)
        ]
        edited = list(base)
        edited[1] = SweepCell(
            name="f=0.5",
            config=cfg,
            strategies=(PartialCleaner(s1, fraction=0.6),),
            scale="tiny",
        )
        diff = diff_manifests(
            plan_sweep(base).manifest(), plan_sweep(edited).manifest()
        )
        assert diff.unchanged == ["f=0.2"]
        assert diff.changed == {"f=0.5": ["strategies"]}
        assert diff.invalidated == ["f=0.5"]

    def test_distance_swap_moves_config_not_population(self, cfg):
        """Swapping the distance re-keys the cell but leaves the population
        component untouched — the stored population rows stay reusable."""
        old = plan_sweep([SweepCell(name="c", config=cfg, scale="tiny")])
        new = plan_sweep(
            [SweepCell(name="c", config=cfg.variant(distance="kl"), scale="tiny")]
        )
        diff = diff_manifests(old.manifest(), new.manifest())
        assert diff.changed == {"c": ["config"]}
        assert (
            new.keys["c"].population == old.keys["c"].population
        )

    def test_salt_bump_invalidates_everything(self, cfg, monkeypatch):
        old = plan_sweep(figure6_cells(scale="tiny", base_config=cfg))
        monkeypatch.setenv(CODE_SALT_ENV_VAR, "numerics-changed")
        new = plan_sweep(figure6_cells(scale="tiny", base_config=cfg))
        diff = diff_manifests(old.manifest(), new.manifest())
        assert not diff.unchanged
        assert all(parts == ["salt"] for parts in diff.changed.values())

    def test_removed_cells_reported(self, cfg):
        full = plan_sweep(figure6_cells(scale="tiny", base_config=cfg))
        two = plan_sweep(figure6_cells(scale="tiny", base_config=cfg)[:2])
        diff = diff_manifests(full.manifest(), two.manifest())
        assert len(diff.removed) == 1 and len(diff.unchanged) == 2


# ---------------------------------------------------------------------------
# Execution: sharing without drift
# ---------------------------------------------------------------------------


class TestRunSweep:
    def test_shared_population_built_once(self, cfg):
        """Cells sharing a recipe build it exactly once (the acceptance
        counter), and each cell still equals its standalone run."""
        cells = figure6_cells(scale="tiny", base_config=cfg)
        res = run_sweep(cells)
        assert res.n_builds == 1
        assert res.n_recomputed == len(cells) and res.n_hits == 0
        bundle = build_population(scale="tiny", seed=0)
        for cell in cells:
            assert _keys(res[cell.name]) == _keys(_standalone(bundle, cell))

    def test_shared_frame_batches_panels(self, cfg, tiny_bundle):
        """Cells differing only in their strategy panel run as one batched
        multi-panel pass — one group — bitwise-identical to standalone."""
        strategies = paper_strategies()
        cells = [
            SweepCell(
                name="head", config=cfg, strategies=tuple(strategies[:2]),
                bundle=tiny_bundle,
            ),
            SweepCell(
                name="tail", config=cfg, strategies=tuple(strategies[2:]),
                bundle=tiny_bundle,
            ),
        ]
        res = run_sweep(cells)
        assert res.n_groups == 1 and res.n_builds == 0
        for cell in cells:
            assert _keys(res[cell.name]) == _keys(_standalone(tiny_bundle, cell))

    def test_mapping_facade(self, cfg, tiny_bundle):
        cells = [SweepCell(name="only", config=cfg, bundle=tiny_bundle)]
        res = run_sweep(cells)
        assert list(res) == ["only"] and len(res) == 1
        assert "only" in res and "other" not in res
        assert res.keys() == ["only"]
        assert res.items() == [("only", res["only"])]
        assert res.values() == [res["only"]]
        assert res.get("other") is None
        assert res.cell("only").source in ("computed", "uncacheable")
        with pytest.raises(KeyError):
            res["other"]

    def test_streaming_group_shares_engine(self, cfg):
        """An all-streaming group runs through one engine (no materialised
        build) and matches the in-memory path bit for bit."""
        scfg = cfg.variant(streaming=True)
        cells = [
            SweepCell(name="log", config=scfg.variant(log_transform=True),
                      scale="tiny"),
            SweepCell(name="raw", config=scfg.variant(log_transform=False),
                      scale="tiny"),
        ]
        res = run_sweep(cells)
        assert res.n_builds == 0
        bundle = build_population(scale="tiny", seed=0)
        for cell in cells:
            expect = ExperimentRunner(
                bundle.dirty, bundle.ideal,
                config=cell.config.variant(streaming=False),
            ).run(paper_strategies())
            assert _keys(res[cell.name]) == _keys(expect)

    def test_uncacheable_cell_still_runs(self, tiny_bundle):
        rng_cfg = ExperimentConfig(
            n_replications=2, sample_size=8, seed=np.random.default_rng(7)
        )
        res = run_sweep(
            [SweepCell(name="live", config=rng_cfg, bundle=tiny_bundle)]
        )
        assert res.n_uncacheable == 1
        assert res.cell("live").source == "uncacheable"
        assert res["live"].outcomes


class TestIncrementalServing:
    def test_warm_sweep_recomputes_nothing(self, cfg, tmp_path):
        cells = figure6_cells(scale="tiny", base_config=cfg)
        with Catalog(tmp_path / "cat.sqlite") as cat:
            cold = run_sweep(cells, catalog=cat, name="fig6")
            assert cold.n_recomputed == len(cells) and cold.n_builds == 1
            warm = run_sweep(cells, catalog=cat, name="fig6")
            assert warm.n_hits == len(cells)
            assert warm.n_recomputed == 0 and warm.n_builds == 0
            assert sorted(warm.diff.unchanged) == sorted(warm.keys())
            for name in cold.keys():
                assert _keys(warm[name]) == _keys(cold[name])
                assert warm.cell(name).source == "catalog"

    def test_single_cell_edit_recomputes_exactly_it(self, cfg, tmp_path):
        cells = figure6_cells(scale="tiny", base_config=cfg)
        with Catalog(tmp_path / "cat.sqlite") as cat:
            run_sweep(cells, catalog=cat, name="fig6")
            edited = list(cells)
            edited[1] = SweepCell(
                name=cells[1].name,
                config=cells[1].config.variant(sigma_k=2.5),
                scale="tiny",
            )
            res = run_sweep(edited, catalog=cat, name="fig6")
            assert res.n_hits == len(cells) - 1
            assert res.recomputed() == [cells[1].name]
            assert res.diff.changed == {cells[1].name: ["config"]}

    def test_seed_change_recomputes_all(self, cfg, tmp_path):
        with Catalog(tmp_path / "cat.sqlite") as cat:
            run_sweep(
                figure6_cells(scale="tiny", seed=0, base_config=cfg),
                catalog=cat, name="fig6",
            )
            res = run_sweep(
                figure6_cells(scale="tiny", seed=1, base_config=cfg),
                catalog=cat, name="fig6",
            )
            assert res.n_hits == 0 and res.n_recomputed == 3
            assert all(
                "population" in parts for parts in res.diff.changed.values()
            )

    def test_salt_bump_forces_full_recompute(self, cfg, tmp_path, monkeypatch):
        cells = figure6_cells(scale="tiny", base_config=cfg)
        with Catalog(tmp_path / "cat.sqlite") as cat:
            cold = run_sweep(cells, catalog=cat, name="fig6")
            monkeypatch.setenv(CODE_SALT_ENV_VAR, "v2")
            res = run_sweep(cells, catalog=cat, name="fig6")
            assert res.n_hits == 0 and res.n_recomputed == len(cells)
            assert all(parts == ["salt"] for parts in res.diff.changed.values())
            # same code, new salt: the numbers themselves must not move
            for name in cold.keys():
                assert _keys(res[name]) == _keys(cold[name])

    def test_incremental_off_recomputes_identically(self, cfg, tmp_path, monkeypatch):
        cells = figure6_cells(scale="tiny", base_config=cfg)
        with Catalog(tmp_path / "cat.sqlite") as cat:
            cold = run_sweep(cells, catalog=cat)
            monkeypatch.setenv(SWEEP_INCREMENTAL_ENV_VAR, "0")
            assert not sweep_incremental_enabled()
            res = run_sweep(cells, catalog=cat)
            assert res.n_hits == 0 and res.n_recomputed == len(cells)
            for name in cold.keys():
                assert _keys(res[name]) == _keys(cold[name])
            monkeypatch.delenv(SWEEP_INCREMENTAL_ENV_VAR)
            assert sweep_incremental_enabled()
            assert sweep_incremental_enabled(override=False) is False


# ---------------------------------------------------------------------------
# Cost sweeps as cells
# ---------------------------------------------------------------------------


class TestCostCells:
    def test_cost_cells_share_one_build_and_frame(self, cfg):
        cells = cost_cells("strategy1", (0.25, 0.5, 1.0), cfg, scale="tiny")
        res = run_sweep(cells)
        assert res.n_builds == 1 and res.n_groups == 1
        bundle = build_population(scale="tiny", seed=0)
        for cell in cells:
            assert _keys(res[cell.name]) == _keys(_standalone(bundle, cell))

    def test_cost_result_reassembles(self, cfg):
        cells = cost_cells("strategy1", (0.5, 1.0), cfg, scale="tiny")
        res = run_sweep(cells)
        sweep = res.cost_result("strategy1")
        assert sweep.strategy == "strategy1"
        assert sweep.fractions == (0.5, 1.0)
        assert all(o.strategy == "strategy1" for o in sweep.outcomes)
        assert {o.cost_fraction for o in sweep.outcomes} == {0.5, 1.0}
        assert len(sweep.summaries()) == 2

    def test_cost_fraction_edit_hits_other_fractions(self, cfg, tmp_path):
        with Catalog(tmp_path / "cat.sqlite") as cat:
            run_sweep(
                cost_cells("strategy1", (0.5, 1.0), cfg, scale="tiny"),
                catalog=cat, name="cost",
            )
            res = run_sweep(
                cost_cells("strategy1", (0.4, 1.0), cfg, scale="tiny"),
                catalog=cat, name="cost",
            )
            # 1.0 is unchanged and served; 0.4 is a new cell.
            assert res.n_hits == 1 and res.n_recomputed == 1
            assert res.diff.added == ["cost: strategy1@40%"]

    def test_duplicate_fractions_rejected(self, cfg):
        with pytest.raises(ExperimentError):
            cost_cells("strategy1", (0.5, 0.5), cfg)

    def test_cost_result_missing_strategy_raises(self, cfg, tiny_bundle):
        res = run_sweep([SweepCell(name="c", config=cfg, bundle=tiny_bundle)])
        with pytest.raises(ExperimentError):
            res.cost_result("nonexistent")


# ---------------------------------------------------------------------------
# Bundle-keyed sweeps (the run_table1 shape)
# ---------------------------------------------------------------------------


class TestBundleCells:
    def test_bundle_cells_key_by_content(self, cfg, tiny_bundle):
        cell = SweepCell(name="b", config=cfg, bundle=tiny_bundle)
        key = cell_key(cell)
        assert key.population == tiny_bundle.content_key()

    def test_bundle_sweep_round_trip(self, cfg, tiny_bundle, tmp_path):
        cells = [
            SweepCell(name="log", config=cfg.variant(log_transform=True),
                      bundle=tiny_bundle),
            SweepCell(name="raw", config=cfg.variant(log_transform=False),
                      bundle=tiny_bundle),
        ]
        with Catalog(tmp_path / "cat.sqlite") as cat:
            cold = run_sweep(cells, catalog=cat, name="t1")
            warm = run_sweep(cells, catalog=cat, name="t1")
            assert (warm.n_hits, warm.n_recomputed) == (2, 0)
            for name in cold.keys():
                assert _keys(warm[name]) == _keys(cold[name])
