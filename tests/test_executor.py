"""Execution backends: primitives, resolution, and run determinism.

The contract under test is the one the framework's parallel refactor rests
on: every backend evaluates each work unit exactly once, preserves order,
and — because each replication carries its own pre-spawned random stream —
produces an outcome list *identical* to the serial reference.
"""

import os

import numpy as np
import pytest

from repro.cleaning.registry import paper_strategies, strategy_by_name
from repro.core.executor import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_worker_count,
    parse_backend_spec,
    resolve_backend,
)
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.errors import ExperimentError


def _square(x):
    """Module-level so ProcessBackend can pickle it."""
    return x * x


ALL_BACKENDS = [SerialBackend(), ThreadBackend(n_workers=2), ProcessBackend(n_workers=2)]


class TestBackendPrimitives:
    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_map_preserves_order(self, backend):
        items = list(range(13))
        assert backend.map(_square, items) == [x * x for x in items]

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_map_empty(self, backend):
        assert backend.map(_square, []) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, ExecutionBackend)
        assert backend.name in BACKEND_NAMES

    def test_single_item_short_circuits(self):
        # one item never pays pool start-up cost, on any backend
        assert ProcessBackend(n_workers=4).map(_square, [3]) == [9]
        assert ThreadBackend(n_workers=4).map(_square, [3]) == [9]

    def test_worker_counts_validated(self):
        with pytest.raises(Exception):
            ThreadBackend(n_workers=0)
        with pytest.raises(Exception):
            ProcessBackend(n_workers=-1)
        assert default_worker_count() >= 1


class TestProcessMinUnits:
    """The small-batch serial fallback of the process backend."""

    def test_default_threshold_is_worker_independent(self, monkeypatch):
        # An absolute default: scaling with the worker count would make
        # more cores more likely to silently serialise a typical R=50 run.
        monkeypatch.delenv("REPRO_PROCESS_MIN_UNITS", raising=False)
        assert ProcessBackend(n_workers=2).resolved_min_units() == 16
        assert ProcessBackend(n_workers=32).resolved_min_units() == 16

    def test_explicit_min_units_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_MIN_UNITS", "100")
        assert ProcessBackend(n_workers=2, min_units=3).resolved_min_units() == 3
        assert ProcessBackend(n_workers=2).resolved_min_units() == 100

    def test_env_threshold_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_MIN_UNITS", "soon")
        with pytest.raises(ExperimentError):
            ProcessBackend(n_workers=2).resolved_min_units()
        monkeypatch.setenv("REPRO_PROCESS_MIN_UNITS", "0")
        assert ProcessBackend(n_workers=2).resolved_min_units() == 1
        with pytest.raises(Exception):
            ProcessBackend(n_workers=2, min_units=0)

    def test_small_batches_fall_back_to_serial(self, monkeypatch):
        # Below the threshold the map must not fork a pool at all: an
        # unpicklable work function would explode inside Pool.map, but runs
        # fine in the serial fallback.
        monkeypatch.delenv("REPRO_PROCESS_MIN_UNITS", raising=False)
        backend = ProcessBackend(n_workers=2)
        unpicklable = lambda x: x * x  # noqa: E731
        assert backend.map(unpicklable, [1, 2, 3]) == [1, 4, 9]

    def test_fallback_results_identical_to_pool(self):
        items = list(range(5))
        fallback = ProcessBackend(n_workers=2, min_units=64).map(_square, items)
        pooled = ProcessBackend(n_workers=2, min_units=1).map(_square, items)
        assert fallback == pooled == [x * x for x in items]

    def test_pipeline_exempts_default_fallback(self, monkeypatch):
        # Sharded stages are few, coarse units — the count heuristic that
        # protects the cheap replication loop must not serialise them.
        from repro.core.pipeline import Pipeline

        monkeypatch.delenv("REPRO_PROCESS_MIN_UNITS", raising=False)
        assert Pipeline("process:2").backend.resolved_min_units() == 1
        # An explicit threshold (arg or env) is respected as given.
        pinned = Pipeline(ProcessBackend(2, min_units=7))
        assert pinned.backend.resolved_min_units() == 7
        monkeypatch.setenv("REPRO_PROCESS_MIN_UNITS", "9")
        assert Pipeline("process:2").backend.resolved_min_units() == 9


class TestBackendSpecParsing:
    def test_plain_names(self):
        for name in BACKEND_NAMES:
            assert parse_backend_spec(name) == (name, None)

    def test_worker_suffix(self):
        assert parse_backend_spec("process:4") == ("process", 4)
        assert parse_backend_spec(" Thread : 2 ") == ("thread", 2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError):
            parse_backend_spec("gpu")

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ExperimentError):
            parse_backend_spec("process:0")
        with pytest.raises(ExperimentError):
            parse_backend_spec("process:lots")


class TestResolveBackend:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert isinstance(resolve_backend(), SerialBackend)

    def test_resolves_names(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)

    def test_spec_workers_beat_argument(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        backend = resolve_backend("process:3", n_workers=8)
        assert backend.n_workers == 3
        backend = resolve_backend("process", n_workers=8)
        assert backend.n_workers == 8

    def test_env_overrides_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread:2")
        backend = resolve_backend("serial")
        assert isinstance(backend, ThreadBackend)
        assert backend.n_workers == 2

    def test_blank_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  ")
        assert isinstance(resolve_backend("thread"), ThreadBackend)

    def test_instance_passes_through_despite_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        backend = ThreadBackend(n_workers=1)
        assert resolve_backend(backend) is backend

    def test_invalid_instance_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_backend(42)  # type: ignore[arg-type]

    def test_env_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        with pytest.raises(ExperimentError):
            resolve_backend()


class TestConfigBackendFields:
    def test_backend_validated_at_construction(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(backend="gpu")
        with pytest.raises(Exception):
            ExperimentConfig(n_workers=0)

    def test_backend_survives_variant(self):
        cfg = ExperimentConfig(backend="process:2", n_workers=2)
        assert cfg.variant(sample_size=7).backend == "process:2"
        assert cfg.variant(backend="thread").backend == "thread"

    def test_runner_resolves_config_backend(self, tiny_bundle, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        cfg = ExperimentConfig(n_replications=1, sample_size=5, backend="thread")
        runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal, config=cfg)
        assert isinstance(runner.resolve_backend(), ThreadBackend)

    def test_runner_argument_beats_config(self, tiny_bundle, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        cfg = ExperimentConfig(n_replications=1, sample_size=5, backend="thread")
        runner = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=cfg, backend="serial"
        )
        assert isinstance(runner.resolve_backend(), SerialBackend)


def _outcome_key(o):
    return (
        o.strategy,
        o.replication,
        o.improvement,
        o.distortion,
        o.glitch_index_dirty,
        o.glitch_index_treated,
        o.cost_fraction,
        tuple(sorted((k, v) for k, v in o.dirty_fractions.items())),
        tuple(sorted((k, v) for k, v in o.treated_fractions.items())),
    )


class TestRunDeterminism:
    """Same config through every backend -> identical StrategyOutcome lists."""

    @pytest.fixture(scope="class")
    def reference(self, tiny_bundle):
        cfg = ExperimentConfig(n_replications=3, sample_size=8, seed=11)
        strategies = [strategy_by_name("strategy1"), strategy_by_name("strategy4")]
        runner = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=cfg, backend=SerialBackend()
        )
        return cfg, strategies, runner.run(strategies)

    @pytest.mark.parametrize(
        "backend",
        [ThreadBackend(n_workers=2), ProcessBackend(n_workers=2, min_units=1)],
        ids=lambda b: b.name,
    )
    def test_bitwise_identical_to_serial(self, tiny_bundle, reference, backend):
        cfg, strategies, serial = reference
        parallel = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=cfg, backend=backend
        ).run(strategies)
        assert len(parallel.outcomes) == len(serial.outcomes)
        for a, b in zip(serial.outcomes, parallel.outcomes):
            # exact equality, not approx: parallel evaluation must replay the
            # very same floating-point computation, glitch indexes included
            assert _outcome_key(a) == _outcome_key(b)

    def test_all_five_strategies_thread(self, tiny_bundle):
        cfg = ExperimentConfig(n_replications=2, sample_size=6, seed=3)
        serial = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=cfg, backend="serial"
        ).run(paper_strategies())
        threaded = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=cfg, backend="thread:2"
        ).run(paper_strategies())
        assert [_outcome_key(o) for o in serial.outcomes] == [
            _outcome_key(o) for o in threaded.outcomes
        ]

    def test_env_selected_backend_same_numbers(self, tiny_bundle, monkeypatch):
        cfg = ExperimentConfig(n_replications=2, sample_size=6, seed=3)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        serial = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=cfg
        ).run([strategy_by_name("strategy4")])
        monkeypatch.setenv("REPRO_BACKEND", "thread:2")
        via_env = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=cfg
        ).run([strategy_by_name("strategy4")])
        assert [_outcome_key(o) for o in serial.outcomes] == [
            _outcome_key(o) for o in via_env.outcomes
        ]


class TestEvaluateAndRunAgree:
    def test_run_matches_manual_pair_loop(self, tiny_bundle):
        """The work-unit refactor must not change what run() computes."""
        from repro.sampling.replication import generate_test_pairs
        from repro.utils.rng import spawn_generators

        cfg = ExperimentConfig(n_replications=2, sample_size=6, seed=9)
        runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal, config=cfg)
        strategies = [strategy_by_name("strategy3")]
        result = runner.run(strategies)
        pairs = generate_test_pairs(
            tiny_bundle.dirty, tiny_bundle.ideal, cfg.n_replications,
            cfg.sample_size, seed=cfg.seed,
        )
        seeds = spawn_generators(cfg.seed + 1, cfg.n_replications)
        manual = []
        for pair, rng in zip(pairs, seeds):
            manual.extend(runner.evaluate_pair(pair, strategies, seed=rng))
        assert [_outcome_key(o) for o in result.outcomes] == [
            _outcome_key(o) for o in manual
        ]
