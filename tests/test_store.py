"""Persistent store tests: columnar shard files, spill hygiene, the catalog.

Covers the storage layer end to end — shard round-trips on edge shapes
(empty, zero-length, ragged, non-finite cells) stay bitwise through the
memory map; ``load_slab`` refuses stale or foreign spill files; tmp
stragglers never count as store contents; eviction trades disk for compute
without changing a number; and the SQLite catalog serves repeated sweep
cells back bitwise-identically without rebuilding the population.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cleaning.registry import paper_strategies
from repro.core.framework import ExperimentConfig
from repro.data.generator import GeneratorConfig
from repro.data.slab import SlabFeed, load_slab
from repro.data.topology import NodeId
from repro.errors import (
    DataShapeError,
    ExperimentError,
    StoreError,
    StoreWarning,
    ValidationError,
)
from repro.experiments.config import experiment_config
from repro.experiments.paper import run_experiment, run_figure6, run_table1
from repro.store.catalog import (
    CATALOG_BUDGET_ENV_VAR,
    CATALOG_ENV_VAR,
    Catalog,
    experiment_key,
    population_recipe_key,
    resolve_catalog,
)
from repro.store.shards import SHARD_SUFFIX, read_shard, write_shard


def _key(o):
    return (
        o.strategy,
        o.replication,
        o.improvement,
        o.distortion,
        o.glitch_index_dirty,
        o.glitch_index_treated,
        o.cost_fraction,
        tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
        tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())),
    )


def _keys(result):
    return [_key(o) for o in result.outcomes]


def _nodes(n):
    return [NodeId(0, 0, k) for k in range(n)]


# ---------------------------------------------------------------------------
# Shard file round-trips
# ---------------------------------------------------------------------------


class TestShardRoundTrip:
    def test_uniform_bitwise(self, tmp_path):
        path = str(tmp_path / f"shard{SHARD_SUFFIX}")
        rng = np.random.default_rng(0)
        values = rng.normal(size=(12, 3))
        truth = rng.normal(size=(12, 3))
        lengths = np.array([4, 4, 4], dtype=np.int64)
        write_shard(path, lengths, values, truth=truth, fingerprint="fp",
                    attributes=("a", "b", "c"))
        handle = read_shard(path)
        assert handle.fingerprint == "fp"
        assert handle.attributes == ("a", "b", "c")
        assert handle.n_series == 3
        assert handle.uniform
        assert np.asarray(handle.values).tobytes() == values.tobytes()
        assert np.asarray(handle.truth).tobytes() == truth.tobytes()
        assert np.asarray(handle.lengths).tobytes() == lengths.tobytes()

    def test_empty_shard(self, tmp_path):
        path = str(tmp_path / f"empty{SHARD_SUFFIX}")
        write_shard(
            path,
            np.empty(0, dtype=np.int64),
            np.empty((0, 3)),
            fingerprint="fp",
        )
        handle = read_shard(path)
        assert handle.n_series == 0
        assert handle.series([]) == []
        assert handle.block([]).values.shape == (0, 0, 3)

    def test_zero_length_series(self, tmp_path):
        path = str(tmp_path / f"zl{SHARD_SUFFIX}")
        values = np.arange(15.0).reshape(5, 3)
        lengths = np.array([0, 5, 0], dtype=np.int64)
        write_shard(path, lengths, values)
        series = read_shard(path).series(_nodes(3))
        assert [s.length for s in series] == [0, 5, 0]
        assert series[1].values.tobytes() == values.tobytes()

    def test_ragged_nonfinite_bitwise(self, tmp_path):
        """NaN payloads, signed zeros and infinities survive the map."""
        path = str(tmp_path / f"ragged{SHARD_SUFFIX}")
        values = np.array(
            [
                [np.nan, -0.0, np.inf],
                [0.0, -np.inf, 5e-324],  # smallest subnormal
                [1.0, np.nan, -0.0],
            ]
        )
        lengths = np.array([1, 2], dtype=np.int64)
        write_shard(path, lengths, values)
        handle = read_shard(path)
        assert not handle.uniform
        series = handle.series(_nodes(2))
        restored = np.concatenate([s.values for s in series])
        assert restored.tobytes() == values.tobytes()

    def test_series_are_zero_copy_views(self, tmp_path):
        path = str(tmp_path / f"zc{SHARD_SUFFIX}")
        values = np.arange(24.0).reshape(8, 3)
        write_shard(path, np.array([4, 4], dtype=np.int64), values)
        handle = read_shard(path)
        series = handle.series(_nodes(2))
        assert all(np.shares_memory(s.values, handle.values) for s in series)
        block = handle.block(_nodes(2))
        assert np.shares_memory(block.values, handle.values)

    def test_block_requires_uniform(self, tmp_path):
        path = str(tmp_path / f"rg{SHARD_SUFFIX}")
        write_shard(
            path, np.array([1, 2], dtype=np.int64), np.arange(9.0).reshape(3, 3)
        )
        with pytest.raises(DataShapeError):
            read_shard(path).block(_nodes(2))

    def test_shape_validation(self, tmp_path):
        path = str(tmp_path / f"bad{SHARD_SUFFIX}")
        with pytest.raises(DataShapeError):
            write_shard(path, np.array([3], dtype=np.int64), np.zeros((2, 3)))
        with pytest.raises(DataShapeError):
            write_shard(
                path, np.array([2], dtype=np.int64), np.zeros((2, 3)),
                truth=np.zeros((1, 3)),
            )

    def test_write_is_atomic(self, tmp_path):
        path = str(tmp_path / f"atomic{SHARD_SUFFIX}")
        write_shard(path, np.array([1], dtype=np.int64), np.zeros((1, 3)))
        assert os.listdir(tmp_path) == [os.path.basename(path)]


class TestShardRejection:
    def test_wrong_magic(self, tmp_path):
        path = tmp_path / f"legacy{SHARD_SUFFIX}"
        path.write_bytes(b"PK\x03\x04 definitely a zip")
        with pytest.raises(StoreError, match="not a columnar shard"):
            read_shard(str(path))

    def test_truncated_header(self, tmp_path):
        good = tmp_path / f"good{SHARD_SUFFIX}"
        write_shard(str(good), np.array([1], dtype=np.int64), np.zeros((1, 3)))
        torn = tmp_path / f"torn{SHARD_SUFFIX}"
        torn.write_bytes(good.read_bytes()[:14])
        with pytest.raises(StoreError, match="truncated"):
            read_shard(str(torn))

    def test_truncated_segment(self, tmp_path):
        good = tmp_path / f"good{SHARD_SUFFIX}"
        write_shard(str(good), np.array([4], dtype=np.int64), np.zeros((4, 3)))
        torn = tmp_path / f"torn{SHARD_SUFFIX}"
        torn.write_bytes(good.read_bytes()[:-16])
        with pytest.raises(StoreError, match="past end of file"):
            read_shard(str(torn))

    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreError, match="unreadable"):
            read_shard(str(tmp_path / "absent.slab"))


# ---------------------------------------------------------------------------
# load_slab fingerprint validation (the stale-spill bugfix)
# ---------------------------------------------------------------------------


_TINY_GEN = GeneratorConfig(
    n_rnc=1, towers_per_rnc=2, sectors_per_tower=5,
    series_length=12, min_length=12,
)


class TestStaleSpill:
    def test_reused_spill_dir_never_serves_wrong_population(self, tmp_path):
        """Regression: a spill dir reused across seeds must regenerate, not
        silently serve the other population's bytes."""
        spill_dir = str(tmp_path)
        feed_a = SlabFeed(generator_config=_TINY_GEN, seed=0, spill_dir=spill_dir)
        for _source, _series in feed_a.iter_series():
            pass
        planted = {
            e.name: (tmp_path / e.name).read_bytes()
            for e in os.scandir(spill_dir)
        }
        assert planted  # seed-0 shards are on disk

        # Same directory, different seed: the recipes disagree with the files.
        feed_b = SlabFeed(generator_config=_TINY_GEN, seed=1, spill_dir=spill_dir)
        reference = SlabFeed(generator_config=_TINY_GEN, seed=1, spill=False)
        for (src_b, got), (_, want) in zip(
            feed_b.iter_series(), reference.iter_series()
        ):
            assert [s.values.tobytes() for s in got] == [
                s.values.tobytes() for s in want
            ]
            # The stale file was overwritten with seed-1 data, not left behind.
            assert (
                (tmp_path / os.path.basename(src_b.store_path)).read_bytes()
                != planted[os.path.basename(src_b.store_path)]
            )

    def test_legacy_file_at_store_path_regenerated(self, tmp_path):
        """A pre-PR-6 ``.npz`` (or any foreign bytes) at the store path is
        treated as stale: regenerated from the recipe and overwritten."""
        feed = SlabFeed(
            generator_config=_TINY_GEN, seed=0, spill_dir=str(tmp_path)
        )
        source = feed.sources[0]
        reference = load_slab(source, spill=False)
        with open(source.store_path, "wb") as fh:
            fh.write(b"PK\x03\x04 old npz spill")
        served = load_slab(source, spill=False)
        assert [s.values.tobytes() for s in served] == [
            s.values.tobytes() for s in reference
        ]
        # Stale implies overwrite even with spill=False: the replacement file
        # is a well-formed shard carrying the recipe's fingerprint.
        from repro.store.shards import recipe_fingerprint

        assert read_shard(source.store_path).fingerprint == recipe_fingerprint(
            source
        )

    def test_spilled_shard_reload_is_bitwise(self, tmp_path):
        feed = SlabFeed(
            generator_config=_TINY_GEN, seed=3, spill_dir=str(tmp_path)
        )
        source = feed.sources[0]
        first = load_slab(source, spill=True)
        again = load_slab(source)  # served from the store this time
        assert [s.values.tobytes() for s in again] == [
            s.values.tobytes() for s in first
        ]
        assert [s.truth.tobytes() for s in again] == [
            s.truth.tobytes() for s in first
        ]
        # And it really is the store serving: every series is a zero-copy
        # view into the mapped segment, not a regenerated array.
        assert all(isinstance(s.values.base, np.memmap) for s in again)


# ---------------------------------------------------------------------------
# Spill hygiene: tmp stragglers, eviction, disk budget
# ---------------------------------------------------------------------------


class TestSpillHygiene:
    def _spilled_feed(self, tmp_path, **kwargs):
        feed = SlabFeed(
            generator_config=_TINY_GEN, seed=0, spill_dir=str(tmp_path),
            shard_size=3, **kwargs,
        )
        for _ in feed.iter_series():
            pass
        return feed

    def test_spilled_bytes_ignores_tmp_stragglers(self, tmp_path):
        feed = self._spilled_feed(tmp_path)
        before = feed.spilled_bytes()
        assert before > 0
        straggler = tmp_path / f"slab-00000{SHARD_SUFFIX}.tmp99999"
        straggler.write_bytes(b"x" * 4096)
        assert feed.spilled_bytes() == before

    def test_sweep_tmp_removes_stragglers_only(self, tmp_path):
        feed = self._spilled_feed(tmp_path)
        straggler = tmp_path / f"slab-00001{SHARD_SUFFIX}.tmp4242"
        straggler.write_bytes(b"x" * 1024)
        n_shards = len(feed._shard_files())
        assert feed.sweep_tmp() == 1024
        assert not straggler.exists()
        assert len(feed._shard_files()) == n_shards

    def test_cleanup_on_external_dir_sweeps_but_keeps_shards(self, tmp_path):
        feed = self._spilled_feed(tmp_path)
        straggler = tmp_path / f"slab-00000{SHARD_SUFFIX}.tmp7"
        straggler.write_bytes(b"x")
        feed.cleanup()
        assert not straggler.exists()
        assert feed.spilled_bytes() > 0  # caller-owned dir: shards survive

    def test_cleanup_on_owned_dir_removes_everything(self):
        feed = SlabFeed(generator_config=_TINY_GEN, seed=0)
        for _ in feed.iter_series():
            pass
        assert os.path.isdir(feed.spill_dir)
        feed.cleanup()
        assert not os.path.isdir(feed.spill_dir)

    def test_evict_to_budget_oldest_first_and_bitwise_reload(self, tmp_path):
        feed = self._spilled_feed(tmp_path)
        reference = [
            [s.values.tobytes() for s in series]
            for _, series in feed.iter_series(spill=False)
        ]
        total = feed.spilled_bytes()
        files = sorted(e.name for e in feed._shard_files())
        assert len(files) > 1
        # Backdate the first shard so "oldest first" is deterministic.
        oldest = tmp_path / files[0]
        os.utime(oldest, ns=(1, 1))
        freed = feed.evict(budget=total - 1)
        assert freed > 0
        assert feed.n_evicted >= 1
        assert not oldest.exists()
        assert feed.spilled_bytes() <= total - 1
        # Evicted shards regenerate bitwise from their recipes.
        regenerated = [
            [s.values.tobytes() for s in series]
            for _, series in feed.iter_series(spill=False)
        ]
        assert regenerated == reference

    def test_disk_budget_enforced_after_each_pass(self, tmp_path):
        feed = self._spilled_feed(tmp_path, disk_budget=0)
        assert feed.spilled_bytes() == 0
        assert feed.n_evicted > 0

    def test_disk_budget_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_BUDGET", "0")
        feed = SlabFeed(generator_config=_TINY_GEN, seed=0, spill_dir=str(tmp_path))
        assert feed.disk_budget == 0

    def test_negative_disk_budget_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            SlabFeed(
                generator_config=_TINY_GEN, seed=0, spill_dir=str(tmp_path),
                disk_budget=-1,
            )


# ---------------------------------------------------------------------------
# Catalog keys
# ---------------------------------------------------------------------------


class TestCatalogKeys:
    def test_recipe_key_is_seed_sensitive(self):
        from repro.data.glitch_injection import GlitchInjectionConfig

        inj = GlitchInjectionConfig()
        k0 = population_recipe_key(_TINY_GEN, inj, 0)
        assert k0 == population_recipe_key(_TINY_GEN, inj, 0)
        assert k0 != population_recipe_key(_TINY_GEN, inj, 1)
        assert k0.startswith("recipe:")

    def test_recipe_key_rejects_live_generator(self):
        from repro.data.glitch_injection import GlitchInjectionConfig

        with pytest.raises(ValidationError):
            population_recipe_key(
                _TINY_GEN, GlitchInjectionConfig(), np.random.default_rng(0)
            )

    def test_experiment_key_ignores_execution_choices(self):
        """Backend, workers and the streaming selector never change a float,
        so they must not change the key either — that is what makes a block
        hit valid for a streaming request."""
        cfg = experiment_config("tiny")
        strategies = paper_strategies()
        base = experiment_key("recipe:x", cfg, strategies)
        for variant in (
            cfg.variant(backend="thread"),
            cfg.variant(n_workers=4),
            cfg.variant(streaming=True),
        ):
            assert experiment_key("recipe:x", variant, strategies) == base
        # Outcome-determining fields do change it.
        assert experiment_key("recipe:x", cfg.variant(seed=9), strategies) != base
        assert (
            experiment_key("recipe:x", cfg.variant(distance="kl"), strategies)
            != base
        )
        assert experiment_key("recipe:y", cfg, strategies) != base
        assert experiment_key("recipe:x", cfg, strategies[:2]) != base

    def test_experiment_key_salted_by_code_version(self, monkeypatch):
        """Bumping ``REPRO_CODE_SALT`` moves every key — the coarse hammer
        for 'the numerics changed, recompute the world'."""
        from repro.store.catalog import CODE_SALT_ENV_VAR, code_salt

        cfg = experiment_config("tiny")
        strategies = paper_strategies()
        monkeypatch.delenv(CODE_SALT_ENV_VAR, raising=False)
        base = experiment_key("recipe:x", cfg, strategies)
        assert code_salt()  # never empty: defaults to the baked version
        monkeypatch.setenv(CODE_SALT_ENV_VAR, "bumped")
        assert experiment_key("recipe:x", cfg, strategies) != base

    def test_distance_key_name_resolves_defaults(self):
        """Default-constructed registry distances key by name; customised or
        unregistered instances have no name (the conservative bypass)."""
        from repro.distance import distance_by_name
        from repro.distance.emd import EarthMoverDistance
        from repro.store.catalog import distance_key_name

        assert distance_key_name(None) is None
        assert distance_key_name(distance_by_name("emd")) == "emd"
        assert distance_key_name(EarthMoverDistance()) == "emd"
        assert distance_key_name(distance_by_name("kl")) == "kl"
        assert distance_key_name(EarthMoverDistance(n_bins=32)) is None
        assert distance_key_name(EarthMoverDistance(standardize=False)) is None

    def test_experiment_key_distance_name_override(self):
        """An instance resolved to its registry name keys identically to the
        config's name selector — one cell, not two."""
        cfg = experiment_config("tiny")
        strategies = paper_strategies()
        named = experiment_key("recipe:x", cfg.variant(distance="kl"), strategies)
        overridden = experiment_key(
            "recipe:x", cfg, strategies, distance_name="kl"
        )
        assert overridden == named
        assert overridden != experiment_key("recipe:x", cfg, strategies)


# ---------------------------------------------------------------------------
# Catalog storage
# ---------------------------------------------------------------------------


class TestCatalog:
    def test_wal_pragmas_applied(self, tmp_path):
        with Catalog(tmp_path / "cat.sqlite") as cat:
            assert (
                cat._conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
            )
            assert cat._conn.execute("PRAGMA busy_timeout").fetchone()[0] == 30_000

    def test_outcome_round_trip_counts_hits(self, tmp_path, tiny_bundle):
        cfg = ExperimentConfig(n_replications=2, sample_size=8, seed=5)
        strategies = paper_strategies()[:2]
        with Catalog(tmp_path / "cat.sqlite") as cat:
            result = run_figure6(
                tiny_bundle, config=cfg, strategies=strategies, catalog=cat
            )
            assert (cat.hits, cat.misses) == (0, 1)
            served = run_figure6(
                tiny_bundle, config=cfg, strategies=strategies, catalog=cat
            )
            assert (cat.hits, cat.misses) == (1, 1)
            assert _keys(served) == _keys(result)
            stats = cat.stats()
            assert stats["outcomes"] == 1
            assert stats["populations"] == 1

    def test_shard_inventory_round_trip(self, tmp_path):
        with Catalog(tmp_path / "cat.sqlite") as cat:
            cat.record_shard("recipe:x", 0, "fp0", store_path="/s/0", nbytes=10)
            cat.record_shard("recipe:x", 1, "fp1", store_path="/s/1", nbytes=20)
            cat.record_shard("recipe:x", 1, "fp1b", store_path="/s/1", nbytes=25)
            rows = cat.shards("recipe:x")
            assert [r["shard_index"] for r in rows] == [0, 1]
            assert rows[1]["fingerprint"] == "fp1b"  # upsert: last write wins

    def test_resolve_catalog_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CATALOG_ENV_VAR, raising=False)
        assert resolve_catalog(None) == (None, False)
        monkeypatch.setenv(CATALOG_ENV_VAR, str(tmp_path / "env.sqlite"))
        cat, owned = resolve_catalog(None)
        assert owned and cat is not None
        cat.close()
        with Catalog(tmp_path / "inst.sqlite") as inst:
            assert resolve_catalog(inst) == (inst, False)

    def test_stats_reports_payload_bytes(self, tmp_path, tiny_bundle):
        cfg = ExperimentConfig(n_replications=1, sample_size=6, seed=2)
        with Catalog(tmp_path / "cat.sqlite") as cat:
            assert cat.stats()["payload_bytes"] == 0
            run_figure6(
                tiny_bundle, config=cfg, strategies=paper_strategies()[:1],
                catalog=cat,
            )
            stats = cat.stats()
            assert stats["outcomes"] == 1
            assert stats["payload_bytes"] > 0

    def test_prune_drops_oldest_first(self, tmp_path, tiny_bundle):
        """Pruning to a byte budget removes oldest outcomes first and leaves
        the survivors servable; population rows stay (they are tiny and
        keep provenance queryable)."""
        strategies = paper_strategies()[:1]
        configs = [
            ExperimentConfig(n_replications=1, sample_size=6, seed=s)
            for s in (1, 2, 3)
        ]
        with Catalog(tmp_path / "cat.sqlite") as cat:
            results = [
                run_figure6(tiny_bundle, config=c, strategies=strategies,
                            catalog=cat)
                for c in configs
            ]
            full = cat.stats()["payload_bytes"]
            assert cat.prune(max_bytes=full) == 0  # already within budget
            removed = cat.prune(max_bytes=full // 2)
            assert removed >= 1
            stats = cat.stats()
            assert stats["payload_bytes"] <= full // 2
            assert stats["outcomes"] == 3 - removed
            # The newest cell survives a generous budget and still serves.
            served = run_figure6(
                tiny_bundle, config=configs[-1], strategies=strategies,
                catalog=cat,
            )
            assert _keys(served) == _keys(results[-1])
            remaining = cat.stats()["outcomes"]
            assert cat.prune(max_bytes=0) == remaining
            assert cat.stats()["payload_bytes"] == 0
            with pytest.raises(ValidationError):
                cat.prune(max_bytes=-1)

    def test_budget_env_prunes_at_open(self, tmp_path, tiny_bundle, monkeypatch):
        """``REPRO_CATALOG_BUDGET`` applies :meth:`Catalog.prune` at open:
        over-budget outcome payloads evict oldest-first, while population
        and sweep rows (provenance, not payload) survive."""
        path = os.fspath(tmp_path / "cat.sqlite")
        strategies = paper_strategies()[:1]
        configs = [
            ExperimentConfig(n_replications=1, sample_size=6, seed=s)
            for s in (1, 2, 3)
        ]
        with Catalog(path) as cat:
            results = [
                run_figure6(tiny_bundle, config=c, strategies=strategies,
                            catalog=cat)
                for c in configs
            ]
            full = cat.stats()["payload_bytes"]
            n_populations = cat.stats()["populations"]

        monkeypatch.setenv(CATALOG_BUDGET_ENV_VAR, str(full // 2))
        with pytest.warns(StoreWarning, match="pruned"):
            cat = Catalog(path)
        with cat:
            stats = cat.stats()
            assert stats["payload_bytes"] <= full // 2
            assert 1 <= stats["outcomes"] < 3
            assert stats["populations"] == n_populations  # provenance survives
            # Oldest-first: the newest cell is still served from cache.
            served = run_figure6(
                tiny_bundle, config=configs[-1], strategies=strategies,
                catalog=cat,
            )
            assert _keys(served) == _keys(results[-1])

        # Within budget: open is silent and nothing is evicted.
        monkeypatch.setenv(CATALOG_BUDGET_ENV_VAR, str(full))
        with Catalog(path) as cat:
            assert cat.stats()["outcomes"] == stats["outcomes"]

    def test_budget_env_rejects_bad_values(self, tmp_path, monkeypatch):
        for bad in ("not-a-number", "-1", "1.5"):
            monkeypatch.setenv(CATALOG_BUDGET_ENV_VAR, bad)
            with pytest.raises(ValidationError):
                Catalog(os.fspath(tmp_path / "cat.sqlite"))
        monkeypatch.setenv(CATALOG_BUDGET_ENV_VAR, "")
        with Catalog(os.fspath(tmp_path / "cat.sqlite")) as cat:
            assert cat.stats()["outcomes"] == 0


# ---------------------------------------------------------------------------
# Driver wiring: run_experiment / run_figure6 / run_table1
# ---------------------------------------------------------------------------


class TestRunExperimentCatalog:
    def test_warm_run_skips_population_build(self, tmp_path, monkeypatch):
        with Catalog(tmp_path / "cat.sqlite") as cat:
            cold = run_experiment(scale="tiny", seed=0, catalog=cat)

            def boom(*a, **k):  # pragma: no cover - must never run
                raise AssertionError("warm run rebuilt the population")

            monkeypatch.setattr("repro.experiments.config.build_population", boom)
            warm = run_experiment(scale="tiny", seed=0, catalog=cat)
            assert _keys(warm) == _keys(cold)
            assert (cat.hits, cat.misses) == (1, 1)

    def test_cross_engine_hit(self, tmp_path):
        """A cell scored by the block path serves the streaming request for
        the same key (and vice versa) — the engines are bitwise-identical,
        so the key rightly excludes the selector."""
        cfg = experiment_config("tiny")
        with Catalog(tmp_path / "cat.sqlite") as cat:
            block = run_experiment(scale="tiny", seed=0, config=cfg, catalog=cat)
            streamed = run_experiment(
                scale="tiny", seed=0, config=cfg.variant(streaming=True),
                catalog=cat,
            )
            assert _keys(streamed) == _keys(block)
            assert (cat.hits, cat.misses) == (1, 1)

    def test_env_var_catalog(self, tmp_path, monkeypatch):
        path = tmp_path / "env.sqlite"
        monkeypatch.setenv(CATALOG_ENV_VAR, str(path))
        cold = run_experiment(scale="tiny", seed=0)
        warm = run_experiment(scale="tiny", seed=0)
        assert _keys(warm) == _keys(cold)
        with Catalog(path) as cat:
            # The cold pass stores the recipe-keyed cell (run_experiment) and
            # the content-keyed cell (run_figure6 resolves the env too); the
            # warm pass hits the recipe key before building anything.
            assert cat.stats()["outcomes"] == 2
            rows = cat._conn.execute("SELECT population_key FROM outcomes")
            kinds = sorted(k.split(":")[0] for (k,) in rows)
            assert kinds == ["content", "recipe"]

    def test_default_distance_instance_keys_by_name(self, tmp_path):
        """An explicit instance equal to its registry default is the same
        cell as the name selector — it hits, it doesn't bypass."""
        from repro.distance import distance_by_name

        with Catalog(tmp_path / "cat.sqlite") as cat:
            named = run_experiment(
                scale="tiny", seed=0,
                config=experiment_config("tiny").variant(distance="emd"),
                catalog=cat,
            )
            assert cat.stats()["outcomes"] == 1
            served = run_experiment(
                scale="tiny", seed=0, distance=distance_by_name("emd"),
                catalog=cat,
            )
            assert _keys(served) == _keys(named)
            assert (cat.hits, cat.misses) == (1, 1)
            assert cat.stats()["outcomes"] == 1

    def test_customised_distance_instance_bypasses(self, tmp_path):
        """A genuinely non-default instance has no registry identity — the
        run computes without touching the catalog."""
        from repro.distance.emd import EarthMoverDistance

        with Catalog(tmp_path / "cat.sqlite") as cat:
            result = run_experiment(
                scale="tiny", seed=0,
                distance=EarthMoverDistance(n_bins=32), catalog=cat,
            )
            assert result.outcomes
            assert cat.stats()["outcomes"] == 0
            assert (cat.hits, cat.misses) == (0, 0)

    def test_generator_seed_bypasses(self, tmp_path):
        """A live Generator seed cannot be keyed; the run computes as usual
        instead of raising or mis-keying."""
        cfg = ExperimentConfig(n_replications=2, sample_size=8, seed=3)
        with Catalog(tmp_path / "cat.sqlite") as cat:
            result = run_experiment(
                scale="tiny", seed=np.random.default_rng(0), config=cfg,
                catalog=cat,
            )
            assert result.outcomes
            assert cat.stats()["outcomes"] == 0

    def test_streaming_kwargs_stay_cacheable(self, tmp_path):
        """Execution-only knobs (shard size, spill) don't block reuse."""
        cfg = experiment_config("tiny").variant(streaming=True)
        with Catalog(tmp_path / "cat.sqlite") as cat:
            cold = run_experiment(
                scale="tiny", seed=0, config=cfg, catalog=cat, shard_size=7
            )
            warm = run_experiment(
                scale="tiny", seed=0, config=cfg, catalog=cat, shard_size=31
            )
            assert _keys(warm) == _keys(cold)
            assert (cat.hits, cat.misses) == (1, 1)


class TestRunTable1Catalog:
    def test_blocks_served_from_catalog(self, tmp_path, tiny_bundle):
        base = ExperimentConfig(n_replications=2, sample_size=8, seed=5)
        with Catalog(tmp_path / "cat.sqlite") as cat:
            first = run_table1(tiny_bundle, base_config=base, catalog=cat)
            assert (cat.hits, cat.misses) == (0, 3)
            second = run_table1(tiny_bundle, base_config=base, catalog=cat)
            assert (cat.hits, cat.misses) == (3, 3)
            assert {k: _keys(v) for k, v in second.items()} == {
                k: _keys(v) for k, v in first.items()
            }
