"""Cost sweeps (Figure 7) and the three-dimensional trade-off analysis."""

import numpy as np
import pytest

from repro.cleaning.registry import strategy_by_name
from repro.core.cost import PAPER_COST_FRACTIONS, cost_sweep
from repro.core.evaluation import StrategySummary
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.core.tradeoff import (
    TradeoffPoint,
    knee_point,
    pareto_front,
    tradeoff_points,
    viable_strategies,
)
from repro.errors import ExperimentError
from repro.glitches.types import GlitchType


@pytest.fixture(scope="module")
def sweep(tiny_bundle):
    cfg = ExperimentConfig(n_replications=3, sample_size=10, seed=0)
    runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal, config=cfg)
    return cost_sweep(runner, strategy_by_name("strategy5"), (1.0, 0.5, 0.2, 0.0))


class TestCostSweep:
    def test_paper_fractions(self):
        assert PAPER_COST_FRACTIONS == (1.0, 0.5, 0.2, 0.0)

    def test_outcomes_per_fraction(self, sweep):
        for f in sweep.fractions:
            assert len(sweep.at_fraction(f)) == 3

    def test_zero_fraction_is_noop(self, sweep):
        for o in sweep.at_fraction(0.0):
            assert o.improvement == pytest.approx(0.0, abs=1e-9)
            assert o.distortion == pytest.approx(0.0, abs=1e-9)

    def test_improvement_monotone_in_fraction(self, sweep):
        means = [s.improvement_mean for s in sorted(sweep.summaries(), key=lambda s: s.cost_fraction)]
        assert all(b >= a - 1e-9 for a, b in zip(means, means[1:]))

    def test_distortion_monotone_in_fraction(self, sweep):
        means = [s.distortion_mean for s in sorted(sweep.summaries(), key=lambda s: s.cost_fraction)]
        assert all(b >= a - 0.02 for a, b in zip(means, means[1:]))

    def test_marginal_gains_structure(self, sweep):
        gains = sweep.marginal_gains()
        assert [g[0] for g in gains] == [0.2, 0.5, 1.0]

    def test_summaries_labelled_with_percent(self, sweep):
        labels = [s.strategy for s in sweep.summaries()]
        assert "strategy5@50%" in labels

    def test_rejects_empty_fractions(self, tiny_bundle):
        runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal)
        with pytest.raises(ExperimentError):
            cost_sweep(runner, strategy_by_name("strategy5"), ())

    def test_rejects_duplicate_fractions(self, tiny_bundle):
        runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal)
        with pytest.raises(ExperimentError):
            cost_sweep(runner, strategy_by_name("strategy5"), (0.5, 0.5))


def point(name, imp, dist, cost=1.0):
    return TradeoffPoint(strategy=name, improvement=imp, distortion=dist, cost=cost)


class TestPareto:
    def test_dominated_point_excluded(self):
        front = pareto_front([point("good", 10, 1.0), point("bad", 5, 2.0)])
        assert [p.strategy for p in front] == ["good"]

    def test_incomparable_points_kept(self):
        front = pareto_front(
            [point("high-imp", 10, 3.0), point("low-dist", 5, 0.5)]
        )
        assert len(front) == 2

    def test_cost_axis_matters(self):
        front = pareto_front(
            [point("cheap", 10, 1.0, cost=0.2), point("dear", 10, 1.0, cost=1.0)]
        )
        assert [p.strategy for p in front] == ["cheap"]

    def test_duplicate_points_both_kept(self):
        front = pareto_front([point("a", 1, 1), point("b", 1, 1)])
        assert len(front) == 2

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            pareto_front([])

    def test_accepts_summaries(self):
        s = StrategySummary(
            strategy="s",
            n_replications=3,
            improvement_mean=4.0,
            improvement_std=0.1,
            distortion_mean=0.5,
            distortion_std=0.1,
            dirty_fractions={g: 0.1 for g in GlitchType},
            treated_fractions={g: 0.0 for g in GlitchType},
            cost_fraction=1.0,
        )
        front = pareto_front([s])
        assert front[0].strategy == "s"


class TestTradeoffPoints:
    def test_one_point_per_strategy(self, tiny_bundle):
        cfg = ExperimentConfig(n_replications=2, sample_size=8, seed=0)
        runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal, config=cfg)
        result = runner.run(
            [strategy_by_name("strategy3"), strategy_by_name("strategy4")]
        )
        points = tradeoff_points(result)
        assert [p.strategy for p in points] == ["strategy3", "strategy4"]
        assert all(isinstance(p, TradeoffPoint) for p in points)
        # the projection matches the summaries it came from
        for p, s in zip(points, result.summaries()):
            assert p.improvement == pytest.approx(s.improvement_mean)
            assert p.distortion == pytest.approx(s.distortion_mean)


class TestViable:
    def test_constraints_filter_front(self):
        pts = [point("a", 10, 3.0), point("b", 5, 0.5)]
        assert [p.strategy for p in viable_strategies(pts, max_distortion=1.0)] == ["b"]
        assert [p.strategy for p in viable_strategies(pts, min_improvement=8)] == ["a"]

    def test_cost_cap(self):
        pts = [point("a", 10, 1.0, cost=1.0), point("b", 8, 1.0, cost=0.2)]
        assert [p.strategy for p in viable_strategies(pts, max_cost=0.5)] == ["b"]

    def test_no_survivors_is_empty(self):
        pts = [point("a", 10, 3.0)]
        assert viable_strategies(pts, max_distortion=0.1) == []


class TestKnee:
    def test_picks_best_ratio(self):
        pts = [
            point("weak", 1, 0.1),
            point("knee", 9, 0.5),
            point("overkill", 10, 3.0),
        ]
        assert knee_point(pts).strategy == "knee"

    def test_single_point_returned(self):
        assert knee_point([point("only", 1, 1)]).strategy == "only"

    def test_on_real_sweep(self, sweep):
        k = knee_point(sweep.summaries())
        assert k.cost in (0.2, 0.5, 1.0)
