"""CleaningContext and strategy composition semantics."""

import numpy as np
import pytest

from repro.cleaning.base import (
    CleaningContext,
    CompositeStrategy,
    IdentityStrategy,
    MissingInconsistentTreatment,
)
from repro.cleaning.mean_imputation import MeanImputation
from repro.cleaning.winsorize import WinsorizeOutliers
from repro.errors import CleaningError
from repro.glitches.detectors import ScaleTransform


class TestContext:
    def test_limits_computed_from_ideal(self, tiny_pair, raw_context):
        lo, hi = raw_context.limits.bounds("attr1")
        col = tiny_pair.ideal.pooled_column("attr1")
        assert lo == pytest.approx(col.mean() - 3 * col.std(ddof=1))
        assert hi == pytest.approx(col.mean() + 3 * col.std(ddof=1))

    def test_limits_on_analysis_scale_with_transform(self, tiny_pair, log_context):
        lo, hi = log_context.limits.bounds("attr1")
        col = np.log(tiny_pair.ideal.pooled_column("attr1"))
        col = col[np.isfinite(col)]
        assert hi == pytest.approx(col.mean() + 3 * col.std(ddof=1), rel=1e-6)

    def test_ideal_means_raw(self, tiny_pair, raw_context):
        assert raw_context.ideal_means["attr3"] == pytest.approx(
            tiny_pair.ideal.pooled_column("attr3").mean()
        )

    def test_analysis_means_log(self, tiny_pair, log_context):
        col = np.log(tiny_pair.ideal.pooled_column("attr1"))
        col = col[np.isfinite(col)]
        assert log_context.analysis_means["attr1"] == pytest.approx(col.mean())

    def test_analysis_means_equal_raw_without_transform(self, raw_context):
        assert raw_context.analysis_means == raw_context.ideal_means

    def test_treatable_mask_is_missing_or_inconsistent(self, raw_context, tiny_pair):
        series = tiny_pair.dirty[0]
        mask = raw_context.treatable_mask(series)
        missing = np.isnan(series.values)
        inconsistent = raw_context.constraints.evaluate(series)
        assert np.array_equal(mask, missing | inconsistent)

    def test_roundtrip_analysis_scale(self, raw_context, log_context, tiny_pair):
        values = tiny_pair.dirty[0].values
        attrs = tiny_pair.dirty[0].attributes
        raw_rt = raw_context.from_analysis(
            raw_context.to_analysis(values, attrs), attrs
        )
        assert np.array_equal(raw_rt, values, equal_nan=True)
        pos = values.copy()
        pos[~(pos[:, 0] > 0), 0] = np.nan  # drop negatives for log roundtrip
        log_rt = log_context.from_analysis(
            log_context.to_analysis(pos, attrs), attrs
        )
        assert np.allclose(log_rt, pos, equal_nan=True)


class TestComposite:
    def test_requires_a_treatment(self):
        with pytest.raises(CleaningError):
            CompositeStrategy("empty")

    def test_mi_then_outlier_order(self, tiny_pair, log_context):
        """Winsorization runs last: treated data has zero outliers."""
        from repro.glitches.detectors import DetectorSuite
        from repro.glitches.outliers import SigmaOutlierDetector
        from repro.glitches.types import GlitchType

        strategy = CompositeStrategy(
            "s5", mi_treatment=MeanImputation(), outlier_treatment=WinsorizeOutliers()
        )
        treated = strategy.clean(tiny_pair.dirty, log_context)
        suite = DetectorSuite(
            outlier_detector=SigmaOutlierDetector(log_context.limits),
            transform=log_context.transform,
        )
        glitches = suite.annotate_dataset(treated)
        assert glitches.record_fraction(GlitchType.OUTLIER) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_input_never_mutated(self, tiny_pair, raw_context):
        before = [s.values.copy() for s in tiny_pair.dirty]
        strategy = CompositeStrategy("s4", mi_treatment=MeanImputation())
        strategy.clean(tiny_pair.dirty, raw_context)
        for s, b in zip(tiny_pair.dirty, before):
            assert np.array_equal(s.values, b, equal_nan=True)

    def test_describe(self):
        s = CompositeStrategy("x", mi_treatment=MeanImputation())
        assert "mean" in s.describe()
        assert "ignore" in s.describe()

    def test_single_component_passthrough(self, tiny_pair, raw_context):
        only_mean = CompositeStrategy("m", mi_treatment=MeanImputation())
        treated = only_mean.clean(tiny_pair.dirty, raw_context)
        assert treated.missing_fraction == 0.0


class TestIdentity:
    def test_identity_copies(self, tiny_pair, raw_context):
        out = IdentityStrategy().clean(tiny_pair.dirty, raw_context)
        assert out is not tiny_pair.dirty
        for a, b in zip(out, tiny_pair.dirty):
            assert np.array_equal(a.values, b.values, equal_nan=True)
