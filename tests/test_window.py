"""Windowed history F_t^w semantics."""

import numpy as np
import pytest

from repro.data.window import WindowHistory
from repro.errors import ValidationError

from helpers import make_series


@pytest.fixture()
def series():
    return make_series([[float(t), 0.0, 0.0] for t in range(10)])


class TestWindowHistory:
    def test_history_excludes_current(self, series):
        w = WindowHistory(series, window=3)
        hist = w.history(5)
        assert hist[:, 0].tolist() == [2.0, 3.0, 4.0]

    def test_history_clipped_at_start(self, series):
        w = WindowHistory(series, window=5)
        assert w.history(2).shape[0] == 2

    def test_history_empty_at_zero(self, series):
        assert WindowHistory(series, window=3).history(0).shape[0] == 0

    def test_history_at_end(self, series):
        w = WindowHistory(series, window=4)
        assert w.history(10)[:, 0].tolist() == [6.0, 7.0, 8.0, 9.0]

    def test_out_of_range_raises(self, series):
        w = WindowHistory(series, window=3)
        with pytest.raises(IndexError):
            w.history(11)
        with pytest.raises(IndexError):
            w.history(-1)

    def test_history_column(self, series):
        w = WindowHistory(series, window=2)
        assert w.history_column(4, "attr1").tolist() == [2.0, 3.0]

    def test_iter_windows_covers_stream(self, series):
        w = WindowHistory(series, window=3)
        items = list(w.iter_windows())
        assert len(items) == 10
        assert items[0][1].shape[0] == 0
        assert items[9][1].shape[0] == 3

    def test_window_must_be_positive(self, series):
        with pytest.raises(ValidationError):
            WindowHistory(series, window=0)
