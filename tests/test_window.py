"""Windowed history F_t^w semantics and sharded streaming ingestion."""

import numpy as np
import pytest

from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.data.window import WindowHistory, WindowShard, ingest_window_shard
from repro.errors import ValidationError

from helpers import make_series


def _window_stat(t, history):
    """Module-level consumer (picklable for the process backend)."""
    return (t, history.shape[0], float(history[:, 0].sum()))


@pytest.fixture()
def series():
    return make_series([[float(t), 0.0, 0.0] for t in range(10)])


class TestWindowHistory:
    def test_history_excludes_current(self, series):
        w = WindowHistory(series, window=3)
        hist = w.history(5)
        assert hist[:, 0].tolist() == [2.0, 3.0, 4.0]

    def test_history_clipped_at_start(self, series):
        w = WindowHistory(series, window=5)
        assert w.history(2).shape[0] == 2

    def test_history_empty_at_zero(self, series):
        assert WindowHistory(series, window=3).history(0).shape[0] == 0

    def test_history_at_end(self, series):
        w = WindowHistory(series, window=4)
        assert w.history(10)[:, 0].tolist() == [6.0, 7.0, 8.0, 9.0]

    def test_out_of_range_raises(self, series):
        w = WindowHistory(series, window=3)
        with pytest.raises(IndexError):
            w.history(11)
        with pytest.raises(IndexError):
            w.history(-1)

    def test_history_column(self, series):
        w = WindowHistory(series, window=2)
        assert w.history_column(4, "attr1").tolist() == [2.0, 3.0]

    def test_iter_windows_covers_stream(self, series):
        w = WindowHistory(series, window=3)
        items = list(w.iter_windows())
        assert len(items) == 10
        assert items[0][1].shape[0] == 0
        assert items[9][1].shape[0] == 3

    def test_window_must_be_positive(self, series):
        with pytest.raises(ValidationError):
            WindowHistory(series, window=0)


class TestShardedIngestion:
    def test_iter_windows_bounded_chunk(self, series):
        w = WindowHistory(series, window=3)
        items = list(w.iter_windows(start=4, stop=7))
        assert [t for t, _ in items] == [4, 5, 6]
        # A chunk boundary never truncates the history window.
        assert items[0][1][:, 0].tolist() == [1.0, 2.0, 3.0]

    def test_iter_windows_rejects_bad_range(self, series):
        w = WindowHistory(series, window=3)
        with pytest.raises(ValidationError):
            list(w.iter_windows(start=5, stop=3))
        with pytest.raises(ValidationError):
            list(w.iter_windows(start=0, stop=99))

    def test_chunks_concatenate_to_full_iteration(self, series):
        w = WindowHistory(series, window=4)
        full = [(t, h.copy()) for t, h in w.iter_windows()]
        chunked = []
        for start, stop in w.shard_bounds(shard_size=3):
            chunked.extend((t, h.copy()) for t, h in w.iter_windows(start, stop))
        assert [t for t, _ in chunked] == [t for t, _ in full]
        for (_, a), (_, b) in zip(chunked, full):
            assert np.array_equal(a, b)

    def test_shard_bounds_cover_time_axis(self, series):
        bounds = WindowHistory(series, window=2).shard_bounds(shard_size=4)
        assert bounds == [(0, 4), (4, 8), (8, 10)]

    def test_window_shard_carries_only_overlap(self, series):
        w = WindowHistory(series, window=3)
        [unit] = [
            WindowShard(
                fn=_window_stat,
                values=series.values[max(0, 4 - 3) : 8],
                window=3,
                start=4,
                stop=8,
                lo=1,
            )
        ]
        out = ingest_window_shard(unit)
        expected = [_window_stat(t, w.history(t)) for t in range(4, 8)]
        assert out == expected

    @pytest.mark.parametrize(
        "backend", [SerialBackend(), ThreadBackend(2), ProcessBackend(2, min_units=1)]
    )
    def test_map_windows_matches_serial_iteration(self, series, backend):
        w = WindowHistory(series, window=3)
        expected = [_window_stat(t, h) for t, h in w.iter_windows()]
        assert w.map_windows(_window_stat, backend=backend, shard_size=4) == expected
