"""StreamDataset: pooling, subsetting, transforms."""

import numpy as np
import pytest

from repro.data.dataset import StreamDataset
from repro.errors import DataShapeError, ValidationError

from helpers import make_dataset, make_series


@pytest.fixture()
def dataset():
    return make_dataset(
        [[1.0, 2.0, 0.9], [np.nan, 3.0, 0.8]],
        [[4.0, 5.0, 0.7], [6.0, np.nan, 0.6], [7.0, 8.0, np.nan]],
    )


class TestConstruction:
    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            StreamDataset([])

    def test_mismatched_attributes_raise(self):
        import numpy as np

        from repro.data.stream import TimeSeries
        from repro.data.topology import NodeId

        a = TimeSeries(NodeId(0, 0, 0), np.zeros((1, 3)), attributes=("x", "y", "z"))
        b = make_series([[1.0, 2.0, 3.0]])
        with pytest.raises(DataShapeError):
            StreamDataset([a, b])

    def test_lengths_may_differ(self, dataset):
        assert [s.length for s in dataset] == [2, 3]

    def test_counts(self, dataset):
        assert len(dataset) == 2
        assert dataset.n_records == 5
        assert dataset.n_attributes == 3
        assert dataset.max_length == 3


class TestPooling:
    def test_pooled_none_keeps_all_rows(self, dataset):
        assert dataset.pooled("none").shape == (5, 3)

    def test_pooled_any_drops_incomplete(self, dataset):
        pooled = dataset.pooled("any")
        assert pooled.shape == (2, 3)
        assert not np.isnan(pooled).any()

    def test_pooled_all_drops_fully_missing(self):
        d = make_dataset([[np.nan, np.nan, np.nan], [1.0, 2.0, 3.0]])
        assert d.pooled("all").shape == (1, 3)

    def test_pooled_bad_mode_raises(self, dataset):
        with pytest.raises(ValidationError):
            dataset.pooled("some")

    def test_pooled_column(self, dataset):
        col = dataset.pooled_column("attr1")
        assert col.tolist() == [1.0, 4.0, 6.0, 7.0]

    def test_pooled_column_keep_nan(self, dataset):
        col = dataset.pooled_column("attr1", dropna=False)
        assert col.shape == (5,)

    def test_missing_fraction(self, dataset):
        assert dataset.missing_fraction == pytest.approx(3 / 15)


class TestDerivation:
    def test_subset_with_repeats(self, dataset):
        sub = dataset.subset([1, 1, 0])
        assert len(sub) == 3
        assert sub[0].length == 3

    def test_subset_empty_raises(self, dataset):
        with pytest.raises(ValidationError):
            dataset.subset([])

    def test_subset_out_of_range_raises(self, dataset):
        with pytest.raises(ValidationError):
            dataset.subset([5])

    def test_copy_is_deep(self, dataset):
        c = dataset.copy()
        c[0].values[0, 0] = -99.0
        assert dataset[0].values[0, 0] == 1.0

    def test_map(self, dataset):
        out = dataset.map(lambda s: s.with_values(s.values * 2))
        assert out[0].values[0, 0] == 2.0
        assert dataset[0].values[0, 0] == 1.0

    def test_transformed(self, dataset):
        out = dataset.transformed("attr1", np.log)
        assert out[0].values[0, 0] == pytest.approx(0.0)

    def test_concat(self, dataset):
        both = StreamDataset.concat([dataset, dataset])
        assert len(both) == 4

    def test_concat_empty_raises(self):
        with pytest.raises(ValidationError):
            StreamDataset.concat([])
