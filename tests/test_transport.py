"""Transportation solvers: correctness and cross-backend agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.transport import solve_transport
from repro.errors import TransportError


def random_instance(rng, n, m):
    supply = rng.random(n) + 0.05
    demand = rng.random(m) + 0.05
    demand *= supply.sum() / demand.sum()
    cost = rng.random((n, m)) * 10
    return supply, demand, cost


class TestValidation:
    def test_rejects_shape_mismatch(self):
        with pytest.raises(TransportError):
            solve_transport([1.0], [1.0], np.zeros((2, 1)))

    def test_rejects_negative_supply(self):
        with pytest.raises(TransportError):
            solve_transport([-1.0, 2.0], [1.0], np.zeros((2, 1)))

    def test_rejects_unbalanced(self):
        with pytest.raises(TransportError):
            solve_transport([1.0], [2.0], np.zeros((1, 1)))

    def test_rejects_nonfinite_cost(self):
        with pytest.raises(TransportError):
            solve_transport([1.0], [1.0], np.array([[np.inf]]))

    def test_rejects_unknown_backend(self):
        with pytest.raises(TransportError):
            solve_transport([1.0], [1.0], np.zeros((1, 1)), backend="magic")

    def test_rejects_zero_total(self):
        with pytest.raises(TransportError):
            solve_transport([0.0], [0.0], np.zeros((1, 1)))


class TestKnownSolutions:
    @pytest.mark.parametrize("backend", ["simplex", "highs", "networkx"])
    def test_identity_is_free(self, backend):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        res = solve_transport([0.5, 0.5], [0.5, 0.5], cost, backend=backend)
        assert res.cost == pytest.approx(0.0, abs=1e-6)

    @pytest.mark.parametrize("backend", ["simplex", "highs", "networkx"])
    def test_full_shift(self, backend):
        # All mass must move from bin 0 to bin 1 at distance 3.
        cost = np.array([[0.0, 3.0], [3.0, 0.0]])
        res = solve_transport([1.0, 0.0], [0.0, 1.0], cost, backend=backend)
        assert res.cost == pytest.approx(3.0, abs=1e-6)

    @pytest.mark.parametrize("backend", ["simplex", "highs"])
    def test_textbook_instance(self, backend):
        # Classic 3x3 transportation instance with optimum 39.
        supply = np.array([20.0, 30.0, 25.0])
        demand = np.array([10.0, 35.0, 30.0])
        cost = np.array([[2.0, 3.0, 1.0], [5.0, 4.0, 8.0], [5.0, 6.0, 8.0]])
        res = solve_transport(supply, demand, cost, backend=backend)
        expected = solve_transport(supply, demand, cost, backend="highs").cost
        assert res.cost == pytest.approx(expected, rel=1e-9)

    def test_flow_marginals(self):
        rng = np.random.default_rng(1)
        supply, demand, cost = random_instance(rng, 5, 7)
        res = solve_transport(supply, demand, cost, backend="simplex")
        assert np.allclose(res.flow.sum(axis=1), supply, atol=1e-9)
        assert np.allclose(res.flow.sum(axis=0), demand, atol=1e-9)
        assert (res.flow >= -1e-12).all()

    def test_degenerate_instance(self):
        # Degenerate: several partial sums coincide, forcing zero-flow pivots.
        supply = np.array([1.0, 1.0, 1.0])
        demand = np.array([1.0, 1.0, 1.0])
        cost = np.array([[1.0, 2.0, 3.0], [2.0, 1.0, 2.0], [3.0, 2.0, 1.0]])
        res = solve_transport(supply, demand, cost, backend="simplex")
        assert res.cost == pytest.approx(3.0)


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_simplex_matches_highs(self, seed):
        rng = np.random.default_rng(seed)
        n, m = rng.integers(2, 14, size=2)
        supply, demand, cost = random_instance(rng, int(n), int(m))
        a = solve_transport(supply, demand, cost, backend="simplex")
        b = solve_transport(supply, demand, cost, backend="highs")
        assert a.cost == pytest.approx(b.cost, rel=1e-7, abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_networkx_close_to_highs(self, seed):
        rng = np.random.default_rng(100 + seed)
        supply, demand, cost = random_instance(rng, 5, 6)
        a = solve_transport(supply, demand, cost, backend="networkx")
        b = solve_transport(supply, demand, cost, backend="highs")
        # Integer-scaled backend: agreement to the scaling resolution.
        assert a.cost == pytest.approx(b.cost, rel=1e-4, abs=1e-4)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_simplex_never_beats_lp_optimum(self, seed):
        """The simplex solution is feasible, so cost >= LP optimum; and it
        should be equal since both are exact."""
        rng = np.random.default_rng(seed)
        supply, demand, cost = random_instance(rng, 4, 4)
        a = solve_transport(supply, demand, cost, backend="simplex")
        b = solve_transport(supply, demand, cost, backend="highs")
        assert a.cost >= b.cost - 1e-9
        assert a.cost == pytest.approx(b.cost, rel=1e-7, abs=1e-9)


class TestAutoBackend:
    def test_auto_small_uses_simplex_result(self):
        supply = np.array([1.0])
        demand = np.array([1.0])
        cost = np.array([[2.0]])
        assert solve_transport(supply, demand, cost).cost == pytest.approx(2.0)

    def test_auto_large_instance_works(self):
        rng = np.random.default_rng(0)
        supply, demand, cost = random_instance(rng, 30, 30)
        res = solve_transport(supply, demand, cost, backend="auto")
        ref = solve_transport(supply, demand, cost, backend="highs")
        assert res.cost == pytest.approx(ref.cost, rel=1e-7)
