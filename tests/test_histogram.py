"""Shared-support binning for distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distance.histogram import HistogramBinner, SparseHistogram
from repro.errors import DistanceError


def sample_2d(seed, n=200, d=2):
    return np.random.default_rng(seed).normal(size=(n, d))


class TestSparseHistogram:
    def test_valid(self):
        SparseHistogram(np.zeros((2, 3)), np.array([0.4, 0.6]))

    def test_rejects_bad_probs_shape(self):
        with pytest.raises(DistanceError):
            SparseHistogram(np.zeros((2, 3)), np.array([1.0]))

    def test_rejects_unnormalized(self):
        with pytest.raises(DistanceError):
            SparseHistogram(np.zeros((2, 3)), np.array([0.4, 0.4]))

    def test_rejects_1d_centers(self):
        with pytest.raises(DistanceError):
            SparseHistogram(np.zeros(3), np.array([1.0]))

    def test_properties(self):
        h = SparseHistogram(np.zeros((4, 2)), np.full(4, 0.25))
        assert h.n_bins == 4
        assert h.dim == 2


class TestBinnerValidation:
    def test_rejects_bad_binning(self):
        with pytest.raises(DistanceError):
            HistogramBinner(binning="magic")

    def test_rejects_mismatched_dims(self):
        b = HistogramBinner()
        with pytest.raises(DistanceError):
            b.histogram_pair(np.zeros((5, 2)), np.zeros((5, 3)))


class TestBinnerBehaviour:
    def test_probs_sum_to_one(self):
        b = HistogramBinner(n_bins=8)
        hp, hq = b.histogram_pair(sample_2d(0), sample_2d(1))
        assert hp.probs.sum() == pytest.approx(1.0)
        assert hq.probs.sum() == pytest.approx(1.0)

    def test_bin_counts_bounded(self):
        b = HistogramBinner(n_bins=4)
        hp, hq = b.histogram_pair(sample_2d(0), sample_2d(1))
        assert hp.n_bins <= 16
        assert hq.n_bins <= 16

    def test_identical_samples_identical_histograms(self):
        x = sample_2d(2)
        b = HistogramBinner(n_bins=6)
        hp, hq = b.histogram_pair(x, x.copy())
        assert np.array_equal(hp.centers, hq.centers)
        assert np.allclose(hp.probs, hq.probs)

    def test_standardization_uses_reference(self):
        """The coordinate frame comes from p (the first argument) only."""
        p = sample_2d(3) * 7 + 4
        b = HistogramBinner(n_bins=6)
        shift, scale = b._reference_frame(p)
        assert np.allclose(shift, p.mean(axis=0))
        assert np.allclose(scale, p.std(axis=0))
        # q plays no role in the frame.
        shift2, scale2 = b._reference_frame(p)
        assert np.allclose(shift, shift2) and np.allclose(scale, scale2)

    def test_degenerate_scale_falls_back_to_one(self):
        b = HistogramBinner(n_bins=4)
        p = np.column_stack([np.ones(20), np.arange(20.0)])
        _, scale = b._reference_frame(p)
        assert scale[0] == 1.0
        assert scale[1] > 1.0

    def test_no_standardize_keeps_raw_coordinates(self):
        p = sample_2d(5) * 50 + 100
        b = HistogramBinner(n_bins=4, standardize=False)
        hp, _ = b.histogram_pair(p, p)
        assert hp.centers.min() > 0

    def test_degenerate_dimension_single_bin(self):
        p = np.column_stack([np.ones(50), np.arange(50.0)])
        b = HistogramBinner(n_bins=4, standardize=False)
        hp, _ = b.histogram_pair(p, p)
        assert np.unique(hp.centers[:, 0]).size == 1

    def test_quantile_mode_balances_mass(self):
        rng = np.random.default_rng(0)
        p = rng.lognormal(0, 1, (2000, 1))
        b = HistogramBinner(n_bins=10, binning="quantile", standardize=False)
        hp, _ = b.histogram_pair(p, p)
        assert hp.probs.max() < 0.2  # roughly equal-mass bins

    def test_uniform_mode_equal_widths(self):
        p = np.arange(100.0)[:, None]
        b = HistogramBinner(n_bins=10, binning="uniform", standardize=False)
        hp, _ = b.histogram_pair(p, p)
        widths = np.diff(np.sort(np.unique(hp.centers[:, 0])))
        assert np.allclose(widths, widths[0])

    @given(
        hnp.arrays(
            float,
            st.tuples(st.integers(5, 60), st.integers(1, 3)),
            elements=st.floats(-100, 100),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_total_mass_preserved(self, p):
        b = HistogramBinner(n_bins=5)
        hp, hq = b.histogram_pair(p, p + 1.0)
        assert hp.probs.sum() == pytest.approx(1.0)
        assert hq.probs.sum() == pytest.approx(1.0)
        assert hp.centers.shape[1] == p.shape[1]
