"""Glitch pattern analytics (Figure 3, co-occurrence, autocorrelation)."""

import numpy as np
import pytest

from repro.glitches.patterns import (
    cooccurrence_matrix,
    counts_over_time,
    jaccard_overlap,
    pattern_frequencies,
    temporal_autocorrelation,
)
from repro.glitches.types import DatasetGlitches, GlitchMatrix, GlitchType


def build_glitches():
    """Two small annotated series with known overlap structure."""
    a = np.zeros((6, 2, 3), dtype=bool)
    a[0, 0, 0] = True  # missing at t=0
    a[0, 1, 1] = True  # inconsistent at t=0 (co-occurs with missing)
    a[2, 0, 2] = True  # outlier at t=2
    b = np.zeros((4, 2, 3), dtype=bool)
    b[1, 0, 0] = True  # missing at t=1
    return DatasetGlitches([GlitchMatrix(a), GlitchMatrix(b)])


class TestCountsOverTime:
    def test_shape_is_longest_series(self):
        counts = counts_over_time(build_glitches())
        assert counts.shape == (6, 3)

    def test_values(self):
        counts = counts_over_time(build_glitches())
        assert counts[0, int(GlitchType.MISSING)] == 1
        assert counts[1, int(GlitchType.MISSING)] == 1
        assert counts[2, int(GlitchType.OUTLIER)] == 1
        assert counts.sum() == 4

    def test_bundle_counts_scale(self, tiny_bundle):
        glitches = tiny_bundle.suite.annotate_dataset(tiny_bundle.dirty)
        counts = counts_over_time(glitches)
        assert counts.shape[0] == tiny_bundle.dirty.max_length
        # every time step can have at most n_series glitching records
        assert counts.max() <= len(tiny_bundle.dirty)


class TestCooccurrence:
    def test_diagonal_is_marginal(self):
        m = cooccurrence_matrix(build_glitches())
        assert m[0, 0] == 2  # two missing records
        assert m[1, 1] == 1
        assert m[2, 2] == 1

    def test_off_diagonal_counts_joint(self):
        m = cooccurrence_matrix(build_glitches())
        assert m[0, 1] == 1  # the co-occurring record
        assert m[0, 2] == 0

    def test_symmetric(self):
        m = cooccurrence_matrix(build_glitches())
        assert np.array_equal(m, m.T)

    def test_jaccard(self):
        g = build_glitches()
        assert jaccard_overlap(g, GlitchType.MISSING, GlitchType.INCONSISTENT) == (
            pytest.approx(1 / 2)
        )
        assert jaccard_overlap(g, GlitchType.MISSING, GlitchType.OUTLIER) == 0.0

    def test_missing_inconsistent_overlap_in_generated_data(self, tiny_bundle):
        """Figure 3's 'considerable overlap' claim on the synthetic data."""
        glitches = tiny_bundle.suite.annotate_dataset(tiny_bundle.dirty)
        j_mi = jaccard_overlap(glitches, GlitchType.MISSING, GlitchType.INCONSISTENT)
        assert j_mi > 0.15


class TestPatternFrequencies:
    def test_total_records(self):
        freqs = pattern_frequencies(build_glitches())
        assert sum(freqs.values()) == 10

    def test_clean_pattern_dominates(self):
        freqs = pattern_frequencies(build_glitches())
        assert freqs[(False, False, False)] == 7

    def test_cooccurrence_pattern_present(self):
        freqs = pattern_frequencies(build_glitches())
        assert freqs[(True, True, False)] == 1


class TestAutocorrelation:
    def test_bursty_indicator_positive_lag1(self, rng):
        bits = np.zeros((200, 1, 3), dtype=bool)
        # plant bursts of missing
        for start in (10, 60, 120):
            bits[start : start + 15, 0, 0] = True
        acf = temporal_autocorrelation(
            DatasetGlitches([GlitchMatrix(bits)]), GlitchType.MISSING, max_lag=5
        )
        assert acf[0] > 0.5

    def test_constant_series_gives_nan(self):
        bits = np.zeros((50, 1, 3), dtype=bool)
        acf = temporal_autocorrelation(
            DatasetGlitches([GlitchMatrix(bits)]), GlitchType.MISSING, max_lag=3
        )
        assert np.isnan(acf).all()

    def test_generated_glitches_cluster_temporally(self, tiny_bundle):
        glitches = tiny_bundle.suite.annotate_dataset(tiny_bundle.dirty)
        acf = temporal_autocorrelation(glitches, GlitchType.MISSING, max_lag=3)
        assert acf[0] > 0.2
