"""Mergeable histograms and the one-pass streaming distortion.

The load-bearing contract: on a frozen :class:`HistogramGrid`, folding a
sample slab by slab (in any slicing, with any merge tree) produces the
histogram the one-shot binner emits — *bitwise*, because bin assignment is
elementwise and integer counts add exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distortion import (
    StreamingDistortion,
    slab_streams,
    statistical_distortion_batch,
    statistical_distortion_stream,
)
from repro.distance.emd import EarthMoverDistance
from repro.distance.histogram import (
    HistogramBinner,
    clear_frame_cache,
)
from repro.distance.kl import JensenShannonDistance, KLDivergence
from repro.distance.ks import KolmogorovSmirnovDistance
from repro.distance.mahalanobis import MahalanobisDistance
from repro.errors import DistanceError


def _sample(n, d, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * rng.gamma(1.5, 2.0, size=(n, d)) + rng.normal(0, 1, size=(n, d))


class TestMergeableCounts:
    @pytest.mark.parametrize("binning", ["uniform", "quantile"])
    @pytest.mark.parametrize("cuts", [(100,), (1, 17, 300), (250, 251)])
    def test_slab_folding_matches_one_shot_bitwise(self, binning, cuts):
        p = _sample(400, 3, seed=0)
        qs = [_sample(400, 3, seed=1), _sample(380, 3, seed=2, scale=1.4)]
        binner = HistogramBinner(n_bins=8, binning=binning)
        hp_ref, hqs_ref = binner.histogram_group(p, qs)

        grid = binner.make_grid(p, qs)
        acc = grid.accumulator()
        bounds = [0, *cuts, len(p)]
        for a, b in zip(bounds[:-1], bounds[1:]):
            acc.add(p[a:b])
        hp = acc.finalize()
        assert np.array_equal(hp.keys, hp_ref.keys)
        assert np.array_equal(hp.probs, hp_ref.probs)
        assert np.array_equal(hp.centers, hp_ref.centers)
        for q, hq_ref in zip(qs, hqs_ref):
            hq = grid.histogram(q)
            assert np.array_equal(hq.keys, hq_ref.keys)
            assert np.array_equal(hq.probs, hq_ref.probs)

    def test_merge_tree_order_never_matters(self):
        p = _sample(300, 2, seed=3)
        grid = HistogramBinner(n_bins=6, binning="uniform").make_grid(p)
        whole = grid.accumulator().add(p).finalize()
        left = grid.accumulator().add(p[:47])
        mid = grid.accumulator().add(p[47:203])
        right = grid.accumulator().add(p[203:])
        merged = right.merge(left).merge(mid).finalize()
        assert np.array_equal(merged.keys, whole.keys)
        assert np.array_equal(merged.probs, whole.probs)

    def test_empty_slabs_are_neutral(self):
        p = _sample(50, 2, seed=4)
        grid = HistogramBinner(n_bins=4).make_grid(p)
        acc = grid.accumulator().add(p[:0]).add(p).add(p[:0])
        assert acc.total == 50
        assert np.array_equal(acc.finalize().probs, grid.histogram(p).probs)

    def test_mismatched_grids_refuse_to_merge(self):
        p = _sample(60, 2, seed=5)
        binner = HistogramBinner(n_bins=4)
        a = binner.make_grid(p).accumulator().add(p)
        b = binner.make_grid(2.0 * p).accumulator().add(p)
        with pytest.raises(DistanceError):
            a.merge(b)
        with pytest.raises(DistanceError):
            binner.make_grid(p).accumulator().finalize()  # empty

    def test_quantile_grids_cannot_come_from_stats(self):
        binner = HistogramBinner(n_bins=4, binning="quantile")
        with pytest.raises(DistanceError):
            binner.grid_from_stats(
                np.zeros(2), np.ones(2), np.zeros(2), np.ones(2)
            )


class TestFrameMemo:
    def test_shared_reference_frame_is_memoised(self):
        clear_frame_cache()
        binner = HistogramBinner(n_bins=8)
        p = _sample(200, 3, seed=6)
        shift1, scale1 = binner.reference_frame(p)
        shift2, scale2 = binner.reference_frame(p.copy())
        # Same content -> the very same cached arrays, no recomputation.
        assert shift1 is shift2 and scale1 is scale2

    def test_different_content_gets_different_frame(self):
        clear_frame_cache()
        binner = HistogramBinner(n_bins=8)
        p = _sample(100, 2, seed=7)
        shift1, _ = binner.reference_frame(p)
        shift2, _ = binner.reference_frame(p + 1.0)
        assert not np.array_equal(shift1, shift2)

    def test_cache_never_changes_results(self):
        clear_frame_cache()
        binner = HistogramBinner(n_bins=8)
        p = _sample(150, 3, seed=8)
        q = _sample(150, 3, seed=9)
        first = binner.histogram_pair(p, q)
        second = binner.histogram_pair(p, q)  # frame served from cache
        assert np.array_equal(first[0].probs, second[0].probs)
        assert np.array_equal(first[1].probs, second[1].probs)
        clear_frame_cache()


class TestStreamingDistortion:
    def _slabs(self, rows, width):
        return [rows[a : a + width] for a in range(0, len(rows), width)]

    def test_exact_agreement_without_standardisation(self):
        # With an identity frame the streamed grid (exact min/max folds)
        # equals the pooled grid whenever candidates stay inside the
        # reference support -> the distortions agree bitwise.
        p = _sample(500, 2, seed=10)
        q_inside = p[np.random.default_rng(0).permutation(len(p))][:400]
        distance = EarthMoverDistance(n_bins=8, standardize=False, exact_1d=False)
        pooled = distance.pairwise(p, [q_inside])
        # 500/63 and 400/50 both give 8 aligned slab pairs.
        streamed = statistical_distortion_stream(
            self._slabs(p, 63),
            zip(self._slabs(p, 63), [[s] for s in self._slabs(q_inside, 50)]),
            n_candidates=1,
            distance=distance,
        )
        assert streamed == pooled

    def test_close_agreement_with_standardisation(self):
        p = _sample(600, 3, seed=11)
        qs = [_sample(600, 3, seed=12), p + 0.01]
        distance = EarthMoverDistance(n_bins=8)
        # A small margin gives out-of-reference-support candidate mass its
        # own bins instead of clipping it into the edge bins.
        stream = StreamingDistortion(2, distance=distance)
        for slab in self._slabs(p, 100):
            stream.observe_reference(slab)
        stream.freeze_grid(support_margin=0.25)
        for pr, q0, q1 in zip(
            self._slabs(p, 100), self._slabs(qs[0], 100), self._slabs(qs[1], 100)
        ):
            stream.observe(pr, [q0, q1])
        streamed = stream.finalize()
        pooled = statistical_distortion_batch(
            _as_dataset(p), [_as_dataset(q) for q in qs], distance=distance
        )
        # Same panel ordering and the near-identical candidate stays tiny.
        assert streamed[1] < streamed[0]
        for s, r in zip(streamed, pooled):
            assert s == pytest.approx(r, rel=0.35, abs=0.02)

    def test_misuse_raises(self):
        distance = EarthMoverDistance(n_bins=4)
        stream = StreamingDistortion(1, distance=distance)
        with pytest.raises(DistanceError):
            stream.freeze_grid()  # nothing observed
        stream.observe_reference(_sample(10, 2, seed=13))
        stream.freeze_grid()
        with pytest.raises(DistanceError):
            stream.observe_reference(_sample(5, 2, seed=14))  # already frozen
        with pytest.raises(DistanceError):
            stream.observe(_sample(5, 2, seed=15), [])  # wrong panel size
        with pytest.raises(DistanceError):
            StreamingDistortion(0, distance=distance)


def _slab(rows, width):
    return [rows[a : a + width] for a in range(0, len(rows), width)]


#: Streaming-capable distances under their exact-agreement configuration
#: (identity frame; candidates drawn inside the reference support).
EXACT_DISTANCES = {
    "emd": lambda: EarthMoverDistance(n_bins=8, standardize=False, exact_1d=False),
    "kl": lambda: KLDivergence(n_bins=8, binning="uniform", standardize=False),
    "kl-sym": lambda: KLDivergence(
        n_bins=8, binning="uniform", standardize=False, symmetrized=True
    ),
    "js": lambda: JensenShannonDistance(
        n_bins=8, binning="uniform", standardize=False
    ),
    "ks": lambda: KolmogorovSmirnovDistance(),
}


class TestStreamingDistanceParity:
    """The tentpole contract: every registered streaming-capable distance
    scores a slab stream identically (bitwise, in the exact regime) to the
    pooled path, for any slab slicing and panel size."""

    @pytest.mark.parametrize("name", sorted(EXACT_DISTANCES))
    @pytest.mark.parametrize("widths", [(63, 50), (500, 400), (17, 11)])
    def test_streamed_equals_pooled_bitwise(self, name, widths):
        p = _sample(500, 2, seed=20)
        perm = np.random.default_rng(1).permutation(len(p))
        qs = [p[perm][:400], p[perm[::-1]][:400]]
        distance = EXACT_DISTANCES[name]()
        pooled = distance.pairwise(p, qs)
        ref_slabs, paired = slab_streams(p, qs, widths[0], widths[1])
        streamed = statistical_distortion_stream(
            ref_slabs, paired, n_candidates=2, distance=distance
        )
        assert streamed == pooled

    @pytest.mark.parametrize("name", ["kl", "js"])
    def test_standardised_within_support_matches_to_ulp(self, name):
        # With standardisation the only streamed/pooled difference is the
        # moment-sketch frame (ulp-level edge shifts); candidates inside
        # the reference support leave the grids equal bin for bin.
        p = _sample(600, 3, seed=21)
        perm = np.random.default_rng(5).permutation(len(p))
        qs = [p[perm][:450], p[perm[::-1]][:420]]
        distance = (
            KLDivergence(n_bins=8, binning="uniform")
            if name == "kl"
            else JensenShannonDistance(n_bins=8, binning="uniform")
        )
        pooled = distance.pairwise(p, qs)
        ref_slabs, paired = slab_streams(p, qs, 100, 90)
        streamed = statistical_distortion_stream(
            ref_slabs, paired, 2, distance=distance
        )
        for s, r in zip(streamed, pooled):
            assert s == pytest.approx(r, rel=1e-9)

    @pytest.mark.parametrize("name", ["kl", "js"])
    def test_out_of_support_mass_keeps_panel_ordering(self, name):
        # Unlike EMD (binning-insensitive by the paper's argument), KL/JS
        # respond to how out-of-reference-support candidate mass is binned:
        # the streamed grid clips it into margin/edge bins while the pooled
        # grid stretches over the union support, so the *values* drift.
        # The panel ordering — what the ablation reads — must survive.
        p = _sample(600, 3, seed=21)
        qs = [_sample(600, 3, seed=22), p + 0.01]
        distance = (
            KLDivergence(n_bins=8, binning="uniform")
            if name == "kl"
            else JensenShannonDistance(n_bins=8, binning="uniform")
        )
        stream = StreamingDistortion(2, distance=distance)
        for slab in _slab(p, 100):
            stream.observe_reference(slab)
        stream.freeze_grid(support_margin=0.25)
        for pr, cands in slab_streams(p, qs, 100)[1]:
            stream.observe(pr, cands)
        streamed = stream.finalize()
        pooled = distance.pairwise(p, qs)
        assert all(np.isfinite(v) and v >= 0 for v in streamed)
        assert streamed[1] < streamed[0]
        assert pooled[1] < pooled[0]

    def test_exact_1d_emd_streams_through_sketches(self):
        p = _sample(400, 1, seed=23)
        q = p[np.random.default_rng(3).permutation(len(p))][:300]
        raw = EarthMoverDistance(standardize=False)
        pooled = raw.pairwise(p, [q])
        stream = StreamingDistortion(1, distance=raw)
        for slab in _slab(p, 70):
            stream.observe_reference(slab)
        stream.freeze_grid()
        assert stream.grid is None  # ecdf mode: no histogram grid at all
        for pr, qc in zip(_slab(p, 70), _slab(q, 53)):
            stream.observe(pr, [qc])
        assert stream.finalize() == pooled

    def test_exact_1d_emd_standardized_matches_to_ulp(self):
        p = _sample(500, 1, seed=24)
        q = _sample(450, 1, seed=25)
        distance = EarthMoverDistance()  # standardize=True, exact_1d=True
        pooled = distance.pairwise(p, [q])
        streamed = statistical_distortion_stream(
            _slab(p, 90),
            zip(_slab(p, 90), [[s] for s in _slab(q, 75)]),
            n_candidates=1,
            distance=distance,
        )
        # Identical sketches; the only difference is dividing the raw
        # distance by the streamed scale vs standardising per element.
        assert streamed[0] == pytest.approx(pooled[0], rel=1e-9)

    def test_ks_needs_no_reference_prepass(self):
        p = _sample(300, 2, seed=26)
        q = _sample(280, 2, seed=27)
        distance = KolmogorovSmirnovDistance()
        stream = StreamingDistortion(1, distance=distance)
        # No observe_reference, no freeze_grid: straight to the one pass.
        for pr, qc in zip(_slab(p, 60), _slab(q, 56)):
            stream.observe(pr, [qc])
        assert stream.finalize() == distance.pairwise(p, [q])

    def test_ks_nan_semantics_match_pooled_per_column(self):
        # Regression (review finding): ecdf mode must keep NaN-bearing rows
        # so each attribute's marginal matches the distance's own pooled
        # per-column semantics — complete-case filtering here both shifted
        # the statistic and made a blanked column erase every attribute.
        rng = np.random.default_rng(31)
        p = rng.normal(size=(300, 2))
        q = p + np.array([2.0, 0.0])
        q[q[:, 0] > 2.0, 1] = np.nan
        distance = KolmogorovSmirnovDistance()
        streamed = statistical_distortion_stream(
            [], zip(_slab(p, 64), [[s] for s in _slab(q, 64)]), 1,
            distance=distance,
        )
        assert streamed == distance.pairwise(p, [q])
        # A fully blanked column is skipped, not fatal, exactly as pooled.
        q2 = p.copy()
        q2[:, 1] = np.nan
        streamed = statistical_distortion_stream(
            [], zip(_slab(p, 64), [[s] for s in _slab(q2, 64)]), 1,
            distance=distance,
        )
        assert streamed == distance.pairwise(p, [q2])

    def test_ks_compressed_sketches_stay_close(self):
        p = _sample(4000, 2, seed=28)
        q = _sample(4000, 2, seed=29, scale=1.2)
        distance = KolmogorovSmirnovDistance()
        pooled = distance.pairwise(p, [q])
        streamed = statistical_distortion_stream(
            _slab(p, 500),
            zip(_slab(p, 500), [[s] for s in _slab(q, 500)]),
            n_candidates=1,
            distance=distance,
            sketch_size=256,
        )
        assert streamed[0] == pytest.approx(pooled[0], abs=4.0 / 256)

    def test_ragged_slab_lengths_never_matter(self):
        p = _sample(400, 2, seed=30)
        q = p[::-1][:399]
        distance = KolmogorovSmirnovDistance()
        ragged_p = [p[:1], p[1:7], p[7:300], p[300:]]
        ragged_q = [q[:250], q[250:251], q[251:], q[:0]]
        streamed = statistical_distortion_stream(
            [], zip(ragged_p, [[s] for s in ragged_q]), 1, distance=distance
        )
        assert streamed == distance.pairwise(p, [q])

    def test_non_streaming_distance_rejected(self):
        with pytest.raises(DistanceError):
            StreamingDistortion(1, distance=MahalanobisDistance())

    def test_histogram_capability_needs_batch_hook(self):
        # A uniform binner alone is not enough: without the
        # between_histograms_batch hook (or a sketch path) the failure
        # must fire at construction, not after the reference pre-pass.
        class BinnerOnly(EarthMoverDistance):
            between_histograms_batch = None
            sketch_distances = None

        with pytest.raises(DistanceError):
            StreamingDistortion(1, distance=BinnerOnly(exact_1d=False))

    def test_batch_pooling_honours_per_column_distances(self):
        # Regression (review finding): the framework pooling layer used to
        # complete-case filter for every distance, so a blanked column
        # erased the whole sample before KS could apply its documented
        # per-attribute semantics.
        p = _sample(200, 2, seed=40)
        q = p.copy()
        q[:, 1] = np.nan
        ks = KolmogorovSmirnovDistance()
        got = statistical_distortion_batch(_as_dataset(p), [_as_dataset(q)], distance=ks)
        assert got == ks.pairwise(p, [q])
        # Complete-case distances keep the old contract: nothing to bin.
        with pytest.raises(DistanceError):
            statistical_distortion_batch(
                _as_dataset(p), [_as_dataset(q)],
                distance=EarthMoverDistance(exact_1d=False),
            )

    def test_quantile_divergences_stream(self):
        # Quantile binning (the KL/JS default) is streaming-capable: the
        # reference pre-pass folds exact per-dimension EcdfSketches and the
        # frozen grid's edges replay the pooled np.quantile edges bitwise.
        distance = KLDivergence()  # quantile default
        p = _sample(300, 2, seed=41)
        qs = [_sample(240, 2, seed=42), p[:150] + 0.0]
        stream = StreamingDistortion(2, distance=distance)
        for slab in _slab(p, 64):
            stream.observe_reference(slab)
        stream.freeze_grid()
        # The streamed grid's quantile edges equal the pooled np.quantile
        # edges of the reference standardised under the same frame,
        # dimension by dimension, bit for bit (the frame itself is the
        # usual streamed moment estimate).
        standardized = (p - stream.grid.shift) / stream.grid.scale
        for j, edges in enumerate(stream.grid.edges):
            expected = np.unique(
                np.quantile(
                    standardized[:, j],
                    np.linspace(0.0, 1.0, distance.binner.n_bins + 1),
                )
            )
            assert np.array_equal(edges, expected)
        for pr, cands in slab_streams(p, qs, 64)[1]:
            stream.observe(pr, cands)
        streamed = stream.finalize()
        # Bin-count folding on the frozen grid is exact, so any slab slicing
        # produces the same panel values.
        replay = StreamingDistortion(2, distance=KLDivergence())
        for slab in _slab(p, 17):
            replay.observe_reference(slab)
        for pr, cands in slab_streams(p, qs, 17)[1]:
            replay.observe(pr, cands)
        assert streamed == replay.finalize()
        # The self-candidate prefix stays far closer than the independent draw.
        assert streamed[1] < streamed[0]


def _as_dataset(rows):
    """Wrap pooled rows as a single-series dataset for the batch API."""
    from repro.data.dataset import StreamDataset
    from repro.data.stream import TimeSeries
    from repro.data.topology import NodeId

    return StreamDataset([TimeSeries(NodeId(0, 0, 0), rows)])
