"""EMD fast paths: vectorized 1-D transport, shared-grid batching.

Property-style checks that the closed-form univariate path and the batched
``pairwise`` API compute the *same* distances as the reference
implementations they bypass (``emd_1d`` and the dense transportation
simplex), plus the metric axioms on random samples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distortion import statistical_distortion, statistical_distortion_batch
from repro.distance.emd import (
    EarthMoverDistance,
    emd_1d,
    emd_between_histograms,
    pairwise_emd,
)
from repro.distance.histogram import HistogramBinner, SparseHistogram
from repro.distance.transport import solve_transport, transport_cost_1d
from repro.errors import DistanceError, TransportError

finite = st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=40)


def _point_mass_histogram(sample) -> SparseHistogram:
    """One bin per distinct sample point — an exact empirical distribution."""
    values, counts = np.unique(np.asarray(sample, dtype=float), return_counts=True)
    return SparseHistogram(
        centers=values[:, None], probs=counts / counts.sum()
    )


class TestTransportCost1d:
    @given(finite, finite)
    @settings(max_examples=60, deadline=None)
    def test_matches_exact_sample_emd(self, a, b):
        """Point-mass histograms through the 1-D closed form == emd_1d."""
        ha, hb = _point_mass_histogram(a), _point_mass_histogram(b)
        fast = transport_cost_1d(ha.centers.ravel(), ha.probs, hb.centers.ravel(), hb.probs)
        assert fast == pytest.approx(emd_1d(np.asarray(a), np.asarray(b)), rel=1e-9, abs=1e-9)

    @given(finite, finite)
    @settings(max_examples=30, deadline=None)
    def test_matches_dense_simplex(self, a, b):
        """The closed form equals the dense transportation-simplex optimum."""
        ha, hb = _point_mass_histogram(a), _point_mass_histogram(b)
        cost = np.abs(ha.centers[:, None, 0] - hb.centers[None, :, 0])
        dense = solve_transport(ha.probs, hb.probs, cost, backend="simplex")
        fast = transport_cost_1d(ha.centers.ravel(), ha.probs, hb.centers.ravel(), hb.probs)
        assert fast == pytest.approx(dense.cost, rel=1e-8, abs=1e-9)

    @given(finite, finite)
    @settings(max_examples=40, deadline=None)
    def test_symmetric_and_nonnegative(self, a, b):
        ha, hb = _point_mass_histogram(a), _point_mass_histogram(b)
        d_ab = transport_cost_1d(ha.centers.ravel(), ha.probs, hb.centers.ravel(), hb.probs)
        d_ba = transport_cost_1d(hb.centers.ravel(), hb.probs, ha.centers.ravel(), ha.probs)
        assert d_ab >= 0.0
        assert d_ab == pytest.approx(d_ba, rel=1e-12, abs=1e-12)

    @given(finite)
    @settings(max_examples=30, deadline=None)
    def test_zero_on_identical(self, a):
        h = _point_mass_histogram(a)
        assert transport_cost_1d(
            h.centers.ravel(), h.probs, h.centers.ravel(), h.probs
        ) == pytest.approx(0.0, abs=1e-12)

    def test_unsorted_positions_handled(self):
        # positions arrive in occupied-bin order, not necessarily sorted
        d = transport_cost_1d([3.0, 0.0], [0.5, 0.5], [0.0, 3.0], [0.5, 0.5])
        assert d == pytest.approx(0.0, abs=1e-12)

    def test_mass_scaling(self):
        # doubling total mass doubles the cost (un-normalised transport cost)
        base = transport_cost_1d([0.0], [1.0], [2.0], [1.0])
        double = transport_cost_1d([0.0], [2.0], [2.0], [2.0])
        assert base == pytest.approx(2.0)
        assert double == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(TransportError):
            transport_cost_1d([0.0], [1.0], [1.0], [2.0])  # unbalanced
        with pytest.raises(TransportError):
            transport_cost_1d([0.0], [1.0, 2.0], [1.0], [3.0])  # ragged
        with pytest.raises(TransportError):
            transport_cost_1d([np.inf], [1.0], [1.0], [1.0])  # non-finite pos


class TestHistogram1dFastPath:
    def test_univariate_histograms_bypass_solver(self, rng):
        """emd_between_histograms on 1-D == the dense solve it replaces."""
        x = rng.normal(size=(400, 1))
        y = rng.normal(0.7, 1.2, size=(400, 1))
        hp, hq = HistogramBinner(n_bins=24).histogram_pair(x, y)
        fast = emd_between_histograms(hp, hq)
        diff = np.abs(hp.centers[:, None, 0] - hq.centers[None, :, 0])
        dense = solve_transport(hp.probs, hq.probs, diff, backend="simplex")
        assert fast == pytest.approx(dense.cost / dense.flow.sum(), rel=1e-8)

    def test_dim_mismatch_raises(self, rng):
        hp = _point_mass_histogram(rng.normal(size=10))
        hq, _ = HistogramBinner(n_bins=4).histogram_pair(
            rng.normal(size=(50, 2)), rng.normal(size=(50, 2))
        )
        with pytest.raises(DistanceError):
            emd_between_histograms(hp, hq)


class TestPairwise:
    def test_single_candidate_matches_compute_multivariate(self, rng):
        x = rng.normal(size=(300, 3))
        y = rng.normal(0.4, 1.1, size=(300, 3))
        d = EarthMoverDistance(n_bins=6)
        assert d.pairwise(x, [y]) == [pytest.approx(d(x, y), rel=1e-12)]

    def test_single_candidate_matches_compute_1d(self, rng):
        x = rng.normal(size=(300, 1))
        y = rng.normal(1.0, 1.0, size=(300, 1))
        d = EarthMoverDistance()
        assert d.pairwise(x, [y]) == [pytest.approx(d(x, y), rel=1e-12)]

    def test_exact_1d_reference_cached_once(self, rng):
        """Batch answers equal one-at-a-time answers on the exact path."""
        x = rng.normal(size=500)
        candidates = [x + shift for shift in (0.0, 0.5, 2.0)]
        d = EarthMoverDistance()
        batch = d.pairwise(x[:, None], [c[:, None] for c in candidates])
        singles = [d(x, c) for c in candidates]
        assert batch == pytest.approx(singles, rel=1e-12)
        assert batch[0] == pytest.approx(0.0, abs=1e-12)
        assert batch[1] < batch[2]

    def test_shared_grid_close_to_per_pair(self, rng):
        """Shared-grid distances track per-pair ones (binning insensitivity)."""
        x = rng.normal(size=(600, 2))
        candidates = [x + np.array([s, 0.0]) for s in (0.3, 1.0, 2.0)]
        d = EarthMoverDistance(n_bins=12)
        batch = d.pairwise(x, candidates)
        singles = [d(x, c) for c in candidates]
        for b, s in zip(batch, singles):
            assert b == pytest.approx(s, rel=0.25, abs=0.05)
        assert batch[0] < batch[1] < batch[2]

    def test_empty_candidates(self, rng):
        assert EarthMoverDistance().pairwise(rng.normal(size=(10, 1)), []) == []

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(DistanceError):
            EarthMoverDistance().pairwise(
                rng.normal(size=(10, 2)), [rng.normal(size=(10, 3))]
            )

    def test_pairwise_emd_function(self, rng):
        x = rng.normal(size=(200, 2))
        y = x + 0.5
        via_fn = pairwise_emd(x, [y], n_bins=8)
        via_cls = EarthMoverDistance(n_bins=8).pairwise(x, [y])
        assert via_fn == pytest.approx(via_cls, rel=1e-12)


class TestDistortionBatch:
    def test_batch_matches_scalar_for_one_treated(self, tiny_pair, raw_context):
        from repro.cleaning.registry import strategy_by_name

        treated = strategy_by_name("strategy4").clean(tiny_pair.dirty, raw_context)
        scalar = statistical_distortion(tiny_pair.dirty, treated)
        batch = statistical_distortion_batch(tiny_pair.dirty, [treated])
        assert batch == [pytest.approx(scalar, rel=1e-12)]

    def test_batch_order_and_identity(self, tiny_pair, raw_context):
        from repro.cleaning.registry import strategy_by_name

        treated = strategy_by_name("strategy4").clean(tiny_pair.dirty, raw_context)
        batch = statistical_distortion_batch(
            tiny_pair.dirty, [tiny_pair.dirty, treated]
        )
        assert batch[0] == pytest.approx(0.0, abs=1e-9)
        assert batch[1] > 0.0
