"""Outlier detectors — sigma limits, robust, windowed, neighbour-based."""

import numpy as np
import pytest

from repro.data.dataset import StreamDataset
from repro.errors import ValidationError
from repro.glitches.missing import MissingDetector, detect_missing
from repro.glitches.outliers import (
    MADOutlierDetector,
    NeighborOutlierDetector,
    SigmaLimits,
    SigmaOutlierDetector,
    WindowedOutlierDetector,
)

from helpers import make_dataset, make_series


@pytest.fixture()
def ideal():
    rng = np.random.default_rng(0)
    block = np.column_stack(
        [rng.normal(10, 1, 300), rng.normal(5, 0.5, 300), rng.uniform(0.9, 1.0, 300)]
    )
    return make_dataset(block.tolist())


class TestMissingDetector:
    def test_function_and_class_agree(self, simple_series):
        assert np.array_equal(
            detect_missing(simple_series), MissingDetector().detect(simple_series)
        )

    def test_matches_nan(self, simple_series):
        assert detect_missing(simple_series).sum() == 3


class TestSigmaLimits:
    def test_from_dataset_matches_manual(self, ideal):
        limits = SigmaLimits.from_dataset(ideal, k=3.0)
        col = ideal.pooled_column("attr1")
        lo, hi = limits.bounds("attr1")
        assert lo == pytest.approx(col.mean() - 3 * col.std(ddof=1))
        assert hi == pytest.approx(col.mean() + 3 * col.std(ddof=1))

    def test_robust_variant_uses_median(self, ideal):
        limits = SigmaLimits.from_dataset(ideal, k=3.0, robust=True)
        lo, hi = limits.bounds("attr1")
        med = np.median(ideal.pooled_column("attr1"))
        assert (lo + hi) / 2 == pytest.approx(med)

    def test_unknown_attribute_raises(self, ideal):
        limits = SigmaLimits.from_dataset(ideal)
        with pytest.raises(KeyError):
            limits.bounds("nope")

    def test_contains(self, ideal):
        limits = SigmaLimits.from_dataset(ideal)
        assert "attr1" in limits and "zz" not in limits

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            SigmaLimits({})

    def test_rejects_inverted(self):
        with pytest.raises(ValidationError):
            SigmaLimits({"a": (2.0, 1.0)})


class TestSigmaOutlierDetector:
    def test_flags_out_of_limits(self):
        detector = SigmaOutlierDetector(
            SigmaLimits({"attr1": (0.0, 20.0), "attr2": (0.0, 10.0), "attr3": (0.0, 1.0)})
        )
        s = make_series([[25.0, 5.0, 0.5], [10.0, -1.0, 0.5], [10.0, 5.0, 0.5]])
        mask = detector.detect(s)
        assert mask[0, 0] and mask[1, 1]
        assert mask.sum() == 2

    def test_nan_never_flagged(self, simple_series):
        detector = SigmaOutlierDetector(
            SigmaLimits({"attr1": (0.0, 1.0), "attr2": (0.0, 1.0), "attr3": (0.0, 1.0)})
        )
        mask = detector.detect(simple_series)
        assert not mask[np.isnan(simple_series.values)].any()

    def test_attribute_without_limits_ignored(self):
        detector = SigmaOutlierDetector(SigmaLimits({"attr1": (0.0, 1.0)}))
        s = make_series([[0.5, 999.0, 999.0]])
        assert detector.detect(s).sum() == 0

    def test_scores_monotone_in_deviation(self):
        detector = SigmaOutlierDetector(SigmaLimits({"attr1": (-3.0, 3.0)}))
        s = make_series([[0.0, 1.0, 1.0], [2.0, 1.0, 1.0], [5.0, 1.0, 1.0]])
        p = detector.scores(s)[:, 0]
        assert p[0] > p[1] > p[2]

    def test_scores_nan_for_missing(self, simple_series):
        detector = SigmaOutlierDetector(SigmaLimits({"attr1": (-3.0, 3.0)}))
        p = detector.scores(simple_series)
        assert np.isnan(p[1, 0])


class TestMADDetector:
    def test_ignores_single_extreme_in_fit(self, ideal):
        detector = MADOutlierDetector(ideal, k=5.0)
        s = make_series([[10.0, 5.0, 0.95], [1e6, 5.0, 0.95]])
        mask = detector.detect(s)
        assert not mask[0, 0]
        assert mask[1, 0]


class TestWindowedDetector:
    def test_flags_spike_against_own_history(self):
        values = [[10.0, 1.0, 1.0]] * 30 + [[100.0, 1.0, 1.0]]
        # add tiny noise so sd > 0
        arr = np.array(values)
        arr[:30, 0] += np.linspace(-0.5, 0.5, 30)
        s = make_series(arr.tolist())
        detector = WindowedOutlierDetector(window=20, k=3.0, min_history=5)
        mask = detector.detect(s)
        assert mask[30, 0]
        assert not mask[:30, 0].any()

    def test_insufficient_history_not_flagged(self):
        s = make_series([[1.0, 1.0, 1.0], [100.0, 1.0, 1.0]])
        detector = WindowedOutlierDetector(window=5, k=3.0, min_history=5)
        assert not detector.detect(s).any()

    def test_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            WindowedOutlierDetector(k=0)


class TestNeighborDetector:
    def test_flags_deviation_from_neighbors(self):
        rng = np.random.default_rng(0)
        base = rng.normal(10, 0.5, (40, 3))
        neighbors = [make_series(base + rng.normal(0, 0.1, (40, 3))) for _ in range(3)]
        deviant = base.copy()
        deviant[20, 0] = 50.0
        s = make_series(deviant.tolist())
        detector = NeighborOutlierDetector(window=10, k=4.0, min_history=5)
        mask = detector.detect(s, neighbors)
        assert mask[20, 0]

    def test_no_neighbors_flags_nothing(self, simple_series):
        detector = NeighborOutlierDetector()
        assert not detector.detect(simple_series, []).any()
