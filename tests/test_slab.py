"""SlabFeed: recipe materialisation, spill round-trips, time slabs, ring."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.data.generator import GeneratorConfig
from repro.data.slab import SlabFeed, load_slab
from repro.errors import DataShapeError, ValidationError
from repro.experiments.config import SCALES, build_population

TINY = SCALES["tiny"].generator
RAGGED = GeneratorConfig(
    n_rnc=2, towers_per_rnc=5, sectors_per_tower=10, series_length=60, min_length=40
)


def _series_equal(a, b):
    return (
        a.node == b.node
        and np.array_equal(a.values, b.values, equal_nan=True)
        and np.array_equal(a.truth, b.truth)
    )


class TestFeedIdentity:
    def test_feed_matches_materialised_population(self, tiny_bundle):
        with SlabFeed(TINY, seed=0) as feed:
            series = [s for _, chunk in feed.iter_series() for s in chunk]
        population = tiny_bundle.population
        assert len(series) == len(population)
        assert all(_series_equal(a, b) for a, b in zip(series, population))

    def test_spill_round_trip_is_exact(self):
        with SlabFeed(TINY, seed=0) as feed:
            fresh = [s for _, chunk in feed.iter_series(spill=True) for s in chunk]
            assert feed.spilled_bytes() > 0
            # Second pass reads the store, not the generator.
            stored = [s for src in feed.sources for s in load_slab(src)]
            assert all(_series_equal(a, b) for a, b in zip(fresh, stored))

    def test_shard_layout_is_pure_performance(self):
        with SlabFeed(TINY, seed=0, shard_size=7, spill=False) as a, SlabFeed(
            TINY, seed=0, shard_size=33, spill=False
        ) as b:
            series_a = [s for _, chunk in a.iter_series(spill=False) for s in chunk]
            series_b = [s for _, chunk in b.iter_series(spill=False) for s in chunk]
        assert len(a.sources) != len(b.sources)
        assert all(_series_equal(x, y) for x, y in zip(series_a, series_b))

    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ThreadBackend(2), ProcessBackend(2, min_units=1)],
        ids=lambda b: b.name,
    )
    def test_map_fans_sources_across_backends(self, backend):
        with SlabFeed(TINY, seed=0, backend=backend, spill=False) as feed:
            counts = feed.map(_count_series)
        assert sum(counts) == feed.n_series

    def test_ragged_plan_prescans_lengths(self):
        bundle = build_population(scale="tiny", seed=0, generator_config=RAGGED)
        with SlabFeed(RAGGED, seed=0, spill=False) as feed:
            assert not feed.uniform
            expected = [s.length for s in bundle.population]
            assert feed.lengths.tolist() == expected
            assert feed.max_length == max(expected)

    def test_generator_seed_rejected(self):
        with pytest.raises(ValidationError):
            SlabFeed(TINY, seed=np.random.default_rng(3))

    def test_spawned_from_seedsequence_still_replays(self):
        # A SeedSequence's spawn counter mutates on use; the feed must
        # snapshot it so prior spawns by the caller cannot shift its streams.
        fresh = np.random.SeedSequence(7)
        used = np.random.SeedSequence(7)
        used.spawn(5)  # caller consumed some children first
        with SlabFeed(TINY, seed=fresh, spill=False) as a, SlabFeed(
            TINY, seed=used, spill=False
        ) as b:
            series_a = [s for _, c in a.iter_series(spill=False) for s in c]
            series_b = [s for _, c in b.iter_series(spill=False) for s in c]
        assert all(_series_equal(x, y) for x, y in zip(series_a, series_b))


def _count_series(source):
    """Module-level so the process backend can pickle it."""
    return len(load_slab(source, spill=False))


class TestTimeSlabs:
    def test_slabs_tile_the_time_axis_with_overlap(self):
        with SlabFeed(TINY, seed=0, shard_size=50) as feed:
            slabs = list(feed.iter_time_slabs(width=16, window=5))
        # 100 series in 2 shards, 60 steps in ceil(60/16) = 4 slabs each.
        assert len(slabs) == 2 * 4
        by_shard: dict[int, list] = {}
        for slab in slabs:
            by_shard.setdefault(slab.series_start, []).append(slab)
        for chunk in by_shard.values():
            assert [s.start for s in chunk] == [0, 16, 32, 48]
            assert chunk[-1].stop == 60
            for s in chunk:
                assert s.lo == max(0, s.start - 5)
                assert s.block.length == s.stop - s.lo
                assert s.block.n_series == 50

    def test_slab_values_match_population_window(self, tiny_bundle):
        with SlabFeed(TINY, seed=0, shard_size=100) as feed:
            slab = next(feed.iter_time_slabs(width=16, window=4))
        reference = np.stack(
            [s.values for s in tiny_bundle.population.series[:100]]
        )[:, slab.lo : slab.stop]
        assert np.array_equal(slab.block.values, reference, equal_nan=True)
        assert slab.width == 16

    def test_ring_is_bounded(self):
        with SlabFeed(TINY, seed=0, shard_size=50, ring_capacity=3) as feed:
            for _ in feed.iter_time_slabs(width=10):
                assert len(feed.ring) <= 3
            assert len(feed.ring) == 3
            # Ring holds the most recent slabs, newest last.
            assert feed.ring[-1].stop == 60

    def test_ragged_time_slabs_rejected(self):
        with SlabFeed(RAGGED, seed=0, spill=False) as feed:
            with pytest.raises(DataShapeError):
                next(feed.iter_time_slabs(width=8))

    def test_bad_bounds_rejected(self):
        with SlabFeed(TINY, seed=0, spill=False) as feed:
            with pytest.raises(Exception):
                next(feed.iter_time_slabs(width=0))
            with pytest.raises(ValidationError):
                next(feed.iter_time_slabs(width=8, window=-1))


class TestLifecycle:
    def test_cleanup_removes_owned_spill_dir(self):
        feed = SlabFeed(TINY, seed=0)
        spill_dir = feed.spill_dir
        list(feed.iter_series())
        assert os.path.isdir(spill_dir)
        feed.cleanup()
        assert not os.path.isdir(spill_dir)

    def test_external_spill_dir_is_kept(self, tmp_path):
        feed = SlabFeed(TINY, seed=0, spill_dir=str(tmp_path))
        list(feed.iter_series())
        assert feed.spilled_bytes() > 0
        feed.cleanup()
        assert os.path.isdir(str(tmp_path))
        assert feed.spilled_bytes() > 0
