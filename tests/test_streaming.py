"""The streaming slab engine's identity contract.

The engine must be *bitwise-identical* to the materialised path — same
dirty/ideal split, same fitted limits, same replication samples, same
outcome floats — on every execution backend, at any shard size, with
spilling on or off, and on ragged populations the block fast path cannot
even touch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning.registry import paper_strategies, strategy_by_name
from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.core.streaming import (
    StreamingExperiment,
    run_streaming_experiment,
    streaming_enabled,
)
from repro.data.generator import GeneratorConfig
from repro.errors import ValidationError
from repro.experiments.config import build_population, experiment_config
from repro.experiments.paper import run_experiment

STRATEGIES = [strategy_by_name("strategy1"), strategy_by_name("strategy4")]


def _key(o):
    return (
        o.strategy,
        o.replication,
        o.improvement,
        o.distortion,
        o.glitch_index_dirty,
        o.glitch_index_treated,
        o.cost_fraction,
        tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
        tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())),
    )


def _keys(result):
    return [_key(o) for o in result.outcomes]


@pytest.fixture(scope="module")
def tiny_cfg():
    return ExperimentConfig(n_replications=3, sample_size=10, seed=11)


@pytest.fixture(scope="module")
def block_reference(tiny_bundle, tiny_cfg):
    runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal, config=tiny_cfg)
    return runner.run(STRATEGIES)


class TestStreamingIdentity:
    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ThreadBackend(2), ProcessBackend(2, min_units=1)],
        ids=lambda b: b.name,
    )
    def test_bitwise_identical_to_block_path(
        self, tiny_bundle, block_reference, tiny_cfg, backend
    ):
        engine = StreamingExperiment.from_scale(
            "tiny", seed=0, config=tiny_cfg, backend=backend
        )
        streamed = engine.run(STRATEGIES)
        assert _keys(streamed.result) == _keys(block_reference)
        assert streamed.dirty_indices == tiny_bundle.partition.dirty_indices
        assert streamed.ideal_indices == tiny_bundle.partition.ideal_indices

    def test_fitted_limits_identical(self, tiny_bundle, tiny_cfg):
        engine = StreamingExperiment.from_scale("tiny", seed=0, config=tiny_cfg)
        streamed = engine.run(STRATEGIES)
        reference = tiny_bundle.suite.outlier_detector.limits
        fitted = streamed.suite.outlier_detector.limits
        for attr in reference.attributes:
            assert fitted.bounds(attr) == reference.bounds(attr)

    def test_shard_size_never_changes_numbers(self, block_reference, tiny_cfg):
        for shard_size in (7, 31):
            streamed = StreamingExperiment.from_scale(
                "tiny", seed=0, config=tiny_cfg, shard_size=shard_size
            ).run(STRATEGIES)
            assert _keys(streamed.result) == _keys(block_reference)

    def test_spill_off_recomputes_identically(self, block_reference, tiny_cfg):
        streamed = StreamingExperiment.from_scale(
            "tiny", seed=0, config=tiny_cfg, spill=False
        ).run(STRATEGIES)
        assert _keys(streamed.result) == _keys(block_reference)
        assert streamed.spilled_bytes == 0

    def test_gather_is_bounded_by_draws(self, tiny_cfg):
        streamed = StreamingExperiment.from_scale(
            "tiny", seed=0, config=tiny_cfg
        ).run(STRATEGIES)
        bound = 2 * tiny_cfg.n_replications * tiny_cfg.sample_size
        assert streamed.n_gathered <= min(bound, streamed.n_series)
        assert streamed.n_gathered < streamed.n_series  # genuinely partial

    def test_per_series_layout_when_block_disabled(
        self, block_reference, tiny_cfg, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BLOCK", "0")
        streamed = StreamingExperiment.from_scale(
            "tiny", seed=0, config=tiny_cfg
        ).run(STRATEGIES)
        assert _keys(streamed.result) == _keys(block_reference)


class TestRaggedStreaming:
    """Ragged populations had no bounded-memory path at all before."""

    RAGGED = GeneratorConfig(
        n_rnc=2,
        towers_per_rnc=5,
        sectors_per_tower=10,
        series_length=60,
        min_length=40,
    )

    @pytest.fixture(scope="class")
    def ragged_reference(self):
        cfg = ExperimentConfig(n_replications=2, sample_size=8, seed=5)
        bundle = build_population(
            scale="tiny", seed=0, generator_config=self.RAGGED
        )
        runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=cfg)
        return cfg, runner.run(STRATEGIES)

    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ThreadBackend(2), ProcessBackend(2, min_units=1)],
        ids=lambda b: b.name,
    )
    def test_ragged_identity_across_backends(self, ragged_reference, backend):
        cfg, reference = ragged_reference
        streamed = StreamingExperiment(
            generator_config=self.RAGGED, seed=0, config=cfg, backend=backend
        ).run(STRATEGIES)
        assert _keys(streamed.result) == _keys(reference)


class TestSketchIntegration:
    def test_sketches_summarise_dirty_glitch_mass(self, tiny_cfg):
        streamed = StreamingExperiment.from_scale(
            "tiny", seed=0, config=tiny_cfg, sketch_k=8
        ).run(STRATEGIES)
        assert streamed.glitch_scores is not None
        assert len(streamed.glitch_scores) == len(streamed.dirty_indices)
        assert len(streamed.sketch) == 8
        assert set(streamed.sketch.keys) <= set(streamed.dirty_indices)
        # Rank-conditioned estimates stay in the ballpark of the true total.
        true_total = float(streamed.glitch_scores.sum())
        assert streamed.sketch.estimate_total() > 0
        assert streamed.priority.estimate_total() == pytest.approx(
            true_total, rel=1.0
        )

    def test_sketches_off_by_default(self, tiny_cfg):
        streamed = StreamingExperiment.from_scale(
            "tiny", seed=0, config=tiny_cfg
        ).run(STRATEGIES)
        assert streamed.glitch_scores is None
        assert streamed.sketch is None


class TestDistanceSelector:
    """``ExperimentConfig(distance=...)`` reaches both engines and keeps
    them bitwise-identical to each other for every selectable distance."""

    @pytest.mark.parametrize("name", ["kl", "js", "ks"])
    def test_streamed_equals_block_per_distance(self, tiny_bundle, name):
        cfg = ExperimentConfig(
            n_replications=3, sample_size=10, seed=11, distance=name
        )
        runner = ExperimentRunner(tiny_bundle.dirty, tiny_bundle.ideal, config=cfg)
        block = runner.run(STRATEGIES)
        streamed = StreamingExperiment.from_scale(
            "tiny", seed=0, config=cfg
        ).run(STRATEGIES)
        assert _keys(streamed.result) == _keys(block)
        # The selector genuinely changed the metric relative to EMD.
        emd_cfg = cfg.variant(distance=None)
        emd_block = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=emd_cfg
        ).run(STRATEGIES)
        assert [o.distortion for o in block.outcomes] != [
            o.distortion for o in emd_block.outcomes
        ]

    @pytest.mark.parametrize(
        "backend",
        [ThreadBackend(2), ProcessBackend(2, min_units=1)],
        ids=lambda b: b.name,
    )
    def test_selector_is_backend_invariant(self, tiny_bundle, backend):
        cfg = ExperimentConfig(
            n_replications=3, sample_size=10, seed=11, distance="ks"
        )
        serial = StreamingExperiment.from_scale(
            "tiny", seed=0, config=cfg
        ).run(STRATEGIES)
        parallel = StreamingExperiment.from_scale(
            "tiny", seed=0, config=cfg, backend=backend
        ).run(STRATEGIES)
        assert _keys(serial.result) == _keys(parallel.result)

    def test_selector_on_ragged_population(self):
        cfg = ExperimentConfig(
            n_replications=2, sample_size=8, seed=5, distance="ks"
        )
        ragged = TestRaggedStreaming.RAGGED
        bundle = build_population(scale="tiny", seed=0, generator_config=ragged)
        block = ExperimentRunner(bundle.dirty, bundle.ideal, config=cfg).run(STRATEGIES)
        streamed = StreamingExperiment(
            generator_config=ragged, seed=0, config=cfg
        ).run(STRATEGIES)
        assert _keys(streamed.result) == _keys(block)

    def test_explicit_instance_beats_selector(self, tiny_bundle):
        from repro.distance.ks import KolmogorovSmirnovDistance

        cfg = ExperimentConfig(
            n_replications=2, sample_size=8, seed=3, distance="kl"
        )
        by_name = ExperimentRunner(
            tiny_bundle.dirty,
            tiny_bundle.ideal,
            config=cfg.variant(distance="ks"),
        ).run(STRATEGIES)
        by_instance = ExperimentRunner(
            tiny_bundle.dirty,
            tiny_bundle.ideal,
            config=cfg,
            distance=KolmogorovSmirnovDistance(),
        ).run(STRATEGIES)
        assert _keys(by_name) == _keys(by_instance)

    def test_unknown_selector_fails_fast(self):
        from repro.errors import DistanceError

        with pytest.raises(DistanceError):
            ExperimentConfig(distance="nope")


class TestSelection:
    def test_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM", raising=False)
        assert not streaming_enabled()
        monkeypatch.setenv("REPRO_STREAM", "1")
        assert streaming_enabled()
        monkeypatch.setenv("REPRO_STREAM", "off")
        assert not streaming_enabled()

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM", "1")
        assert not streaming_enabled(ExperimentConfig(streaming=False))
        monkeypatch.delenv("REPRO_STREAM", raising=False)
        assert streaming_enabled(ExperimentConfig(streaming=True))

    def test_run_experiment_streams_identically(self, monkeypatch, tiny_cfg):
        monkeypatch.delenv("REPRO_STREAM", raising=False)
        in_memory = run_experiment(
            "tiny", seed=0, config=tiny_cfg, strategies=STRATEGIES
        )
        streamed = run_experiment(
            "tiny",
            seed=0,
            config=tiny_cfg.variant(streaming=True),
            strategies=STRATEGIES,
        )
        assert _keys(streamed) == _keys(in_memory)

    def test_streaming_kwargs_rejected_in_memory(self, tiny_cfg):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_experiment(
                "tiny", config=tiny_cfg.variant(streaming=False), sketch_k=4
            )

    def test_config_validates_streaming_field(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            ExperimentConfig(streaming="yes")  # type: ignore[arg-type]

    def test_generator_seed_rejected(self):
        with pytest.raises(ValidationError):
            StreamingExperiment(seed=np.random.default_rng(0))

    def test_non_int_config_seed_rejected(self):
        # The in-memory loop consumes a shared SeedSequence config seed in
        # lazy spawn order; identity cannot hold, so the engine says so.
        cfg = ExperimentConfig(
            n_replications=1, sample_size=4, seed=np.random.SeedSequence(0)
        )
        with pytest.raises(ValidationError):
            StreamingExperiment(config=cfg)

    def test_population_seedsequence_snapshot(self):
        # The *population* seed may be a SeedSequence — the engine snapshots
        # it, so prior spawns by the caller cannot shift any stream.
        cfg = ExperimentConfig(n_replications=2, sample_size=6, seed=3)
        used = np.random.SeedSequence(0)
        used.spawn(4)
        streamed = StreamingExperiment.from_scale(
            "tiny", seed=used, config=cfg
        ).run(STRATEGIES)
        base = StreamingExperiment.from_scale("tiny", seed=0, config=cfg).run(
            STRATEGIES
        )
        assert _keys(streamed.result) == _keys(base.result)

    def test_repeated_run_same_engine(self):
        cfg = ExperimentConfig(n_replications=2, sample_size=6, seed=3)
        engine = StreamingExperiment.from_scale(
            "tiny", seed=np.random.SeedSequence(7), config=cfg, sketch_k=4
        )
        first = engine.run(STRATEGIES)
        second = engine.run(STRATEGIES)
        assert _keys(first.result) == _keys(second.result)
        assert first.sketch.keys == second.sketch.keys
        assert first.sketch.tau == second.sketch.tau

    def test_run_streaming_experiment_entry_point(self, tiny_cfg):
        streamed = run_streaming_experiment(
            "tiny", seed=0, config=tiny_cfg, strategies=STRATEGIES
        )
        assert len(streamed.outcomes) == tiny_cfg.n_replications * len(STRATEGIES)
