"""DetectorSuite, scale transforms, and ideal-set identification."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.glitches.detectors import (
    DetectorSuite,
    ScaleTransform,
    identify_ideal,
    partition_by_cleanliness,
)
from repro.glitches.types import GlitchType

from helpers import make_dataset, make_series


class TestScaleTransform:
    def test_log_attr1_forward_inverse_roundtrip(self):
        tr = ScaleTransform.log_attr1()
        s = make_series([[10.0, 2.0, 0.9], [20.0, 3.0, 0.8]])
        back = tr.inverse_values(
            tr.forward_values(s.values, s.attributes), s.attributes
        )
        assert np.allclose(back, s.values)

    def test_forward_negative_becomes_nan(self):
        tr = ScaleTransform.log_attr1()
        s = make_series([[-5.0, 2.0, 0.9]])
        out = tr.forward_values(s.values, s.attributes)
        assert np.isnan(out[0, 0])
        assert out[0, 1] == 2.0

    def test_apply_dataset(self, tiny_bundle):
        tr = ScaleTransform.log_attr1()
        scaled = tr.apply_dataset(tiny_bundle.ideal)
        raw = tiny_bundle.ideal.pooled_column("attr1")
        log = scaled.pooled_column("attr1")
        assert np.median(log) == pytest.approx(np.log(np.median(raw)), rel=0.05)

    def test_missing_inverse_raises(self):
        tr = ScaleTransform("attr1", np.log, "log-only")
        with pytest.raises(ValidationError):
            tr.inverse_values(np.zeros((1, 3)), ("attr1", "attr2", "attr3"))

    def test_absent_attribute_is_noop(self):
        tr = ScaleTransform("zzz", np.log, "zzz", inverse=np.exp)
        values = np.ones((2, 3))
        assert np.array_equal(tr.forward_values(values, ("a", "b", "c")), values)


class TestDetectorSuite:
    def test_annotation_shape(self, tiny_bundle):
        series = tiny_bundle.dirty[0]
        matrix = tiny_bundle.suite.annotate(series)
        assert matrix.bits.shape == (series.length, 3, 3)

    def test_missing_plane_matches_nan(self, tiny_bundle):
        series = tiny_bundle.dirty[0]
        matrix = tiny_bundle.suite.annotate(series)
        assert np.array_equal(
            matrix.plane(GlitchType.MISSING), np.isnan(series.values)
        )

    def test_no_outlier_detector_means_no_outliers(self, tiny_bundle):
        suite = DetectorSuite(outlier_detector=None)
        matrix = suite.annotate(tiny_bundle.dirty[0])
        assert not matrix.plane(GlitchType.OUTLIER).any()

    def test_transform_only_changes_outlier_plane(self, tiny_bundle):
        """Table 1: missing/inconsistent rates identical with and without log."""
        raw = DetectorSuite.from_ideal(tiny_bundle.ideal)
        log = DetectorSuite.from_ideal(
            tiny_bundle.ideal, transform=ScaleTransform.log_attr1()
        )
        for series in tiny_bundle.dirty.series[:10]:
            a = raw.annotate(series)
            b = log.annotate(series)
            assert np.array_equal(
                a.plane(GlitchType.MISSING), b.plane(GlitchType.MISSING)
            )
            assert np.array_equal(
                a.plane(GlitchType.INCONSISTENT), b.plane(GlitchType.INCONSISTENT)
            )

    def test_log_scale_flags_dips(self, small_bundle):
        """Log-scale outlier rate exceeds raw-scale rate (Table 1's 5% vs 17%)."""
        raw = DetectorSuite.from_ideal(small_bundle.ideal)
        log = DetectorSuite.from_ideal(
            small_bundle.ideal, transform=ScaleTransform.log_attr1()
        )
        raw_rate = raw.annotate_dataset(small_bundle.dirty).record_fraction(
            GlitchType.OUTLIER
        )
        log_rate = log.annotate_dataset(small_bundle.dirty).record_fraction(
            GlitchType.OUTLIER
        )
        assert log_rate > 1.5 * raw_rate


class TestPartition:
    def test_partition_disjoint_and_complete(self, tiny_bundle):
        part = partition_by_cleanliness(
            tiny_bundle.population, tiny_bundle.suite, max_fraction=0.05
        )
        assert set(part.dirty_indices).isdisjoint(part.ideal_indices)
        assert len(part.dirty_indices) + len(part.ideal_indices) == len(
            tiny_bundle.population
        )

    def test_ideal_series_meet_requirement(self, tiny_bundle):
        part = partition_by_cleanliness(
            tiny_bundle.population, tiny_bundle.suite, max_fraction=0.05
        )
        for series in part.ideal.series[:10]:
            matrix = tiny_bundle.suite.annotate(series)
            for g in GlitchType:
                assert matrix.record_fraction(g) < 0.05

    def test_all_clean_raises(self, tiny_bundle):
        suite = DetectorSuite(outlier_detector=None)
        clean = tiny_bundle.clean
        with pytest.raises(ValidationError):
            partition_by_cleanliness(clean, suite, max_fraction=0.05)

    def test_impossible_threshold_raises(self, tiny_bundle):
        with pytest.raises(ValidationError):
            partition_by_cleanliness(
                tiny_bundle.population, tiny_bundle.suite, max_fraction=0.0
            )

    def test_ideal_fraction_property(self, tiny_bundle):
        part = tiny_bundle.partition
        assert part.ideal_fraction == pytest.approx(
            len(part.ideal_indices) / len(tiny_bundle.population)
        )


def _stable_mixed_dataset():
    """Six quiet series plus two NaN-riddled ones: the round-0 split
    (missing/inconsistent rates only) is already the fixed point, because the
    fitted 3-sigma limits flag nothing new."""
    quiet = [
        [[10.0 + 0.1 * t * (k + 1) % 1.0, 2.0, 0.95] for t in range(20)]
        for k in range(6)
    ]
    gappy = [
        [[np.nan if t % 3 == 0 else 10.0, np.nan, 0.95] for t in range(20)]
        for _ in range(2)
    ]
    return make_dataset(*(quiet + gappy))


class TestIdentifyIdeal:
    def test_returns_fitted_suite(self, tiny_bundle):
        part, suite = identify_ideal(tiny_bundle.population)
        assert suite.outlier_detector is not None
        assert len(part.ideal) > 0

    def test_max_iter_one_still_fits_limits(self):
        """A single round must return a fitted suite and a usable split."""
        data = _stable_mixed_dataset()
        part, suite = identify_ideal(data, max_iter=1)
        assert suite.outlier_detector is not None
        assert sorted(part.ideal_indices + part.dirty_indices) == list(
            range(len(data))
        )

    def test_all_clean_dataset_raises(self, tiny_bundle):
        """An empty dirty side is an error: the framework needs both sides."""
        with pytest.raises(ValidationError):
            identify_ideal(tiny_bundle.clean)

    def test_convergence_in_zero_rounds(self):
        """When the bootstrap split is already the fixed point, extra rounds
        change nothing — max_iter=1 and max_iter=5 agree exactly."""
        data = _stable_mixed_dataset()
        part1, suite1 = identify_ideal(data, max_iter=1)
        part5, suite5 = identify_ideal(data, max_iter=5)
        assert part1.ideal_indices == part5.ideal_indices
        assert part1.dirty_indices == part5.dirty_indices
        l1 = suite1.outlier_detector.limits
        l5 = suite5.outlier_detector.limits
        assert {a: l1.bounds(a) for a in l1.attributes} == {
            a: l5.bounds(a) for a in l5.attributes
        }

    def test_backend_fan_out_matches_serial(self, tiny_bundle):
        """The sharded annotate/partition pass is a pure fan-out: thread and
        process backends reach the exact same fixed point."""
        serial_part, serial_suite = identify_ideal(tiny_bundle.population)
        for backend in ("thread:2", "process:2"):
            part, suite = identify_ideal(
                tiny_bundle.population, backend=backend, shard_size=9
            )
            assert part.ideal_indices == serial_part.ideal_indices
            assert part.dirty_indices == serial_part.dirty_indices
            ls, lp = serial_suite.outlier_detector.limits, suite.outlier_detector.limits
            assert {a: ls.bounds(a) for a in ls.attributes} == {
                a: lp.bounds(a) for a in lp.attributes
            }

    def test_fixed_point_is_stable(self, tiny_bundle):
        part1, suite1 = identify_ideal(tiny_bundle.population, max_iter=3)
        part2 = partition_by_cleanliness(tiny_bundle.population, suite1)
        assert part1.ideal_indices == part2.ideal_indices

    def test_rejects_bad_max_iter(self, tiny_bundle):
        with pytest.raises(ValidationError):
            identify_ideal(tiny_bundle.population, max_iter=0)
