"""Sharded pipeline: layout planning, stage execution, and the population
build's cross-backend bitwise-determinism contract."""

import numpy as np
import pytest

from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.pipeline import (
    Pipeline,
    ShardSpec,
    ShardedStage,
    build_shards,
    plan_shards,
)
from repro.errors import ExperimentError
from repro.experiments.config import build_population
from repro.utils.rng import spawn_sequences


class TestPlanShards:
    def test_ranges_cover_and_partition(self):
        bounds = plan_shards(100, shard_size=7)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        assert sum(hi - lo for lo, hi in bounds) == 100

    def test_single_shard_when_size_exceeds_items(self):
        assert plan_shards(5, shard_size=1000) == [(0, 5)]

    def test_zero_items_empty_plan(self):
        assert plan_shards(0) == []

    def test_negative_items_rejected(self):
        with pytest.raises(ExperimentError):
            plan_shards(-1)

    def test_env_var_pins_shard_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_SIZE", "10")
        assert plan_shards(25) == [(0, 10), (10, 20), (20, 25)]

    def test_env_var_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_SIZE", "many")
        with pytest.raises(ExperimentError):
            plan_shards(25)

    def test_explicit_size_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_SIZE", "10")
        assert plan_shards(25, shard_size=25) == [(0, 25)]


class TestBuildShards:
    def test_seeds_sliced_by_item_index(self):
        shards = build_shards(10, seed=0, shard_size=3)
        flat = [seq for s in shards for seq in s.seeds]
        expected = spawn_sequences(0, 10)
        assert [s.entropy for s in flat] == [e.entropy for e in expected]
        assert [s.spawn_key for s in flat] == [e.spawn_key for e in expected]

    def test_layout_never_changes_item_streams(self):
        """The determinism keystone: item i's stream is layout-invariant."""
        coarse = build_shards(12, seed=42, shard_size=12)
        fine = build_shards(12, seed=42, shard_size=5)
        flat_coarse = [seq for s in coarse for seq in s.seeds]
        flat_fine = [seq for s in fine for seq in s.seeds]
        draws_coarse = [np.random.default_rng(s).random() for s in flat_coarse]
        draws_fine = [np.random.default_rng(s).random() for s in flat_fine]
        assert draws_coarse == draws_fine

    def test_seedless_shards(self):
        shards = build_shards(7, shard_size=4, with_seeds=False)
        assert all(s.seeds == () for s in shards)

    def test_randomized_shards_require_explicit_seed(self):
        """seed=None must raise, not silently spawn OS-entropy streams."""
        with pytest.raises(ExperimentError):
            build_shards(7, shard_size=4)
        # explicit entropy is still available by passing a generator
        assert build_shards(3, seed=np.random.default_rng(), shard_size=2)

    def test_spec_validates_seed_count(self):
        with pytest.raises(ExperimentError):
            ShardSpec(index=0, start=0, stop=3, seeds=tuple(spawn_sequences(0, 2)))

    def test_spec_validates_range(self):
        with pytest.raises(ExperimentError):
            ShardSpec(index=0, start=4, stop=2)


def _double_shard(unit):
    """Module-level work function (picklable for the process backend)."""
    spec, items = unit
    return [2 * x for x in items]


def _short_shard(unit):
    spec, items = unit
    return [0]  # always one result, wrong for shards with more items


class TestPipelineRun:
    def _stage(self, fn, data):
        return ShardedStage("demo", fn, lambda s: (s, data[s.start : s.stop]))

    @pytest.mark.parametrize(
        "backend", [SerialBackend(), ThreadBackend(2), ProcessBackend(2, min_units=1)]
    )
    def test_results_flatten_in_item_order(self, backend):
        data = list(range(23))
        pipeline = Pipeline(backend, shard_size=5)
        shards = pipeline.shards(len(data), with_seeds=False)
        result = pipeline.run(self._stage(_double_shard, data), shards)
        assert result == [2 * x for x in data]

    def test_wrong_result_count_raises(self):
        data = list(range(10))
        pipeline = Pipeline(SerialBackend(), shard_size=4)
        shards = pipeline.shards(len(data), with_seeds=False)
        with pytest.raises(ExperimentError):
            pipeline.run(self._stage(_short_shard, data), shards)

    def test_pipeline_resolves_backend_names(self):
        assert Pipeline("thread:2").backend.name == "thread"
        assert Pipeline(None).backend.name == "serial"

    def test_coerce_reuses_or_rewraps_pipelines(self):
        pipe = Pipeline("thread:2", shard_size=8)
        assert Pipeline.coerce(pipe) is pipe
        assert Pipeline.coerce(pipe, shard_size=8) is pipe
        # an explicit disagreeing shard_size is honoured, not dropped
        rewrapped = Pipeline.coerce(pipe, shard_size=3)
        assert rewrapped.shard_size == 3
        assert rewrapped.backend is pipe.backend
        assert Pipeline.coerce("serial").backend.name == "serial"

    def test_coerce_rejects_n_workers_on_existing_pipeline(self):
        # the backend is already resolved; a worker count cannot apply
        with pytest.raises(ExperimentError):
            Pipeline.coerce(Pipeline("serial"), n_workers=4)

    def test_stage_requires_callables(self):
        with pytest.raises(ExperimentError):
            ShardedStage("bad", None, lambda s: s)


class TestPopulationDeterminism:
    """`build_population` is bitwise identical across backends and layouts.

    `PopulationBundle.fingerprint` pins everything the acceptance criterion
    names: values, injection ledger, dirty/ideal indices, fitted limits.
    """

    def test_serial_thread_process_identical(self):
        serial = build_population(scale="tiny", seed=3, backend=SerialBackend())
        thread = build_population(
            scale="tiny", seed=3, backend=ThreadBackend(3), shard_size=7
        )
        process = build_population(
            scale="tiny", seed=3, backend=ProcessBackend(2, min_units=1), shard_size=13
        )
        reference = serial.fingerprint()
        assert thread.fingerprint() == reference
        assert process.fingerprint() == reference

    def test_shard_layout_invariance(self):
        one_shard = build_population(scale="tiny", seed=5, shard_size=10_000)
        many_shards = build_population(scale="tiny", seed=5, shard_size=3)
        assert one_shard.fingerprint() == many_shards.fingerprint()

    def test_backend_spec_string_accepted(self):
        spec = build_population(scale="tiny", seed=3, backend="thread:2")
        plain = build_population(scale="tiny", seed=3)
        assert spec.fingerprint() == plain.fingerprint()

    def test_seed_changes_population(self):
        a = build_population(scale="tiny", seed=0)
        b = build_population(scale="tiny", seed=1)
        assert a.fingerprint() != b.fingerprint()
