"""Inconsistency constraint DSL — the detector f_I."""

import numpy as np
import pytest

from repro.errors import ConstraintError
from repro.glitches.constraints import (
    ConstraintSet,
    CrossAttributeConstraint,
    LowerBoundConstraint,
    NotPopulatedIfConstraint,
    PredicateConstraint,
    RangeConstraint,
    paper_constraints,
)

from helpers import make_series


@pytest.fixture()
def series():
    return make_series(
        [
            [10.0, 2.0, 0.95],   # clean
            [-3.0, 1.0, 0.90],   # attr1 < 0           -> constraint 1
            [5.0, 4.0, 1.30],    # attr3 > 1           -> constraint 2
            [7.0, 2.0, np.nan],  # attr1 populated, attr3 missing -> constraint 3
            [np.nan, 2.0, np.nan],  # both missing -> no inconsistency
            [8.0, 3.0, -0.10],   # attr3 < 0           -> constraint 2
        ]
    )


class TestLowerBound:
    def test_flags_violations_on_right_column(self, series):
        mask = LowerBoundConstraint("attr1", 0.0).evaluate(series)
        assert mask[:, 0].tolist() == [False, True, False, False, False, False]
        assert not mask[:, 1].any() and not mask[:, 2].any()

    def test_missing_never_violates(self, series):
        mask = LowerBoundConstraint("attr1", 0.0).evaluate(series)
        assert not mask[4, 0]

    def test_strict_flags_boundary(self):
        s = make_series([[0.0, 1.0, 0.5]])
        assert not LowerBoundConstraint("attr1", 0.0).evaluate(s)[0, 0]
        assert LowerBoundConstraint("attr1", 0.0, strict=True).evaluate(s)[0, 0]

    def test_unknown_attribute_raises(self, series):
        with pytest.raises(ConstraintError):
            LowerBoundConstraint("nope", 0.0).evaluate(series)

    def test_describe(self):
        assert "attr1 >= 0" in LowerBoundConstraint("attr1", 0.0).describe()


class TestRange:
    def test_flags_both_sides(self, series):
        mask = RangeConstraint("attr3", 0.0, 1.0).evaluate(series)
        assert mask[:, 2].tolist() == [False, False, True, False, False, True]

    def test_inverted_bounds_raise(self):
        with pytest.raises(ConstraintError):
            RangeConstraint("attr3", 1.0, 0.0)


class TestNotPopulatedIf:
    def test_flags_populated_with_missing_other(self, series):
        mask = NotPopulatedIfConstraint("attr1", other="attr3").evaluate(series)
        assert mask[:, 0].tolist() == [False, False, False, True, False, False]

    def test_same_attribute_raises(self):
        with pytest.raises(ConstraintError):
            NotPopulatedIfConstraint("attr1", other="attr1")


class TestCrossAttribute:
    def test_ge_violation(self):
        s = make_series([[1.0, 5.0, 0.5], [5.0, 1.0, 0.5]])
        mask = CrossAttributeConstraint("attr1", ">=", "attr2").evaluate(s)
        assert mask[:, 0].tolist() == [True, False]

    def test_missing_side_never_violates(self):
        s = make_series([[np.nan, 5.0, 0.5], [1.0, np.nan, 0.5]])
        mask = CrossAttributeConstraint("attr1", ">=", "attr2").evaluate(s)
        assert not mask.any()

    def test_bad_operator_raises(self):
        with pytest.raises(ConstraintError):
            CrossAttributeConstraint("attr1", "!!", "attr2")


class TestPredicate:
    def test_custom_predicate(self, series):
        c = PredicateConstraint(
            "attr2",
            lambda v: np.nan_to_num(v[:, 1]) > 3.0,
            "attr2 must be <= 3",
        )
        mask = c.evaluate(series)
        assert mask[:, 1].tolist() == [False, False, True, False, False, False]

    def test_wrong_shape_raises(self, series):
        c = PredicateConstraint("attr2", lambda v: np.zeros((2,), bool), "bad")
        with pytest.raises(ConstraintError):
            c.evaluate(series)


class TestConstraintSet:
    def test_paper_constraints_or_combined(self, series):
        mask = paper_constraints().evaluate(series)
        flagged_records = mask.any(axis=1)
        assert flagged_records.tolist() == [False, True, True, True, False, True]

    def test_detect_alias(self, series):
        cs = paper_constraints()
        assert np.array_equal(cs.detect(series), cs.evaluate(series))

    def test_empty_set_flags_nothing(self, series):
        assert not ConstraintSet([]).evaluate(series).any()

    def test_describe_lists_rules(self):
        assert len(paper_constraints().describe()) == 3

    def test_len_and_iter(self):
        cs = paper_constraints()
        assert len(cs) == 3
        assert len(list(cs)) == 3
