"""End-to-end integration tests asserting the paper's qualitative results.

These are the repository's acceptance tests: each test pins one claim from
the paper's evaluation section on the small-scale reproduction. They use the
session-scoped small bundle and a reduced replication count, which is already
enough for every ordering to be stable.
"""

import numpy as np
import pytest

from repro.core.evaluation import glitch_fraction_table
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.cleaning.registry import paper_strategies
from repro.experiments.paper import run_figure6, run_figure7
from repro.glitches.detectors import DetectorSuite, ScaleTransform
from repro.glitches.types import GlitchType


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(n_replications=6, sample_size=40, seed=0)


@pytest.fixture(scope="module")
def result_log(small_bundle, cfg):
    return run_figure6(small_bundle, cfg)


@pytest.fixture(scope="module")
def result_raw(small_bundle, cfg):
    return run_figure6(small_bundle, cfg.variant(log_transform=False))


def by_strategy(result):
    return {s.strategy: s for s in result.summaries()}


class TestTable1Shape:
    """Table 1: glitch percentages before and after cleaning."""

    def test_dirty_rates_match_paper_bands(self, small_bundle):
        g = small_bundle.suite.annotate_dataset(small_bundle.dirty)
        fr = g.record_fractions()
        assert 0.10 < fr[GlitchType.MISSING] < 0.22        # paper: 15.8%
        assert 0.10 < fr[GlitchType.INCONSISTENT] < 0.22   # paper: 15.9%
        assert 0.03 < fr[GlitchType.OUTLIER] < 0.12        # paper: 5.1%

    def test_log_outlier_rate_much_higher(self, small_bundle):
        suite_log = DetectorSuite.from_ideal(
            small_bundle.ideal, transform=ScaleTransform.log_attr1()
        )
        log_rate = suite_log.annotate_dataset(small_bundle.dirty).record_fraction(
            GlitchType.OUTLIER
        )
        raw_rate = small_bundle.suite.annotate_dataset(
            small_bundle.dirty
        ).record_fraction(GlitchType.OUTLIER)
        assert log_rate > 1.5 * raw_rate                    # paper: 16.8 vs 5.1

    def test_treated_rates(self, result_log):
        table = glitch_fraction_table(result_log.outcomes)
        # Strategies 1/2/4/5 eliminate missing values entirely.
        for s in ("strategy1", "strategy2", "strategy4", "strategy5"):
            assert table[s]["missing_treated"] == pytest.approx(0.0, abs=0.1)
        # Strategy 3 ignores missing/inconsistent.
        assert table["strategy3"]["missing_treated"] == pytest.approx(
            table["strategy3"]["missing_dirty"], abs=0.1
        )
        # MVN imputation plants new inconsistencies; mean replacement doesn't.
        assert table["strategy1"]["inconsistent_treated"] > 0.5
        assert table["strategy4"]["inconsistent_treated"] == pytest.approx(0.0, abs=0.05)
        assert table["strategy5"]["inconsistent_treated"] == pytest.approx(0.0, abs=0.05)
        # Winsorizing strategies end with zero outliers...
        for s in ("strategy1", "strategy3", "strategy5"):
            assert table[s]["outlier_treated"] == pytest.approx(0.0, abs=0.1)
        # ...while strategy 2 *increases* the outlier rate (paper: 17.6 > 16.8).
        assert (
            table["strategy2"]["outlier_treated"]
            > table["strategy2"]["outlier_dirty"]
        )


class TestFigure6Shape:
    """Figure 6: who wins on improvement and distortion."""

    def test_improvement_ordering(self, result_log):
        s = by_strategy(result_log)
        # Full-treatment strategies lead; winsorize-only trails.
        assert s["strategy5"].improvement_mean > s["strategy4"].improvement_mean
        assert s["strategy1"].improvement_mean > s["strategy2"].improvement_mean
        assert s["strategy1"].improvement_mean > s["strategy3"].improvement_mean
        assert s["strategy4"].improvement_mean > s["strategy3"].improvement_mean

    def test_mean_family_less_distorting_than_mi_family(self, result_log, result_raw):
        """The paper's headline: 'a simple and cheap strategy outperformed a
        more sophisticated and expensive strategy'."""
        for result in (result_log, result_raw):
            s = by_strategy(result)
            assert s["strategy4"].distortion_mean < s["strategy2"].distortion_mean
            assert s["strategy5"].distortion_mean < (
                s["strategy1"].distortion_mean + s["strategy2"].distortion_mean
            ) / 2 * 1.5

    def test_winsorize_only_among_lowest_distortion(self, result_log, result_raw):
        """S3 sits at the bottom of the distortion axis, clearly below every
        strategy that also treats missing/inconsistent values with the MVN
        imputer, and at worst on par with mean replacement."""
        for result in (result_log, result_raw):
            s = by_strategy(result)
            d3 = s["strategy3"].distortion_mean
            assert d3 < s["strategy1"].distortion_mean
            assert d3 < s["strategy2"].distortion_mean
            assert d3 < s["strategy5"].distortion_mean
            assert d3 <= s["strategy4"].distortion_mean * 1.4

    def test_log_transform_raises_winsorize_improvement(
        self, result_log, result_raw
    ):
        """Section 5.5: more outliers flagged under the log means more glitch
        improvement for the winsorize-only strategy."""
        log3 = by_strategy(result_log)["strategy3"].improvement_mean
        raw3 = by_strategy(result_raw)["strategy3"].improvement_mean
        assert log3 > raw3

    def test_all_improvements_positive(self, result_log):
        for s in result_log.summaries():
            assert s.improvement_mean > 0


class TestFigure6SampleSize:
    def test_larger_sample_tightens_clusters(self, small_bundle, cfg):
        """Section 5.5: 'with an increase in sample size, the points
        coalesce'. Variance of both axes shrinks with B for the deterministic
        strategies (the MVN imputer's fit instability is a separate, real
        source of spread that B alone does not remove)."""
        from repro.cleaning.registry import strategy_by_name

        strategies = [strategy_by_name(f"strategy{i}") for i in (3, 4, 5)]
        small_b = run_figure6(
            small_bundle, cfg.variant(sample_size=10, n_replications=8, seed=1),
            strategies=strategies,
        )
        large_b = run_figure6(
            small_bundle, cfg.variant(sample_size=80, n_replications=8, seed=1),
            strategies=strategies,
        )
        small_spread = [
            s.distortion_std + s.improvement_std / 20 for s in small_b.summaries()
        ]
        large_spread = [
            s.distortion_std + s.improvement_std / 20 for s in large_b.summaries()
        ]
        assert np.mean(large_spread) < np.mean(small_spread)


class TestFigure7Shape:
    def test_cost_sweep_monotone_with_diminishing_returns(self, small_bundle, cfg):
        sweep = run_figure7(small_bundle, cfg.variant(n_replications=4))
        ordered = sorted(sweep.summaries(), key=lambda s: s.cost_fraction)
        imps = [s.improvement_mean for s in ordered]
        dists = [s.distortion_mean for s in ordered]
        assert imps[0] == pytest.approx(0.0, abs=1e-9)     # 0% = untouched
        assert dists[0] == pytest.approx(0.0, abs=1e-9)
        assert all(b >= a - 1e-9 for a, b in zip(imps, imps[1:]))
        gains = sweep.marginal_gains()
        # Improvement per extra fraction cleaned decreases: the 20%->50% and
        # 50%->100% steps buy less per unit mass than the first 20%.
        per_unit = [di / (f2 - f1) for (f2, di, _), f1 in zip(gains, (0.0, 0.2, 0.5))]
        assert per_unit[0] > per_unit[-1]
