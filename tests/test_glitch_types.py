"""GlitchMatrix / DatasetGlitches containers."""

import numpy as np
import pytest

from repro.errors import DataShapeError, ValidationError
from repro.glitches.types import (
    N_GLITCH_TYPES,
    DatasetGlitches,
    GlitchMatrix,
    GlitchType,
)

from helpers import make_series


@pytest.fixture()
def matrix():
    bits = np.zeros((4, 3, 3), dtype=bool)
    bits[0, 0, int(GlitchType.MISSING)] = True
    bits[0, 1, int(GlitchType.MISSING)] = True
    bits[1, 2, int(GlitchType.INCONSISTENT)] = True
    bits[3, 0, int(GlitchType.OUTLIER)] = True
    return GlitchMatrix(bits)


class TestGlitchType:
    def test_three_types(self):
        assert N_GLITCH_TYPES == 3

    def test_labels(self):
        assert GlitchType.MISSING.label == "missing"
        assert GlitchType.OUTLIER.label == "outlier"

    def test_int_values_are_plane_indices(self):
        assert [int(g) for g in GlitchType] == [0, 1, 2]


class TestGlitchMatrix:
    def test_rejects_wrong_rank(self):
        with pytest.raises(DataShapeError):
            GlitchMatrix(np.zeros((2, 3), dtype=bool))

    def test_rejects_wrong_type_axis(self):
        with pytest.raises(DataShapeError):
            GlitchMatrix(np.zeros((2, 3, 4), dtype=bool))

    def test_empty_factory(self):
        m = GlitchMatrix.empty(5, 3)
        assert m.length == 5
        assert m.n_attributes == 3
        assert not m.bits.any()

    def test_for_series_factory(self, simple_series):
        m = GlitchMatrix.for_series(simple_series)
        assert m.length == simple_series.length

    def test_plane_is_view(self, matrix):
        plane = matrix.plane(GlitchType.MISSING)
        assert plane.shape == (4, 3)
        plane[2, 2] = True
        assert matrix.bits[2, 2, 0]

    def test_record_any(self, matrix):
        rec = matrix.record_any(GlitchType.MISSING)
        assert rec.tolist() == [True, False, False, False]

    def test_record_fraction(self, matrix):
        assert matrix.record_fraction(GlitchType.MISSING) == pytest.approx(0.25)
        assert matrix.record_fraction(GlitchType.OUTLIER) == pytest.approx(0.25)

    def test_cell_fraction(self, matrix):
        assert matrix.cell_fraction(GlitchType.MISSING) == pytest.approx(2 / 12)

    def test_cell_any(self, matrix):
        assert matrix.cell_any().sum() == 4

    def test_counts_by_type(self, matrix):
        assert matrix.counts_by_type().tolist() == [2, 1, 1]

    def test_union(self, matrix):
        other = GlitchMatrix.empty(4, 3)
        other.bits[2, 0, int(GlitchType.OUTLIER)] = True
        merged = matrix.union(other)
        assert merged.bits.sum() == 5

    def test_union_shape_mismatch_raises(self, matrix):
        with pytest.raises(DataShapeError):
            matrix.union(GlitchMatrix.empty(5, 3))

    def test_copy_is_deep(self, matrix):
        c = matrix.copy()
        c.bits[0, 0, 0] = False
        assert matrix.bits[0, 0, 0]


class TestDatasetGlitches:
    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            DatasetGlitches([])

    def test_record_fraction_pooled(self, matrix):
        clean = GlitchMatrix.empty(4, 3)
        pooled = DatasetGlitches([matrix, clean])
        assert pooled.record_fraction(GlitchType.MISSING) == pytest.approx(1 / 8)

    def test_record_fractions_keys(self, matrix):
        fr = DatasetGlitches([matrix]).record_fractions()
        assert set(fr) == set(GlitchType)

    def test_indexing(self, matrix):
        d = DatasetGlitches([matrix])
        assert d[0] is matrix
        assert len(d) == 1
