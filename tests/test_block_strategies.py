"""The columnar fast path's bitwise-identity contract.

Every block-level operation must reproduce its per-series counterpart
exactly — same bits, not approximately. These tests pin that contract for
the detector suite, each registry strategy (plus the extension strategies
and wrappers), and the full experiment loop across execution backends with
the fast path on and off.
"""

import numpy as np
import pytest

from repro.cleaning.base import CleaningContext, IdentityStrategy
from repro.cleaning.partial import PartialCleaner
from repro.cleaning.registry import paper_strategies, strategy_by_name
from repro.cleaning.remeasure import RemeasureStrategy
from repro.core.distortion import statistical_distortion_batch
from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.core.glitch_index import (
    GlitchWeights,
    series_glitch_scores,
    series_glitch_scores_block,
)
from repro.data.dataset import StreamDataset
from repro.glitches.detectors import DetectorSuite, ScaleTransform
from repro.sampling.replication import generate_test_pairs

REGISTRY_NAMES = [f"strategy{i}" for i in range(1, 6)]


@pytest.fixture(scope="module")
def block_pair(tiny_bundle):
    """One replication pair carrying both layouts."""
    pair = next(
        generate_test_pairs(tiny_bundle.dirty, tiny_bundle.ideal, 1, 14, seed=11)
    )
    assert pair.dirty_block is not None  # uniform-length population
    return pair


def _context(pair, log=True, seed=123):
    return CleaningContext(
        ideal=pair.ideal,
        transform=ScaleTransform.log_attr1() if log else None,
        seed=seed,
        ideal_block=pair.ideal_block,
    )


def _assert_layouts_identical(dataset, block):
    assert len(dataset) == block.n_series
    for i, series in enumerate(dataset):
        np.testing.assert_array_equal(series.values, block.values[i])


class TestStrategyEquivalence:
    """clean() and clean_block() are bitwise-identical under fixed seeds."""

    @pytest.mark.parametrize("name", REGISTRY_NAMES)
    @pytest.mark.parametrize("log", [True, False])
    def test_registry_strategy(self, block_pair, name, log):
        strategy = strategy_by_name(name)
        treated_series = strategy.clean(
            block_pair.dirty, _context(block_pair, log=log)
        )
        treated_block = strategy.clean_block(
            block_pair.dirty_block, _context(block_pair, log=log)
        )
        assert treated_block is not None
        _assert_layouts_identical(treated_series, treated_block)

    @pytest.mark.parametrize(
        "name", ["interpolate", "interpolate+winsorize", "regression"]
    )
    def test_extension_strategies(self, block_pair, name):
        strategy = strategy_by_name(name)
        treated_series = strategy.clean(block_pair.dirty, _context(block_pair))
        treated_block = strategy.clean_block(
            block_pair.dirty_block, _context(block_pair)
        )
        assert treated_block is not None
        _assert_layouts_identical(treated_series, treated_block)

    def test_identity_strategy(self, block_pair):
        strategy = IdentityStrategy()
        treated_block = strategy.clean_block(
            block_pair.dirty_block, _context(block_pair)
        )
        _assert_layouts_identical(
            strategy.clean(block_pair.dirty, _context(block_pair)), treated_block
        )

    @pytest.mark.parametrize("coverage", [1.0, 0.4])
    def test_remeasure(self, block_pair, coverage):
        strategy = RemeasureStrategy(coverage=coverage, include_outliers=True)
        treated_series = strategy.clean(block_pair.dirty, _context(block_pair))
        treated_block = strategy.clean_block(
            block_pair.dirty_block, _context(block_pair)
        )
        _assert_layouts_identical(treated_series, treated_block)

    @pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
    def test_partial_cleaner(self, block_pair, fraction):
        strategy = PartialCleaner(strategy_by_name("strategy4"), fraction=fraction)
        treated_series = strategy.clean(block_pair.dirty, _context(block_pair))
        treated_block = strategy.clean_block(
            block_pair.dirty_block, _context(block_pair)
        )
        assert treated_block is not None
        _assert_layouts_identical(treated_series, treated_block)
        assert strategy.cost_fraction == fraction


class TestLegacyConstraintCompat:
    def test_evaluate_only_subclass_works_on_blocks(self, block_pair):
        from repro.glitches.constraints import Constraint, ConstraintSet

        class LegacyNegativeAttr2(Constraint):
            """Implements only the original per-series contract."""

            def evaluate(self, series):
                mask = np.zeros(series.values.shape, dtype=bool)
                col = series.values[:, 1]
                with np.errstate(invalid="ignore"):
                    mask[:, 1] = np.isfinite(col) & (col < 0)
                return mask

            def describe(self):
                return "attr2 >= 0 (legacy)"

        constraint_set = ConstraintSet([LegacyNegativeAttr2()])
        block = block_pair.dirty_block
        block_mask = constraint_set.evaluate_values(block.values, block.attributes)
        for i, series in enumerate(block_pair.dirty):
            np.testing.assert_array_equal(
                constraint_set.evaluate(series), block_mask[i]
            )


class TestAnnotationEquivalence:
    def test_annotate_block_matches_annotate_dataset(self, block_pair):
        suite = DetectorSuite.from_ideal(
            block_pair.ideal, transform=ScaleTransform.log_attr1()
        )
        per_series = suite.annotate_dataset(block_pair.dirty)
        block = suite.annotate_block(block_pair.dirty_block)
        assert len(per_series) == block.n_series
        for i, matrix in enumerate(per_series):
            np.testing.assert_array_equal(matrix.bits, block.bits[i])
        assert per_series.record_fractions() == block.record_fractions()

    def test_block_scores_match_series_scores(self, block_pair):
        suite = DetectorSuite.from_ideal(block_pair.ideal)
        weights = GlitchWeights()
        expected = series_glitch_scores(
            suite.annotate_dataset(block_pair.dirty), weights
        )
        got = series_glitch_scores_block(
            suite.annotate_block(block_pair.dirty_block), weights
        )
        np.testing.assert_array_equal(expected, got)


class TestDistortionEquivalence:
    def test_block_columns_match_per_series_pooling(self, block_pair):
        context = _context(block_pair)
        strategies = [strategy_by_name(n) for n in REGISTRY_NAMES]
        treated_blocks = [
            s.clean_block(block_pair.dirty_block, context) for s in strategies
        ]
        treated_sets = [StreamDataset.from_block(b) for b in treated_blocks]
        transform = ScaleTransform.log_attr1()
        from_blocks = statistical_distortion_batch(
            block_pair.dirty_block, treated_blocks, transform=transform
        )
        from_series = statistical_distortion_batch(
            block_pair.dirty, treated_sets, transform=transform
        )
        assert from_blocks == from_series


class TestFullRunEquivalence:
    """Outcome lists are bitwise-identical: block on/off x all backends."""

    @staticmethod
    def _keys(result):
        return [
            (
                o.strategy,
                o.replication,
                o.improvement,
                o.distortion,
                o.glitch_index_dirty,
                o.glitch_index_treated,
                o.cost_fraction,
                tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
                tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())),
            )
            for o in result.outcomes
        ]

    def test_block_vs_loop_across_backends(self, tiny_bundle, monkeypatch):
        cfg = ExperimentConfig(n_replications=2, sample_size=10, seed=3)
        backends = {
            "serial": SerialBackend,
            "thread": lambda: ThreadBackend(2),
            "process": lambda: ProcessBackend(2, min_units=1),
        }
        monkeypatch.setenv("REPRO_BLOCK", "0")
        reference = ExperimentRunner(
            tiny_bundle.dirty, tiny_bundle.ideal, config=cfg
        ).run(paper_strategies())
        reference_keys = self._keys(reference)
        for use_block in ("0", "1"):
            monkeypatch.setenv("REPRO_BLOCK", use_block)
            for name, factory in backends.items():
                result = ExperimentRunner(
                    tiny_bundle.dirty,
                    tiny_bundle.ideal,
                    config=cfg,
                    backend=factory(),
                ).run(paper_strategies())
                assert self._keys(result) == reference_keys, (
                    f"outcomes diverged: REPRO_BLOCK={use_block}, backend={name}"
                )

    def test_fast_path_engages_by_default(self, tiny_bundle, monkeypatch):
        monkeypatch.delenv("REPRO_BLOCK", raising=False)
        pair = next(
            generate_test_pairs(tiny_bundle.dirty, tiny_bundle.ideal, 1, 5, seed=0)
        )
        assert pair.dirty_block is not None
        assert pair.ideal_block is not None

    def test_fallback_disables_block_sampling(self, tiny_bundle, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK", "0")
        pair = next(
            generate_test_pairs(tiny_bundle.dirty, tiny_bundle.ideal, 1, 5, seed=0)
        )
        assert pair.dirty_block is None
        assert len(pair.dirty) == 5
