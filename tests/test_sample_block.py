"""SampleBlock: round-tripping, zero-copy views, sampling, pickling."""

import pickle

import numpy as np
import pytest

from repro.data.block import SampleBlock, block_fast_path_enabled
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.data.topology import NodeId
from repro.errors import DataShapeError, ValidationError

from helpers import make_series


def _uniform_dataset(n=4, t=6, v=3, seed=0, with_truth=True):
    rng = np.random.default_rng(seed)
    series = []
    for k in range(n):
        truth = rng.normal(size=(t, v)) if with_truth else None
        values = (truth.copy() if with_truth else rng.normal(size=(t, v)))
        values[rng.random(values.shape) < 0.2] = np.nan
        series.append(TimeSeries(NodeId(0, 0, k), values, truth=truth))
    return StreamDataset(series)


class TestRoundTrip:
    def test_to_block_shape_and_metadata(self):
        ds = _uniform_dataset()
        block = ds.to_block()
        assert (block.n_series, block.length, block.n_attributes) == (4, 6, 3)
        assert block.attributes == ds.attributes
        assert block.nodes == tuple(s.node for s in ds)
        assert np.array_equal(block.indices, np.arange(4))

    def test_values_masks_and_truth_lossless(self):
        ds = _uniform_dataset()
        block = ds.to_block()
        back = StreamDataset.from_block(block)
        assert back.attributes == ds.attributes
        for original, restored in zip(ds, back):
            assert restored.node == original.node
            assert np.array_equal(restored.values, original.values, equal_nan=True)
            assert np.array_equal(
                restored.missing_mask, original.missing_mask
            )
            assert np.array_equal(restored.truth, original.truth)

    def test_truth_omitted_when_any_series_lacks_it(self):
        ds = _uniform_dataset(with_truth=False)
        assert ds.to_block().truth is None

    def test_ragged_lengths_raise(self):
        ragged = StreamDataset(
            [
                make_series([[1.0, 2.0, 0.5], [2.0, 3.0, 0.6]]),
                make_series([[1.0, 2.0, 0.5]]),
            ]
        )
        with pytest.raises(DataShapeError):
            ragged.to_block()
        assert ragged.try_to_block() is None

    def test_pooled_matches_dataset_pooled(self):
        ds = _uniform_dataset()
        block = ds.to_block()
        for dropna in ("none", "any", "all"):
            assert np.array_equal(
                block.pooled(dropna), ds.pooled(dropna), equal_nan=True
            )


class TestZeroCopyViews:
    def test_view_mutation_visible_in_parent_block(self):
        block = _uniform_dataset().to_block()
        view_ds = StreamDataset.from_block(block)
        view_ds[2].values[0, 0] = 123.25
        assert block.values[2, 0, 0] == 123.25

    def test_block_mutation_visible_in_views(self):
        block = _uniform_dataset().to_block()
        view_ds = StreamDataset.from_block(block)
        block.values[1, 3, 2] = -7.5
        assert view_ds[1].values[3, 2] == -7.5

    def test_to_block_copies_out_of_the_source_series(self):
        ds = _uniform_dataset()
        block = ds.to_block()
        block.values[0, 0, 0] = 99.0
        assert ds[0].values[0, 0] != 99.0


class TestTakeAndCopy:
    def test_take_gathers_with_repeats(self):
        block = _uniform_dataset().to_block()
        sub = block.take([3, 1, 1])
        assert sub.n_series == 3
        assert np.array_equal(sub.values[1], sub.values[2], equal_nan=True)
        assert np.array_equal(sub.values[0], block.values[3], equal_nan=True)
        assert sub.nodes == (block.nodes[3], block.nodes[1], block.nodes[1])
        assert np.array_equal(sub.indices, [3, 1, 1])

    def test_take_is_a_copy(self):
        block = _uniform_dataset().to_block()
        sub = block.take([0])
        sub.values[0, 0, 0] = 42.0
        assert block.values[0, 0, 0] != 42.0

    def test_take_rejects_bad_indices(self):
        block = _uniform_dataset().to_block()
        with pytest.raises(ValidationError):
            block.take([])
        with pytest.raises(ValidationError):
            block.take([7])

    def test_copy_shares_metadata_but_not_values(self):
        block = _uniform_dataset().to_block()
        dup = block.copy()
        dup.values[0, 0, 0] = 5.5
        assert block.values[0, 0, 0] != 5.5
        assert dup.truth is block.truth
        assert dup.nodes is block.nodes


class TestPickling:
    def test_block_round_trips_through_pickle(self):
        block = _uniform_dataset().to_block()
        restored = pickle.loads(pickle.dumps(block))
        assert np.array_equal(restored.values, block.values, equal_nan=True)
        assert np.array_equal(restored.truth, block.truth)
        assert restored.attributes == block.attributes
        assert restored.nodes == block.nodes


class TestEnvKnob:
    def test_block_fast_path_enabled_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BLOCK", raising=False)
        assert block_fast_path_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "FALSE", "no"])
    def test_block_fast_path_disabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BLOCK", value)
        assert not block_fast_path_enabled()


class TestValidation:
    def test_rejects_wrong_rank(self):
        with pytest.raises(DataShapeError):
            SampleBlock(np.zeros((3, 4)), ("a",), (NodeId(0, 0, 0),) * 3)

    def test_rejects_attribute_mismatch(self):
        with pytest.raises(DataShapeError):
            SampleBlock(np.zeros((2, 3, 3)), ("a", "b"), (NodeId(0, 0, 0),) * 2)

    def test_rejects_node_count_mismatch(self):
        with pytest.raises(DataShapeError):
            SampleBlock(np.zeros((2, 3, 2)), ("a", "b"), (NodeId(0, 0, 0),))

    def test_rejects_truth_shape_mismatch(self):
        with pytest.raises(DataShapeError):
            SampleBlock(
                np.zeros((2, 3, 2)),
                ("a", "b"),
                (NodeId(0, 0, 0),) * 2,
                truth=np.zeros((2, 3, 3)),
            )
