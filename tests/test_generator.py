"""Synthetic generator: the statistical properties the paper depends on."""

import numpy as np
import pytest

from repro.data.generator import GeneratorConfig, NetworkDataGenerator
from repro.errors import ValidationError
from repro.stats.descriptive import nan_skewness


@pytest.fixture(scope="module")
def clean():
    cfg = GeneratorConfig(
        n_rnc=2, towers_per_rnc=4, sectors_per_tower=8, series_length=120,
        min_length=120,
    )
    return NetworkDataGenerator(cfg, seed=42).generate()


class TestConfigValidation:
    def test_defaults_valid(self):
        GeneratorConfig()

    def test_n_sectors(self):
        assert GeneratorConfig().n_sectors == 4 * 10 * 15

    def test_rejects_bad_length(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(series_length=0)

    def test_rejects_min_length_above_length(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(series_length=10, min_length=20)

    def test_rejects_negative_sd(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(attr1_node_sd=-1.0)

    def test_rejects_bad_surge_range(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(attr1_surge_range=(0.5, 2.0))


class TestShapes:
    def test_population_size(self, clean):
        assert len(clean) == 64

    def test_series_shape(self, clean):
        assert all(s.values.shape == (120, 3) for s in clean)

    def test_truth_equals_values(self, clean):
        for s in clean:
            assert np.array_equal(s.values, s.truth)

    def test_no_missing_in_clean_data(self, clean):
        assert clean.missing_fraction == 0.0

    def test_variable_lengths(self):
        cfg = GeneratorConfig(
            n_rnc=1, towers_per_rnc=2, sectors_per_tower=5,
            series_length=100, min_length=50,
        )
        data = NetworkDataGenerator(cfg, seed=0).generate()
        lengths = {s.length for s in data}
        assert all(50 <= n <= 100 for n in lengths)
        assert len(lengths) > 1


class TestDistributions:
    def test_attr1_positive(self, clean):
        assert (clean.pooled_column("attr1") > 0).all()

    def test_attr1_right_skewed_raw(self, clean):
        assert nan_skewness(clean.pooled_column("attr1")) > 1.0

    def test_log_removes_right_skew(self, clean):
        """On clean data the log transform neutralises the heavy right skew.

        The *left* skew the paper observes after the log (Section 5.3) comes
        from the dirty data's low-side anomalies; see
        ``test_dirty_log_attr1_left_skewed`` below.
        """
        assert abs(nan_skewness(np.log(clean.pooled_column("attr1")))) < 0.5

    def test_dirty_log_attr1_left_skewed(self, tiny_bundle):
        """Dirty data: dips make log(attr1) left-skewed (Figure 4b)."""
        col = tiny_bundle.dirty.pooled_column("attr1")
        col = col[col > 0]
        assert nan_skewness(np.log(col)) < -0.5

    def test_attr2_positive_and_right_skewed(self, clean):
        col = clean.pooled_column("attr2")
        assert (col > 0).all()
        assert nan_skewness(col) > 1.0

    def test_attr3_in_unit_interval(self, clean):
        col = clean.pooled_column("attr3")
        assert (col >= 0).all() and (col <= 1).all()

    def test_attr3_bulk_near_one(self, clean):
        assert np.median(clean.pooled_column("attr3")) > 0.95

    def test_attr3_left_tail_exists(self, clean):
        assert clean.pooled_column("attr3").min() < 0.9

    def test_attr1_attr2_correlated_on_log_scale(self, clean):
        pooled = clean.pooled("none")
        corr = np.corrcoef(np.log(pooled[:, 0]), np.log(pooled[:, 1]))[0, 1]
        assert corr > 0.3

    def test_diurnal_cycle_present(self, clean):
        """Lag-24 autocorrelation of log(attr1) should beat lag-12."""
        def lag_corr(x, lag):
            return np.corrcoef(x[:-lag], x[lag:])[0, 1]

        scores_24 = []
        scores_12 = []
        for s in clean.series[:20]:
            z = np.log(s.column("attr1"))
            scores_24.append(lag_corr(z, 24))
            scores_12.append(lag_corr(z, 12))
        assert np.mean(scores_24) > np.mean(scores_12)

    def test_surges_present(self, clean):
        """Legitimate extremes exist: max attr1 far above the 99th pct."""
        col = clean.pooled_column("attr1")
        assert col.max() > 4 * np.percentile(col, 99)


class TestDeterminism:
    def test_same_seed_same_data(self):
        cfg = GeneratorConfig(n_rnc=1, towers_per_rnc=2, sectors_per_tower=3)
        a = NetworkDataGenerator(cfg, seed=5).generate()
        b = NetworkDataGenerator(cfg, seed=5).generate()
        for sa, sb in zip(a, b):
            assert np.array_equal(sa.values, sb.values)

    def test_different_seed_different_data(self):
        cfg = GeneratorConfig(n_rnc=1, towers_per_rnc=2, sectors_per_tower=3)
        a = NetworkDataGenerator(cfg, seed=5).generate()
        b = NetworkDataGenerator(cfg, seed=6).generate()
        assert not np.array_equal(a[0].values, b[0].values)
