"""Resilience smoke: wrapper overhead with zero faults + identity under faults.

Two cells:

* **overhead** — the same in-memory experiment run with the retry wrapper
  disabled (``REPRO_RETRIES=1`` makes :func:`~repro.core.resilience.resilient`
  return the unit function unchanged) vs enabled (default three attempts),
  zero faults injected either way.  The wrapper is a no-op closure on the
  hot path, so the target is **<2% wall overhead**; the assertion allows
  15% because single-shot timings on a shared box vary by ±5-10% (see
  ``bench_utils.run_best_of``) — the honest best-of-three ratio is what
  gets recorded.
* **identity under faults** — a streaming (spilling) run and a
  catalog-backed sweep repeated under the representative deterministic
  plan ``unit:2,slab.torn:1,catalog.locked:1``.  Every injected failure
  must be absorbed — retried, regenerated, or re-dispatched — with
  outcomes **bitwise-identical** to the clean runs.

Records ``{wall_s, overhead_ratio, identity_ok}`` into ``BENCH_PR9.json``.

Run:  REPRO_SCALE=tiny PYTHONPATH=src python -m pytest -q -s benchmarks/bench_faults.py
"""

from __future__ import annotations

import hashlib
import os
import time

from repro.experiments.config import scale_from_env

from bench_utils import record_bench

FAULT_PLAN = "unit:2,slab.torn:1,catalog.locked:1"


def _fingerprint(result) -> str:
    keys = [
        (o.strategy, o.replication, o.improvement, o.distortion,
         o.glitch_index_dirty, o.glitch_index_treated, o.cost_fraction,
         tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
         tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())))
        for o in result.outcomes
    ]
    return hashlib.sha1(repr(keys).encode()).hexdigest()


def _best_of(fn, rounds=3):
    """One untimed warm-up, then the best of *rounds* timed runs."""
    fn()
    walls = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        walls.append(time.perf_counter() - t0)
    return min(walls), out


def test_retry_wrapper_overhead():
    """Retries enabled vs disabled, zero faults: same bits, ~same wall."""
    from repro.cleaning.registry import strategy_by_name
    from repro.core.framework import ExperimentRunner
    from repro.experiments.config import build_population, experiment_config

    scale = scale_from_env(default="small")
    bundle = build_population(scale=scale, seed=0)
    cfg = experiment_config(scale)
    strategies = [strategy_by_name("strategy1"), strategy_by_name("strategy4")]

    def run():
        runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=cfg)
        return runner.run(strategies)

    saved = os.environ.get("REPRO_RETRIES")
    try:
        os.environ["REPRO_RETRIES"] = "1"  # wrapper compiled away
        bare_wall, bare = _best_of(run)
        os.environ.pop("REPRO_RETRIES", None)  # default: 3 attempts
        wrapped_wall, wrapped = _best_of(run)
    finally:
        if saved is None:
            os.environ.pop("REPRO_RETRIES", None)
        else:
            os.environ["REPRO_RETRIES"] = saved

    identity_ok = _fingerprint(bare) == _fingerprint(wrapped)
    overhead = wrapped_wall / max(bare_wall, 1e-9)
    record_bench(
        "bench_faults_overhead",
        wall_s=wrapped_wall,
        identity_ok=identity_ok,
        overhead_ratio=round(overhead, 4),
        bare_wall_s=round(bare_wall, 4),
    )
    print()
    print(
        f"Retry wrapper overhead ({scale}): bare {bare_wall:.3f}s, "
        f"wrapped {wrapped_wall:.3f}s ({(overhead - 1) * 100:+.1f}%, "
        f"target <2%), identity={'ok' if identity_ok else 'FAILED'}"
    )
    assert identity_ok
    # Target is <2%; the gate is loose only because single-shot wall
    # clocks on a shared box wobble — the recorded ratio is the signal.
    assert overhead < 1.15


def test_identity_under_faults(tmp_path):
    """A representative fault plan must not move a single float."""
    from repro.cleaning.registry import strategy_by_name
    from repro.core.streaming import StreamingExperiment
    from repro.experiments.config import experiment_config
    from repro.experiments.sweep import SweepCell, run_sweep
    from repro.store.catalog import Catalog
    from repro.testing.faults import FaultPlan, install_plan

    scale = scale_from_env(default="small")
    strategies = (strategy_by_name("strategy1"), strategy_by_name("strategy4"))
    cfg = experiment_config(scale)
    cells = [
        SweepCell(name=f"cell{i}", config=cfg.variant(seed=5 + i),
                  strategies=strategies, scale=scale, seed=0)
        for i in range(2)
    ]

    def stream(spill_dir):
        engine = StreamingExperiment.from_scale(
            scale, seed=0, spill_dir=os.fspath(spill_dir)
        )
        return engine.run(list(strategies))

    clean_stream = _fingerprint(stream(tmp_path / "clean-slabs"))
    with Catalog(os.fspath(tmp_path / "clean.sqlite")) as cat:
        clean_sweep = run_sweep(cells, catalog=cat, name="faults")
    clean_cells = {c.name: _fingerprint(clean_sweep[c.name]) for c in cells}

    previous = install_plan(FaultPlan.parse(FAULT_PLAN))
    t0 = time.perf_counter()
    try:
        faulted_stream = _fingerprint(stream(tmp_path / "faulted-slabs"))
        with Catalog(os.fspath(tmp_path / "faulted.sqlite")) as cat:
            faulted_sweep = run_sweep(cells, catalog=cat, name="faults")
    finally:
        install_plan(previous)
    faulted_wall = time.perf_counter() - t0

    identity_ok = faulted_stream == clean_stream and all(
        _fingerprint(faulted_sweep[c.name]) == clean_cells[c.name]
        for c in cells
    )
    record_bench(
        "bench_faults_identity",
        wall_s=faulted_wall,
        identity_ok=identity_ok,
        fault_plan=FAULT_PLAN,
        sweep_failed=faulted_sweep.n_failed,
    )
    print()
    print(
        f"Identity under faults ({scale}, plan {FAULT_PLAN!r}): "
        f"faulted pass {faulted_wall:.2f}s, "
        f"{faulted_sweep.n_failed} failed cells, "
        f"identity={'ok' if identity_ok else 'FAILED'}"
    )
    assert faulted_sweep.n_failed == 0
    assert identity_ok
