"""Table 1 — percentage of glitches before and after cleaning.

Paper: five strategies x three configurations (B=100 log, B=500 log, B=100
no-log); columns are record-level missing/inconsistent/outlier percentages of
the dirty and treated data.

Expected shape (paper vs this harness):

* dirty missing ~= dirty inconsistent ~= 15-16%, heavily overlapping;
* dirty outliers: log configuration several times the raw configuration;
* S1/S2 leave a small residual of *new* inconsistencies, S2 *increases* the
  outlier rate, S3 leaves missing/inconsistent untouched, S4/S5 zero out the
  glitch families they treat, and every Winsorizing strategy ends at zero
  outliers.
"""

from repro.experiments.paper import run_table1
from repro.experiments.report import render_table1

from bench_utils import record_bench, run_best_of


def test_table1(benchmark, bundle, config):
    def run():
        configs = {
            f"n={config.sample_size}, log(attr1)": config,
            f"n={5 * config.sample_size}, log(attr1)": config.variant(
                sample_size=5 * config.sample_size
            ),
            f"n={config.sample_size}, no log": config.variant(log_transform=False),
        }
        return run_table1(bundle, configs)

    results = run_best_of(benchmark, run, rounds=3)
    record_bench("bench_table1", wall_s=benchmark.stats.stats.min, timing="warm_min_of_3")
    print()
    print(render_table1(results))
