"""Live-monitoring service smoke: fold throughput + push-vs-batch identity.

Two cells:

* **throughput** — sustained window ingestion through a
  :class:`~repro.service.MonitoringSession` under a fully hostile arrival
  plan (complete shuffle, 30% duplication, micro-bursts).  Records
  windows/sec and the p99 single-window fold latency; the fold path holds
  integer count state only, so p99 should sit in the tens of microseconds
  at small window widths.
* **identity** — the session's :meth:`finalize` under that hostile plan vs
  the in-order batch :class:`~repro.core.streaming.StreamingExperiment`.
  Every outcome key must be **bitwise-identical** — this is the PR's
  acceptance gate, asserted here and recorded as ``identity_ok``.

Records ``{wall_s, windows_per_s, p99_fold_us, identity_ok}`` into
``BENCH_PR10.json``.

Run:  REPRO_SCALE=tiny PYTHONPATH=src python -m pytest -q -s benchmarks/bench_service.py
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.experiments.config import scale_from_env

from bench_utils import record_bench

WINDOW_WIDTH = 16


def _fingerprint(result) -> str:
    keys = [
        (o.strategy, o.replication, o.improvement, o.distortion,
         o.glitch_index_dirty, o.glitch_index_treated, o.cost_fraction,
         tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
         tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())))
        for o in result.outcomes
    ]
    return hashlib.sha1(repr(keys).encode()).hexdigest()


def _windows(scale):
    from repro.data.slab import SlabFeed
    from repro.experiments.config import SCALES

    feed = SlabFeed(SCALES[scale].generator, None, seed=0)
    try:
        return list(feed.iter_stream_windows(width=WINDOW_WIDTH))
    finally:
        feed.cleanup()


def test_session_fold_throughput_and_identity():
    """Hostile push delivery: measure the folds, then prove the bits."""
    from repro.cleaning.registry import strategy_by_name
    from repro.core.streaming import StreamingExperiment
    from repro.experiments.config import experiment_config
    from repro.service import MonitoringSession, arrival_schedule

    scale = scale_from_env(default="small")
    cfg = experiment_config(scale)
    strategies = [strategy_by_name("strategy1"), strategy_by_name("strategy4")]

    windows = _windows(scale)
    plan = arrival_schedule(
        windows, seed=99, reorder=1.0, duplicate=0.3, burst=3
    )

    # --- throughput + per-fold latency ---------------------------------
    session = MonitoringSession(config=cfg)
    fold_walls = np.empty(len(plan))
    t0 = time.perf_counter()
    for i, window in enumerate(plan):
        f0 = time.perf_counter()
        session.ingest(window)
        fold_walls[i] = time.perf_counter() - f0
    ingest_wall = time.perf_counter() - t0
    windows_per_s = len(plan) / max(ingest_wall, 1e-9)
    p99_fold_us = float(np.quantile(fold_walls, 0.99) * 1e6)

    # --- identity vs the in-order batch engine -------------------------
    t0 = time.perf_counter()
    push = session.finalize(strategies)
    finalize_wall = time.perf_counter() - t0
    batch = StreamingExperiment.from_scale(scale, seed=0, config=cfg).run(
        strategies
    )
    identity_ok = _fingerprint(push) == _fingerprint(batch.result)

    record_bench(
        "bench_service",
        wall_s=ingest_wall + finalize_wall,
        identity_ok=identity_ok,
        windows_per_s=round(windows_per_s, 1),
        p99_fold_us=round(p99_fold_us, 1),
        n_windows=len(windows),
        n_deliveries=len(plan),
        n_duplicates=session.scorer.n_duplicates,
    )
    print()
    print(
        f"Service ingestion ({scale}): {len(plan)} deliveries of "
        f"{len(windows)} windows ({session.scorer.n_duplicates} dups refused) "
        f"in {ingest_wall:.2f}s = {windows_per_s:,.0f} windows/s, "
        f"p99 fold {p99_fold_us:.0f}us; finalize {finalize_wall:.2f}s, "
        f"push-vs-batch identity={'ok' if identity_ok else 'FAILED'}"
    )
    assert session.scorer.n_duplicates > 0
    assert identity_ok
