"""Out-of-core smoke: streaming slab engine vs materialised block path.

Runs the same oversized-population experiment twice — once through
``build_population`` + ``ExperimentRunner`` (the in-memory block path) and
once through the streaming slab engine — in **separate subprocesses**, so
each path's peak RSS is its own high-water mark, and asserts the two
contracts the engine makes *for every selectable distortion distance*
(EMD, KL, KS via ``ExperimentConfig(distance=...)``):

* **identity**: the outcome lists are bitwise-identical (compared by
  fingerprint across the process boundary);
* **memory**: the streaming path's workload peak RSS (the high-water delta
  above the post-import baseline) is *strictly below* the block path's —
  the whole point of running out of core.

The population is deliberately oversized relative to the replication needs
(thousands of series, a handful of replications), which is exactly the
regime the paper's stream setting describes: the block path materialises
everything, the engine touches at most ``2 x R x B`` series plus one spilled
shard at a time.

A second, in-process cell ablates the *distance layer itself*: streamed
(``statistical_distortion_stream`` — frozen-grid count folding / ECDF
sketches, no pooled arrays) against pooled
(``Distance.pairwise``) for EMD, KL, JS and KS on one synthetic panel,
asserting the exact-regime identity contract and recording the walls.

Records ``{wall_s, block_wall_s, rss_ratio, identity_ok}`` per distance and
the ablation cell into ``BENCH_PR9.json``.

Run:  REPRO_SCALE=small PYTHONPATH=src python -m pytest -q -s benchmarks/bench_stream.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.experiments.config import scale_from_env

from bench_utils import record_bench

#: Oversized-population settings per scale: many series, few replications.
#: (generator kwargs, n_replications, sample_size)
OVERSIZED = {
    "tiny": (
        dict(n_rnc=4, towers_per_rnc=10, sectors_per_tower=60,
             series_length=60, min_length=60),
        2,
        10,
    ),
    "small": (
        dict(n_rnc=4, towers_per_rnc=10, sectors_per_tower=100,
             series_length=170, min_length=170),
        3,
        20,
    ),
}
OVERSIZED["paper"] = OVERSIZED["small"]

_CHILD = r"""
import hashlib, json, resource, sys, time
mode, payload = sys.argv[1], json.loads(sys.argv[2])
from repro.cleaning.registry import strategy_by_name
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.core.streaming import StreamingExperiment
from repro.data.generator import GeneratorConfig
from repro.experiments.config import build_population

gen = GeneratorConfig(**payload["generator"])
cfg = ExperimentConfig(
    n_replications=payload["R"], sample_size=payload["B"], seed=0,
    distance=payload.get("distance"),
)
strategies = [strategy_by_name(n) for n in payload["strategies"]]


def peak_rss_kb():
    # ru_maxrss survives fork+exec on Linux, so a child spawned from a fat
    # pytest process inherits the parent's high-water mark; prefer the
    # resettable VmHWM watermark when /proc exposes it.
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def reset_peak():
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


reset_peak()
rss0 = peak_rss_kb()  # post-import residency: the workload baseline
t0 = time.perf_counter()
if mode == "block":
    bundle = build_population(scale="tiny", seed=0, generator_config=gen)
    result = ExperimentRunner(bundle.dirty, bundle.ideal, config=cfg).run(strategies)
else:
    result = StreamingExperiment(
        generator_config=gen, seed=0, config=cfg,
        shard_size=payload["shard_size"],
    ).run(strategies).result
wall = time.perf_counter() - t0
rss1 = peak_rss_kb()

keys = [
    (o.strategy, o.replication, o.improvement, o.distortion,
     o.glitch_index_dirty, o.glitch_index_treated, o.cost_fraction,
     tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
     tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())))
    for o in result.outcomes
]
print(json.dumps({
    "wall_s": wall,
    "rss_kb": rss1,
    "rss_delta_kb": rss1 - rss0,
    "fingerprint": hashlib.sha1(repr(keys).encode()).hexdigest(),
}))
"""


def _run_child(mode: str, payload: dict) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, json.dumps(payload)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


@pytest.mark.parametrize("distance", [None, "kl", "ks"], ids=["emd", "kl", "ks"])
def test_streaming_memory_and_identity(distance):
    generator, n_replications, sample_size = OVERSIZED[scale_from_env(default="small")]
    n_series = (
        generator["n_rnc"]
        * generator["towers_per_rnc"]
        * generator["sectors_per_tower"]
    )
    payload = {
        "generator": generator,
        "R": n_replications,
        "B": sample_size,
        # The engine's memory knob: keep each slab ~1/16 of the population.
        "shard_size": max(50, n_series // 16),
        "strategies": ["strategy1", "strategy4"],
        "distance": distance,
    }
    block = _run_child("block", payload)
    stream = _run_child("stream", payload)

    label = distance or "emd"
    identity_ok = block["fingerprint"] == stream["fingerprint"]
    rss_ratio = stream["rss_delta_kb"] / max(block["rss_delta_kb"], 1)
    wall_ratio = stream["wall_s"] / block["wall_s"]
    record_bench(
        f"bench_stream[{label}]",
        wall_s=stream["wall_s"],
        identity_ok=identity_ok,
        block_wall_s=round(block["wall_s"], 4),
        wall_ratio=round(wall_ratio, 3),
        block_rss_delta_kb=block["rss_delta_kb"],
        stream_rss_delta_kb=stream["rss_delta_kb"],
        rss_ratio=round(rss_ratio, 3),
    )
    print()
    print(
        f"Streaming vs block (oversized population, distance={label}): "
        f"block {block['wall_s']:.2f}s / {block['rss_delta_kb'] / 1024:.0f} MiB peak, "
        f"stream {stream['wall_s']:.2f}s / {stream['rss_delta_kb'] / 1024:.0f} MiB peak "
        f"(rss {rss_ratio:.2f}x, wall {wall_ratio:.2f}x), "
        f"identity={'ok' if identity_ok else 'FAILED'}"
    )
    # The identity contract: the engine replays the exact same floats.
    assert identity_ok
    # The memory contract: out-of-core must beat materialise-everything —
    # for the new divergence distances exactly as for the paper's EMD.
    assert stream["rss_delta_kb"] < block["rss_delta_kb"], (
        f"streaming peak RSS {stream['rss_delta_kb']} KiB not below "
        f"block {block['rss_delta_kb']} KiB"
    )


#: Distance-ablation panel sizes: (reference rows, candidate rows, dims).
_ABLATION_SHAPE = {"tiny": (2_000, 1_500, 3), "small": (20_000, 15_000, 3)}
_ABLATION_SHAPE["paper"] = _ABLATION_SHAPE["small"]


def test_distance_ablation_streamed_vs_pooled():
    """EMD vs KL vs JS vs KS, streamed vs pooled, one synthetic panel.

    The exact-regime contract (identity frame, candidates inside the
    reference support): the streamed value must equal the pooled value
    **bitwise** for every distance — frozen-grid count folding and exact
    sketch merging are lossless. Walls are recorded per distance so the
    relative cost of the divergences stays visible across PRs.
    """
    from repro.core.distortion import slab_streams, statistical_distortion_stream
    from repro.distance import distance_by_name

    n_ref, n_cand, dims = _ABLATION_SHAPE[scale_from_env(default="small")]
    rng = np.random.default_rng(0)
    p = rng.gamma(1.5, 2.0, size=(n_ref, dims)) + rng.normal(0, 1, size=(n_ref, dims))
    perm = rng.permutation(n_ref)
    qs = [p[perm][:n_cand], p[perm[::-1]][:n_cand]]
    width = max(256, n_ref // 16)

    configs = {
        "emd": dict(n_bins=8, standardize=False, exact_1d=False),
        "kl": dict(n_bins=8, binning="uniform", standardize=False),
        "js": dict(n_bins=8, binning="uniform", standardize=False),
        "ks": {},
    }
    cell = {}
    print()
    for name, kwargs in configs.items():
        distance = distance_by_name(name, **kwargs)
        t0 = time.perf_counter()
        pooled = distance.pairwise(p, qs)
        pooled_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        ref_slabs, paired = slab_streams(p, qs, width)
        streamed = statistical_distortion_stream(
            ref_slabs, paired, n_candidates=2, distance=distance
        )
        stream_wall = time.perf_counter() - t0
        identical = streamed == pooled
        cell[name] = {
            "pooled_wall_s": round(pooled_wall, 4),
            "stream_wall_s": round(stream_wall, 4),
            "value": round(pooled[0], 6),
            "identity_ok": identical,
        }
        print(
            f"  {name:3s}: pooled {pooled_wall:6.3f}s, streamed {stream_wall:6.3f}s, "
            f"value {pooled[0]:.4f}, streamed==pooled: {identical}"
        )
        assert identical, f"{name}: streamed {streamed} != pooled {pooled}"
    record_bench(
        "bench_stream_distances",
        wall_s=sum(v["stream_wall_s"] for v in cell.values()),
        identity_ok=all(v["identity_ok"] for v in cell.values()),
        **{f"{k}_{kk}": vv for k, v in cell.items() for kk, vv in v.items()},
    )
