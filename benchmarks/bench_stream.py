"""Out-of-core smoke: streaming slab engine vs materialised block path.

Runs the same oversized-population experiment twice — once through
``build_population`` + ``ExperimentRunner`` (the in-memory block path) and
once through the streaming slab engine — in **separate subprocesses**, so
each path's peak RSS is its own high-water mark, and asserts the two
contracts the engine makes:

* **identity**: the outcome lists are bitwise-identical (compared by
  fingerprint across the process boundary);
* **memory**: the streaming path's workload peak RSS (the high-water delta
  above the post-import baseline) is *strictly below* the block path's —
  the whole point of running out of core.

The population is deliberately oversized relative to the replication needs
(thousands of series, a handful of replications), which is exactly the
regime the paper's stream setting describes: the block path materialises
everything, the engine touches at most ``2 x R x B`` series plus one spilled
shard at a time.

Records ``{wall_s, block_wall_s, rss_ratio, identity_ok}`` into
``BENCH_PR4.json``.

Run:  REPRO_SCALE=small PYTHONPATH=src python -m pytest -q -s benchmarks/bench_stream.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.experiments.config import scale_from_env

from bench_utils import record_bench

#: Oversized-population settings per scale: many series, few replications.
#: (generator kwargs, n_replications, sample_size)
OVERSIZED = {
    "tiny": (
        dict(n_rnc=4, towers_per_rnc=10, sectors_per_tower=60,
             series_length=60, min_length=60),
        2,
        10,
    ),
    "small": (
        dict(n_rnc=4, towers_per_rnc=10, sectors_per_tower=100,
             series_length=170, min_length=170),
        3,
        20,
    ),
}
OVERSIZED["paper"] = OVERSIZED["small"]

_CHILD = r"""
import hashlib, json, resource, sys, time
mode, payload = sys.argv[1], json.loads(sys.argv[2])
from repro.cleaning.registry import strategy_by_name
from repro.core.framework import ExperimentConfig, ExperimentRunner
from repro.core.streaming import StreamingExperiment
from repro.data.generator import GeneratorConfig
from repro.experiments.config import build_population

gen = GeneratorConfig(**payload["generator"])
cfg = ExperimentConfig(
    n_replications=payload["R"], sample_size=payload["B"], seed=0
)
strategies = [strategy_by_name(n) for n in payload["strategies"]]


def peak_rss_kb():
    # ru_maxrss survives fork+exec on Linux, so a child spawned from a fat
    # pytest process inherits the parent's high-water mark; prefer the
    # resettable VmHWM watermark when /proc exposes it.
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def reset_peak():
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


reset_peak()
rss0 = peak_rss_kb()  # post-import residency: the workload baseline
t0 = time.perf_counter()
if mode == "block":
    bundle = build_population(scale="tiny", seed=0, generator_config=gen)
    result = ExperimentRunner(bundle.dirty, bundle.ideal, config=cfg).run(strategies)
else:
    result = StreamingExperiment(
        generator_config=gen, seed=0, config=cfg,
        shard_size=payload["shard_size"],
    ).run(strategies).result
wall = time.perf_counter() - t0
rss1 = peak_rss_kb()

keys = [
    (o.strategy, o.replication, o.improvement, o.distortion,
     o.glitch_index_dirty, o.glitch_index_treated, o.cost_fraction,
     tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
     tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())))
    for o in result.outcomes
]
print(json.dumps({
    "wall_s": wall,
    "rss_kb": rss1,
    "rss_delta_kb": rss1 - rss0,
    "fingerprint": hashlib.sha1(repr(keys).encode()).hexdigest(),
}))
"""


def _run_child(mode: str, payload: dict) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, json.dumps(payload)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_streaming_memory_and_identity():
    generator, n_replications, sample_size = OVERSIZED[scale_from_env(default="small")]
    n_series = (
        generator["n_rnc"]
        * generator["towers_per_rnc"]
        * generator["sectors_per_tower"]
    )
    payload = {
        "generator": generator,
        "R": n_replications,
        "B": sample_size,
        # The engine's memory knob: keep each slab ~1/16 of the population.
        "shard_size": max(50, n_series // 16),
        "strategies": ["strategy1", "strategy4"],
    }
    block = _run_child("block", payload)
    stream = _run_child("stream", payload)

    identity_ok = block["fingerprint"] == stream["fingerprint"]
    rss_ratio = stream["rss_delta_kb"] / max(block["rss_delta_kb"], 1)
    wall_ratio = stream["wall_s"] / block["wall_s"]
    record_bench(
        "bench_stream",
        wall_s=stream["wall_s"],
        identity_ok=identity_ok,
        block_wall_s=round(block["wall_s"], 4),
        wall_ratio=round(wall_ratio, 3),
        block_rss_delta_kb=block["rss_delta_kb"],
        stream_rss_delta_kb=stream["rss_delta_kb"],
        rss_ratio=round(rss_ratio, 3),
    )
    print()
    print(
        f"Streaming vs block (oversized population): "
        f"block {block['wall_s']:.2f}s / {block['rss_delta_kb'] / 1024:.0f} MiB peak, "
        f"stream {stream['wall_s']:.2f}s / {stream['rss_delta_kb'] / 1024:.0f} MiB peak "
        f"(rss {rss_ratio:.2f}x, wall {wall_ratio:.2f}x), "
        f"identity={'ok' if identity_ok else 'FAILED'}"
    )
    # The identity contract: the engine replays the exact same floats.
    assert identity_ok
    # The memory contract: out-of-core must beat materialise-everything.
    assert stream["rss_delta_kb"] < block["rss_delta_kb"], (
        f"streaming peak RSS {stream['rss_delta_kb']} KiB not below "
        f"block {block['rss_delta_kb']} KiB"
    )
