"""Cluster backend smoke: localhost scaling, coordinator overhead, recovery.

Four cells:

* **scaling** — the Figure-6 experiment on serial vs ``cluster:1`` vs
  ``cluster:2`` localhost workers; every point must be bitwise-identical
  to the serial reference, and the curve is recorded so the coordinator's
  dispatch cost is visible across PRs.
* **overhead** — the same run on ``cluster:2`` vs ``process:2``, zero
  faults: the TCP coordinator's no-fault overhead vs the in-box pool.
  Target **<10%**; asserted only when the process wall is large enough
  for the ratio to mean anything (tiny CI runs record, larger runs gate).
* **Table 1 identity** — all three paper blocks via one incremental sweep
  on the cluster backend, fingerprint-equal to serial block by block.
* **kill-half recovery** — 2 workers, one killed mid-run: the map must
  finish on the survivor with bitwise-identical outcomes; the recovery
  wall and re-dispatch counters are recorded.

Records ``{wall_s, speedup, identity_ok, ...}`` into ``BENCH_PR9.json``.

Run:  REPRO_SCALE=tiny PYTHONPATH=src python -m pytest -q -s benchmarks/bench_cluster.py
"""

from __future__ import annotations

import hashlib
import threading
import time

from repro.experiments.config import scale_from_env

from bench_utils import record_bench


def _fingerprint(result) -> str:
    keys = [
        (o.strategy, o.replication, o.improvement, o.distortion,
         o.glitch_index_dirty, o.glitch_index_treated, o.cost_fraction,
         tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
         tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())))
        for o in result.outcomes
    ]
    return hashlib.sha1(repr(keys).encode()).hexdigest()


def _best_of(fn, rounds=2):
    """One untimed warm-up, then the best of *rounds* timed runs."""
    fn()
    walls = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        walls.append(time.perf_counter() - t0)
    return min(walls), out


def _figure6_inputs():
    from repro.cleaning.registry import strategy_by_name
    from repro.experiments.config import build_population, experiment_config

    scale = scale_from_env(default="small")
    bundle = build_population(scale=scale, seed=0)
    cfg = experiment_config(scale)
    strategies = [strategy_by_name("strategy1"), strategy_by_name("strategy4")]
    return scale, bundle, cfg, strategies


def test_cluster_scaling_and_identity():
    """Serial vs 1 vs 2 localhost workers: same bits, recorded curve."""
    from repro.core.cluster import ClusterBackend
    from repro.experiments.paper import run_figure6

    scale, bundle, cfg, strategies = _figure6_inputs()

    def run(backend=None):
        return run_figure6(bundle, config=cfg, strategies=strategies,
                           backend=backend)

    serial_wall, serial = _best_of(run)
    reference = _fingerprint(serial)

    curve = {"serial": round(serial_wall, 4)}
    identity_ok = True
    degraded = 0
    for n in (1, 2):
        backend = ClusterBackend(n_workers=n)
        try:
            wall, result = _best_of(lambda: run(backend))
        finally:
            backend.close()
        curve[f"cluster:{n}"] = round(wall, 4)
        identity_ok = identity_ok and _fingerprint(result) == reference
        degraded += (backend.last_map_stats or {}).get("n_degraded_units", 0)

    record_bench(
        "bench_cluster_scaling",
        wall_s=curve["cluster:2"],
        speedup=serial_wall / max(curve["cluster:2"], 1e-9),
        identity_ok=identity_ok,
        curve=curve,
    )
    print()
    print(f"Cluster scaling ({scale}): " + ", ".join(
        f"{k} {v:.2f}s" for k, v in curve.items()
    ) + f", identity={'ok' if identity_ok else 'FAILED'}")
    assert identity_ok
    assert degraded == 0  # the curve measured real remote execution


def test_cluster_overhead_vs_process():
    """No faults: the TCP coordinator must stay close to the in-box pool."""
    from repro.core.cluster import ClusterBackend
    from repro.core.executor import ProcessBackend
    from repro.experiments.paper import run_figure6

    scale, bundle, cfg, strategies = _figure6_inputs()

    def run(backend):
        return run_figure6(bundle, config=cfg, strategies=strategies,
                           backend=backend)

    process_wall, process_result = _best_of(
        lambda: run(ProcessBackend(n_workers=2, min_units=1))
    )
    backend = ClusterBackend(n_workers=2, min_units=1)
    try:
        cluster_wall, cluster_result = _best_of(lambda: run(backend))
    finally:
        backend.close()

    identity_ok = _fingerprint(cluster_result) == _fingerprint(process_result)
    overhead = cluster_wall / max(process_wall, 1e-9)
    record_bench(
        "bench_cluster_overhead",
        wall_s=cluster_wall,
        identity_ok=identity_ok,
        overhead_ratio=round(overhead, 4),
        process_wall_s=round(process_wall, 4),
    )
    print()
    print(
        f"Cluster coordinator overhead ({scale}): process:2 {process_wall:.3f}s, "
        f"cluster:2 {cluster_wall:.3f}s ({(overhead - 1) * 100:+.1f}%, "
        f"target <10%), identity={'ok' if identity_ok else 'FAILED'}"
    )
    assert identity_ok
    # Sub-second walls are dominated by pool/worker start-up noise; the
    # recorded ratio is always the signal, the gate fires at bench scale.
    if process_wall >= 0.5:
        assert overhead < 1.10


def test_table1_identity_on_cluster():
    """All three Table 1 blocks through the cluster sweep, block-for-block
    identical to serial."""
    from repro.core.cluster import ClusterBackend
    from repro.experiments.paper import run_table1

    scale, bundle, cfg, _ = _figure6_inputs()

    serial = run_table1(bundle, base_config=cfg)
    reference = {name: _fingerprint(serial[name]) for name in serial.keys()}

    backend = ClusterBackend(n_workers=2)
    t0 = time.perf_counter()
    try:
        clustered = run_table1(bundle, backend=backend, base_config=cfg)
    finally:
        backend.close()
    wall = time.perf_counter() - t0

    identity_ok = all(
        _fingerprint(clustered[name]) == reference[name] for name in reference
    )
    record_bench(
        "bench_cluster_table1",
        wall_s=wall,
        identity_ok=identity_ok,
        n_blocks=len(reference),
    )
    print()
    print(
        f"Table 1 on cluster:2 ({scale}): {len(reference)} blocks in "
        f"{wall:.2f}s, identity={'ok' if identity_ok else 'FAILED'}"
    )
    assert identity_ok


def test_kill_half_recovery_wall():
    """Kill one of two workers mid-run: finish on the survivor, same bits."""
    from repro.core.cluster import ClusterBackend, start_local_workers
    from repro.experiments.paper import run_figure6

    scale, bundle, cfg, strategies = _figure6_inputs()

    def run(backend=None):
        return run_figure6(bundle, config=cfg, strategies=strategies,
                           backend=backend)

    reference = _fingerprint(run())

    workers = start_local_workers(2)
    backend = ClusterBackend(
        addresses=[w.address for w in workers], lease_ttl=2.0
    )
    try:
        clean_wall, clean = _best_of(lambda: run(backend), rounds=1)
        assert _fingerprint(clean) == reference

        killer = threading.Timer(
            max(0.05, 0.3 * clean_wall), workers[0].terminate
        )
        killer.start()
        t0 = time.perf_counter()
        try:
            survived = run(backend)
        finally:
            killer.cancel()
        recovery_wall = time.perf_counter() - t0
    finally:
        backend.close()
        for w in workers:
            w.terminate()

    stats = backend.last_map_stats or {}
    identity_ok = _fingerprint(survived) == reference
    record_bench(
        "bench_cluster_kill_half",
        wall_s=recovery_wall,
        identity_ok=identity_ok,
        clean_wall_s=round(clean_wall, 4),
        n_dead_links=stats.get("n_dead_links", 0),
        n_requeued=stats.get("n_requeued", 0),
        n_degraded_units=stats.get("n_degraded_units", 0),
    )
    print()
    print(
        f"Kill-half recovery ({scale}): clean {clean_wall:.2f}s, one worker "
        f"killed mid-run -> {recovery_wall:.2f}s "
        f"({stats.get('n_requeued', 0)} unit(s) re-dispatched, "
        f"{stats.get('n_dead_links', 0)} dead link(s)), "
        f"identity={'ok' if identity_ok else 'FAILED'}"
    )
    assert identity_ok
    assert stats.get("n_degraded_units", 0) == 0  # survivor finished the map
