"""Cleaning-throughput smoke: columnar block path vs per-series loop.

Runs the same experiment twice — once with ``REPRO_BLOCK=0`` (the per-series
reference path) and once on the default columnar fast path — and asserts the
two contracts the SampleBlock layer makes:

* **identity**: every ``StrategyOutcome`` field is bitwise-identical between
  the two layouts;
* **throughput**: the block path's wall clock does not regress below the
  loop path's (best-of-N on both sides to keep the tiny CI scale stable).

Runs at tiny scale inside the CI bench smoke on every push, and records
``{wall_s, speedup, identity_ok}`` into ``BENCH_PR3.json``.

Run:  REPRO_SCALE=tiny PYTHONPATH=src python -m pytest -q -s benchmarks/bench_block.py
"""

from __future__ import annotations

import time

from repro.cleaning.registry import paper_strategies
from repro.core.framework import ExperimentRunner

from bench_utils import record_bench

#: Best-of rounds per path — enough to iron out CI timer noise at tiny scale.
ROUNDS = 3


def _run(bundle, config):
    runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=config)
    return runner.run(paper_strategies())


def _timed_best(bundle, config, rounds=ROUNDS):
    result, best = None, float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = _run(bundle, config)
        best = min(best, time.perf_counter() - start)
    return result, best


def _outcome_key(o):
    return (
        o.strategy,
        o.replication,
        o.improvement,
        o.distortion,
        o.glitch_index_dirty,
        o.glitch_index_treated,
        o.cost_fraction,
        tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
        tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())),
    )


def test_block_fastpath_identity_and_throughput(bundle, config, monkeypatch):
    # Warm both paths once (imports, allocator, BLAS thread spin-up) so the
    # timed rounds compare steady-state work.
    monkeypatch.setenv("REPRO_BLOCK", "1")
    _run(bundle, config)
    monkeypatch.setenv("REPRO_BLOCK", "0")
    _run(bundle, config)

    loop_result, loop_s = _timed_best(bundle, config)
    monkeypatch.setenv("REPRO_BLOCK", "1")
    block_result, block_s = _timed_best(bundle, config)

    loop_keys = [_outcome_key(o) for o in loop_result.outcomes]
    block_keys = [_outcome_key(o) for o in block_result.outcomes]
    identity_ok = loop_keys == block_keys
    speedup = loop_s / block_s
    record_bench(
        "bench_block",
        wall_s=block_s,
        speedup=speedup,
        identity_ok=identity_ok,
        loop_wall_s=round(loop_s, 4),
    )
    print()
    print(
        f"Block fast path: R={config.n_replications}, B={config.sample_size} | "
        f"loop {loop_s:.3f}s, block {block_s:.3f}s, {speedup:.2f}x, "
        f"identity={'ok' if identity_ok else 'FAILED'}"
    )
    # The identity contract: the columnar layout replays the exact same
    # floating-point computation — not approximately, identically.
    assert identity_ok
    # The throughput contract: the fast path must not regress below the
    # per-series loop it replaces.
    assert speedup >= 1.0, f"block path slower than loop: {speedup:.2f}x"
