"""Figure 6 — statistical distortion vs glitch improvement, five strategies.

Paper panels: (a) B=100 with log(attr1); (b) B=100 without; (c) B=500 with
log. Expected shape, all panels:

* improvement: S5 ~= S1 > S4 > S2, S3 lowest-to-middle (higher under log);
* distortion: mean-replacement family (S4/S5) below the MVN-imputation
  family (S2/S1); Winsorize-only (S3) at the bottom;
* panel (c): clusters tighten (per-100-series axes shared with panel a).
"""

from repro.experiments.paper import run_figure6
from repro.experiments.report import render_strategy_summaries

from bench_utils import record_bench, run_best_of


def test_figure6a_log(benchmark, bundle, config):
    result = run_best_of(benchmark, lambda: run_figure6(bundle, config))
    record_bench("bench_fig6a", wall_s=benchmark.stats.stats.min, timing="warm_min_of_3")
    print()
    print(render_strategy_summaries(
        result.summaries(),
        title=f"Figure 6(a): B={config.sample_size}, log(attr1)",
    ))


def test_figure6b_no_log(benchmark, bundle, config):
    cfg = config.variant(log_transform=False)
    result = run_best_of(benchmark, lambda: run_figure6(bundle, cfg))
    record_bench("bench_fig6b", wall_s=benchmark.stats.stats.min, timing="warm_min_of_3")
    print()
    print(render_strategy_summaries(
        result.summaries(),
        title=f"Figure 6(b): B={cfg.sample_size}, no log",
    ))


def test_figure6c_large_sample(benchmark, bundle, config):
    cfg = config.variant(sample_size=5 * config.sample_size)
    result = run_best_of(benchmark, lambda: run_figure6(bundle, cfg))
    record_bench("bench_fig6c", wall_s=benchmark.stats.stats.min, timing="warm_min_of_3")
    print()
    print(render_strategy_summaries(
        result.summaries(),
        title=f"Figure 6(c): B={cfg.sample_size}, log(attr1)",
    ))
