"""Figure 3 — time series of glitch counts by type, pooled over runs.

Paper: counts of missing / inconsistent / outlier records at each time step,
aggregated over 50 runs of 100 sampled series (~5000 records per step), with
visible bursts and a heavy missing/inconsistent overlap.

Expected shape: all three series fluctuate with common surges (network-wide
events), and the missing and inconsistent counts track each other closely
(record-level Jaccard overlap well above chance).
"""

from repro.experiments.paper import figure3_counts
from repro.experiments.report import render_counts_series
from repro.glitches.patterns import jaccard_overlap
from repro.glitches.types import DatasetGlitches, GlitchType

from bench_utils import run_once


def test_figure3(benchmark, bundle, config):
    def run():
        return figure3_counts(
            bundle,
            n_replications=config.n_replications,
            sample_size=config.sample_size,
            seed=0,
        )

    counts = run_once(benchmark, run)
    print()
    print(render_counts_series(counts, stride=10, title="Figure 3: glitch counts over time"))
    # Overlap summary (the paper's 'considerable overlap' observation).
    glitches = bundle.suite.annotate_dataset(bundle.dirty)
    j = jaccard_overlap(glitches, GlitchType.MISSING, GlitchType.INCONSISTENT)
    print(f"missing/inconsistent record-level Jaccard overlap: {j:.3f}")
