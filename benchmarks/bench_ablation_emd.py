"""Ablations on the distortion metric itself.

1. **Backend agreement** — the three transportation solvers produce the same
   EMD (simplex and HiGHS exactly; min-cost-flow to integer-scaling
   resolution), at very different speeds.
2. **Bin-count sensitivity** — Section 3.5 claims EMD "is not affected by
   binning differences"; the sweep quantifies the residual sensitivity.
3. **Exact vs approximate** — sliced and marginal EMD track the exact value
   and preserve the Figure 6 strategy ordering at a fraction of the cost.
4. **Distance-measure comparison** — EMD vs KL vs Mahalanobis vs KS on the
   same cleaned samples: Mahalanobis barely sees mean-preserving distortion,
   KS cannot tell near-moves from far-moves; EMD sees both. This is the
   quantitative argument for the paper's choice of EMD.
"""

import numpy as np

from repro.cleaning.base import CleaningContext
from repro.cleaning.registry import paper_strategies
from repro.distance.emd import EarthMoverDistance
from repro.distance.emd_approx import MarginalEmd, SlicedEmd
from repro.distance.kl import KLDivergence
from repro.distance.ks import KolmogorovSmirnovDistance
from repro.distance.mahalanobis import MahalanobisDistance
from repro.sampling.replication import generate_test_pairs

from bench_utils import run_once


def _treated_pairs(bundle, config):
    """One replication pair and its five treated variants, pooled."""
    pair = next(
        generate_test_pairs(
            bundle.dirty, bundle.ideal, 1, config.sample_size, seed=0
        )
    )
    tr = config.transform
    ctx_kwargs = dict(ideal=pair.ideal, transform=tr, sigma_k=config.sigma_k)

    def pool(ds):
        return (tr.apply_dataset(ds) if tr else ds).pooled(dropna="any")

    p = pool(pair.dirty)
    treated = {}
    for strategy in paper_strategies():
        ctx = CleaningContext(seed=1, **ctx_kwargs)
        treated[strategy.name] = pool(strategy.clean(pair.dirty, ctx))
    return p, treated


def test_backend_agreement(benchmark, bundle, config):
    p, treated = _treated_pairs(bundle, config)
    q = treated["strategy1"]

    def run():
        return {
            b: EarthMoverDistance(n_bins=12, backend=b)(p, q)
            for b in ("simplex", "highs", "networkx")
        }

    values = run_once(benchmark, run)
    print()
    print("EMD backend agreement (strategy1 treated vs dirty):")
    for backend, v in values.items():
        print(f"  {backend:<9} {v:.6f}")
    assert abs(values["simplex"] - values["highs"]) < 1e-6


def test_bin_sensitivity(benchmark, bundle, config):
    p, treated = _treated_pairs(bundle, config)
    q = treated["strategy5"]

    def run():
        return {n: EarthMoverDistance(n_bins=n)(p, q) for n in (8, 12, 16, 24, 32)}

    values = run_once(benchmark, run)
    print()
    print("EMD bin-count sensitivity (strategy5 treated vs dirty):")
    for n, v in values.items():
        print(f"  {n:>3} bins/dim: {v:.4f}")
    spread = (max(values.values()) - min(values.values())) / np.mean(
        list(values.values())
    )
    print(f"  relative spread: {spread:.1%}")


def test_exact_vs_approximate(benchmark, bundle, config):
    p, treated = _treated_pairs(bundle, config)
    distances = {
        "exact EMD": EarthMoverDistance(n_bins=16),
        "sliced EMD": SlicedEmd(n_projections=48),
        "marginal EMD": MarginalEmd(),
    }

    def run():
        return {
            name: {s: d(p, q) for s, q in treated.items()}
            for name, d in distances.items()
        }

    table = run_once(benchmark, run)
    print()
    print("Exact vs approximate EMD per strategy:")
    strategies = list(treated)
    print(f"{'distance':<14} " + " ".join(f"{s:>10}" for s in strategies))
    for name, row in table.items():
        print(f"{name:<14} " + " ".join(f"{row[s]:>10.4f}" for s in strategies))
    # The approximations must preserve the exact metric's strategy ordering
    # up to near-ties (Spearman rank correlation).
    from scipy import stats as scipy_stats

    rho = scipy_stats.spearmanr(
        [table["exact EMD"][s] for s in strategies],
        [table["sliced EMD"][s] for s in strategies],
    ).statistic
    print(f"sliced/exact Spearman rank correlation: {rho:.2f}")


def test_distance_measure_comparison(benchmark, bundle, config):
    p, treated = _treated_pairs(bundle, config)
    distances = {
        "emd": EarthMoverDistance(n_bins=16),
        "kl": KLDivergence(n_bins=16),
        "mahalanobis": MahalanobisDistance(),
        "ks": KolmogorovSmirnovDistance(),
    }

    def run():
        return {
            name: {s: d(p, q) for s, q in treated.items()}
            for name, d in distances.items()
        }

    table = run_once(benchmark, run)
    print()
    print("Distortion under alternative distances (Definition 1's menu):")
    strategies = list(treated)
    print(f"{'distance':<12} " + " ".join(f"{s:>10}" for s in strategies))
    for name, row in table.items():
        print(f"{name:<12} " + " ".join(f"{row[s]:>10.4f}" for s in strategies))
