"""Importable benchmark helpers.

Kept out of ``conftest.py`` so benchmark modules never import the ambiguous
module name ``conftest`` (with both ``tests/`` and ``benchmarks/`` on
``sys.path`` in a whole-repo pytest run, that name resolves to whichever
directory was collected first).
"""

from __future__ import annotations

__all__ = ["run_once"]


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
