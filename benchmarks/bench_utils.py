"""Importable benchmark helpers.

Kept out of ``conftest.py`` so benchmark modules never import the ambiguous
module name ``conftest`` (with both ``tests/`` and ``benchmarks/`` on
``sys.path`` in a whole-repo pytest run, that name resolves to whichever
directory was collected first).

Every bench records its headline numbers into ``BENCH_PR10.json`` (override
the location with ``REPRO_BENCH_JSON``) as ``name -> {wall_s, speedup,
identity_ok}`` so the perf trajectory is machine-readable across PRs; the CI
bench smoke prints and uploads the file on every push.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.core.executor import default_worker_count
from repro.experiments.config import scale_from_env

__all__ = [
    "bench_results_path",
    "record_bench",
    "run_once",
    "print_speedup_table",
]


def bench_results_path() -> Path:
    """Where bench results accumulate (``REPRO_BENCH_JSON`` overrides)."""
    return Path(os.environ.get("REPRO_BENCH_JSON", "BENCH_PR10.json"))


def record_bench(
    name: str,
    wall_s: float,
    speedup: Optional[float] = None,
    identity_ok: Optional[bool] = None,
    **extra,
) -> dict:
    """Merge one bench's result into the shared results JSON.

    ``speedup`` is the bench's own headline ratio (block vs per-series loop
    for the throughput smoke, serial vs process for the parallel bench);
    ``identity_ok`` records whether the bench's bitwise-identity assertion
    held. Read-modify-write keeps results from every bench module of one
    ``pytest benchmarks/`` run in a single file.
    """
    path = bench_results_path()
    results: dict = {}
    if path.exists():
        try:
            results = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):  # pragma: no cover - corrupt file
            results = {}
    entry = {"wall_s": round(float(wall_s), 4), "scale": scale_from_env(default="small")}
    if speedup is not None:
        entry["speedup"] = round(float(speedup), 3)
    if identity_ok is not None:
        entry["identity_ok"] = bool(identity_ok)
    entry.update(extra)
    results[name] = entry
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return entry


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_best_of(benchmark, fn, rounds=3):
    """Run *fn* ``rounds`` times (after one untimed warm-up) under
    pytest-benchmark timing.

    Record ``benchmark.stats.stats.min`` afterwards: the recorded walls are
    compared across PRs, and a warm best-of estimate keeps cold caches and
    scheduler noise on a shared box from masquerading as a regression
    (single-shot timings on this workload vary by ±5-10%).
    """
    return benchmark.pedantic(fn, rounds=rounds, iterations=1, warmup_rounds=1)


def print_speedup_table(
    header: str,
    serial_s: float,
    thread_s: float,
    process_s: float,
    n_workers: int,
    identity_subject: str,
) -> None:
    """Serial/thread/process wall-clock table shared by the parallel benches.

    Prints the honest single-CPU caveat when no speedup is physically
    possible; *identity_subject* names what the accompanying bitwise
    identity check covered.
    """
    cpus = default_worker_count()
    print()
    print(f"{header} | {cpus} CPU(s) available, {n_workers} workers requested")
    print(f"  serial   {serial_s:8.2f}s   1.00x")
    print(f"  thread   {thread_s:8.2f}s   {serial_s / thread_s:.2f}x")
    print(f"  process  {process_s:8.2f}s   {serial_s / process_s:.2f}x")
    if cpus == 1:
        print("  (single-CPU machine: no parallel speedup is physically possible;")
        print(f"   {identity_subject} across backends is still fully verified)")
