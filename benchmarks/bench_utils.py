"""Importable benchmark helpers.

Kept out of ``conftest.py`` so benchmark modules never import the ambiguous
module name ``conftest`` (with both ``tests/`` and ``benchmarks/`` on
``sys.path`` in a whole-repo pytest run, that name resolves to whichever
directory was collected first).
"""

from __future__ import annotations

from repro.core.executor import default_worker_count

__all__ = ["run_once", "print_speedup_table"]


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_speedup_table(
    header: str,
    serial_s: float,
    thread_s: float,
    process_s: float,
    n_workers: int,
    identity_subject: str,
) -> None:
    """Serial/thread/process wall-clock table shared by the parallel benches.

    Prints the honest single-CPU caveat when no speedup is physically
    possible; *identity_subject* names what the accompanying bitwise
    identity check covered.
    """
    cpus = default_worker_count()
    print()
    print(f"{header} | {cpus} CPU(s) available, {n_workers} workers requested")
    print(f"  serial   {serial_s:8.2f}s   1.00x")
    print(f"  thread   {thread_s:8.2f}s   {serial_s / thread_s:.2f}x")
    print(f"  process  {process_s:8.2f}s   {serial_s / process_s:.2f}x")
    if cpus == 1:
        print("  (single-CPU machine: no parallel speedup is physically possible;")
        print(f"   {identity_subject} across backends is still fully verified)")
