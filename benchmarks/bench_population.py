"""Serial vs parallel population build (generate -> inject -> identify_ideal).

Measures the wall clock of `build_population` through the serial, thread and
process backends, verifies all three produce a *bitwise identical* bundle
(values, injection ledger, dirty/ideal split, fitted limits — the sharded
pipeline's determinism contract), and prints the speedup table. The three
stages are shard-parallel with per-series pre-spawned streams, so on a
machine with W free cores the process backend approaches W× on the
per-series work; on a single-core box the table will honestly show ~1× and
the identity check still exercises the sharded path end to end.

Run:  REPRO_SCALE=small PYTHONPATH=src python -m pytest -q -s benchmarks/bench_population.py
"""

from __future__ import annotations

import time

from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.experiments.config import build_population

from bench_utils import print_speedup_table, run_once

#: Worker count the acceptance experiment pins (capped by available CPUs
#: inside the backends' ``map``).
N_WORKERS = 4


def _build(scale, backend):
    return build_population(scale=scale, seed=0, backend=backend)


def _timed(scale, backend):
    start = time.perf_counter()
    bundle = _build(scale, backend)
    return bundle, time.perf_counter() - start


def test_population_build_speedup(benchmark, scale):
    serial_bundle, serial_s = _timed(scale, SerialBackend())
    thread_bundle, thread_s = _timed(scale, ThreadBackend(N_WORKERS))
    process_bundle = run_once(
        benchmark, lambda: _build(scale, ProcessBackend(N_WORKERS))
    )
    process_s = benchmark.stats.stats.total

    # The determinism contract: every backend builds the exact same bundle —
    # not statistically equivalent, identical. `fingerprint` covers values,
    # injection ledger, dirty/ideal split and fitted limits.
    reference = serial_bundle.fingerprint()
    assert thread_bundle.fingerprint() == reference
    assert process_bundle.fingerprint() == reference

    print_speedup_table(
        f"Population build: scale={scale}, {len(serial_bundle.population)} series",
        serial_s,
        thread_s,
        process_s,
        N_WORKERS,
        identity_subject="bundle-identity",
    )
