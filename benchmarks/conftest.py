"""Shared benchmark fixtures.

The population scale is controlled by the ``REPRO_SCALE`` environment
variable (``tiny`` / ``small`` / ``paper``), defaulting to ``small``:
600 series of length 170, R = 10 replications of B = 40 series. The ``paper``
preset regenerates the full 20,000-series / R = 50 / B = 100 experiments.

Every bench prints the table/series it regenerates, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the experiment log.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.experiments.config import build_population, experiment_config, scale_from_env

from bench_utils import bench_results_path


@pytest.fixture(scope="session", autouse=True)
def fresh_bench_results():
    """Start every bench session from an empty results file.

    ``record_bench`` merges entries so all bench modules of one run share
    one file; truncating here keeps stale entries from previous runs (or
    differently-scaled runs) from leaking into the recorded snapshot.
    """
    with contextlib.suppress(OSError):
        bench_results_path().unlink()


@pytest.fixture(scope="session")
def scale():
    return scale_from_env(default="small")


@pytest.fixture(scope="session")
def bundle(scale):
    return build_population(scale=scale, seed=0)


@pytest.fixture(scope="session")
def config(scale):
    return experiment_config(scale, log_transform=True, seed=0)
