"""Figure 7 — the cost of cleaning: Strategy 1 on 100/50/20/0% of the data.

Paper: both improvement and distortion grow with the fraction cleaned; the
0% point is the origin; gains taper — "cleaning more than 50% of the data
results in relatively small changes in statistical distortion and glitch
score" (Section 5.6).
"""

from repro.experiments.paper import run_figure7
from repro.experiments.report import render_cost_summary

from bench_utils import run_once


def test_figure7a_log(benchmark, bundle, config):
    sweep = run_once(benchmark, lambda: run_figure7(bundle, config))
    print()
    print(render_cost_summary(
        sweep, title=f"Figure 7(a): B={config.sample_size}, log(attr1)"
    ))
    print("marginal gains (fraction, d_improvement, d_distortion):")
    for f, di, dd in sweep.marginal_gains():
        print(f"  up to {f:>4.0%}: +{di:.3f} improvement, +{dd:.3f} EMD")


def test_figure7b_no_log(benchmark, bundle, config):
    cfg = config.variant(log_transform=False)
    sweep = run_once(benchmark, lambda: run_figure7(bundle, cfg))
    print()
    print(render_cost_summary(
        sweep, title=f"Figure 7(b): B={cfg.sample_size}, no log"
    ))


def test_figure7c_large_sample(benchmark, bundle, config):
    cfg = config.variant(sample_size=5 * config.sample_size)
    sweep = run_once(benchmark, lambda: run_figure7(bundle, cfg))
    print()
    print(render_cost_summary(
        sweep, title=f"Figure 7(c): B={cfg.sample_size}, log(attr1)"
    ))
