"""Ablations on the framework's design choices.

1. **Extension strategies** — time-series interpolation and regression
   imputation slot into the same three-dimensional evaluation next to the
   paper's five (the future-work direction of Section 6.1: structure-aware
   cleaning).
2. **Oracle re-measurement** — Figure 2's expensive strategy: at matched
   glitch coverage it achieves far lower distortion than any model-based
   imputation, anchoring the bottom of the distortion axis.
3. **Replication count** — Section 2.1.1: "any value of R more than 30 is
   sufficient"; the sweep shows summary means stabilising well before that.
4. **Trade-off analysis** — the Pareto front / knee of the final metric
   space, i.e. what the framework actually recommends.
"""

import numpy as np

from repro.cleaning.registry import paper_strategies, strategy_by_name
from repro.cleaning.remeasure import RemeasureStrategy
from repro.core.framework import ExperimentRunner
from repro.core.tradeoff import knee_point, pareto_front
from repro.experiments.report import render_strategy_summaries

from bench_utils import run_once


def test_extension_strategies(benchmark, bundle, config):
    strategies = paper_strategies() + [
        strategy_by_name("interpolate"),
        strategy_by_name("interpolate+winsorize"),
        strategy_by_name("regression"),
    ]

    def run():
        runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=config)
        return runner.run(strategies)

    result = run_once(benchmark, run)
    print()
    print(render_strategy_summaries(
        result.summaries(), title="Extension strategies vs the paper's five"
    ))


def test_oracle_remeasure(benchmark, bundle, config):
    strategies = [
        strategy_by_name("strategy4"),
        strategy_by_name("strategy2"),
        RemeasureStrategy(coverage=1.0),
        RemeasureStrategy(coverage=0.3),
    ]
    strategies[2].name = "remeasure@100%"
    strategies[3].name = "remeasure@30%"

    def run():
        runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=config)
        return runner.run(strategies)

    result = run_once(benchmark, run)
    print()
    print(render_strategy_summaries(
        result.summaries(),
        title="Figure 2's budget story: imputation vs re-measurement",
    ))
    s = {x.strategy: x for x in result.summaries()}
    assert (
        s["remeasure@100%"].distortion_mean < s["strategy2"].distortion_mean
    ), "the oracle must beat model-based imputation on distortion"


def test_replication_count_sweep(benchmark, bundle, config):
    def run():
        rows = {}
        for r in (3, 5, 10):
            cfg = config.variant(n_replications=min(r, config.n_replications * 5))
            runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=cfg)
            result = runner.run([strategy_by_name("strategy5")])
            s = result.summaries()[0]
            rows[r] = (s.improvement_mean, s.distortion_mean)
        return rows

    rows = run_once(benchmark, run)
    print()
    print("Replication-count sweep (strategy5):")
    print(f"{'R':>4} {'improvement':>12} {'EMD':>8}")
    for r, (imp, emd) in rows.items():
        print(f"{r:>4} {imp:>12.3f} {emd:>8.3f}")


def test_tradeoff_front(benchmark, bundle, config):
    def run():
        runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=config)
        return runner.run(paper_strategies()).summaries()

    summaries = run_once(benchmark, run)
    front = pareto_front(summaries)
    knee = knee_point(summaries)
    print()
    print("Three-dimensional trade-off analysis:")
    print("  Pareto-viable strategies:", ", ".join(p.strategy for p in front))
    print(f"  knee point: {knee.strategy} "
          f"(improvement {knee.improvement:.2f}, EMD {knee.distortion:.3f})")
