"""Figure 5 — Attribute 3 before vs after Strategies 1 and 2.

Paper: imputed values concentrate near 1 but spill above it — impossible
ratios the imputing algorithm invents, i.e. new constraint-2 inconsistencies.
Strategy 2 ignores outliers (zero repaired cells) and lets imputations roam
the full range.
"""

from repro.experiments.paper import figure5_stats

from bench_utils import run_once


def test_figure5(benchmark, bundle, config):
    def run():
        return {
            "strategy1": figure5_stats(bundle, "strategy1", config=config),
            "strategy2": figure5_stats(bundle, "strategy2", config=config),
        }

    stats = run_once(benchmark, run)
    print()
    header = (
        f"{'strategy':<10} {'n_imputed':>10} {'n_repaired':>11} "
        f"{'imputed>1':>10} {'max imputed':>12}"
    )
    print("Figure 5: Attribute 3 treated by Strategies 1 and 2")
    print(header)
    print("-" * len(header))
    for label, row in stats.items():
        print(
            f"{label:<10} {row['n_imputed']:>10.0f} {row['n_repaired']:>11.0f} "
            f"{row['frac_imputed_above_one']:>9.1%} {row['max_imputed']:>12.4f}"
        )
