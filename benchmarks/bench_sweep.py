"""Incremental-sweep smoke: cold grouped sweep vs warm vs one-cell edit.

One sweep (the three Figure 6 panels over a shared population recipe) run
three ways against a single catalog:

* **cold** — nothing cached; the planner groups the cells by shared recipe
  and must build the population **exactly once** (asserted via the
  planner's build counter) instead of once per cell;
* **warm** — the identical sweep again; every cell must be served from the
  catalog with **zero recomputes** and no population build;
* **one-cell edit** — one panel's config changes; the planner must
  recompute **exactly the invalidated cell** and serve the rest.

Every variant's outcomes are asserted bitwise-identical to per-cell
from-scratch runs (``build_population`` + ``ExperimentRunner``, no catalog,
no sharing) — the sweep engine is a scheduler, never a numerics change.

Records ``{wall_s, speedup, identity_ok}`` (warm-over-cold) plus the cold /
edited walls and the recompute counters into ``BENCH_PR9.json``.

Run:  REPRO_SCALE=tiny PYTHONPATH=src python -m pytest -q -s benchmarks/bench_sweep.py
"""

from __future__ import annotations

import hashlib
import os
import time

from repro.experiments.config import scale_from_env

from bench_utils import record_bench


def _fingerprint(result) -> str:
    keys = [
        (o.strategy, o.replication, o.improvement, o.distortion,
         o.glitch_index_dirty, o.glitch_index_treated, o.cost_fraction,
         tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
         tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())))
        for o in result.outcomes
    ]
    return hashlib.sha1(repr(keys).encode()).hexdigest()


def test_sweep_cold_warm_invalidated(tmp_path):
    """The planner's three-way contract: build once, serve all, redo one."""
    from repro.core.framework import ExperimentRunner
    from repro.experiments.config import build_population, experiment_config
    from repro.experiments.sweep import (
        SweepCell,
        cell_strategies,
        figure6_cells,
        run_sweep,
    )
    from repro.store.catalog import Catalog

    scale = scale_from_env(default="small")
    base = experiment_config(scale)
    cells = figure6_cells(scale=scale, seed=0, base_config=base)

    # Per-cell from-scratch reference: rebuild the population for every
    # cell, no catalog, no sharing — the layout the planner replaces.
    reference = {}
    t0 = time.perf_counter()
    for cell in cells:
        bundle = build_population(scale=scale, seed=0)
        runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=cell.config)
        reference[cell.name] = _fingerprint(runner.run(cell_strategies(cell)))
    scratch_wall = time.perf_counter() - t0

    with Catalog(os.fspath(tmp_path / "catalog.sqlite")) as cat:
        t0 = time.perf_counter()
        cold = run_sweep(cells, catalog=cat, name="fig6")
        cold_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = run_sweep(cells, catalog=cat, name="fig6")
        warm_wall = time.perf_counter() - t0

        edited = list(cells)
        edited[1] = SweepCell(
            name=cells[1].name,
            config=cells[1].config.variant(sigma_k=2.5),
            scale=scale,
            seed=0,
        )
        t0 = time.perf_counter()
        one = run_sweep(edited, catalog=cat, name="fig6")
        one_wall = time.perf_counter() - t0

    identity_ok = all(
        _fingerprint(cold[name]) == reference[name]
        and _fingerprint(warm[name]) == reference[name]
        for name in reference
    ) and all(
        _fingerprint(one[c.name]) == reference[c.name]
        for c in edited
        if c.name != cells[1].name
    )
    speedup = cold_wall / max(warm_wall, 1e-9)
    record_bench(
        "bench_sweep",
        wall_s=warm_wall,
        speedup=speedup,
        identity_ok=identity_ok,
        scratch_wall_s=round(scratch_wall, 4),
        cold_wall_s=round(cold_wall, 4),
        one_cell_wall_s=round(one_wall, 4),
        cold_builds=cold.n_builds,
        warm_recomputed=warm.n_recomputed,
        one_cell_recomputed=one.n_recomputed,
    )
    print()
    print(
        f"Incremental sweep ({scale}, {len(cells)} cells): "
        f"scratch {scratch_wall:.2f}s, cold {cold_wall:.2f}s "
        f"({cold.n_builds} build), warm {warm_wall:.4f}s ({speedup:.0f}x, "
        f"{warm.n_recomputed} recomputed), one-cell edit {one_wall:.2f}s "
        f"({one.n_recomputed} recomputed: {one.recomputed()}), "
        f"identity={'ok' if identity_ok else 'FAILED'}"
    )
    # The grouping contract: one shared population build for the whole
    # cold sweep (the from-scratch layout builds it once per cell).
    assert cold.n_builds == 1
    assert cold.n_recomputed == len(cells)
    # The serving contract: a warm unchanged sweep recomputes nothing.
    assert warm.n_recomputed == 0 and warm.n_builds == 0
    assert warm.n_hits == len(cells)
    # The invalidation contract: a single-cell config edit recomputes
    # exactly the invalidated cell, and the diff names it.
    assert one.recomputed() == [cells[1].name]
    assert one.n_hits == len(cells) - 1
    assert list(one.diff.changed) == [cells[1].name]
    # And none of it is allowed to move a float.
    assert identity_ok
