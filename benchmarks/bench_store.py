"""Persistent-store smoke: experiment catalog reuse + mmap-vs-npz spill.

Two cells, mirroring the two halves of the storage layer:

* **cold vs warm catalog** — the same ``run_experiment`` call twice against
  one :class:`~repro.store.catalog.Catalog`. The cold pass builds the
  population and scores the cell; the warm pass must be served from the
  catalog (``cat.hits == 1``) with a **bitwise-identical** outcome list and
  without building the population at all. Records the warm-over-cold
  speedup — the headline win of recipe-keyed reuse.
* **mmap vs npz spill** — one spilled population scanned selectively
  (per-shard lengths plus a single values row), once through the columnar
  memory-mapped format (:mod:`repro.store.shards`) and once through an
  ``.npz`` copy of the same data (the PR 4 format, rebuilt here for
  comparison). A prep subprocess materialises and spills both formats;
  each scan then runs in its own **fresh** subprocess (materialising in the
  measuring process would leave freed allocator pages resident, hiding the
  npz copies under the old watermark). The mmap path faults in just the
  touched pages, while ``np.load`` materialises whole member arrays. The
  checksum of the scanned bytes must agree across formats (``float64``
  round-trips bitwise through both); the RSS ratio is recorded without a
  strict threshold — at tiny scale the deltas sit near allocator noise.

Records ``{wall_s, speedup, identity_ok}`` (catalog cell) and
``{rss_ratio, identity_ok}`` (spill cell) into ``BENCH_PR9.json``.

Run:  REPRO_SCALE=tiny PYTHONPATH=src python -m pytest -q -s benchmarks/bench_store.py
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time

from repro.experiments.config import scale_from_env

from bench_utils import record_bench

#: Spill-bench population per scale: (generator kwargs, shard_size).
SPILL_SIZES = {
    "tiny": (
        dict(n_rnc=2, towers_per_rnc=5, sectors_per_tower=20,
             series_length=60, min_length=60),
        25,
    ),
    "small": (
        dict(n_rnc=4, towers_per_rnc=10, sectors_per_tower=20,
             series_length=170, min_length=170),
        100,
    ),
}
SPILL_SIZES["paper"] = SPILL_SIZES["small"]


def _fingerprint(result) -> str:
    """Bitwise identity of an outcome list (the bench_stream reduction)."""
    keys = [
        (o.strategy, o.replication, o.improvement, o.distortion,
         o.glitch_index_dirty, o.glitch_index_treated, o.cost_fraction,
         tuple(sorted((g.name, v) for g, v in o.dirty_fractions.items())),
         tuple(sorted((g.name, v) for g, v in o.treated_fractions.items())))
        for o in result.outcomes
    ]
    return hashlib.sha1(repr(keys).encode()).hexdigest()


def test_catalog_cold_vs_warm(tmp_path):
    """A repeated sweep cell is a catalog hit, bitwise-identical, and fast."""
    from repro.experiments.paper import run_experiment
    from repro.store.catalog import Catalog

    scale = scale_from_env(default="small")
    with Catalog(os.fspath(tmp_path / "catalog.sqlite")) as cat:
        t0 = time.perf_counter()
        cold = run_experiment(scale=scale, seed=0, catalog=cat)
        cold_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_experiment(scale=scale, seed=0, catalog=cat)
        warm_wall = time.perf_counter() - t0
        hits, misses = cat.hits, cat.misses

    identity_ok = _fingerprint(cold) == _fingerprint(warm)
    speedup = cold_wall / max(warm_wall, 1e-9)
    record_bench(
        "bench_store_catalog",
        wall_s=warm_wall,
        speedup=speedup,
        identity_ok=identity_ok,
        cold_wall_s=round(cold_wall, 4),
        catalog_hits=hits,
        catalog_misses=misses,
    )
    print()
    print(
        f"Catalog reuse ({scale}): cold {cold_wall:.2f}s, warm {warm_wall:.4f}s "
        f"({speedup:.0f}x), hits={hits}, misses={misses}, "
        f"identity={'ok' if identity_ok else 'FAILED'}"
    )
    # The reuse contract: exactly one miss (the cold pass), one hit (the
    # warm pass), and the served outcome is the stored one, bit for bit.
    assert identity_ok
    assert (hits, misses) == (1, 1)


_PREP = r"""
import glob, json, os, sys
import numpy as np
payload = json.loads(sys.argv[1])
from repro.data.generator import GeneratorConfig
from repro.data.slab import SlabFeed
from repro.store.shards import read_shard

feed = SlabFeed(
    generator_config=GeneratorConfig(**payload["generator"]),
    seed=0, shard_size=payload["shard_size"], spill=True,
    spill_dir=payload["dir"],
)
for _source, _series in feed.iter_series(spill=True):
    pass
paths = sorted(glob.glob(os.path.join(payload["dir"], "*.slab")))
for p in paths:
    # The same shards in the legacy whole-array format, for comparison.
    h = read_shard(p)
    np.savez(p + ".npz", lengths=np.asarray(h.lengths),
             values=np.asarray(h.values), truth=np.asarray(h.truth))
print(json.dumps({"n_shards": len(paths)}))
"""

_SCAN = r"""
import glob, hashlib, json, os, resource, sys, time
import numpy as np
mode, spill_dir = sys.argv[1], sys.argv[2]
from repro.store.shards import read_shard

paths = sorted(glob.glob(os.path.join(
    spill_dir, "*.npz" if mode == "npz" else "*.slab")))


def peak_rss_kb():
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def reset_peak():
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


resettable = reset_peak()
rss0 = peak_rss_kb()
t0 = time.perf_counter()
digest = hashlib.sha1()
for p in paths:
    # The selective scan: per-series lengths plus one values row — the
    # access pattern of a consumer that inspects a shard without draining it.
    if mode == "npz":
        with np.load(p) as z:
            digest.update(np.asarray(z["lengths"]).tobytes())
            digest.update(np.asarray(z["values"][0]).tobytes())
    else:
        h = read_shard(p)
        digest.update(np.asarray(h.lengths).tobytes())
        digest.update(np.asarray(h.values[0]).tobytes())
wall = time.perf_counter() - t0
rss1 = peak_rss_kb()
print(json.dumps({
    "wall_s": wall,
    "rss_delta_kb": rss1 - rss0,
    "resettable": resettable,
    "checksum": digest.hexdigest(),
    "n_shards": len(paths),
}))
"""


def _run_child(script: str, *argv: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    out = subprocess.run(
        [sys.executable, "-c", script, *argv],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_spill_scan_mmap_vs_npz(tmp_path):
    """Selective scans over the two spill formats: same bytes, less memory."""
    generator, shard_size = SPILL_SIZES[scale_from_env(default="small")]
    payload = {
        "generator": generator, "shard_size": shard_size,
        "dir": str(tmp_path),
    }
    _run_child(_PREP, json.dumps(payload))
    mmap = _run_child(_SCAN, "mmap", str(tmp_path))
    npz = _run_child(_SCAN, "npz", str(tmp_path))

    identity_ok = mmap["checksum"] == npz["checksum"]
    rss_ratio = mmap["rss_delta_kb"] / max(npz["rss_delta_kb"], 1)
    record_bench(
        "bench_store_spill_scan",
        wall_s=mmap["wall_s"],
        identity_ok=identity_ok,
        npz_wall_s=round(npz["wall_s"], 4),
        mmap_rss_delta_kb=mmap["rss_delta_kb"],
        npz_rss_delta_kb=npz["rss_delta_kb"],
        rss_ratio=round(rss_ratio, 3),
        n_shards=mmap["n_shards"],
    )
    print()
    print(
        f"Spill scan over {mmap['n_shards']} shards: "
        f"mmap {mmap['wall_s']:.3f}s / {mmap['rss_delta_kb']} KiB peak, "
        f"npz {npz['wall_s']:.3f}s / {npz['rss_delta_kb']} KiB peak "
        f"(mmap/npz rss {rss_ratio:.2f}x), "
        f"identity={'ok' if identity_ok else 'FAILED'}"
    )
    # The format contract: both spill formats serve the same float64 bytes.
    # The RSS ratio is recorded, not asserted — at tiny scale the deltas sit
    # within allocator noise, and the memory contract proper is covered by
    # bench_stream's oversized-population cell.
    assert identity_ok
