"""Serial vs parallel execution of the Figure 6 experiment.

Measures the wall clock of the same `run_figure6` workload through the
serial, thread and process backends, verifies all three produce *identical*
outcome lists (the framework's determinism contract), and prints the
speedup table. Replication pairs are embarrassingly parallel, so on a
machine with W free cores the process backend approaches W× on the
replication loop; on a single-core box the table will honestly show ~1× and
the identity check still exercises the parallel path end to end.

Small replication counts are where the PR 3 bench recorded a process-backend
*slowdown* (0.77×): pool start-up and pickling dominated ~10 work units.
The backend now falls back to the serial loop below its ``min_units``
threshold (see ``ProcessBackend``), so the small-scale process number is the
serial number — never worse — while large runs still fan out. Timings are
best-of-``ROUNDS`` after a warm-up so the recorded ratio reflects steady
state, not allocator noise.

Run:  REPRO_SCALE=small PYTHONPATH=src python -m pytest -q -s benchmarks/bench_parallel.py
"""

from __future__ import annotations

import time

from repro.cleaning.registry import paper_strategies
from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.framework import ExperimentRunner

from bench_utils import print_speedup_table, record_bench, run_once

#: Worker count the acceptance experiment pins (capped by available CPUs
#: inside the backends' ``map``).
N_WORKERS = 4

#: Best-of rounds per backend — enough to iron out timer noise at small scale.
ROUNDS = 3


def _run(bundle, config, backend):
    runner = ExperimentRunner(
        bundle.dirty, bundle.ideal, config=config, backend=backend
    )
    return runner.run(paper_strategies())


def _timed_once(bundle, config, backend):
    start = time.perf_counter()
    result = _run(bundle, config, backend)
    return result, time.perf_counter() - start


def _outcome_key(o):
    return (
        o.strategy,
        o.replication,
        o.improvement,
        o.distortion,
        o.glitch_index_dirty,
        o.glitch_index_treated,
        o.cost_fraction,
    )


def test_parallel_speedup(benchmark, bundle, config):
    _run(bundle, config, SerialBackend())  # warm-up (imports, allocator, BLAS)
    backend = ProcessBackend(N_WORKERS)
    process_result = run_once(benchmark, lambda: _run(bundle, config, backend))
    process_s = benchmark.stats.stats.total
    # Interleave the remaining serial/process rounds so scheduler drift on a
    # shared box hits both sides equally; record the best of each.
    serial_s = float("inf")
    serial_result = None
    for _ in range(ROUNDS):
        serial_result, t = _timed_once(bundle, config, SerialBackend())
        serial_s = min(serial_s, t)
        _, t = _timed_once(bundle, config, backend)
        process_s = min(process_s, t)
    # Thread timing gets the same warm best-of treatment as the other two
    # backends so the printed comparison is not biased against it.
    thread_s = float("inf")
    thread_result = None
    for _ in range(ROUNDS):
        thread_result, t = _timed_once(bundle, config, ThreadBackend(N_WORKERS))
        thread_s = min(thread_s, t)

    # The determinism contract: every backend replays the exact same
    # floating-point computation — not approximately, identically.
    serial_keys = [_outcome_key(o) for o in serial_result.outcomes]
    identity_ok = (
        [_outcome_key(o) for o in thread_result.outcomes] == serial_keys
        and [_outcome_key(o) for o in process_result.outcomes] == serial_keys
    )
    fell_back = config.n_replications < backend.resolved_min_units()
    record_bench(
        "bench_parallel",
        wall_s=process_s,
        # Two-decimal reporting precision: under the serial fallback the two
        # sides run the same code and the true ratio is 1.0 by construction;
        # finer digits would only record scheduler noise.
        speedup=round(serial_s / process_s, 2),
        identity_ok=identity_ok,
        serial_wall_s=round(serial_s, 4),
        serial_fallback=fell_back,
        timing="warm_min_of_interleaved",
    )
    assert identity_ok

    print_speedup_table(
        f"Figure 6 run: R={config.n_replications}, B={config.sample_size}, "
        "5 strategies",
        serial_s,
        thread_s,
        process_s,
        N_WORKERS,
        identity_subject="outcome-identity",
    )
