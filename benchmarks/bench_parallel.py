"""Serial vs parallel execution of the Figure 6 experiment.

Measures the wall clock of the same `run_figure6` workload through the
serial, thread and process backends, verifies all three produce *identical*
outcome lists (the framework's determinism contract), and prints the
speedup table. Replication pairs are embarrassingly parallel, so on a
machine with W free cores the process backend approaches W× on the
replication loop; on a single-core box the table will honestly show ~1× and
the identity check still exercises the parallel path end to end.

Run:  REPRO_SCALE=small PYTHONPATH=src python -m pytest -q -s benchmarks/bench_parallel.py
"""

from __future__ import annotations

import time

from repro.cleaning.registry import paper_strategies
from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.framework import ExperimentRunner

from bench_utils import print_speedup_table, record_bench, run_once

#: Worker count the acceptance experiment pins (capped by available CPUs
#: inside the backends' ``map``).
N_WORKERS = 4


def _run(bundle, config, backend):
    runner = ExperimentRunner(
        bundle.dirty, bundle.ideal, config=config, backend=backend
    )
    return runner.run(paper_strategies())


def _timed(bundle, config, backend):
    start = time.perf_counter()
    result = _run(bundle, config, backend)
    return result, time.perf_counter() - start


def _outcome_key(o):
    return (
        o.strategy,
        o.replication,
        o.improvement,
        o.distortion,
        o.glitch_index_dirty,
        o.glitch_index_treated,
        o.cost_fraction,
    )


def test_parallel_speedup(benchmark, bundle, config):
    serial_result, serial_s = _timed(bundle, config, SerialBackend())
    thread_result, thread_s = _timed(bundle, config, ThreadBackend(N_WORKERS))
    process_result = run_once(
        benchmark, lambda: _run(bundle, config, ProcessBackend(N_WORKERS))
    )
    process_s = benchmark.stats.stats.total

    # The determinism contract: every backend replays the exact same
    # floating-point computation — not approximately, identically.
    serial_keys = [_outcome_key(o) for o in serial_result.outcomes]
    identity_ok = (
        [_outcome_key(o) for o in thread_result.outcomes] == serial_keys
        and [_outcome_key(o) for o in process_result.outcomes] == serial_keys
    )
    record_bench(
        "bench_parallel",
        wall_s=process_s,
        speedup=serial_s / process_s,
        identity_ok=identity_ok,
        serial_wall_s=round(serial_s, 4),
    )
    assert identity_ok

    print_speedup_table(
        f"Figure 6 run: R={config.n_replications}, B={config.sample_size}, "
        "5 strategies",
        serial_s,
        thread_s,
        process_s,
        N_WORKERS,
        identity_subject="outcome-identity",
    )
