"""Figure 4 — Attribute 1 before vs after Strategy 1, without and with log.

Paper: (a) on the raw scale the Gaussian imputer plants *negative* values
(new constraint-1 inconsistencies) and Winsorization clips the right tail;
(b) under the log transform imputations are structurally positive and the
*left* tail is Winsorized instead — the cautionary tail flip of Section 5.3.
"""

from repro.experiments.paper import figure4_stats

from bench_utils import run_once


def test_figure4(benchmark, bundle, config):
    def run():
        return {
            "no log": figure4_stats(bundle, log_transform=False, config=config),
            "log": figure4_stats(bundle, log_transform=True, config=config),
        }

    stats = run_once(benchmark, run)
    print()
    header = (
        f"{'config':<8} {'n_imputed':>10} {'n_repaired':>11} "
        f"{'imputed<0':>10} {'clip upper':>11} {'clip lower':>11}"
    )
    print("Figure 4: Attribute 1 treated by Strategy 1")
    print(header)
    print("-" * len(header))
    for label, row in stats.items():
        print(
            f"{label:<8} {row['n_imputed']:>10.0f} {row['n_repaired']:>11.0f} "
            f"{row['frac_imputed_negative']:>9.1%} "
            f"{row['frac_repaired_upper']:>10.1%} {row['frac_repaired_lower']:>10.1%}"
        )
