"""Bottom-k sketches (Cohen & Kaplan, reference [4] of the paper).

A bottom-k sketch summarises a weighted population by the k items with the
smallest random ranks ``r_i = u_i / w_i`` (``u_i`` i.i.d. uniform). Sketches
support unions (for distributed collection) and unbiased subset-sum
estimation via rank-conditioning: with ``tau`` the (k+1)-smallest rank, every
sketched item gets the Horvitz-Thompson style adjusted weight
``max(w_i, 1/tau)``.

In this library the items are time series and the weights are typically
glitch scores — a sketch answers "how much glitch mass sits in RNC 3?"
without touching the full population.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Callable, Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.errors import SamplingError
from repro.utils.rng import Seed, as_generator, spawn_sequences
from repro.utils.validation import check_positive_int

__all__ = ["BottomKSketch", "indexed_ranks", "union_sketches"]


@dataclass(frozen=True)
class _Entry:
    key: Hashable
    weight: float
    rank: float


def indexed_ranks(n: int, seed: Seed, start: int = 0) -> np.ndarray:
    """``n`` uniform rank draws ``u_i`` pre-spawned by global item index.

    Item ``start + i`` always draws the same uniform no matter how the
    population is sliced into shards — the same layout-invariance idiom the
    sharded pipeline uses for its per-series streams, and deliberately
    independent of the item weights. It is what makes the
    distributed-collection identity exact: the union of shard sketches *is*
    the sketch of the union, entry for entry (``tests/test_sampling_sketches``
    pins it down).

    Spawning is O(``start + n``) per call, so a caller walking many shards
    of one population should draw the ranks once at ``start=0`` and slice
    (as the streaming engine does) rather than re-spawn per shard.
    """
    if n < 0:
        raise SamplingError(f"n must be >= 0, got {n}")
    seqs = spawn_sequences(seed, start + n)[start:]
    return np.array(
        [max(float(np.random.default_rng(seq).random()), 1e-300) for seq in seqs]
    )


class BottomKSketch:
    """Bottom-k sketch over ``(key, weight)`` items."""

    def __init__(self, k: int, entries: Sequence[_Entry], tau: float):
        self.k = k
        self._entries = sorted(entries, key=lambda e: e.rank)[:k]
        self._tau = tau

    @classmethod
    def build(
        cls,
        items: Iterable[tuple[Hashable, float]],
        k: int,
        seed: Seed = None,
    ) -> "BottomKSketch":
        """Sketch the items, keeping the k smallest ranks ``u/w``."""
        k = check_positive_int(k, "k")
        rng = as_generator(seed)
        entries: list[_Entry] = []
        for key, weight in items:
            weight = float(weight)
            if weight < 0 or not np.isfinite(weight):
                raise SamplingError(f"weight for {key!r} must be finite and >= 0")
            if weight == 0:
                continue
            u = float(rng.random())
            u = max(u, 1e-300)  # avoid rank 0
            entries.append(_Entry(key=key, weight=weight, rank=u / weight))
        entries.sort(key=lambda e: e.rank)
        tau = entries[k].rank if len(entries) > k else float("inf")
        return cls(k=k, entries=entries[:k], tau=tau)

    @classmethod
    def from_weights(
        cls,
        keys: Sequence[Hashable],
        weights: Sequence[float],
        k: int,
        seed: Seed = None,
        start: int = 0,
        ranks: Optional[np.ndarray] = None,
    ) -> "BottomKSketch":
        """Sketch a (shard of a) weighted population with *indexed* ranks.

        Unlike :meth:`build`, which draws uniforms from one sequential
        stream, every item's rank here comes from its own stream spawned by
        global item index (``start`` offsets a shard's slice into the
        population, see :func:`indexed_ranks`; pre-computed *ranks* may be
        passed to amortise the spawning). Consequence: sketching shard
        ``[a, b)`` and shard ``[b, c)`` separately and taking the
        :meth:`union` gives exactly the sketch of ``[a, c)`` — the
        distributed-collection setting of the paper's reference [4].
        """
        k = check_positive_int(k, "k")
        keys = list(keys)
        if len(keys) != len(weights):
            raise SamplingError(
                f"got {len(keys)} keys for {len(weights)} weights"
            )
        if ranks is None:
            ranks = indexed_ranks(len(keys), seed, start=start)
        elif len(ranks) != len(keys):
            raise SamplingError(
                f"got {len(ranks)} ranks for {len(keys)} keys"
            )
        entries: list[_Entry] = []
        for key, weight, u in zip(keys, weights, ranks):
            weight = float(weight)
            if weight < 0 or not np.isfinite(weight):
                raise SamplingError(f"weight for {key!r} must be finite and >= 0")
            if weight == 0:
                continue
            entries.append(_Entry(key=key, weight=weight, rank=float(u) / weight))
        entries.sort(key=lambda e: e.rank)
        tau = entries[k].rank if len(entries) > k else float("inf")
        return cls(k=k, entries=entries[:k], tau=tau)

    # -- accessors --------------------------------------------------------------

    @property
    def keys(self) -> list[Hashable]:
        """Keys currently in the sketch (ascending rank order)."""
        return [e.key for e in self._entries]

    @property
    def tau(self) -> float:
        """The (k+1)-smallest rank; ``inf`` when fewer than k+1 items exist."""
        return self._tau

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return any(e.key == key for e in self._entries)

    # -- estimation --------------------------------------------------------------

    def adjusted_weight(self, key: Hashable) -> float:
        """Rank-conditioned unbiased weight of a sketched item (0 if absent)."""
        for e in self._entries:
            if e.key == key:
                if np.isinf(self._tau):
                    return e.weight
                return max(e.weight, 1.0 / self._tau)
        return 0.0

    def estimate_subset_sum(self, predicate: Callable[[Hashable], bool]) -> float:
        """Unbiased estimate of the total weight of keys satisfying *predicate*."""
        total = 0.0
        for e in self._entries:
            if predicate(e.key):
                total += e.weight if np.isinf(self._tau) else max(e.weight, 1.0 / self._tau)
        return total

    def estimate_total(self) -> float:
        """Unbiased estimate of the whole population's weight."""
        return self.estimate_subset_sum(lambda _key: True)

    # -- composition --------------------------------------------------------------

    def union(self, other: "BottomKSketch") -> "BottomKSketch":
        """Sketch of the union of the two underlying populations.

        Requires both sketches to use the same k and the keys to be disjoint
        (the standard streams/partitions setting).
        """
        if other.k != self.k:
            raise SamplingError(f"cannot union sketches with k={self.k} and k={other.k}")
        merged = sorted(self._entries + other._entries, key=lambda e: e.rank)
        candidates = [self._tau, other._tau]
        if len(merged) > self.k:
            candidates.append(merged[self.k].rank)
        tau = min(candidates)
        return BottomKSketch(k=self.k, entries=merged[: self.k], tau=tau)


def union_sketches(sketches: Iterable[BottomKSketch]) -> BottomKSketch:
    """Union a stream of shard sketches into one population sketch."""
    sketches = list(sketches)
    if not sketches:
        raise SamplingError("union_sketches needs at least one sketch")
    return reduce(BottomKSketch.union, sketches)
