"""Test-pair generation — the replications of Section 2.1.1.

"We generate pairs of dirty and clean data sets by sampling with replacement
from the dirty data set D and the ideal data set DI, to create the test pair
{Di, DiI}, i = 1..R. Each pair is called a replication, with B records in
each of the data sets in the test pair."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.data.dataset import StreamDataset
from repro.sampling.simple import sample_series
from repro.utils.rng import Seed, spawn_generators
from repro.utils.validation import check_positive_int

__all__ = ["TestPair", "generate_test_pairs"]


@dataclass(frozen=True)
class TestPair:
    """One replication: a dirty sample ``Di`` and an ideal sample ``DiI``."""

    index: int
    dirty: StreamDataset
    ideal: StreamDataset


def generate_test_pairs(
    dirty: StreamDataset,
    ideal: StreamDataset,
    n_pairs: int,
    sample_size: int,
    seed: Seed = None,
) -> Iterator[TestPair]:
    """Yield ``n_pairs`` replications of ``sample_size`` series each.

    Each replication draws from its own spawned random stream, so replication
    ``i`` is identical no matter how many replications are consumed — the
    property that makes sweeps over R reproducible. The paper notes "any
    value of R more than 30 is sufficient" and uses R = 50.
    """
    n_pairs = check_positive_int(n_pairs, "n_pairs")
    sample_size = check_positive_int(sample_size, "sample_size")
    streams = spawn_generators(seed, n_pairs)
    for i, rng in enumerate(streams):
        di = sample_series(dirty, sample_size, rng)
        dii = sample_series(ideal, sample_size, rng)
        yield TestPair(index=i, dirty=di, ideal=dii)
