"""Test-pair generation — the replications of Section 2.1.1.

"We generate pairs of dirty and clean data sets by sampling with replacement
from the dirty data set D and the ideal data set DI, to create the test pair
{Di, DiI}, i = 1..R. Each pair is called a replication, with B records in
each of the data sets in the test pair."

When the populations have a uniform series length, each replication is drawn
as a **columnar sample block** (:class:`~repro.data.block.SampleBlock`): one
C-level index gather into the parent block instead of ``B`` per-series object
selections, and — when work units ship to process-pool workers — one array
pickle instead of ``B`` ``TimeSeries`` pickles. The per-series ``dirty`` /
``ideal`` data sets are materialised lazily as zero-copy views, so consumers
of either layout see the exact same values. ``REPRO_BLOCK=0`` disables the
block layout entirely (ragged populations skip it automatically).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.data.block import SampleBlock, block_fast_path_enabled
from repro.data.dataset import StreamDataset
from repro.errors import ValidationError
from repro.sampling.simple import sample_indices, sample_series
from repro.utils.rng import Seed, spawn_generators
from repro.utils.validation import check_positive_int

__all__ = ["TestPair", "generate_test_pairs"]


class TestPair:
    """One replication: a dirty sample ``Di`` and an ideal sample ``DiI``.

    Holds either layout of each side — per-series :class:`StreamDataset`,
    columnar :class:`SampleBlock`, or both. Whichever is absent is derived on
    first access (`dirty`/`ideal` materialise zero-copy views of the block),
    and pickling prefers the block so process workers receive one contiguous
    array per side.
    """

    __slots__ = ("index", "dirty_block", "ideal_block", "_dirty", "_ideal")

    def __init__(
        self,
        index: int,
        dirty: Optional[StreamDataset] = None,
        ideal: Optional[StreamDataset] = None,
        dirty_block: Optional[SampleBlock] = None,
        ideal_block: Optional[SampleBlock] = None,
    ):
        if dirty is None and dirty_block is None:
            raise ValidationError("TestPair needs dirty or dirty_block")
        if ideal is None and ideal_block is None:
            raise ValidationError("TestPair needs ideal or ideal_block")
        self.index = int(index)
        self.dirty_block = dirty_block
        self.ideal_block = ideal_block
        self._dirty = dirty
        self._ideal = ideal

    @property
    def dirty(self) -> StreamDataset:
        """The dirty sample ``Di`` (materialised from the block if needed)."""
        if self._dirty is None:
            self._dirty = StreamDataset.from_block(self.dirty_block)
        return self._dirty

    @property
    def ideal(self) -> StreamDataset:
        """The ideal sample ``DiI`` (materialised from the block if needed)."""
        if self._ideal is None:
            self._ideal = StreamDataset.from_block(self.ideal_block)
        return self._ideal

    def __getstate__(self):
        # Ship one array per side when the block layout exists; the view
        # data sets are rebuilt lazily on the receiving end.
        return (
            self.index,
            self.dirty_block,
            self.ideal_block,
            None if self.dirty_block is not None else self._dirty,
            None if self.ideal_block is not None else self._ideal,
        )

    def __setstate__(self, state) -> None:
        self.index, self.dirty_block, self.ideal_block, self._dirty, self._ideal = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        layout = "block" if self.dirty_block is not None else "series"
        return f"TestPair(index={self.index}, layout={layout})"


def generate_test_pairs(
    dirty: StreamDataset,
    ideal: StreamDataset,
    n_pairs: int,
    sample_size: int,
    seed: Seed = None,
) -> Iterator[TestPair]:
    """Yield ``n_pairs`` replications of ``sample_size`` series each.

    Each replication draws from its own spawned random stream, so replication
    ``i`` is identical no matter how many replications are consumed — the
    property that makes sweeps over R reproducible. The paper notes "any
    value of R more than 30 is sufficient" and uses R = 50.

    Uniform-length populations are converted to parent blocks once, and every
    replication is then an index gather (``SampleBlock.take``) into them; the
    index streams are the very same ``rng.integers`` draws the per-series
    path consumes, so the sampled values are identical in either layout.
    """
    n_pairs = check_positive_int(n_pairs, "n_pairs")
    sample_size = check_positive_int(sample_size, "sample_size")
    dirty_block = ideal_block = None
    if block_fast_path_enabled():
        dirty_block = dirty.try_to_block()
        ideal_block = ideal.try_to_block()
    streams = spawn_generators(seed, n_pairs)
    for i, rng in enumerate(streams):
        if dirty_block is not None and ideal_block is not None:
            di = dirty_block.take(sample_indices(len(dirty), sample_size, rng))
            dii = ideal_block.take(sample_indices(len(ideal), sample_size, rng))
            yield TestPair(index=i, dirty_block=di, ideal_block=dii)
        else:
            di = sample_series(dirty, sample_size, rng)
            dii = sample_series(ideal, sample_size, rng)
            yield TestPair(index=i, dirty=di, ideal=dii)
