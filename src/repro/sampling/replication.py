"""Test-pair generation — the replications of Section 2.1.1.

"We generate pairs of dirty and clean data sets by sampling with replacement
from the dirty data set D and the ideal data set DI, to create the test pair
{Di, DiI}, i = 1..R. Each pair is called a replication, with B records in
each of the data sets in the test pair."

When the populations have a uniform series length, each replication is drawn
as a **columnar sample block** (:class:`~repro.data.block.SampleBlock`): one
C-level index gather into the parent block instead of ``B`` per-series object
selections, and — when work units ship to process-pool workers — one array
pickle instead of ``B`` ``TimeSeries`` pickles. The per-series ``dirty`` /
``ideal`` data sets are materialised lazily as zero-copy views, so consumers
of either layout see the exact same values. ``REPRO_BLOCK=0`` disables the
block layout entirely (ragged populations skip it automatically).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.data.block import SampleBlock, block_fast_path_enabled
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.errors import ValidationError
from repro.sampling.simple import sample_indices
from repro.utils.rng import Seed, spawn_generators
from repro.utils.validation import check_positive_int

__all__ = [
    "TestPair",
    "generate_test_pairs",
    "replication_index_streams",
    "ParentGather",
]


class TestPair:
    """One replication: a dirty sample ``Di`` and an ideal sample ``DiI``.

    Holds either layout of each side — per-series :class:`StreamDataset`,
    columnar :class:`SampleBlock`, or both. Whichever is absent is derived on
    first access (`dirty`/`ideal` materialise zero-copy views of the block),
    and pickling prefers the block so process workers receive one contiguous
    array per side.
    """

    __slots__ = ("index", "dirty_block", "ideal_block", "_dirty", "_ideal")

    def __init__(
        self,
        index: int,
        dirty: Optional[StreamDataset] = None,
        ideal: Optional[StreamDataset] = None,
        dirty_block: Optional[SampleBlock] = None,
        ideal_block: Optional[SampleBlock] = None,
    ):
        if dirty is None and dirty_block is None:
            raise ValidationError("TestPair needs dirty or dirty_block")
        if ideal is None and ideal_block is None:
            raise ValidationError("TestPair needs ideal or ideal_block")
        self.index = int(index)
        self.dirty_block = dirty_block
        self.ideal_block = ideal_block
        self._dirty = dirty
        self._ideal = ideal

    @property
    def dirty(self) -> StreamDataset:
        """The dirty sample ``Di`` (materialised from the block if needed)."""
        if self._dirty is None:
            self._dirty = StreamDataset.from_block(self.dirty_block)
        return self._dirty

    @property
    def ideal(self) -> StreamDataset:
        """The ideal sample ``DiI`` (materialised from the block if needed)."""
        if self._ideal is None:
            self._ideal = StreamDataset.from_block(self.ideal_block)
        return self._ideal

    def __getstate__(self):
        # Ship one array per side when the block layout exists; the view
        # data sets are rebuilt lazily on the receiving end.
        return (
            self.index,
            self.dirty_block,
            self.ideal_block,
            None if self.dirty_block is not None else self._dirty,
            None if self.ideal_block is not None else self._ideal,
        )

    def __setstate__(self, state) -> None:
        self.index, self.dirty_block, self.ideal_block, self._dirty, self._ideal = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        layout = "block" if self.dirty_block is not None else "series"
        return f"TestPair(index={self.index}, layout={layout})"


def replication_index_streams(
    n_dirty: int,
    n_ideal: int,
    n_pairs: int,
    sample_size: int,
    seed: Seed = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield the ``(dirty_indices, ideal_indices)`` draws of every replication.

    This is the *entire* randomness of replication sampling, factored out so
    every consumer draws it identically: :func:`generate_test_pairs` feeds
    the indices to whole-population parents, while the streaming slab engine
    uses the same draws to decide which few series to gather at all — the
    two paths select bitwise-identical samples by construction. Each
    replication consumes its own spawned stream (dirty draw first, then
    ideal), so replication ``i`` is a function of ``(seed, i)`` alone.
    """
    n_pairs = check_positive_int(n_pairs, "n_pairs")
    sample_size = check_positive_int(sample_size, "sample_size")
    for rng in spawn_generators(seed, n_pairs):
        d_idx = sample_indices(n_dirty, sample_size, rng)
        i_idx = sample_indices(n_ideal, sample_size, rng)
        yield d_idx, i_idx


class ParentGather:
    """A bounded stand-in for one side's parent population.

    The block path materialises the *whole* population as one parent block
    and replications gather into it. At out-of-core scale the streaming
    engine instead gathers only the few series any replication actually
    touches — at most ``R x B`` distinct of them, independent of the
    population size — and this class replays the parent-block semantics on
    that bounded subset: ``sample(idx)`` returns exactly the
    :class:`SampleBlock` (or per-series data set) the full parent would
    have produced for the same index draw, series-index vector included.

    Parameters
    ----------
    n_total:
        Size of the (un-materialised) parent population this gather stands
        in for; indices are validated against it.
    entries:
        ``parent index -> TimeSeries`` for every gathered series.
    uniform:
        Whether the *full* parent population has a uniform series length —
        the layout decision must match the population, not the gathered
        subset, so both paths take the same block/per-series branch.
    """

    def __init__(
        self,
        n_total: int,
        entries: Mapping[int, TimeSeries],
        uniform: bool,
    ):
        self.n_total = check_positive_int(n_total, "n_total")
        self._entries = dict(entries)
        for idx in self._entries:
            if not 0 <= idx < self.n_total:
                raise ValidationError(
                    f"gathered index {idx} out of range for {self.n_total} series"
                )
        self.uniform = bool(uniform)
        self._block: Optional[SampleBlock] = None
        self._rows: Optional[dict[int, int]] = None
        if self.uniform and block_fast_path_enabled() and self._entries:
            order = sorted(self._entries)
            series = [self._entries[i] for i in order]
            truth = None
            if all(s.truth is not None for s in series):
                truth = np.stack([s.truth for s in series])
            self._block = SampleBlock(
                values=np.stack([s.values for s in series]),
                attributes=series[0].attributes,
                nodes=tuple(s.node for s in series),
                truth=truth,
                indices=np.array(order, dtype=np.intp),
            )
            self._rows = {idx: row for row, idx in enumerate(order)}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def gathered_indices(self) -> list[int]:
        """Parent indices present in the gather, ascending."""
        return sorted(self._entries)

    @property
    def block_layout(self) -> bool:
        """Whether :meth:`sample` produces :class:`SampleBlock` parents."""
        return self._block is not None

    def sample(self, indices: Sequence[int], block: Optional[bool] = None):
        """The sample the full parent would yield for *indices*.

        ``block=None`` follows this gather's own layout; pass ``False`` to
        force the per-series :class:`StreamDataset` form (needed when the
        *other* side of a pair is ragged — ``generate_test_pairs`` only uses
        the block layout when both sides have it).
        """
        idx = np.asarray(indices, dtype=np.intp)
        missing = [int(i) for i in idx if int(i) not in self._entries]
        if missing:
            raise ValidationError(
                f"indices {missing[:5]} were not gathered; the gather only "
                f"holds {len(self._entries)} of {self.n_total} series"
            )
        if block is None:
            block = self._block is not None
        if block:
            if self._block is None:
                raise ValidationError("this gather has no block layout")
            return self._block.take([self._rows[int(i)] for i in idx])
        return StreamDataset(self._entries[int(i)] for i in idx)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParentGather(n_total={self.n_total}, gathered={len(self)}, "
            f"layout={'block' if self.block_layout else 'series'})"
        )


def generate_test_pairs(
    dirty: StreamDataset,
    ideal: StreamDataset,
    n_pairs: int,
    sample_size: int,
    seed: Seed = None,
) -> Iterator[TestPair]:
    """Yield ``n_pairs`` replications of ``sample_size`` series each.

    Each replication draws from its own spawned random stream, so replication
    ``i`` is identical no matter how many replications are consumed — the
    property that makes sweeps over R reproducible. The paper notes "any
    value of R more than 30 is sufficient" and uses R = 50.

    Uniform-length populations are converted to parent blocks once, and every
    replication is then an index gather (``SampleBlock.take``) into them; the
    index streams come from :func:`replication_index_streams` — shared with
    the streaming slab engine — and are the very same ``rng.integers`` draws
    the per-series path consumes, so the sampled values are identical in
    either layout.
    """
    n_pairs = check_positive_int(n_pairs, "n_pairs")
    sample_size = check_positive_int(sample_size, "sample_size")
    dirty_block = ideal_block = None
    if block_fast_path_enabled():
        dirty_block = dirty.try_to_block()
        ideal_block = ideal.try_to_block()
    draws = replication_index_streams(
        len(dirty), len(ideal), n_pairs, sample_size, seed=seed
    )
    for i, (d_idx, i_idx) in enumerate(draws):
        if dirty_block is not None and ideal_block is not None:
            yield TestPair(
                index=i,
                dirty_block=dirty_block.take(d_idx),
                ideal_block=ideal_block.take(i_idx),
            )
        else:
            yield TestPair(
                index=i,
                dirty=dirty.subset(d_idx.tolist()),
                ideal=ideal.subset(i_idx.tolist()),
            )
