"""Differentially weighted series sampling.

Section 2.1.1: "The type of sampling can be geared to a user's specific needs
by differential weighting of subsets of data to be sampled." A user may, for
instance, over-sample series from an RNC under investigation, or weight by
glitch score to stress-test strategies on the dirtiest streams.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import StreamDataset
from repro.errors import SamplingError
from repro.utils.rng import Seed, as_generator
from repro.utils.validation import check_positive_int, ensure_1d

__all__ = ["weighted_sample_indices", "weighted_sample_series"]


def weighted_sample_indices(
    weights: np.ndarray, sample_size: int, seed: Seed = None
) -> np.ndarray:
    """``sample_size`` indices drawn with replacement, proportional to weights."""
    weights = ensure_1d(weights, "weights")
    sample_size = check_positive_int(sample_size, "sample_size")
    if np.any(weights < 0) or np.any(~np.isfinite(weights)):
        raise SamplingError("weights must be finite and non-negative")
    total = weights.sum()
    if total <= 0:
        raise SamplingError("at least one weight must be positive")
    rng = as_generator(seed)
    return rng.choice(weights.size, size=sample_size, replace=True, p=weights / total)


def weighted_sample_series(
    dataset: StreamDataset,
    weights: np.ndarray,
    sample_size: int,
    seed: Seed = None,
) -> StreamDataset:
    """Weighted with-replacement sample of whole series."""
    weights = ensure_1d(weights, "weights")
    if weights.size != len(dataset):
        raise SamplingError(
            f"got {weights.size} weights for {len(dataset)} series"
        )
    idx = weighted_sample_indices(weights, sample_size, seed)
    return dataset.subset(idx.tolist())
