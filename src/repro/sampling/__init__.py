"""Sampling schemes for the experimental framework.

The framework "relies on sampling [so it] will work on very large data"
(Section 2.1.6). Whole time series are the sampling unit — "we maintained the
temporal structure by sampling entire time series and not individual data
points" (Section 4.2). Besides simple with-replacement sampling, the schemes
the paper cites as pluggable are provided: differentially weighted sampling,
bottom-k sketches [4] and priority sampling for subset sums [5].
"""

from repro.sampling.bottom_k import BottomKSketch, indexed_ranks, union_sketches
from repro.sampling.priority import (
    PrioritySample,
    priority_sample,
    priority_sample_indexed,
)
from repro.sampling.replication import (
    ParentGather,
    TestPair,
    generate_test_pairs,
    replication_index_streams,
)
from repro.sampling.simple import sample_indices, sample_series
from repro.sampling.weighted import weighted_sample_indices, weighted_sample_series

__all__ = [
    "ParentGather",
    "TestPair",
    "generate_test_pairs",
    "replication_index_streams",
    "sample_indices",
    "sample_series",
    "weighted_sample_indices",
    "weighted_sample_series",
    "BottomKSketch",
    "indexed_ranks",
    "union_sketches",
    "PrioritySample",
    "priority_sample",
    "priority_sample_indexed",
]
