"""Priority sampling for subset-sum estimation (Duffield, Lund & Thorup,
reference [5] of the paper).

Each item gets priority ``q_i = w_i / u_i`` with ``u_i`` uniform; the sample
keeps the k items of highest priority, and with ``tau`` the (k+1)-th highest
priority, the estimator ``max(w_i, tau)`` for sampled items (0 otherwise) is
unbiased for any subset sum — with near-optimal variance among k-sample
schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.errors import SamplingError
from repro.utils.rng import Seed, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["PrioritySample", "priority_sample", "priority_sample_indexed"]


@dataclass(frozen=True)
class PrioritySample:
    """The k retained items plus the threshold priority ``tau``."""

    keys: tuple[Hashable, ...]
    weights: tuple[float, ...]
    tau: float

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.keys

    def adjusted_weight(self, key: Hashable) -> float:
        """Unbiased per-item weight estimate: ``max(w_i, tau)`` if sampled."""
        for k, w in zip(self.keys, self.weights):
            if k == key:
                return max(w, self.tau)
        return 0.0

    def estimate_subset_sum(self, predicate: Callable[[Hashable], bool]) -> float:
        """Unbiased estimate of the weight of all items satisfying *predicate*."""
        return sum(
            max(w, self.tau)
            for k, w in zip(self.keys, self.weights)
            if predicate(k)
        )

    def estimate_total(self) -> float:
        """Unbiased estimate of the population's total weight."""
        return self.estimate_subset_sum(lambda _key: True)


def priority_sample(
    items: Iterable[tuple[Hashable, float]],
    k: int,
    seed: Seed = None,
) -> PrioritySample:
    """Draw a priority sample of size k from ``(key, weight)`` items.

    When the population has at most k positive-weight items, everything is
    retained and ``tau = 0`` (estimates are then exact).
    """
    k = check_positive_int(k, "k")
    rng = as_generator(seed)
    scored: list[tuple[float, Hashable, float]] = []
    for key, weight in items:
        weight = float(weight)
        if weight < 0 or not np.isfinite(weight):
            raise SamplingError(f"weight for {key!r} must be finite and >= 0")
        if weight == 0:
            continue
        u = max(float(rng.random()), 1e-300)
        scored.append((weight / u, key, weight))
    scored.sort(key=lambda t: -t[0])
    kept = scored[:k]
    tau = scored[k][0] if len(scored) > k else 0.0
    return PrioritySample(
        keys=tuple(key for _, key, _ in kept),
        weights=tuple(w for _, _, w in kept),
        tau=tau,
    )


def priority_sample_indexed(
    keys: Sequence[Hashable],
    weights: Sequence[float],
    k: int,
    seed: Seed = None,
    start: int = 0,
    ranks: Optional[np.ndarray] = None,
) -> PrioritySample:
    """Priority sample with per-item uniforms pre-spawned by item index.

    The indexed analogue of :func:`priority_sample`: item ``start + i``
    draws the same uniform under any shard layout (the ranks come from
    :func:`repro.sampling.bottom_k.indexed_ranks`), so the sample over a
    population is a deterministic function of ``(weights, seed)`` alone —
    shard streams and a single pass agree exactly.
    """
    from repro.sampling.bottom_k import indexed_ranks

    k = check_positive_int(k, "k")
    keys = list(keys)
    if len(keys) != len(weights):
        raise SamplingError(f"got {len(keys)} keys for {len(weights)} weights")
    if ranks is None:
        ranks = indexed_ranks(len(keys), seed, start=start)
    elif len(ranks) != len(keys):
        raise SamplingError(f"got {len(ranks)} ranks for {len(keys)} keys")
    scored: list[tuple[float, Hashable, float]] = []
    for key, weight, u in zip(keys, weights, ranks):
        weight = float(weight)
        if weight < 0 or not np.isfinite(weight):
            raise SamplingError(f"weight for {key!r} must be finite and >= 0")
        if weight == 0:
            continue
        scored.append((weight / float(u), key, weight))
    scored.sort(key=lambda t: -t[0])
    kept = scored[:k]
    tau = scored[k][0] if len(scored) > k else 0.0
    return PrioritySample(
        keys=tuple(key for _, key, _ in kept),
        weights=tuple(w for _, _, w in kept),
        tau=tau,
    )
