"""Simple random sampling of whole time series, with replacement."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import StreamDataset
from repro.utils.rng import Seed, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["sample_indices", "sample_series"]


def sample_indices(
    n_items: int, sample_size: int, seed: Seed = None
) -> np.ndarray:
    """``sample_size`` indices drawn uniformly with replacement."""
    n_items = check_positive_int(n_items, "n_items")
    sample_size = check_positive_int(sample_size, "sample_size")
    rng = as_generator(seed)
    return rng.integers(0, n_items, size=sample_size)


def sample_series(
    dataset: StreamDataset, sample_size: int, seed: Seed = None
) -> StreamDataset:
    """Sample *sample_size* whole series with replacement.

    Sampling entire series (not records) preserves the temporal structure of
    glitches within each stream (Section 4.2).
    """
    idx = sample_indices(len(dataset), sample_size, seed)
    return dataset.subset(idx.tolist())
