"""repro — reproduction of *Statistical Distortion: Consequences of Data
Cleaning* (Dasu & Loh, VLDB 2012).

The library provides, end to end:

* a synthetic hierarchical network-monitoring data substrate
  (:mod:`repro.data`) standing in for the paper's proprietary feed;
* glitch detection for missing values, inconsistencies and outliers
  (:mod:`repro.glitches`);
* the paper's five cleaning strategies plus extensions
  (:mod:`repro.cleaning`);
* statistical distances — exact EMD with three transportation backends, KL,
  Mahalanobis, and approximations (:mod:`repro.distance`);
* the three-dimensional evaluation framework — glitch index, statistical
  distortion, cost sweeps, trade-off analysis (:mod:`repro.core`);
* sampling schemes including bottom-k sketches and priority sampling
  (:mod:`repro.sampling`);
* drivers for every figure and table of the paper
  (:mod:`repro.experiments`).

Quickstart::

    from repro import (
        build_population, experiment_config, run_figure6,
        render_strategy_summaries,
    )

    bundle = build_population(scale="small", seed=0)
    result = run_figure6(bundle, experiment_config("small"))
    print(render_strategy_summaries(result.summaries()))
"""

from repro.cleaning import (
    CleaningContext,
    CleaningStrategy,
    CompositeStrategy,
    IdentityStrategy,
    InterpolationImputation,
    MeanImputation,
    MvnImputation,
    PartialCleaner,
    RegressionImputation,
    RemeasureStrategy,
    WinsorizeOutliers,
    paper_strategies,
    strategy_by_name,
)
from repro.core import (
    ExecutionBackend,
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    GlitchWeights,
    Pipeline,
    ProcessBackend,
    SerialBackend,
    ShardSpec,
    ShardedStage,
    StrategyOutcome,
    StrategySummary,
    StreamingDistortion,
    slab_streams,
    StreamingExperiment,
    StreamingResult,
    ThreadBackend,
    cost_sweep,
    glitch_improvement,
    glitch_index,
    knee_point,
    pareto_front,
    resolve_backend,
    run_streaming_experiment,
    statistical_distortion,
    statistical_distortion_batch,
    statistical_distortion_stream,
    streaming_enabled,
    summarize_outcomes,
    tradeoff_points,
    viable_strategies,
)
from repro.data import (
    GeneratorConfig,
    GlitchInjectionConfig,
    GlitchInjector,
    NetworkDataGenerator,
    NetworkTopology,
    NodeId,
    SampleBlock,
    SlabFeed,
    StreamDataset,
    TimeSeries,
)
from repro.distance import (
    DISTANCES,
    EarthMoverDistance,
    JensenShannonDistance,
    KLDivergence,
    KolmogorovSmirnovDistance,
    MahalanobisDistance,
    MarginalEmd,
    SlicedEmd,
    distance_by_name,
    emd_1d,
    pairwise_emd,
)
from repro.errors import ReproError
from repro.experiments import (
    SweepCell,
    SweepResult,
    backend_from_env,
    build_population,
    experiment_config,
    figure3_counts,
    figure4_stats,
    figure5_stats,
    render_cost_summary,
    render_counts_series,
    render_strategy_summaries,
    render_table1,
    run_experiment,
    run_figure6,
    run_figure7,
    run_sweep,
    run_table1,
    scale_from_env,
)
from repro.glitches import (
    ConstraintSet,
    DetectorSuite,
    GlitchType,
    ScaleTransform,
    SigmaLimits,
    identify_ideal,
    paper_constraints,
    partition_by_cleanliness,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # data
    "NodeId",
    "NetworkTopology",
    "TimeSeries",
    "StreamDataset",
    "SampleBlock",
    "GeneratorConfig",
    "NetworkDataGenerator",
    "GlitchInjectionConfig",
    "GlitchInjector",
    # glitches
    "GlitchType",
    "ConstraintSet",
    "paper_constraints",
    "SigmaLimits",
    "DetectorSuite",
    "ScaleTransform",
    "partition_by_cleanliness",
    "identify_ideal",
    # cleaning
    "CleaningContext",
    "CleaningStrategy",
    "CompositeStrategy",
    "IdentityStrategy",
    "WinsorizeOutliers",
    "MeanImputation",
    "MvnImputation",
    "InterpolationImputation",
    "RegressionImputation",
    "RemeasureStrategy",
    "PartialCleaner",
    "paper_strategies",
    "strategy_by_name",
    # distance
    "EarthMoverDistance",
    "emd_1d",
    "pairwise_emd",
    "SlicedEmd",
    "MarginalEmd",
    "KLDivergence",
    "JensenShannonDistance",
    "KolmogorovSmirnovDistance",
    "MahalanobisDistance",
    "DISTANCES",
    "distance_by_name",
    # core
    "GlitchWeights",
    "glitch_index",
    "glitch_improvement",
    "statistical_distortion",
    "statistical_distortion_batch",
    "ExperimentConfig",
    "ExperimentRunner",
    "ExperimentResult",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "Pipeline",
    "ShardSpec",
    "ShardedStage",
    "StrategyOutcome",
    "StrategySummary",
    "summarize_outcomes",
    "cost_sweep",
    "tradeoff_points",
    "pareto_front",
    "knee_point",
    "viable_strategies",
    # experiments
    "build_population",
    "experiment_config",
    "scale_from_env",
    "backend_from_env",
    "figure3_counts",
    "figure4_stats",
    "figure5_stats",
    "run_figure6",
    "run_figure7",
    "run_table1",
    "run_sweep",
    "SweepCell",
    "SweepResult",
    "render_table1",
    "render_strategy_summaries",
    "render_cost_summary",
    "render_counts_series",
]
