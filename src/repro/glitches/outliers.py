"""Outlier (anomaly) detectors — the detector ``f_O`` (Section 3.3).

The paper's case study identifies outliers "using 3-sigma limits on an
attribute by attribute basis, where the limits are computed using ideal data
set DI" (Section 4.1). The detector may alternatively emit p-values so users
can move the outlyingness threshold (Section 3.3); :meth:`SigmaOutlierDetector.scores`
provides that mode. Windowed and neighbour-conditioned variants implement the
general form ``f_O(X^t | X^{F_t^w}, X^{F_t^w}_N)``.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.errors import ValidationError
from repro.stats.descriptive import mad, sigma_limits
from repro.utils.validation import check_positive_int

__all__ = [
    "SigmaLimits",
    "SigmaOutlierDetector",
    "MADOutlierDetector",
    "WindowedOutlierDetector",
    "NeighborOutlierDetector",
]


class SigmaLimits:
    """Per-attribute ``(lower, upper)`` acceptance limits.

    Used both for detection (values outside the limits are outliers) and for
    repair (Winsorization clips to the same limits, Section 5.1). Limits are
    computed once from an ideal data set and then applied to every sample —
    exactly the paper's protocol.
    """

    def __init__(self, limits: Mapping[str, tuple[float, float]]):
        if not limits:
            raise ValidationError("SigmaLimits needs at least one attribute")
        for attr, (lo, hi) in limits.items():
            if not np.isfinite(lo) or not np.isfinite(hi) or lo > hi:
                raise ValidationError(f"bad limits for {attr}: ({lo}, {hi})")
        self._limits = {a: (float(lo), float(hi)) for a, (lo, hi) in limits.items()}

    @classmethod
    def from_dataset(
        cls,
        dataset: StreamDataset,
        k: float = 3.0,
        robust: bool = False,
    ) -> "SigmaLimits":
        """Compute ``mean +/- k*sd`` (or ``median +/- k*MAD``) per attribute.

        NaNs (missing values) are excluded; the data set would normally be an
        ideal data set ``DI`` or an ideal replication sample ``DiI``.
        """
        limits = {}
        for attr in dataset.attributes:
            col = dataset.pooled_column(attr, dropna=True)
            if robust:
                med = float(np.median(col))
                spread = mad(col)
                limits[attr] = (med - k * spread, med + k * spread)
            else:
                limits[attr] = sigma_limits(col, k=k)
        return cls(limits)

    @property
    def attributes(self) -> list[str]:
        """Attributes the limits cover."""
        return list(self._limits)

    def bounds(self, attribute: str) -> tuple[float, float]:
        """``(lower, upper)`` for one attribute."""
        try:
            return self._limits[attribute]
        except KeyError:
            raise KeyError(
                f"no limits for {attribute!r}; have {sorted(self._limits)}"
            ) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._limits

    def items(self):
        """Iterate ``(attribute, (lower, upper))`` pairs."""
        return self._limits.items()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{a}=[{lo:.3g}, {hi:.3g}]" for a, (lo, hi) in self._limits.items()
        )
        return f"SigmaLimits({parts})"


class SigmaOutlierDetector:
    """Flags populated cells outside fixed per-attribute limits.

    Attributes without limits are never flagged, which lets callers restrict
    outlier hunting to a subset of attributes.
    """

    def __init__(self, limits: SigmaLimits):
        self.limits = limits

    def detect(self, series: TimeSeries) -> np.ndarray:
        """``(T, v)`` outlier mask; NaN cells are never outliers.

        A hair of tolerance (relative to the limit width) keeps values that
        Winsorization placed *exactly at* a limit from being re-flagged after
        an analysis-scale round trip (``log`` then ``exp``) perturbs them by
        an ulp.
        """
        return self.detect_values(series.values, series.attributes)

    def detect_values(
        self, values: np.ndarray, attributes: tuple[str, ...]
    ) -> np.ndarray:
        """Outlier mask for a ``(..., v)`` value array (same shape out).

        The detection rule is purely elementwise, so a whole
        :class:`~repro.data.block.SampleBlock` tensor flags in one pass,
        bitwise-identical to flagging each series separately.
        """
        mask = np.zeros(values.shape, dtype=bool)
        for j, attr in enumerate(attributes):
            if attr not in self.limits:
                continue
            lo, hi = self.limits.bounds(attr)
            tol = 1e-9 * (abs(hi - lo) + 1.0)
            col = values[..., j]
            with np.errstate(invalid="ignore"):
                mask[..., j] = np.isfinite(col) & ((col < lo - tol) | (col > hi + tol))
        return mask

    def scores(self, series: TimeSeries) -> np.ndarray:
        """Two-sided normal p-values of outlyingness, ``(T, v)``.

        Section 3.3: "Alternatively, the output of f_O can be a vector of the
        actual p values ... This gives the user flexibility to change the
        thresholds for outliers." Limits are interpreted as ``mean +/- k*sd``
        with ``k`` implied by their width; NaN cells get p-value NaN.
        """
        out = np.full(series.values.shape, np.nan)
        for j, attr in enumerate(series.attributes):
            if attr not in self.limits:
                continue
            lo, hi = self.limits.bounds(attr)
            center = 0.5 * (lo + hi)
            # The limits span 2k sigma; recover sigma assuming k = 3 is not
            # necessary — any monotone standardisation gives valid p-ordering,
            # so we use the half-width as a 3-sigma yardstick.
            sigma = (hi - lo) / 6.0
            col = series.values[:, j]
            if sigma == 0:
                z = np.where(col == center, 0.0, np.inf)
            else:
                z = np.abs(col - center) / sigma
            out[:, j] = 2.0 * scipy_stats.norm.sf(z)
        return out


class MADOutlierDetector(SigmaOutlierDetector):
    """Robust variant: limits are ``median +/- k*MAD`` of the ideal data.

    Provided as an ablation — the classical 3-sigma rule is itself distorted
    by heavy tails, which is part of the paper's cautionary tale.
    """

    def __init__(self, dataset: StreamDataset, k: float = 3.0):
        super().__init__(SigmaLimits.from_dataset(dataset, k=k, robust=True))


class WindowedOutlierDetector:
    """Self-history detector: flags ``X^t`` far from its own window mean.

    Implements ``f_O(X^t | X^{F_t^w})`` (Section 3.3): a populated cell is an
    outlier when it deviates from the mean of the preceding ``w``-step window
    by more than ``k`` window standard deviations. Cells with fewer than
    ``min_history`` populated window entries are never flagged.
    """

    def __init__(self, window: int = 24, k: float = 3.0, min_history: int = 8):
        self.window = check_positive_int(window, "window")
        self.min_history = check_positive_int(min_history, "min_history")
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        self.k = float(k)

    def detect(self, series: TimeSeries) -> np.ndarray:
        mask = np.zeros(series.values.shape, dtype=bool)
        values = series.values
        for t in range(series.length):
            start = max(0, t - self.window)
            hist = values[start:t]
            if hist.shape[0] == 0:
                continue
            for j in range(series.n_attributes):
                x = values[t, j]
                if not np.isfinite(x):
                    continue
                col = hist[:, j]
                col = col[np.isfinite(col)]
                if col.size < self.min_history:
                    continue
                mu = col.mean()
                sd = col.std(ddof=1)
                if sd == 0:
                    continue
                mask[t, j] = abs(x - mu) > self.k * sd
        return mask


class NeighborOutlierDetector:
    """Neighbour-conditioned detector: ``f_O(X^t | X^{F_t^w}_N)``.

    A cell is flagged when it deviates from the *neighbours'* contemporaneous
    window statistics — sectors on the same tower see the same radio
    environment, so a lone deviant antenna is suspicious (Section 6.1's
    topological clustering argument).
    """

    def __init__(self, window: int = 24, k: float = 3.0, min_history: int = 8):
        self.window = check_positive_int(window, "window")
        self.min_history = check_positive_int(min_history, "min_history")
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        self.k = float(k)

    def detect(
        self, series: TimeSeries, neighbors: Sequence[TimeSeries]
    ) -> np.ndarray:
        """Outlier mask of *series* given its neighbour streams."""
        mask = np.zeros(series.values.shape, dtype=bool)
        if not neighbors:
            return mask
        for t in range(series.length):
            start = max(0, t - self.window)
            pool = [
                n.values[min(start, n.length) : min(t + 1, n.length)]
                for n in neighbors
            ]
            pool = [p for p in pool if p.size]
            if not pool:
                continue
            stacked = np.concatenate(pool, axis=0)
            for j in range(series.n_attributes):
                x = series.values[t, j]
                if not np.isfinite(x):
                    continue
                col = stacked[:, j]
                col = col[np.isfinite(col)]
                if col.size < self.min_history:
                    continue
                mu = col.mean()
                sd = col.std(ddof=1)
                if sd == 0:
                    continue
                mask[t, j] = abs(x - mu) > self.k * sd
        return mask
