"""Glitch pattern analysis: co-occurrence, temporal structure, Figure 3.

The paper highlights that glitches are "multi-type, co-occurring or stand
alone, with complex patterns of dependence" (Section 3.2) and shows in
Figure 3 that missing and inconsistent values overlap heavily over time.
These utilities quantify those structures on a :class:`DatasetGlitches`
annotation.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import ValidationError
from repro.glitches.types import DatasetGlitches, GlitchType, N_GLITCH_TYPES
from repro.utils.validation import check_positive_int

__all__ = [
    "counts_over_time",
    "cooccurrence_matrix",
    "jaccard_overlap",
    "pattern_frequencies",
    "temporal_autocorrelation",
]


def counts_over_time(glitches: DatasetGlitches) -> np.ndarray:
    """``(T_max, m)`` record-level glitch counts at each time step.

    This regenerates the Figure 3 series: entry ``[t, k]`` counts how many
    series carry glitch type ``k`` (on any attribute) at time ``t``,
    aggregated across whatever runs/samples went into *glitches*.
    """
    t_max = max(m.length for m in glitches)
    counts = np.zeros((t_max, N_GLITCH_TYPES), dtype=int)
    for matrix in glitches:
        for g in GlitchType:
            flags = matrix.record_any(g)
            counts[: flags.size, int(g)] += flags.astype(int)
    return counts


def cooccurrence_matrix(glitches: DatasetGlitches) -> np.ndarray:
    """``(m, m)`` record-level co-occurrence counts.

    Entry ``[a, b]`` counts records where glitch types ``a`` and ``b`` both
    occur (diagonal = marginal counts).
    """
    out = np.zeros((N_GLITCH_TYPES, N_GLITCH_TYPES), dtype=int)
    for matrix in glitches:
        flags = np.stack([matrix.record_any(g) for g in GlitchType], axis=1)
        out += flags.T.astype(int) @ flags.astype(int)
    return out


def jaccard_overlap(
    glitches: DatasetGlitches, a: GlitchType, b: GlitchType
) -> float:
    """Record-level Jaccard overlap ``|A & B| / |A | B|`` of two glitch types.

    The paper notes "considerable overlap between missing and inconsistent
    values" (Figure 3); this is the scalar version of that observation.
    """
    inter = 0
    union = 0
    for matrix in glitches:
        fa = matrix.record_any(a)
        fb = matrix.record_any(b)
        inter += int((fa & fb).sum())
        union += int((fa | fb).sum())
    if union == 0:
        return 0.0
    return inter / union


def pattern_frequencies(glitches: DatasetGlitches) -> dict[tuple[bool, ...], int]:
    """Frequency of each record-level glitch-type combination.

    Keys are ``m``-tuples of booleans ordered as
    ``(missing, inconsistent, outlier)``; the all-False pattern counts clean
    records. This is the simple-pattern version of the glitch-pattern mining
    in reference [3] of the paper.
    """
    counter: Counter[tuple[bool, ...]] = Counter()
    for matrix in glitches:
        flags = np.stack([matrix.record_any(g) for g in GlitchType], axis=1)
        for row in flags:
            counter[tuple(bool(x) for x in row)] += 1
    return dict(counter)


def temporal_autocorrelation(
    glitches: DatasetGlitches, glitch: GlitchType, max_lag: int = 10
) -> np.ndarray:
    """Average lag-1..max_lag autocorrelation of a glitch indicator.

    Positive values confirm temporal clustering ("glitches tend to cluster
    temporally", Section 6.1). Series whose indicator is constant contribute
    nothing. Returns an array of length *max_lag*; lags with no usable series
    are NaN.
    """
    max_lag = check_positive_int(max_lag, "max_lag")
    sums = np.zeros(max_lag)
    counts = np.zeros(max_lag, dtype=int)
    for matrix in glitches:
        flags = matrix.record_any(glitch).astype(float)
        if flags.size < 2 or flags.std() == 0:
            continue
        centered = flags - flags.mean()
        denom = float(np.dot(centered, centered))
        for lag in range(1, min(max_lag, flags.size - 1) + 1):
            num = float(np.dot(centered[:-lag], centered[lag:]))
            sums[lag - 1] += num / denom
            counts[lag - 1] += 1
    with np.errstate(invalid="ignore"):
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
