"""The detector suite: assembling ``G_{t,ijk}`` and identifying ideal data.

Two protocol details from the paper are encoded here:

* **Scale of detection.** Missing values and inconsistencies are facts about
  the raw records, so ``f_M`` and ``f_I`` always run on the untransformed
  data. The log transform of Attribute 1 is an experimental factor for
  *outlier* detection and repair only — Table 1 shows identical
  missing/inconsistent rates with and without the log but very different
  outlier rates.
* **Ideal-set identification.** "We identify parts of the dirty data set D
  that meet the clean requirements ... and treat these as the ideal data set"
  (Section 2.1.2); concretely, sectors "where the time series contained less
  than 5% each of missing, inconsistencies and outliers" (Section 4.1). Since
  outlier limits are themselves computed from the ideal data, the split is a
  fixed point — :func:`identify_ideal` iterates to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.errors import ValidationError
from repro.glitches.constraints import ConstraintSet, paper_constraints
from repro.glitches.missing import detect_missing
from repro.glitches.outliers import SigmaLimits, SigmaOutlierDetector
from repro.glitches.types import (
    BlockGlitches,
    DatasetGlitches,
    GlitchMatrix,
    GlitchType,
    N_GLITCH_TYPES,
)
from repro.utils.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> cleaning -> glitches)
    from repro.core.pipeline import Pipeline, ShardSpec
    from repro.data.block import SampleBlock

__all__ = [
    "ScaleTransform",
    "DetectorSuite",
    "CleanlinessPartition",
    "CleanlinessShard",
    "cleanliness_shard",
    "partition_by_cleanliness",
    "identify_ideal",
]


@dataclass(frozen=True)
class ScaleTransform:
    """An elementwise transform of one attribute defining the analysis scale.

    The paper's factor is a natural-log transform of Attribute 1
    (Section 5.3); :meth:`log_attr1` builds exactly that. Non-finite results
    (log of the negative values planted by constraint-1 violations) become
    NaN, so they are simply invisible to the outlier detector — they are
    already flagged as inconsistencies on the raw scale.

    ``inverse`` (when given) lets cleaning strategies operate on the analysis
    scale and write repaired values back on the raw scale: Winsorization
    clips on the transformed scale, imputation models the transformed joint
    distribution (Figure 4b), and the repaired column is mapped back through
    the inverse.
    """

    attribute: str
    forward: Callable[[np.ndarray], np.ndarray]
    name: str
    inverse: Optional[Callable[[np.ndarray], np.ndarray]] = None

    @classmethod
    def log_attr1(cls) -> "ScaleTransform":
        """The paper's log transform of Attribute 1 (inverse: exp)."""
        return cls(attribute="attr1", forward=np.log, name="log(attr1)", inverse=np.exp)

    def apply(self, series: TimeSeries) -> TimeSeries:
        """Transform one series (returns a new series)."""
        return series.transformed(self.attribute, self.forward)

    def apply_dataset(self, dataset: StreamDataset) -> StreamDataset:
        """Transform every series of a data set."""
        return dataset.transformed(self.attribute, self.forward)

    def forward_values(self, values: np.ndarray, attributes: tuple[str, ...]) -> np.ndarray:
        """Transform the matching column of a raw ``(..., v)`` array (copy).

        The transform is elementwise, so per-series ``(T, v)`` arrays and
        whole sample-block ``(n, T, v)`` tensors produce bitwise-identical
        cells.
        """
        out = np.asarray(values, dtype=float).copy()
        if self.attribute in attributes:
            j = attributes.index(self.attribute)
            with np.errstate(invalid="ignore", divide="ignore"):
                col = np.asarray(self.forward(out[..., j]), dtype=float)
            col[~np.isfinite(col)] = np.nan
            out[..., j] = col
        return out

    def inverse_values(self, values: np.ndarray, attributes: tuple[str, ...]) -> np.ndarray:
        """Map an analysis-scale ``(..., v)`` array back to the raw scale (copy)."""
        if self.inverse is None:
            raise ValidationError(f"transform {self.name!r} has no inverse")
        out = np.asarray(values, dtype=float).copy()
        if self.attribute in attributes:
            j = attributes.index(self.attribute)
            with np.errstate(invalid="ignore", over="ignore"):
                out[..., j] = self.inverse(out[..., j])
        return out


class DetectorSuite:
    """Composite detector producing the full glitch bit matrix per series.

    Parameters
    ----------
    constraints:
        The inconsistency rules ``f_I``; defaults to the paper's three.
    outlier_detector:
        A fitted :class:`SigmaOutlierDetector` (or compatible object with a
        ``detect(series) -> (T, v) bool`` method). ``None`` disables outlier
        flagging — used while bootstrapping the ideal set.
    transform:
        Optional :class:`ScaleTransform` applied *only* for outlier
        detection. The detector's limits must have been computed on the same
        scale (use :meth:`from_ideal`).
    """

    def __init__(
        self,
        constraints: Optional[ConstraintSet] = None,
        outlier_detector: Optional[SigmaOutlierDetector] = None,
        transform: Optional[ScaleTransform] = None,
    ):
        self.constraints = constraints if constraints is not None else paper_constraints()
        self.outlier_detector = outlier_detector
        self.transform = transform

    @classmethod
    def from_ideal(
        cls,
        ideal: StreamDataset,
        constraints: Optional[ConstraintSet] = None,
        transform: Optional[ScaleTransform] = None,
        k: float = 3.0,
        robust: bool = False,
    ) -> "DetectorSuite":
        """Build the paper's suite with 3-sigma limits fitted on *ideal*.

        The ideal data are transformed first when a transform is given, so
        limits live on the analysis scale (Section 5.3).
        """
        scaled = transform.apply_dataset(ideal) if transform else ideal
        limits = SigmaLimits.from_dataset(scaled, k=k, robust=robust)
        return cls(
            constraints=constraints,
            outlier_detector=SigmaOutlierDetector(limits),
            transform=transform,
        )

    # -- annotation --------------------------------------------------------------

    def annotate(self, series: TimeSeries) -> GlitchMatrix:
        """Glitch bit matrix ``(T, v, m)`` of one series."""
        bits = np.zeros((series.length, series.n_attributes, N_GLITCH_TYPES), dtype=bool)
        bits[:, :, int(GlitchType.MISSING)] = detect_missing(series)
        bits[:, :, int(GlitchType.INCONSISTENT)] = self.constraints.evaluate(series)
        if self.outlier_detector is not None:
            scaled = self.transform.apply(series) if self.transform else series
            bits[:, :, int(GlitchType.OUTLIER)] = self.outlier_detector.detect(scaled)
        return GlitchMatrix(bits)

    def annotate_dataset(self, dataset: StreamDataset) -> DatasetGlitches:
        """Glitch annotations for every series, in data-set order."""
        return DatasetGlitches(self.annotate(s) for s in dataset)

    def annotate_block(self, block: "SampleBlock") -> BlockGlitches:
        """Glitch bit tensor ``(n, T, v, m)`` of a whole sample block.

        The columnar analogue of :meth:`annotate_dataset`: missing,
        inconsistency and outlier detection each run as one whole-block
        boolean reduction instead of ``n`` per-series passes. Every bit is
        identical to the per-series path (the detectors are elementwise); an
        outlier detector without an array-level ``detect_values`` falls back
        to series views.
        """
        values = block.values
        bits = np.zeros(values.shape + (N_GLITCH_TYPES,), dtype=bool)
        bits[..., int(GlitchType.MISSING)] = np.isnan(values)
        bits[..., int(GlitchType.INCONSISTENT)] = self.constraints.evaluate_values(
            values, block.attributes
        )
        if self.outlier_detector is not None:
            scaled = (
                self.transform.forward_values(values, block.attributes)
                if self.transform
                else values
            )
            detect_values = getattr(self.outlier_detector, "detect_values", None)
            if detect_values is not None:
                bits[..., int(GlitchType.OUTLIER)] = detect_values(
                    scaled, block.attributes
                )
            else:  # pragma: no cover - custom detector shim
                for i in range(block.n_series):
                    series = TimeSeries(block.nodes[i], scaled[i], block.attributes)
                    bits[i, :, :, int(GlitchType.OUTLIER)] = self.outlier_detector.detect(
                        series
                    )
        return BlockGlitches(bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        t = self.transform.name if self.transform else "raw"
        return (
            f"DetectorSuite(constraints={len(self.constraints)}, "
            f"outliers={'on' if self.outlier_detector else 'off'}, scale={t})"
        )


@dataclass
class CleanlinessPartition:
    """Result of splitting a population into dirty and ideal parts."""

    dirty: StreamDataset
    ideal: StreamDataset
    dirty_indices: list[int]
    ideal_indices: list[int]

    @property
    def ideal_fraction(self) -> float:
        """Share of series that met the cleanliness requirement."""
        total = len(self.dirty_indices) + len(self.ideal_indices)
        return len(self.ideal_indices) / total if total else 0.0


@dataclass(frozen=True)
class CleanlinessShard:
    """Picklable work unit: annotate and rate one contiguous series range.

    Annotation has no randomness, so the shard carries no seed streams —
    only the series slice, the (picklable) detector suite, and the < 5%
    threshold.
    """

    suite: DetectorSuite
    series: tuple[TimeSeries, ...]
    max_fraction: float


def cleanliness_shard(unit: CleanlinessShard) -> list[bool]:
    """Per-series cleanliness verdicts for one :class:`CleanlinessShard`."""
    verdicts = []
    for series in unit.series:
        matrix = unit.suite.annotate(series)
        verdicts.append(
            all(matrix.record_fraction(g) < unit.max_fraction for g in GlitchType)
        )
    return verdicts


def partition_by_cleanliness(
    dataset: StreamDataset,
    suite: DetectorSuite,
    max_fraction: float = 0.05,
    pipeline: "Optional[Pipeline]" = None,
) -> CleanlinessPartition:
    """Split *dataset* into dirty and ideal parts by the < 5% rule.

    A series is ideal when its record-level rate of **each** glitch type is
    below *max_fraction* (Section 4.1). Raises if either side ends up empty —
    the experimental framework needs both. When a *pipeline* is given, the
    per-series annotate/rate pass fans out across its backend in shards; the
    pass is deterministic, so the split is identical to the serial one.
    """
    max_fraction = check_fraction(max_fraction, "max_fraction")
    if pipeline is None:
        verdicts = cleanliness_shard(
            CleanlinessShard(
                suite=suite, series=tuple(dataset), max_fraction=max_fraction
            )
        )
    else:
        from repro.core.pipeline import ShardedStage

        series = dataset.series
        shards = pipeline.shards(len(series), with_seeds=False)
        stage = ShardedStage(
            "identify",
            cleanliness_shard,
            lambda s: CleanlinessShard(
                suite=suite,
                series=tuple(series[s.start : s.stop]),
                max_fraction=max_fraction,
            ),
        )
        verdicts = pipeline.run(stage, shards)
    dirty_idx: list[int] = []
    ideal_idx: list[int] = []
    for i, clean in enumerate(verdicts):
        (ideal_idx if clean else dirty_idx).append(i)
    if not ideal_idx:
        raise ValidationError(
            "no series met the cleanliness requirement; loosen max_fraction"
        )
    if not dirty_idx:
        raise ValidationError("every series is ideal; nothing to clean")
    return CleanlinessPartition(
        dirty=dataset.subset(dirty_idx),
        ideal=dataset.subset(ideal_idx),
        dirty_indices=dirty_idx,
        ideal_indices=ideal_idx,
    )


def identify_ideal(
    dataset: StreamDataset,
    constraints: Optional[ConstraintSet] = None,
    transform: Optional[ScaleTransform] = None,
    k: float = 3.0,
    max_fraction: float = 0.05,
    max_iter: int = 3,
    backend=None,
    shard_size: Optional[int] = None,
) -> tuple[CleanlinessPartition, DetectorSuite]:
    """Iterate the ideal-set / outlier-limit fixed point.

    Round 0 partitions on missing + inconsistent rates alone (no outlier
    limits exist yet); each subsequent round fits 3-sigma limits on the
    current ideal set, re-annotates, and re-partitions. The loop stops early
    once the ideal membership is stable. Returns the final partition and the
    fitted :class:`DetectorSuite` (which downstream code reuses for glitch
    scoring).

    The fixed-point loop and the detector fitting stay centralized, but each
    round's per-series annotate/partition pass fans out over *backend* (a
    name, an :class:`~repro.core.executor.ExecutionBackend`, or a
    :class:`~repro.core.pipeline.Pipeline`). The pass is deterministic, so
    every backend reaches the same fixed point.
    """
    if max_iter < 1:
        raise ValidationError("max_iter must be >= 1")
    from repro.core.pipeline import Pipeline

    pipeline = Pipeline.coerce(backend, shard_size=shard_size)
    bootstrap = DetectorSuite(constraints=constraints, outlier_detector=None)
    partition = partition_by_cleanliness(
        dataset, bootstrap, max_fraction, pipeline=pipeline
    )
    suite = bootstrap
    previous = set(partition.ideal_indices)
    for _ in range(max_iter):
        suite = DetectorSuite.from_ideal(
            partition.ideal, constraints=constraints, transform=transform, k=k
        )
        partition = partition_by_cleanliness(
            dataset, suite, max_fraction, pipeline=pipeline
        )
        current = set(partition.ideal_indices)
        if current == previous:
            break
        previous = current
    return partition, suite
