"""The missing-value detector ``f_M`` (Section 3.3).

"The missing values detector is given by f_M(X^t) = I_missing, where
I_missing[i] = 1 if X^t[i] is missing." A value is considered missing if it is
not populated (Section 4.1); the library represents "not populated" as NaN.
"""

from __future__ import annotations

import numpy as np

from repro.data.stream import TimeSeries

__all__ = ["detect_missing", "MissingDetector"]


def detect_missing(series: TimeSeries) -> np.ndarray:
    """``(T, v)`` boolean mask of not-populated cells."""
    return np.isnan(series.values)


class MissingDetector:
    """Class-form wrapper so the suite can treat all detectors uniformly."""

    def detect(self, series: TimeSeries) -> np.ndarray:
        """``(T, v)`` boolean mask of not-populated cells."""
        return detect_missing(series)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MissingDetector()"
