"""Glitch taxonomy and the glitch bit-matrix containers.

Section 3.3: "given node Nijk and time t, a v x 3 bit matrix G_{t,ijk} =
[f_M(X), f_I(X), f_O(X | history)]". We store the whole stream's annotation as
one ``(T, v, m)`` boolean tensor per series.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable, Iterator

import numpy as np

from repro.data.stream import TimeSeries
from repro.errors import DataShapeError, ValidationError

__all__ = [
    "GlitchType",
    "N_GLITCH_TYPES",
    "GlitchMatrix",
    "DatasetGlitches",
    "BlockGlitches",
]


class GlitchType(IntEnum):
    """The three glitch families of the paper's case study (Section 3.2)."""

    MISSING = 0
    INCONSISTENT = 1
    OUTLIER = 2

    @property
    def label(self) -> str:
        """Human-readable label used in reports."""
        return self.name.lower()


#: Number of glitch types (``m`` in the paper's notation).
N_GLITCH_TYPES = len(GlitchType)


class GlitchMatrix:
    """Glitch annotation of one series: a ``(T, v, m)`` boolean tensor.

    ``bits[t, j, k]`` is 1 iff glitch type ``k`` affects attribute ``j`` at
    time ``t`` — the glitch vector ``g_ij(k)`` of Section 2.1.3 stacked over
    the stream.
    """

    __slots__ = ("bits",)

    def __init__(self, bits: np.ndarray):
        bits = np.asarray(bits, dtype=bool)
        if bits.ndim != 3 or bits.shape[2] != N_GLITCH_TYPES:
            raise DataShapeError(
                f"bits must be (T, v, {N_GLITCH_TYPES}), got shape {bits.shape}"
            )
        self.bits = bits

    @classmethod
    def empty(cls, length: int, n_attributes: int) -> "GlitchMatrix":
        """All-clean annotation of the given shape."""
        return cls(np.zeros((length, n_attributes, N_GLITCH_TYPES), dtype=bool))

    @classmethod
    def for_series(cls, series: TimeSeries) -> "GlitchMatrix":
        """All-clean annotation shaped like *series*."""
        return cls.empty(series.length, series.n_attributes)

    # -- shape -----------------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of time steps ``T``."""
        return int(self.bits.shape[0])

    @property
    def n_attributes(self) -> int:
        """Number of attributes ``v``."""
        return int(self.bits.shape[1])

    # -- views -----------------------------------------------------------------

    def plane(self, glitch: GlitchType) -> np.ndarray:
        """The ``(T, v)`` bit plane of one glitch type (a view)."""
        return self.bits[:, :, int(glitch)]

    def record_any(self, glitch: GlitchType) -> np.ndarray:
        """``(T,)`` mask: glitch type present on *any* attribute at time t."""
        return self.bits[:, :, int(glitch)].any(axis=1)

    def cell_any(self) -> np.ndarray:
        """``(T, v)`` mask: any glitch type present in the cell."""
        return self.bits.any(axis=2)

    # -- summaries ----------------------------------------------------------------

    def record_fraction(self, glitch: GlitchType) -> float:
        """Fraction of time steps carrying the glitch on some attribute.

        This record-level rate is what Table 1 reports and what the < 5%
        cleanliness rule of Section 4.1 thresholds.
        """
        if self.length == 0:
            return 0.0
        return float(self.record_any(glitch).mean())

    def cell_fraction(self, glitch: GlitchType) -> float:
        """Fraction of cells carrying the glitch."""
        plane = self.plane(glitch)
        if plane.size == 0:
            return 0.0
        return float(plane.mean())

    def counts_by_type(self) -> np.ndarray:
        """``(m,)`` total cell-level counts per glitch type."""
        return self.bits.sum(axis=(0, 1))

    # -- algebra ------------------------------------------------------------------

    def union(self, other: "GlitchMatrix") -> "GlitchMatrix":
        """Cell-wise OR of two annotations of identical shape."""
        if self.bits.shape != other.bits.shape:
            raise DataShapeError(
                f"shape mismatch: {self.bits.shape} vs {other.bits.shape}"
            )
        return GlitchMatrix(self.bits | other.bits)

    def copy(self) -> "GlitchMatrix":
        """Deep copy."""
        return GlitchMatrix(self.bits.copy())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fracs = ", ".join(
            f"{g.label}={self.record_fraction(g):.1%}" for g in GlitchType
        )
        return f"GlitchMatrix(T={self.length}, v={self.n_attributes}, {fracs})"


class DatasetGlitches:
    """Glitch annotations for every series of a data set, in order."""

    def __init__(self, matrices: Iterable[GlitchMatrix]):
        self._matrices = list(matrices)
        if not self._matrices:
            raise ValidationError("DatasetGlitches needs at least one matrix")

    def __len__(self) -> int:
        return len(self._matrices)

    def __iter__(self) -> Iterator[GlitchMatrix]:
        return iter(self._matrices)

    def __getitem__(self, index: int) -> GlitchMatrix:
        return self._matrices[index]

    @property
    def matrices(self) -> list[GlitchMatrix]:
        """The per-series matrices (list copy, elements shared)."""
        return list(self._matrices)

    def record_fraction(self, glitch: GlitchType) -> float:
        """Record-level glitch rate pooled over all series."""
        total = sum(m.length for m in self._matrices)
        if total == 0:
            return 0.0
        hits = sum(int(m.record_any(glitch).sum()) for m in self._matrices)
        return hits / total

    def record_fractions(self) -> dict[GlitchType, float]:
        """Record-level rate of each glitch type (the Table 1 columns)."""
        return {g: self.record_fraction(g) for g in GlitchType}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fracs = ", ".join(
            f"{g.label}={self.record_fraction(g):.1%}" for g in GlitchType
        )
        return f"DatasetGlitches(n={len(self)}, {fracs})"


class BlockGlitches:
    """Glitch annotation of a whole sample block: one ``(n, T, v, m)`` tensor.

    The columnar counterpart of :class:`DatasetGlitches` for uniform-length
    samples: summaries run as whole-tensor integer reductions, and every
    float it reports is **bitwise-identical** to the per-series object path
    (integer counts are order-independent, and the per-series float
    arithmetic is replayed with the exact shapes the per-series path uses).
    """

    __slots__ = ("bits",)

    def __init__(self, bits: np.ndarray):
        bits = np.asarray(bits, dtype=bool)
        if bits.ndim != 4 or bits.shape[3] != N_GLITCH_TYPES:
            raise DataShapeError(
                f"bits must be (n, T, v, {N_GLITCH_TYPES}), got shape {bits.shape}"
            )
        self.bits = bits

    # -- shape -----------------------------------------------------------------

    @property
    def n_series(self) -> int:
        """Number of annotated series ``n``."""
        return int(self.bits.shape[0])

    @property
    def length(self) -> int:
        """Shared series length ``T``."""
        return int(self.bits.shape[1])

    def __len__(self) -> int:
        return self.n_series

    # -- views -----------------------------------------------------------------

    def matrix(self, index: int) -> GlitchMatrix:
        """The per-series :class:`GlitchMatrix` of one member (a view)."""
        return GlitchMatrix(self.bits[index])

    def to_dataset_glitches(self) -> DatasetGlitches:
        """Per-series object form (views into the shared tensor)."""
        return DatasetGlitches(self.matrix(i) for i in range(self.n_series))

    # -- summaries ----------------------------------------------------------------

    def series_scores(self, weights_vector: np.ndarray) -> np.ndarray:
        """Length-normalised weighted glitch score per series.

        ``weights_vector`` is the ``(m,)`` array from
        :meth:`~repro.core.glitch_index.GlitchWeights.as_array`. The time-axis
        bit counts are one batched integer reduction; the tiny per-series
        float tail (``(v, m) / T @ w``) replays the per-series expression
        shape-for-shape so the scores match :func:`series_glitch_scores` bit
        for bit.
        """
        n, length = self.n_series, self.length
        scores = np.zeros(n)
        if length == 0:
            return scores
        counts = self.bits.sum(axis=1)  # (n, v, m) exact integer counts
        normalised = counts / length  # elementwise, equals each per-series divide
        for i in range(n):
            scores[i] = float((normalised[i] @ weights_vector).sum())
        return scores

    def record_fraction(self, glitch: GlitchType) -> float:
        """Record-level glitch rate pooled over all series."""
        total = self.n_series * self.length
        if total == 0:
            return 0.0
        hits = int(self.bits[:, :, :, int(glitch)].any(axis=2).sum())
        return hits / total

    def record_fractions(self) -> dict[GlitchType, float]:
        """Record-level rate of each glitch type (the Table 1 columns)."""
        return {g: self.record_fraction(g) for g in GlitchType}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fracs = ", ".join(
            f"{g.label}={self.record_fraction(g):.1%}" for g in GlitchType
        )
        return f"BlockGlitches(n={self.n_series}, T={self.length}, {fracs})"
