"""Glitch detection: missing values, inconsistencies and outliers.

Implements Section 3.2-3.3 of the paper: glitch detectors are functions on
the data stream producing per-attribute bit vectors, assembled into the
``T x v x m`` glitch bit matrix ``G_{t,ijk}``.
"""

from repro.glitches.constraints import (
    Constraint,
    ConstraintSet,
    CrossAttributeConstraint,
    LowerBoundConstraint,
    NotPopulatedIfConstraint,
    PredicateConstraint,
    RangeConstraint,
    paper_constraints,
)
from repro.glitches.detectors import (
    CleanlinessPartition,
    DetectorSuite,
    ScaleTransform,
    identify_ideal,
    partition_by_cleanliness,
)
from repro.glitches.missing import MissingDetector, detect_missing
from repro.glitches.outliers import (
    MADOutlierDetector,
    NeighborOutlierDetector,
    SigmaLimits,
    SigmaOutlierDetector,
    WindowedOutlierDetector,
)
from repro.glitches.patterns import (
    cooccurrence_matrix,
    counts_over_time,
    jaccard_overlap,
    pattern_frequencies,
    temporal_autocorrelation,
)
from repro.glitches.types import (
    N_GLITCH_TYPES,
    DatasetGlitches,
    GlitchMatrix,
    GlitchType,
)

__all__ = [
    "GlitchType",
    "GlitchMatrix",
    "DatasetGlitches",
    "N_GLITCH_TYPES",
    "MissingDetector",
    "detect_missing",
    "Constraint",
    "ConstraintSet",
    "LowerBoundConstraint",
    "RangeConstraint",
    "NotPopulatedIfConstraint",
    "PredicateConstraint",
    "CrossAttributeConstraint",
    "paper_constraints",
    "SigmaLimits",
    "SigmaOutlierDetector",
    "MADOutlierDetector",
    "WindowedOutlierDetector",
    "NeighborOutlierDetector",
    "DetectorSuite",
    "ScaleTransform",
    "CleanlinessPartition",
    "identify_ideal",
    "partition_by_cleanliness",
    "counts_over_time",
    "cooccurrence_matrix",
    "jaccard_overlap",
    "pattern_frequencies",
    "temporal_autocorrelation",
]
