"""Inconsistency constraints — the detector ``f_I`` (Section 3.3).

"An inconsistency can be defined based on a single attribute ('inconsistent if
X is less than 0'), or based on multiple attributes." The paper's case study
uses three constraints (Section 4.1):

1. Attribute 1 should be greater than or equal to zero.
2. Attribute 3 should lie in the interval [0, 1].
3. Attribute 1 should not be populated if Attribute 3 is missing.

This module provides a tiny declarative constraint language covering those
three patterns plus arbitrary user predicates. Each constraint flags the
attribute it deems responsible, so violations land in the right column of the
glitch bit matrix.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.data.stream import TimeSeries
from repro.errors import ConstraintError

__all__ = [
    "Constraint",
    "LowerBoundConstraint",
    "RangeConstraint",
    "NotPopulatedIfConstraint",
    "PredicateConstraint",
    "CrossAttributeConstraint",
    "ConstraintSet",
    "paper_constraints",
]


class Constraint(ABC):
    """A rule whose violation marks an attribute as inconsistent.

    ``evaluate`` returns a ``(T, v)`` boolean mask; a True cell means the
    constraint is violated and the violation is attributed to that cell.
    Missing (NaN) values never violate value constraints — they are a
    different glitch type.

    The built-in constraints are pure elementwise array programs, so they
    implement :meth:`evaluate_values` on value arrays of **any** leading
    shape (``(T, v)`` for one series, ``(n, T, v)`` for a whole
    :class:`~repro.data.block.SampleBlock`) and define ``evaluate`` as a
    thin delegation — which is what makes the block and per-series detector
    paths bitwise-identical by construction. Subclasses that only implement
    the per-series ``evaluate`` (the original contract) still work
    everywhere: the default :meth:`evaluate_values` loops series views.
    """

    @abstractmethod
    def evaluate(self, series: TimeSeries) -> np.ndarray:
        """``(T, v)`` violation mask for *series*."""

    def evaluate_values(
        self, values: np.ndarray, attributes: tuple[str, ...]
    ) -> np.ndarray:
        """Violation mask for a ``(..., v)`` value array (same shape out).

        Default implementation: evaluate per series through
        :meth:`evaluate`. The built-in constraints override this with a
        single vectorised pass and route ``evaluate`` through it instead.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim == 2:
            return self.evaluate(TimeSeries(None, values, tuple(attributes)))
        mask = np.zeros(values.shape, dtype=bool)
        for i in range(values.shape[0]):
            mask[i] = self.evaluate(TimeSeries(None, values[i], tuple(attributes)))
        return mask

    @abstractmethod
    def describe(self) -> str:
        """One-line human-readable statement of the rule."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()!r})"

    @staticmethod
    def _column_of(
        values: np.ndarray, attributes: tuple[str, ...], attribute: str
    ) -> tuple[int, np.ndarray]:
        try:
            j = attributes.index(attribute)
        except ValueError:
            raise ConstraintError(
                f"unknown attribute {attribute!r}; have {attributes}"
            ) from None
        return j, values[..., j]


class _ArrayConstraint(Constraint):
    """Base of the built-in constraints: the array form is primary.

    Subclasses implement :meth:`evaluate_values`; the per-series
    :meth:`evaluate` is the thin delegation.
    """

    def evaluate(self, series: TimeSeries) -> np.ndarray:
        return self.evaluate_values(series.values, series.attributes)


class LowerBoundConstraint(_ArrayConstraint):
    """``attribute >= bound`` (or ``>`` when ``strict``).

    Constraint 1 of the paper is ``LowerBoundConstraint("attr1", 0.0)``.
    """

    def __init__(self, attribute: str, bound: float, strict: bool = False):
        self.attribute = attribute
        self.bound = float(bound)
        self.strict = bool(strict)

    def evaluate_values(
        self, values: np.ndarray, attributes: tuple[str, ...]
    ) -> np.ndarray:
        mask = np.zeros(values.shape, dtype=bool)
        j, col = self._column_of(values, attributes, self.attribute)
        cmp = operator.le if self.strict else operator.lt
        with np.errstate(invalid="ignore"):
            mask[..., j] = np.isfinite(col) & cmp(col, self.bound)
        return mask

    def describe(self) -> str:
        op = ">" if self.strict else ">="
        return f"{self.attribute} {op} {self.bound}"


class RangeConstraint(_ArrayConstraint):
    """``low <= attribute <= high``.

    Constraint 2 of the paper is ``RangeConstraint("attr3", 0.0, 1.0)``.
    """

    def __init__(self, attribute: str, low: float, high: float):
        if low > high:
            raise ConstraintError(f"low ({low}) must be <= high ({high})")
        self.attribute = attribute
        self.low = float(low)
        self.high = float(high)

    def evaluate_values(
        self, values: np.ndarray, attributes: tuple[str, ...]
    ) -> np.ndarray:
        mask = np.zeros(values.shape, dtype=bool)
        j, col = self._column_of(values, attributes, self.attribute)
        with np.errstate(invalid="ignore"):
            mask[..., j] = np.isfinite(col) & ((col < self.low) | (col > self.high))
        return mask

    def describe(self) -> str:
        return f"{self.low} <= {self.attribute} <= {self.high}"


class NotPopulatedIfConstraint(_ArrayConstraint):
    """*attribute* must not be populated when *other* is missing.

    Constraint 3 of the paper is
    ``NotPopulatedIfConstraint("attr1", other="attr3")``: "Attribute 1 should
    not be populated if Attribute 3 is missing." The populated value is the
    offender, so the violation is attributed to *attribute*. This rule is the
    built-in source of overlap between missing and inconsistent glitches that
    Figure 3 and Table 1 comment on.
    """

    def __init__(self, attribute: str, other: str):
        if attribute == other:
            raise ConstraintError("attribute and other must differ")
        self.attribute = attribute
        self.other = other

    def evaluate_values(
        self, values: np.ndarray, attributes: tuple[str, ...]
    ) -> np.ndarray:
        mask = np.zeros(values.shape, dtype=bool)
        j, col = self._column_of(values, attributes, self.attribute)
        _, other_col = self._column_of(values, attributes, self.other)
        mask[..., j] = np.isfinite(col) & np.isnan(other_col)
        return mask

    def describe(self) -> str:
        return f"{self.attribute} must not be populated if {self.other} is missing"


class CrossAttributeConstraint(_ArrayConstraint):
    """Pairwise comparison between two attributes, e.g. ``attr1 >= attr2``.

    Violations are attributed to *attribute* (the left-hand side). Records
    where either side is missing do not violate.
    """

    _OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
        ">=": operator.ge,
        ">": operator.gt,
        "<=": operator.le,
        "<": operator.lt,
        "==": operator.eq,
    }

    def __init__(self, attribute: str, op: str, other: str):
        if op not in self._OPS:
            raise ConstraintError(f"unsupported operator {op!r}; use one of {sorted(self._OPS)}")
        self.attribute = attribute
        self.op = op
        self.other = other

    def evaluate_values(
        self, values: np.ndarray, attributes: tuple[str, ...]
    ) -> np.ndarray:
        mask = np.zeros(values.shape, dtype=bool)
        j, col = self._column_of(values, attributes, self.attribute)
        _, other_col = self._column_of(values, attributes, self.other)
        both = np.isfinite(col) & np.isfinite(other_col)
        with np.errstate(invalid="ignore"):
            holds = self._OPS[self.op](col, other_col)
        mask[..., j] = both & ~holds
        return mask

    def describe(self) -> str:
        return f"{self.attribute} {self.op} {self.other}"


class PredicateConstraint(_ArrayConstraint):
    """Escape hatch: an arbitrary record-level predicate.

    ``predicate`` receives the full ``(T, v)`` value array and must return a
    ``(T,)`` boolean array where True means *violated*; the violation is
    attributed to *attribute*.
    """

    def __init__(
        self,
        attribute: str,
        predicate: Callable[[np.ndarray], np.ndarray],
        description: str,
    ):
        self.attribute = attribute
        self.predicate = predicate
        self.description = description

    def evaluate_values(
        self, values: np.ndarray, attributes: tuple[str, ...]
    ) -> np.ndarray:
        mask = np.zeros(values.shape, dtype=bool)
        j, _ = self._column_of(values, attributes, self.attribute)
        if values.ndim == 2:
            length = values.shape[0]
            flags = np.asarray(self.predicate(values), dtype=bool)
            if flags.shape != (length,):
                raise ConstraintError(
                    f"predicate must return shape ({length},), got {flags.shape}"
                )
            mask[:, j] = flags
            return mask
        # The predicate contract is record-level over one (T, v) series, so
        # higher-rank inputs (sample blocks) evaluate one series at a time.
        for i in range(values.shape[0]):
            mask[i] = self.evaluate_values(values[i], attributes)
        return mask

    def describe(self) -> str:
        return self.description


class ConstraintSet:
    """A conjunction of constraints evaluated as one detector ``f_I``.

    The paper folds all inconsistency variants into a single flag per
    attribute (Section 3.3); ``evaluate`` accordingly ORs the per-constraint
    masks.
    """

    def __init__(self, constraints: Iterable[Constraint]):
        self._constraints = list(constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    @property
    def constraints(self) -> list[Constraint]:
        """Member constraints (list copy)."""
        return list(self._constraints)

    def evaluate(self, series: TimeSeries) -> np.ndarray:
        """``(T, v)`` OR-combined violation mask."""
        return self.evaluate_values(series.values, series.attributes)

    def evaluate_values(
        self, values: np.ndarray, attributes: tuple[str, ...]
    ) -> np.ndarray:
        """OR-combined violation mask for a ``(..., v)`` value array.

        This is the block detector's entry point: one vectorised pass over a
        whole ``(n, T, v)`` sample tensor, bitwise-identical to evaluating
        each series separately. Constraints that only implement the
        per-series :meth:`Constraint.evaluate` participate through the base
        class's series-at-a-time :meth:`Constraint.evaluate_values` default.
        """
        values = np.asarray(values, dtype=float)
        mask = np.zeros(values.shape, dtype=bool)
        for c in self._constraints:
            mask |= c.evaluate_values(values, tuple(attributes))
        return mask

    def detect(self, series: TimeSeries) -> np.ndarray:
        """Alias of :meth:`evaluate` matching the detector protocol."""
        return self.evaluate(series)

    def describe(self) -> list[str]:
        """Human-readable rule list."""
        return [c.describe() for c in self._constraints]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstraintSet({self.describe()})"


def paper_constraints() -> ConstraintSet:
    """The three inconsistency constraints of the paper's case study.

    Section 4.1: "(1) Attribute 1 should be greater than or equal to zero,
    (2) Attribute 3 should lie in the interval [0, 1], and (3) Attribute 1
    should not be populated if Attribute 3 is missing."
    """
    return ConstraintSet(
        [
            LowerBoundConstraint("attr1", 0.0),
            RangeConstraint("attr3", 0.0, 1.0),
            NotPopulatedIfConstraint("attr1", other="attr3"),
        ]
    )
