"""Descriptive and robust statistics.

These helpers underpin both glitch detection (3-sigma limits computed from the
ideal data set, Section 4.1 of the paper) and the Winsorization repair
(Section 5.1). All functions are NaN-aware because "not populated" values are
represented as NaN throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "RunningMoments",
    "sigma_limits",
    "robust_sigma_limits",
    "mad",
    "nan_skewness",
    "winsorize_array",
]


@dataclass
class RunningMoments:
    """Streaming mean/variance accumulator (Welford's algorithm).

    Used by windowed outlier detectors that cannot afford to retain the full
    history of a data stream (Section 3.1: analyses are restricted to the
    current window plus summaries of past history).
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def update(self, value: float) -> None:
        """Fold one observation into the accumulator. NaNs are ignored."""
        if np.isnan(value):
            return
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def update_many(self, values: np.ndarray) -> None:
        """Fold a batch of observations into the accumulator."""
        for v in np.asarray(values, dtype=float).ravel():
            self.update(float(v))

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN with fewer than two observations."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1)."""
        return float(np.sqrt(self.variance))

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """Return a new accumulator equivalent to seeing both inputs' data."""
        if other.count == 0:
            return RunningMoments(self.count, self.mean, self._m2)
        if self.count == 0:
            return RunningMoments(other.count, other.mean, other._m2)
        total = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / total
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        return RunningMoments(total, mean, m2)


def sigma_limits(values: np.ndarray, k: float = 3.0) -> tuple[float, float]:
    """Classical ``mean +/- k * std`` limits, ignoring NaNs.

    This is the paper's outlier rule: "Outliers are identified using 3-sigma
    limits on an attribute by attribute basis, where the limits are computed
    using ideal data set DI" (Section 4.1).
    """
    arr = np.asarray(values, dtype=float).ravel()
    finite = arr[np.isfinite(arr)]
    if finite.size < 2:
        raise ValidationError(
            f"sigma_limits needs at least 2 finite values, got {finite.size}"
        )
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    mean = float(finite.mean())
    std = float(finite.std(ddof=1))
    return mean - k * std, mean + k * std


def mad(values: np.ndarray, scale: float = 1.4826) -> float:
    """Median absolute deviation, scaled to be consistent with sigma.

    The default scale factor makes MAD an unbiased estimator of the standard
    deviation under normality.
    """
    arr = np.asarray(values, dtype=float).ravel()
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        raise ValidationError("mad needs at least one finite value")
    med = np.median(finite)
    return float(scale * np.median(np.abs(finite - med)))


def robust_sigma_limits(values: np.ndarray, k: float = 3.0) -> tuple[float, float]:
    """``median +/- k * MAD`` limits — a robust alternative to 3-sigma.

    Provided as an extension: the paper notes that the classical rule is
    sensitive to the very outliers it hunts; a robust rule is the natural
    ablation.
    """
    arr = np.asarray(values, dtype=float).ravel()
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        raise ValidationError("robust_sigma_limits needs at least one finite value")
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    med = float(np.median(finite))
    spread = mad(finite)
    return med - k * spread, med + k * spread


def nan_skewness(values: np.ndarray) -> float:
    """Sample skewness (Fisher-Pearson, bias-uncorrected), NaN-aware.

    Used by the data generator tests to assert that Attribute 1 is
    right-skewed on the raw scale and left-skewed after the log transform
    (Section 5.3 / Figure 4).
    """
    arr = np.asarray(values, dtype=float).ravel()
    finite = arr[np.isfinite(arr)]
    if finite.size < 3:
        return float("nan")
    centered = finite - finite.mean()
    s = finite.std(ddof=0)
    if s == 0:
        return 0.0
    return float(np.mean(centered**3) / s**3)


def winsorize_array(
    values: np.ndarray, lower: float, upper: float
) -> tuple[np.ndarray, np.ndarray]:
    """Clip *values* to ``[lower, upper]``; NaNs pass through untouched.

    Returns ``(clipped, changed)`` where ``changed`` is a boolean mask of the
    entries that were moved. This is the repair half of the Winsorization
    strategy: "repair the outliers by setting them to the closest acceptable
    value" (Section 1.1).
    """
    if lower > upper:
        raise ValidationError(f"lower ({lower}) must be <= upper ({upper})")
    arr = np.asarray(values, dtype=float)
    clipped = np.clip(arr, lower, upper)
    with np.errstate(invalid="ignore"):
        changed = np.isfinite(arr) & (clipped != arr)
    out = np.where(np.isnan(arr), np.nan, clipped)
    return out, changed
