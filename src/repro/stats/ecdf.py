"""Empirical cumulative distribution functions.

The exact 1-D Earth Mover's Distance is the L1 distance between ECDFs, so this
module is the foundation of the fast univariate EMD path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["Ecdf"]


class Ecdf:
    """Right-continuous empirical CDF of a finite sample.

    NaNs in the input are dropped (they carry no distributional mass; the
    paper pools only populated values when computing distances).
    """

    def __init__(self, values: np.ndarray):
        arr = np.asarray(values, dtype=float).ravel()
        finite = arr[np.isfinite(arr)]
        if finite.size == 0:
            raise ValidationError("Ecdf needs at least one finite value")
        self._sorted = np.sort(finite)

    @property
    def n(self) -> int:
        """Number of finite observations backing the ECDF."""
        return int(self._sorted.size)

    @property
    def support(self) -> tuple[float, float]:
        """Minimum and maximum observed values."""
        return float(self._sorted[0]), float(self._sorted[-1])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate ``F(x) = P(X <= x)`` at the given points."""
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self._sorted, x, side="right") / self.n

    def quantile(self, q: np.ndarray) -> np.ndarray:
        """Inverse CDF via the standard left-continuous generalized inverse."""
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValidationError("quantile levels must lie in [0, 1]")
        idx = np.clip(np.ceil(q * self.n).astype(int) - 1, 0, self.n - 1)
        return self._sorted[idx]

    def l1_distance(self, other: "Ecdf") -> float:
        """Integral of ``|F - G|`` over the union support.

        For empirical distributions this equals the 1-D Earth Mover's
        (1-Wasserstein) distance.
        """
        grid = np.union1d(self._sorted, other._sorted)
        if grid.size == 1:
            return 0.0
        f = self(grid[:-1])
        g = other(grid[:-1])
        widths = np.diff(grid)
        return float(np.sum(np.abs(f - g) * widths))
