"""Empirical cumulative distribution functions.

The exact 1-D Earth Mover's Distance is the L1 distance between ECDFs, so this
module is the foundation of the fast univariate EMD path. The mergeable
:class:`EcdfSketch` carries the same information slab by slab — the streaming
engine's CDF-distance counterpart of the mergeable histogram accumulators.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError

__all__ = ["Ecdf", "EcdfSketch"]


class Ecdf:
    """Right-continuous empirical CDF of a finite sample.

    NaNs in the input are dropped (they carry no distributional mass; the
    paper pools only populated values when computing distances).
    """

    def __init__(self, values: np.ndarray):
        arr = np.asarray(values, dtype=float).ravel()
        finite = arr[np.isfinite(arr)]
        if finite.size == 0:
            raise ValidationError("Ecdf needs at least one finite value")
        self._sorted = np.sort(finite)

    @property
    def n(self) -> int:
        """Number of finite observations backing the ECDF."""
        return int(self._sorted.size)

    @property
    def support(self) -> tuple[float, float]:
        """Minimum and maximum observed values."""
        return float(self._sorted[0]), float(self._sorted[-1])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate ``F(x) = P(X <= x)`` at the given points."""
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self._sorted, x, side="right") / self.n

    def quantile(self, q: np.ndarray) -> np.ndarray:
        """Inverse CDF via the standard left-continuous generalized inverse."""
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValidationError("quantile levels must lie in [0, 1]")
        idx = np.clip(np.ceil(q * self.n).astype(int) - 1, 0, self.n - 1)
        return self._sorted[idx]

    def l1_distance(self, other: "Ecdf") -> float:
        """Integral of ``|F - G|`` over the union support.

        For empirical distributions this equals the 1-D Earth Mover's
        (1-Wasserstein) distance.
        """
        grid = np.union1d(self._sorted, other._sorted)
        if grid.size == 1:
            return 0.0
        f = self(grid[:-1])
        g = other(grid[:-1])
        widths = np.diff(grid)
        return float(np.sum(np.abs(f - g) * widths))


class EcdfSketch:
    """A mergeable summary of one scalar stream's empirical CDF.

    The streaming counterpart of :class:`Ecdf`: slabs fold in with
    :meth:`add`, partial sketches combine with :meth:`merge`, and the
    CDF-level distances (:meth:`ks_distance`, :meth:`l1_distance`) read
    straight off the summary — no pooled sample array ever exists as such.

    **Exact mode** (``max_size=None``, the default — and whenever the
    number of *distinct* values stays within ``max_size``): the sketch holds
    the full value multiset as distinct sorted values with integer count
    weights. Folding and merging are then *exact and associative* — any
    slab slicing or merge-tree order yields the same summary, and
    :meth:`__call__` / :meth:`ks_distance` / :meth:`l1_distance` equal the
    pooled :class:`Ecdf` results **bitwise** (same ``searchsorted``, same
    integer-valued cumulative weights, same division).

    **Compressed mode**: once distinct values exceed ``max_size``, the
    summary is compacted to at most ``max_size`` weighted order statistics
    at evenly spaced cumulative-mass positions. The CDF stays *exact at
    every retained point*; between retained points the rank error of one
    compaction is at most ``n / max_size`` observations. Compressed merges
    are no longer order-independent (the usual sketch trade) — ``exact``
    reports which regime a sketch is in.

    Non-finite values are dropped on the way in (they carry no
    distributional mass, matching :class:`Ecdf`); a sketch that never saw a
    finite value has ``n == 0`` — the "unpopulated attribute" signal the
    distance layer skips over.
    """

    __slots__ = (
        "max_size", "_values", "_weights", "_n", "_compressed",
        "_pending", "_pending_size",
    )

    def __init__(self, max_size: Optional[int] = None):
        if max_size is not None and max_size < 2:
            raise ValidationError("max_size must be at least 2 (or None for exact)")
        self.max_size = max_size
        self._values = np.empty(0)
        self._weights = np.empty(0)
        self._n = 0
        self._compressed = False
        # Incoming (values, weights) slabs buffered until they rival the
        # consolidated summary in size: consolidating then costs one sort
        # over ~2x the retained set, so total fold work stays O(n log n)
        # over any slab slicing instead of one full re-sort per slab. The
        # buffered multiset is identical either way, so exact-mode results
        # are unchanged bit for bit.
        self._pending: "list[tuple[np.ndarray, np.ndarray]]" = []
        self._pending_size = 0

    # -- building ------------------------------------------------------------

    def add(self, values: np.ndarray) -> "EcdfSketch":
        """Fold one slab of raw values (non-finite entries are dropped)."""
        arr = np.asarray(values, dtype=float).ravel()
        finite = arr[np.isfinite(arr)]
        if finite.size:
            self._n += int(finite.size)
            self._defer(finite, np.ones(finite.size))
        return self

    def merge(self, other: "EcdfSketch") -> "EcdfSketch":
        """Fold another sketch's summary into this one."""
        other._consolidate()
        if other._n:
            self._n += other._n
            self._compressed = self._compressed or other._compressed
            self._defer(other._values, other._weights)
        return self

    def _defer(self, values: np.ndarray, weights: np.ndarray) -> None:
        self._pending.append((values, weights))
        self._pending_size += values.size
        if self._pending_size >= max(self._values.size, 256):
            self._consolidate()

    def _consolidate(self) -> None:
        if not self._pending:
            return
        merged = np.concatenate([self._values] + [v for v, _ in self._pending])
        uniq, inverse = np.unique(merged, return_inverse=True)
        self._values = uniq
        self._weights = np.bincount(
            inverse,
            weights=np.concatenate(
                [self._weights] + [w for _, w in self._pending]
            ),
        )
        self._pending = []
        self._pending_size = 0
        if self.max_size is not None and self._values.size > self.max_size:
            self._compress()

    def _compress(self) -> None:
        self._compressed = True
        cum = np.cumsum(self._weights)
        total = cum[-1]
        ranks = total * (np.arange(1, self.max_size + 1) / self.max_size)
        idx = np.searchsorted(cum, ranks, side="left")
        # Keep the minimum so the support (and the L1 grid) stays exact.
        idx = np.union1d(np.clip(idx, 0, cum.size - 1), [0])
        kept = cum[idx]
        self._values = self._values[idx]
        self._weights = np.diff(np.concatenate([[0.0], kept]))

    # -- reading -------------------------------------------------------------

    @property
    def n(self) -> int:
        """Total number of finite observations folded in."""
        return self._n

    @property
    def exact(self) -> bool:
        """Whether the summary still equals the pooled ECDF exactly."""
        self._consolidate()
        return not self._compressed

    @property
    def support(self) -> tuple[float, float]:
        """Minimum and maximum retained values."""
        if self._n == 0:
            raise ValidationError("empty EcdfSketch has no support")
        self._consolidate()
        return float(self._values[0]), float(self._values[-1])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate ``F(x) = P(X <= x)`` at the given points."""
        if self._n == 0:
            raise ValidationError("empty EcdfSketch has no CDF")
        self._consolidate()
        x = np.asarray(x, dtype=float)
        cum = np.concatenate([[0.0], np.cumsum(self._weights)])
        return cum[np.searchsorted(self._values, x, side="right")] / self._n

    def quantile(self, q: np.ndarray) -> np.ndarray:
        """Order statistics of the folded multiset, replaying ``np.quantile``.

        Computes the same linear-interpolation (Hyndman & Fan type 7)
        quantiles ``np.quantile(pooled, q)`` would return for the pooled
        sample, directly from the weighted summary: the virtual sorted-array
        index ``(n - 1) * q`` is resolved against the cumulative weights, and
        the interpolation replays numpy's ``_lerp`` arithmetic — including
        its ``t >= 0.5`` rewrite ``b - (b - a) * (1 - t)`` — operation for
        operation. In **exact mode** the result is therefore bitwise equal to
        pooling and calling ``np.quantile``; this is what lets quantile bin
        edges be frozen from a streamed reference (the streaming KL/JS path)
        without ever materialising the pooled sample. In compressed mode the
        retained order statistics stand in for the full multiset, so
        quantiles inherit the sketch's documented rank-error tolerance.
        """
        if self._n == 0:
            raise ValidationError("empty EcdfSketch has no quantiles")
        self._consolidate()
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValidationError("quantile levels must lie in [0, 1]")
        scalar = q.ndim == 0
        q = np.atleast_1d(q)
        cum = np.cumsum(self._weights)
        n = self._n
        virtual = (n - 1) * q
        previous = np.floor(virtual)
        nxt = previous + 1
        above = virtual >= n - 1
        previous[above] = n - 1
        nxt[above] = n - 1
        below = virtual < 0
        previous[below] = 0
        nxt[below] = 0
        # Map virtual sorted-array positions to retained values: position j
        # holds values[i] where the cumulative weight first exceeds j.
        a = self._values[np.searchsorted(cum, previous.astype(np.intp), side="right")]
        b = self._values[np.searchsorted(cum, nxt.astype(np.intp), side="right")]
        gamma = np.asarray(virtual - previous, dtype=virtual.dtype)
        diff = b - a
        out = a + diff * gamma
        hi = gamma >= 0.5
        if np.any(hi):
            out[hi] = (b - diff * (1 - gamma))[hi]
        return out[0] if scalar else out

    # -- distances -----------------------------------------------------------

    def ks_distance(self, other: "EcdfSketch") -> float:
        """``sup_x |F(x) - G(x)|`` — the two-sample KS statistic.

        Both step functions are constant between the union of their jump
        points, so the supremum over the reals is the maximum over that
        union — exactly the grid the pooled path evaluates.
        """
        self._consolidate()
        other._consolidate()
        grid = np.union1d(self._values, other._values)
        if grid.size == 0:
            raise ValidationError("cannot compare empty EcdfSketches")
        return float(np.max(np.abs(self(grid) - other(grid))))

    def l1_distance(self, other: "EcdfSketch") -> float:
        """Integral of ``|F - G|`` — the exact 1-D EMD in exact mode."""
        self._consolidate()
        other._consolidate()
        grid = np.union1d(self._values, other._values)
        if grid.size == 0:
            raise ValidationError("cannot compare empty EcdfSketches")
        if grid.size == 1:
            return 0.0
        f = self(grid[:-1])
        g = other(grid[:-1])
        return float(np.sum(np.abs(f - g) * np.diff(grid)))
