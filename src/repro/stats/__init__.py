"""Low-level statistics utilities used throughout the library."""

from repro.stats.descriptive import (
    RunningMoments,
    mad,
    nan_skewness,
    robust_sigma_limits,
    sigma_limits,
    winsorize_array,
)
from repro.stats.ecdf import Ecdf, EcdfSketch

__all__ = [
    "RunningMoments",
    "mad",
    "nan_skewness",
    "robust_sigma_limits",
    "sigma_limits",
    "winsorize_array",
    "Ecdf",
    "EcdfSketch",
]
