"""Persistent storage layer: columnar shard files + the experiment catalog.

:mod:`repro.store.shards` is the memory-mapped columnar spill format (one
self-describing file per population shard, header-fingerprinted against its
seed recipe, zero-copy reads); :mod:`repro.store.catalog` is the WAL-mode
SQLite catalog of populations, spilled shards and scored experiment cells
that lets sweeps reuse results across runs bitwise-identically.
"""

from repro.store.catalog import (
    CATALOG_ENV_VAR,
    Catalog,
    experiment_key,
    population_recipe_key,
    resolve_catalog,
)
from repro.store.shards import (
    SHARD_SUFFIX,
    ShardHandle,
    read_shard,
    recipe_fingerprint,
    write_shard,
)

__all__ = [
    "CATALOG_ENV_VAR",
    "Catalog",
    "experiment_key",
    "population_recipe_key",
    "resolve_catalog",
    "SHARD_SUFFIX",
    "ShardHandle",
    "read_shard",
    "recipe_fingerprint",
    "write_shard",
]
