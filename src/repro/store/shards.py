"""Memory-mapped columnar shard files — the persistent spill format.

The PR 4 spill store wrote each shard as an opaque ``.npz``: every read
decompressed and copied the whole shard into fresh arrays, and nothing in the
file said *which* population recipe produced it, so a spill directory reused
across configs or seeds silently served the wrong data. This module replaces
it with a self-describing, memory-mappable columnar format:

* one file per shard holding a JSON header plus raw, 64-byte-aligned
  little-endian segments — ``lengths`` (``int64``), ``values`` and ``truth``
  (``float64``, series-concatenated along the time axis). ``float64`` bytes
  round-trip exactly, so a stored shard is bitwise-identical to its
  regeneration, NaN payloads and signed zeros included;
* the header carries a **recipe fingerprint** (:func:`recipe_fingerprint`) —
  a SHA-256 over the generator/injection configs, the node range, the
  per-series seed entropy and the shared event windows — so a reader can
  prove the file belongs to the recipe in hand before serving it;
* :func:`read_shard` opens the segments as ``np.memmap`` views:
  :meth:`ShardHandle.series` and :meth:`ShardHandle.block` hand out
  zero-copy :class:`~repro.data.stream.TimeSeries` /
  :class:`~repro.data.block.SampleBlock` views straight off the page cache,
  so a re-streaming pass touches only the pages it reads and never copies
  shard data.

Writes are atomic (``{path}.tmp{pid}`` + ``os.replace``), so concurrent
workers spilling disjoint shards need no coordination and a torn write can
never be mistaken for a shard (:func:`read_shard` rejects bad magic,
truncated segments and short headers with :class:`~repro.errors.StoreError`).
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import struct
from typing import Optional, Sequence

import numpy as np

from repro.data.block import SampleBlock
from repro.data.stream import TimeSeries
from repro.data.topology import NodeId
from repro.errors import DataShapeError, StoreError
from repro.testing.faults import fault_fires, inject_fault

__all__ = [
    "SHARD_SUFFIX",
    "recipe_fingerprint",
    "write_shard",
    "read_shard",
    "ShardHandle",
]

#: File suffix of columnar shard files in a spill directory.
SHARD_SUFFIX = ".slab"

_MAGIC = b"REPROSLAB\x01"
_ALIGN = 64
_DTYPES = {"lengths": "<i8", "values": "<f8", "truth": "<f8"}


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ---------------------------------------------------------------------------
# Recipe fingerprints
# ---------------------------------------------------------------------------


def _seed_token(seq: np.random.SeedSequence) -> tuple:
    """The replayable identity of a seed sequence (what its draws depend on)."""
    return (seq.entropy, seq.spawn_key, seq.pool_size)


def recipe_fingerprint(source) -> str:
    """SHA-256 identity of a :class:`~repro.data.slab.SlabSource` recipe.

    Two sources share a fingerprint iff they materialise bitwise-identical
    shards: the hash covers both stage configs (frozen dataclasses with
    deterministic ``repr``), the node range and identities, every per-series
    seed's entropy/spawn-key, and the shared event-window mask bytes. The
    spill path (``store_path``) is deliberately excluded — where a shard
    lives says nothing about what it contains.
    """
    h = hashlib.sha256()
    for part in (
        f"gen={source.gen_config!r}",
        f"inj={source.inj_config!r}",
        f"range=({source.start},{source.stop})",
        f"nodes={source.nodes!r}",
        f"gen_seeds={[_seed_token(s) for s in source.gen_seeds]!r}",
        f"inj_seeds={[_seed_token(s) for s in source.inj_seeds]!r}",
        f"events={source.events.shape}:{source.events.dtype.str}",
    ):
        h.update(part.encode())
        h.update(b"\x00")
    h.update(np.ascontiguousarray(source.events).tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def write_shard(
    path: str,
    lengths: np.ndarray,
    values: np.ndarray,
    truth: Optional[np.ndarray] = None,
    fingerprint: str = "",
    attributes: Sequence[str] = (),
) -> int:
    """Atomically write one columnar shard file; returns its size in bytes.

    ``lengths`` is the ``(n,)`` per-series step count, ``values`` (and the
    optional ``truth``) the ``(sum(lengths), v)`` series-concatenated cell
    tensor. Segments are stored raw and little-endian, so ``float64`` cells
    — NaN payloads and ``-0.0`` included — round-trip bitwise through
    :func:`read_shard`. The write lands under ``{path}.tmp{pid}`` first and
    is published by ``os.replace``, so readers never observe a torn file.
    """
    lengths = np.ascontiguousarray(lengths, dtype=np.int64)
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise DataShapeError(f"values must be (N, v), got shape {values.shape}")
    if int(lengths.sum()) != values.shape[0]:
        raise DataShapeError(
            f"lengths sum to {int(lengths.sum())} rows but values has "
            f"{values.shape[0]}"
        )
    if truth is not None:
        truth = np.ascontiguousarray(truth, dtype=np.float64)
        if truth.shape != values.shape:
            raise DataShapeError(
                f"truth shape {truth.shape} does not match values shape "
                f"{values.shape}"
            )
    segments = {"lengths": lengths, "values": values, "truth": truth}
    header = {
        "version": 1,
        "fingerprint": fingerprint,
        "attributes": list(attributes),
        "segments": [
            {"name": name, "dtype": _DTYPES[name], "shape": list(arr.shape)}
            for name, arr in segments.items()
            if arr is not None
        ],
    }
    raw = json.dumps(header, sort_keys=True).encode()
    tmp = f"{path}.tmp{os.getpid()}"
    inject_fault(
        "slab.enospc", lambda: OSError(errno.ENOSPC, "No space left on device")
    )
    try:
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(struct.pack("<Q", len(raw)))
            fh.write(raw)
            pos = len(_MAGIC) + 8 + len(raw)
            for spec in header["segments"]:
                arr = segments[spec["name"]]
                pad = _aligned(pos) - pos
                fh.write(b"\x00" * pad)
                data = arr.astype(spec["dtype"], copy=False).tobytes(order="C")
                fh.write(data)
                pos += pad + len(data)
        if fault_fires("slab.torn"):
            # Publish a half-written file: what a crash between write and
            # publish would leave if the rename landed anyway. read_shard
            # must reject it with StoreError and the slab layer regenerate.
            with open(tmp, "r+b") as fh:
                fh.truncate(max(1, pos // 2))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    return pos


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class ShardHandle:
    """One opened shard: header metadata plus memory-mapped segments.

    ``lengths``/``values``/``truth`` are read-only ``np.memmap`` views (or
    ordinary empty arrays for zero-byte segments — an empty file region
    cannot be mapped). Nothing is read eagerly: pages fault in as consumers
    touch them, and slicing (:meth:`series`, :meth:`block`) produces views,
    so a pass that inspects one column of one series costs exactly those
    pages.
    """

    __slots__ = ("path", "fingerprint", "attributes", "lengths", "values", "truth")

    def __init__(
        self,
        path: str,
        fingerprint: str,
        attributes: tuple[str, ...],
        lengths: np.ndarray,
        values: np.ndarray,
        truth: Optional[np.ndarray],
    ):
        self.path = path
        self.fingerprint = fingerprint
        self.attributes = attributes
        self.lengths = lengths
        self.values = values
        self.truth = truth

    @property
    def n_series(self) -> int:
        """Number of member series."""
        return int(self.lengths.shape[0])

    @property
    def nbytes(self) -> int:
        """Total payload bytes across segments."""
        return sum(
            arr.nbytes
            for arr in (self.lengths, self.values, self.truth)
            if arr is not None
        )

    @property
    def uniform(self) -> bool:
        """Whether every member series has the same length."""
        return self.n_series == 0 or bool(
            (np.asarray(self.lengths) == int(self.lengths[0])).all()
        )

    def _bounds(self) -> np.ndarray:
        return np.concatenate([[0], np.cumsum(self.lengths)])

    def series(self, nodes: Sequence[NodeId]) -> list[TimeSeries]:
        """The member series as zero-copy views into the mapped segments."""
        if len(nodes) != self.n_series:
            raise DataShapeError(
                f"got {len(nodes)} nodes for a {self.n_series}-series shard"
            )
        bounds = self._bounds()
        attributes = self.attributes or None
        return [
            TimeSeries(
                node,
                self.values[bounds[i] : bounds[i + 1]],
                attributes=attributes,
                truth=(
                    None
                    if self.truth is None
                    else self.truth[bounds[i] : bounds[i + 1]]
                ),
            )
            for i, node in enumerate(nodes)
        ]

    def block(self, nodes: Sequence[NodeId]) -> SampleBlock:
        """The whole shard as one zero-copy ``(n, T, v)`` :class:`SampleBlock`.

        Requires a uniform series length (ragged shards cannot stack); the
        reshape is a view of the mapped ``values``/``truth`` segments, so
        building the block moves no data.
        """
        if not self.uniform:
            raise DataShapeError(
                "a zero-copy block needs a uniform series length; this shard "
                "is ragged"
            )
        if len(nodes) != self.n_series:
            raise DataShapeError(
                f"got {len(nodes)} nodes for a {self.n_series}-series shard"
            )
        n = self.n_series
        length = int(self.lengths[0]) if n else 0
        v = int(self.values.shape[1])
        return SampleBlock(
            values=np.asarray(self.values).reshape(n, length, v),
            attributes=self.attributes
            or tuple(f"attr{i + 1}" for i in range(v)),
            nodes=tuple(nodes),
            truth=(
                None
                if self.truth is None
                else np.asarray(self.truth).reshape(n, length, v)
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardHandle(n={self.n_series}, rows={self.values.shape[0]}, "
            f"fingerprint={self.fingerprint[:12]}...)"
        )


def read_shard(path: str) -> ShardHandle:
    """Open one shard file as memory-mapped segment views.

    Raises :class:`~repro.errors.StoreError` for anything that is not a
    complete, well-formed shard file — wrong magic (e.g. a legacy ``.npz``
    left by an older run), a truncated header, or segments extending past
    the end of the file — so callers can treat "unreadable" exactly like
    "stale" and fall back to the seed recipe.
    """
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            magic = fh.read(len(_MAGIC))
            if magic != _MAGIC:
                raise StoreError(f"{path}: not a columnar shard file")
            packed = fh.read(8)
            if len(packed) != 8:
                raise StoreError(f"{path}: truncated shard header")
            (header_len,) = struct.unpack("<Q", packed)
            raw = fh.read(header_len)
            if len(raw) != header_len:
                raise StoreError(f"{path}: truncated shard header")
            try:
                header = json.loads(raw)
            except ValueError as exc:
                raise StoreError(f"{path}: corrupt shard header: {exc}") from exc
    except OSError as exc:
        raise StoreError(f"{path}: unreadable shard file: {exc}") from exc

    pos = len(_MAGIC) + 8 + header_len
    arrays: dict[str, np.ndarray] = {}
    for spec in header.get("segments", []):
        name = spec["name"]
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(d) for d in spec["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        pos = _aligned(pos)
        if pos + nbytes > size:
            raise StoreError(
                f"{path}: segment {name!r} extends past end of file "
                f"({pos + nbytes} > {size})"
            )
        if nbytes:
            arrays[name] = np.memmap(
                path, dtype=dtype, mode="r", offset=pos, shape=shape, order="C"
            )
        else:
            arrays[name] = np.empty(shape, dtype=dtype)
        pos += nbytes
    for required in ("lengths", "values"):
        if required not in arrays:
            raise StoreError(f"{path}: missing segment {required!r}")
    return ShardHandle(
        path=path,
        fingerprint=str(header.get("fingerprint", "")),
        attributes=tuple(header.get("attributes", ())),
        lengths=arrays["lengths"],
        values=arrays["values"],
        truth=arrays.get("truth"),
    )
