"""SQLite experiment catalog — cross-run reuse of populations and outcomes.

Every sweep cell the drivers evaluate is a pure function of a few small
inputs: the population recipe (generator/injection configs + seed), the
replication config, the distance selector and the strategy panel. The
catalog persists that mapping, so a cell whose key is already scored is
served back **bitwise-identically** instead of recomputed — the storage-side
half of "re-run the paper after any change in seconds".

Three tables (see :data:`_SCHEMA`): ``populations`` (recipe- or
content-keyed population identities), ``shards`` (the spilled shard
inventory of a population — fingerprints, paths, sizes) and ``outcomes``
(scored experiment cells; the result payload is a pickle, which round-trips
``float64`` exactly). The connection applies the WAL-mode pragma set for
concurrent readers (``journal_mode=WAL``, ``synchronous=NORMAL``,
``busy_timeout``, ``foreign_keys=ON``).

Keys deliberately cover **only** outcome-determining inputs. Execution
choices — backend, worker count, streaming engine, shard layout, spill
location — are excluded, because the repo's determinism contracts make them
bitwise-invisible: a cell computed by the in-memory block path is a valid
cache hit for the same cell requested through the streaming engine, and vice
versa. Strategy panels are keyed by ``(class, name, cost_fraction)``;
callers running custom-parameterised strategy instances under a registry
name should use a dedicated catalog file. Explicit
:class:`~repro.distance.base.Distance` *instances* are keyed by their
registry name when they are structurally equal to the registry default
(:func:`distance_key_name`); custom-parameterised instances have no
canonical identity and bypass the catalog.

Every outcome key is additionally salted with the **code version**
(:func:`code_salt`): scoring-relevant code changes bump
:data:`CODE_VERSION`, which atomically invalidates every cached cell —
the catalog-side half of the sweep planner's invalidation diff
(:mod:`repro.experiments.sweep`). Set ``REPRO_CODE_SALT`` to override the
salt without touching code (e.g. to force a full recompute).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sqlite3
import warnings
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.resilience import RetryPolicy
from repro.errors import StoreError, StoreWarning, ValidationError
from repro.testing.faults import inject_fault

__all__ = [
    "CATALOG_ENV_VAR",
    "CATALOG_BUDGET_ENV_VAR",
    "CODE_SALT_ENV_VAR",
    "CODE_VERSION",
    "Catalog",
    "resolve_catalog",
    "population_recipe_key",
    "experiment_key",
    "code_salt",
    "distance_key_name",
]

#: Environment variable naming a catalog file every driver should reuse.
CATALOG_ENV_VAR = "REPRO_CATALOG"

#: Payload budget in bytes applied at every catalog open: when set, stored
#: outcome payloads over budget are pruned oldest-first (populations,
#: shards and sweep manifests are tiny and always survive). Empty or
#: unset disables; negative or non-integer values raise.
CATALOG_BUDGET_ENV_VAR = "REPRO_CATALOG_BUDGET"

#: Environment variable overriding the code-version salt (any non-empty
#: value); bumping it invalidates every cached outcome without code changes.
CODE_SALT_ENV_VAR = "REPRO_CODE_SALT"

#: The scoring-code version folded into every outcome key. Bump it whenever
#: a change alters any outcome float (a distance formula, a strategy's
#: arithmetic, the glitch-index weights): old catalog rows then stop
#: matching and every cell recomputes, instead of silently serving stale
#: numbers. Pure performance work that preserves the bitwise-identity
#: contract does **not** bump it — that is the whole point of keying by
#: outcome-determining inputs only.
CODE_VERSION = "2026.08-1"


def code_salt() -> str:
    """The salt folded into outcome keys: ``REPRO_CODE_SALT`` when set
    (non-empty), else :data:`CODE_VERSION`."""
    return os.environ.get(CODE_SALT_ENV_VAR, "").strip() or CODE_VERSION

_SCHEMA = """
CREATE TABLE IF NOT EXISTS populations (
    key        TEXT PRIMARY KEY,
    kind       TEXT NOT NULL,          -- 'recipe' (seed-keyed) or 'content'
    scale      TEXT,
    seed       TEXT,
    generator  TEXT,
    injection  TEXT,
    n_series   INTEGER,
    created    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS shards (
    population_key TEXT    NOT NULL,
    shard_index    INTEGER NOT NULL,
    fingerprint    TEXT    NOT NULL,
    store_path     TEXT,
    n_series       INTEGER,
    nbytes         INTEGER,
    created        TEXT    NOT NULL,
    PRIMARY KEY (population_key, shard_index)
);
CREATE TABLE IF NOT EXISTS outcomes (
    key            TEXT PRIMARY KEY,
    population_key TEXT NOT NULL,
    distance       TEXT NOT NULL,
    config         TEXT NOT NULL,      -- canonical JSON of the keyed fields
    strategies     TEXT NOT NULL,
    engine         TEXT,
    wall_s         REAL,
    payload        BLOB NOT NULL,      -- pickled ExperimentResult
    created        TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweeps (
    id       INTEGER PRIMARY KEY AUTOINCREMENT,
    name     TEXT NOT NULL,
    manifest TEXT NOT NULL,            -- JSON {cell name -> key components}
    created  TEXT NOT NULL
);
"""


def _now() -> str:
    return datetime.now(timezone.utc).isoformat()


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def _seed_token(seed) -> str:
    """Canonical text of a replayable seed (int / SeedSequence / None)."""
    if seed is None or isinstance(seed, (int, np.integer)):
        return repr(int(seed) if seed is not None else None)
    if isinstance(seed, np.random.SeedSequence):
        return repr((seed.entropy, seed.spawn_key, seed.pool_size))
    raise ValidationError(
        "catalog keys need a replayable seed (int or SeedSequence); a live "
        f"Generator cannot be keyed: {seed!r}"
    )


def population_recipe_key(
    generator_config, injection_config, seed
) -> str:
    """Seed-keyed identity of a population that has not been built yet.

    Hashes the stage configs (frozen dataclasses with deterministic
    ``repr``) and the root seed — exactly the inputs
    :func:`~repro.experiments.config.build_population` and the slab feed
    derive every per-series stream from, so equal keys mean bitwise-equal
    populations without materialising either.
    """
    return "recipe:" + _digest(
        repr(generator_config), repr(injection_config), _seed_token(seed)
    )


def config_token(config) -> dict:
    """The outcome-determining fields of an :class:`ExperimentConfig`.

    Backend, worker count and the streaming selector are excluded — they are
    execution choices the determinism contracts make bitwise-invisible.
    """
    return {
        "n_replications": int(config.n_replications),
        "sample_size": int(config.sample_size),
        "log_transform": bool(config.log_transform),
        "sigma_k": repr(float(config.sigma_k)),
        "seed": _seed_token(config.seed),
        "distance": config.distance or "emd",
    }


def strategies_token(strategies: Sequence) -> list[dict]:
    """Canonical identity of a strategy panel, in evaluation order."""
    return [
        {
            "type": f"{type(s).__module__}.{type(s).__qualname__}",
            "name": s.name,
            "cost_fraction": repr(float(s.cost_fraction)),
        }
        for s in strategies
    ]


def experiment_key(
    population_key: str,
    config,
    strategies: Sequence,
    distance_name: Optional[str] = None,
) -> str:
    """The catalog key of one scored sweep cell.

    ``(population, seed, config, distance, strategy panel, code salt)`` —
    everything that determines the outcome floats, and nothing that does
    not. *distance_name* overrides the config's ``distance`` selector in
    the key — for callers scoring with an explicit instance that
    :func:`distance_key_name` resolved to its registry default.
    """
    token = config_token(config)
    if distance_name is not None:
        token["distance"] = distance_name
    return "outcome:" + _digest(
        population_key,
        json.dumps(token, sort_keys=True),
        json.dumps(strategies_token(strategies), sort_keys=True),
        code_salt(),
    )


def _state_equal(a, b) -> bool:
    """Structural equality of two (nested) plain-state objects.

    Recurses through ``__dict__`` of non-builtin instances (a distance's
    binner, say), compares arrays by shape and content, and falls back to
    ``==`` for primitives — conservative enough that a ``True`` means the
    two objects compute identical numbers.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return a.shape == b.shape and bool(np.array_equal(a, b, equal_nan=True))
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_state_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_state_equal(a[k], b[k]) for k in a)
    state = getattr(a, "__dict__", None)
    if state is not None and type(a).__module__ != "builtins":
        return _state_equal(state, getattr(b, "__dict__", {}))
    try:
        return bool(a == b)
    except Exception:  # pragma: no cover - exotic state defeats comparison
        return False


def distance_key_name(distance) -> Optional[str]:
    """The registry name keying an explicit distance instance, or ``None``.

    A :class:`~repro.distance.base.Distance` *instance* equal (structurally,
    member by member) to its registry class's default construction scores
    exactly what the name selector would — so it is keyed by that name
    instead of bypassing the catalog. A custom-parameterised instance (or
    one whose class is not the registered one for its name) returns
    ``None``: it has no canonical identity and the caller must bypass.
    """
    if distance is None:
        return None
    from repro.distance import DISTANCES

    cls = type(distance)
    name = getattr(cls, "name", None)
    if not name or DISTANCES.get(name) is not cls:
        return None
    try:
        default = cls()
    except Exception:
        return None
    return name if _state_equal(distance, default) else None


def _is_locked_error(exc: BaseException) -> bool:
    """A transient write-contention error worth retrying (not corruption)."""
    return isinstance(exc, sqlite3.OperationalError) and (
        "locked" in str(exc).lower() or "busy" in str(exc).lower()
    )


#: Bounded retry on ``database is locked``: ``busy_timeout`` alone still
#: surfaces intermittent ``OperationalError`` under process-parallel sweeps
#: (the timeout does not cover every lock acquisition inside a statement),
#: so every catalog read/write gets a short deterministic backoff on top.
_LOCKED_RETRY = RetryPolicy(max_attempts=5, base_delay=0.02, max_delay=0.5)


class Catalog:
    """One catalog file: WAL-mode SQLite with put/get of scored cells.

    A ``Catalog`` wraps a single connection (use one instance per thread;
    WAL mode makes concurrent *processes* against the same file safe —
    readers never block the writer). ``hits``/``misses`` count
    :meth:`get_outcome` results for this instance, which is what the
    cold-vs-warm benchmark and the reuse tests assert on.

    Degradation rules: every statement retries briefly on ``database is
    locked``; a file that is not a SQLite database at all (torn disk,
    foreign file) is quarantine-renamed to ``{path}.corrupt[.k]`` at open
    and a fresh catalog is started in its place, so a damaged cache can
    never abort — or poison — a run.
    """

    def __init__(self, path: Union[str, Path], busy_timeout_ms: int = 30_000):
        self.path = str(path)
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.hits = 0
        self.misses = 0
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        try:
            self._conn = self._open()
        except sqlite3.OperationalError as exc:
            # Locked/permission-style trouble — the file may be fine;
            # never quarantine on it.
            raise StoreError(f"cannot open catalog {self.path}: {exc}") from exc
        except sqlite3.DatabaseError as exc:
            quarantined = self._quarantine()
            warnings.warn(
                f"catalog {self.path} is unreadable ({exc}); quarantined the "
                f"damaged file to {quarantined} and starting a fresh catalog",
                StoreWarning,
                stacklevel=2,
            )
            try:
                self._conn = self._open()
            except sqlite3.Error as exc2:
                raise StoreError(
                    f"cannot open catalog {self.path}: {exc2}"
                ) from exc2
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open catalog {self.path}: {exc}") from exc
        budget = _resolve_budget()
        if budget is not None:
            removed = self.prune(budget)
            if removed:
                warnings.warn(
                    f"catalog {self.path} exceeded {CATALOG_BUDGET_ENV_VAR}="
                    f"{budget} bytes; pruned {removed} oldest outcome row(s)",
                    StoreWarning,
                    stacklevel=2,
                )

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=self.busy_timeout_ms / 1000.0)
        try:
            inject_fault(
                "catalog.corrupt",
                lambda: sqlite3.DatabaseError("file is not a database"),
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
            conn.execute("PRAGMA foreign_keys=ON")
            conn.executescript(_SCHEMA)
            conn.commit()
        except BaseException:
            conn.close()
            raise
        return conn

    def _quarantine(self) -> str:
        """Rename the damaged database (and WAL/SHM sidecars) out of the way."""
        target = f"{self.path}.corrupt"
        k = 0
        while os.path.exists(target):
            k += 1
            target = f"{self.path}.corrupt.{k}"
        os.replace(self.path, target)
        for suffix in ("-wal", "-shm"):
            sidecar = self.path + suffix
            if os.path.exists(sidecar):
                try:
                    os.replace(sidecar, target + suffix)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        return target

    def _execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        """``conn.execute`` with bounded retry on lock contention."""

        def attempt() -> sqlite3.Cursor:
            inject_fault(
                "catalog.locked",
                lambda: sqlite3.OperationalError("database is locked"),
            )
            return self._conn.execute(sql, params)

        return _LOCKED_RETRY.call(attempt, retryable=_is_locked_error)

    def _commit(self) -> None:
        """``conn.commit`` with bounded retry on lock contention."""

        def attempt() -> None:
            inject_fault(
                "catalog.locked",
                lambda: sqlite3.OperationalError("database is locked"),
            )
            self._conn.commit()

        _LOCKED_RETRY.call(attempt, retryable=_is_locked_error)

    # -- populations and shards -------------------------------------------------

    def record_population(
        self,
        key: str,
        kind: str,
        scale: Optional[str] = None,
        seed: Optional[str] = None,
        generator: Optional[str] = None,
        injection: Optional[str] = None,
        n_series: Optional[int] = None,
    ) -> None:
        """Insert one population identity row (idempotent)."""
        self._execute(
            "INSERT OR IGNORE INTO populations "
            "(key, kind, scale, seed, generator, injection, n_series, created) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (key, kind, scale, seed, generator, injection, n_series, _now()),
        )
        self._commit()

    def record_shard(
        self,
        population_key: str,
        shard_index: int,
        fingerprint: str,
        store_path: Optional[str] = None,
        n_series: Optional[int] = None,
        nbytes: Optional[int] = None,
    ) -> None:
        """Upsert one spilled-shard inventory row for a population."""
        self._execute(
            "INSERT OR REPLACE INTO shards "
            "(population_key, shard_index, fingerprint, store_path, n_series, "
            "nbytes, created) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                population_key,
                int(shard_index),
                fingerprint,
                store_path,
                n_series,
                nbytes,
                _now(),
            ),
        )
        self._commit()

    def shards(self, population_key: str) -> list[sqlite3.Row]:
        """The shard inventory of one population, in shard order."""
        cur = self._execute(
            "SELECT * FROM shards WHERE population_key = ? ORDER BY shard_index",
            (population_key,),
        )
        cur.row_factory = sqlite3.Row
        return list(cur)

    # -- outcomes ---------------------------------------------------------------

    def get_outcome(self, key: str):
        """The stored :class:`ExperimentResult` for *key*, or ``None``.

        A hit unpickles the stored payload — the exact object graph of the
        run that produced it, outcome floats bitwise-identical.
        """
        row = self._execute(
            "SELECT payload FROM outcomes WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        try:
            result = pickle.loads(row[0])
        except Exception as exc:
            # A damaged payload is a miss, not an abort: recompute the cell
            # (the INSERT OR REPLACE on put will repair the row).
            warnings.warn(
                f"catalog {self.path} holds an unreadable payload for "
                f"{key!r} ({exc}); treating it as a miss and recomputing",
                StoreWarning,
                stacklevel=2,
            )
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put_outcome(
        self,
        key: str,
        result,
        population_key: str,
        config,
        strategies: Sequence,
        engine: Optional[str] = None,
        wall_s: Optional[float] = None,
        distance_name: Optional[str] = None,
    ) -> None:
        """Store one scored cell (idempotent — last write wins).

        *distance_name* mirrors :func:`experiment_key`'s override — pass the
        same value used to derive *key* so the introspection columns agree
        with what the cell was actually scored with.
        """
        token = config_token(config)
        if distance_name is not None:
            token["distance"] = distance_name
        self._execute(
            "INSERT OR REPLACE INTO outcomes "
            "(key, population_key, distance, config, strategies, engine, "
            "wall_s, payload, created) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key,
                population_key,
                token["distance"],
                json.dumps(token, sort_keys=True),
                json.dumps(strategies_token(strategies), sort_keys=True),
                engine,
                wall_s,
                pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
                _now(),
            ),
        )
        self._commit()

    # -- sweep manifests --------------------------------------------------------

    def record_sweep(self, name: str, manifest: dict) -> None:
        """Append one named sweep's key manifest (``{cell -> components}``).

        The planner diffs the latest manifest against the next run's plan to
        report exactly which cells a config/code change invalidated.
        """
        self._execute(
            "INSERT INTO sweeps (name, manifest, created) VALUES (?, ?, ?)",
            (name, json.dumps(manifest, sort_keys=True), _now()),
        )
        self._commit()

    def last_sweep(self, name: str) -> Optional[dict]:
        """The most recent manifest recorded under *name*, or ``None``."""
        row = self._execute(
            "SELECT manifest FROM sweeps WHERE name = ? ORDER BY id DESC LIMIT 1",
            (name,),
        ).fetchone()
        return None if row is None else json.loads(row[0])

    # -- introspection and maintenance ------------------------------------------

    def stats(self) -> dict:
        """Row counts per table, stored payload bytes, and this instance's
        hit/miss counters."""
        counts = {
            table: self._execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in ("populations", "shards", "outcomes", "sweeps")
        }
        payload_bytes = self._execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM outcomes"
        ).fetchone()[0]
        return {
            **counts,
            "payload_bytes": int(payload_bytes),
            "hits": self.hits,
            "misses": self.misses,
        }

    def prune(self, max_bytes: int) -> int:
        """Delete oldest outcomes until stored payloads fit *max_bytes*.

        Oldest-first by ``created`` (insertion time), so the rows most
        likely to be re-requested — the most recently scored — survive.
        Returns the number of outcome rows removed. Populations, shards and
        sweep manifests are tiny and never pruned.
        """
        if max_bytes < 0:
            raise ValidationError("max_bytes must be non-negative")
        rows = self._execute(
            "SELECT key, LENGTH(payload) FROM outcomes ORDER BY created ASC, key ASC"
        ).fetchall()
        total = sum(nbytes for _, nbytes in rows)
        removed = 0
        for key, nbytes in rows:
            if total <= max_bytes:
                break
            self._execute("DELETE FROM outcomes WHERE key = ?", (key,))
            total -= nbytes
            removed += 1
        if removed:
            self._commit()
        return removed

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Catalog({self.path!r})"


def _resolve_budget() -> Optional[int]:
    """The ``REPRO_CATALOG_BUDGET`` byte budget, or ``None`` when unset.

    A malformed value raises :class:`~repro.errors.ValidationError` — a
    budget knob that silently failed to apply would defeat its purpose.
    """
    raw = os.environ.get(CATALOG_BUDGET_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        budget = int(raw)
    except ValueError:
        raise ValidationError(
            f"{CATALOG_BUDGET_ENV_VAR} must be an integer byte count, got {raw!r}"
        ) from None
    if budget < 0:
        raise ValidationError(
            f"{CATALOG_BUDGET_ENV_VAR} must be non-negative, got {budget}"
        )
    return budget


def resolve_catalog(
    catalog: Union[None, str, Path, "Catalog"],
) -> tuple[Optional["Catalog"], bool]:
    """Resolve a driver's ``catalog=`` argument to ``(catalog, owned)``.

    A :class:`Catalog` instance passes through (caller keeps ownership); a
    path opens a catalog the resolver owns (the caller must close it —
    ``owned`` is ``True``); ``None`` defers to the ``REPRO_CATALOG``
    environment variable, and finally to no catalog at all.

    A path that cannot be opened at all (even after the corrupt-file
    quarantine inside :class:`Catalog`) degrades to *no catalog*: the run
    proceeds uncached — slower, never aborted — with a warning naming the
    path.
    """
    if isinstance(catalog, Catalog):
        return catalog, False
    if catalog is None:
        env = os.environ.get(CATALOG_ENV_VAR, "").strip()
        if not env:
            return None, False
        catalog = env
    try:
        return Catalog(catalog), True
    except StoreError as exc:
        warnings.warn(
            f"cannot open catalog {catalog!s} ({exc}); continuing without a "
            "catalog — every cell will be recomputed",
            StoreWarning,
            stacklevel=2,
        )
        return None, False
