"""Test-support utilities: deterministic fault injection for resilience tests."""

from repro.testing.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_fires,
    inject_fault,
    install_plan,
)

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "fault_fires",
    "inject_fault",
    "install_plan",
]
