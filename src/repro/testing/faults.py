"""Deterministic fault injection, addressable by site.

Production code is instrumented with cheap probes at the places that can
fail in the wild::

    from repro.testing.faults import inject_fault
    inject_fault("unit")                       # raise FaultInjectedError
    if fault_fires("worker"): os._exit(1)      # custom failure action

With no plan installed every probe is a dict lookup against an empty plan
and falls straight through — the production path pays nothing.  A plan is
installed either programmatically (:func:`install_plan`, for tests) or via
the ``REPRO_FAULTS`` environment variable (for CI smoke jobs and child
processes of a process pool, which inherit the variable).

Plan grammar (``REPRO_FAULTS`` or :meth:`FaultPlan.parse`)::

    "unit:2,slab.torn,catalog.locked:0.5;seed=7"

Comma-separated ``site[:count-or-rate]`` specs, optionally followed by
``;seed=N``.  An integer count fires the fault on the first *N* hits of the
site in this process; a float in ``(0, 1)`` fires with that probability,
decided by a seeded generator keyed on ``(seed, site, hit_index)`` so the
same plan makes identical decisions on every run; a bare site fires once.

Known sites (see the modules that probe them):

========================  =====================================================
``unit``                  work-unit entry (framework/streaming map functions)
``worker``                pool worker hard-kill (``os._exit``) before a chunk
``slab.torn``             truncate a spilled ``.slab`` file before publish
``slab.enospc``           ``OSError(ENOSPC)`` at the start of a shard write
``catalog.locked``        ``sqlite3.OperationalError: database is locked``
``catalog.corrupt``       ``sqlite3.DatabaseError`` while opening the catalog
``conn.drop``             coordinator-side: close the worker socket mid-send
``conn.corrupt``          coordinator-side: flip a payload byte before the
                          checksum check (the real rejection path fires)
``worker.lost``           worker-side: hard ``os._exit`` on receiving a task
``worker.slow``           worker-side: sleep before computing (a straggler)
``lease.expire``          coordinator-side: treat a live worker's lease as
                          expired (its units are re-dispatched)
``feed.stall``            ingestion feed: yield to the event loop and deliver
                          the window late (a bursty/slow producer)
``feed.dup``              ingestion feed: deliver the same window twice (an
                          at-least-once transport retry)
``feed.reorder``          ingestion feed: swap the next two windows (an
                          out-of-order arrival)
========================  =====================================================
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import FaultInjectedError, ValidationError

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultSpec",
    "FaultPlan",
    "install_plan",
    "active_plan",
    "fault_fires",
    "inject_fault",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Sites the library actually probes; unknown sites in a plan are rejected
#: early so a typo does not silently disable a fault test.
KNOWN_SITES = frozenset(
    [
        "unit",
        "worker",
        "slab.torn",
        "slab.enospc",
        "catalog.locked",
        "catalog.corrupt",
        "conn.drop",
        "conn.corrupt",
        "worker.lost",
        "worker.slow",
        "lease.expire",
        "feed.stall",
        "feed.dup",
        "feed.reorder",
    ]
)


@dataclass(frozen=True)
class FaultSpec:
    """One site's firing rule: the first ``times`` hits, or rate-based."""

    site: str
    times: int = 1
    rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValidationError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(sorted(KNOWN_SITES))}"
            )
        if self.rate is not None and not 0.0 < self.rate < 1.0:
            raise ValidationError(f"fault rate must be in (0, 1), got {self.rate}")
        if self.rate is None and self.times < 0:
            raise ValidationError(f"fault count must be >= 0, got {self.times}")


def _site_key(seed: int, site: str, hit: int) -> np.random.Generator:
    digest = hashlib.sha256(site.encode()).digest()
    return np.random.default_rng(
        [seed, int.from_bytes(digest[:4], "little"), hit]
    )


@dataclass
class FaultPlan:
    """A set of :class:`FaultSpec` rules plus per-process hit counters.

    Counters are per-plan and per-process: a forked pool worker inherits the
    environment variable, re-parses the plan, and starts its own counters at
    zero — which is exactly what makes ``worker:1`` kill *every* fresh pool
    (each new worker sees hit 0) and thereby exercise the full
    process→thread→serial degrade ladder deterministically.
    """

    specs: Dict[str, FaultSpec] = field(default_factory=dict)
    seed: int = 0
    _hits: Dict[str, int] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        seed = 0
        body = text.strip()
        if ";" in body:
            body, _, tail = body.partition(";")
            tail = tail.strip()
            if not tail.startswith("seed="):
                raise ValidationError(f"bad fault-plan option {tail!r}; expected seed=N")
            seed = int(tail[len("seed="):])
        specs: Dict[str, FaultSpec] = {}
        for part in filter(None, (p.strip() for p in body.split(","))):
            site, _, arg = part.partition(":")
            site = site.strip()
            if not arg:
                spec = FaultSpec(site)
            else:
                arg = arg.strip()
                if "." in arg or "e" in arg.lower():
                    spec = FaultSpec(site, rate=float(arg))
                else:
                    spec = FaultSpec(site, times=int(arg))
            specs[site] = spec
        return cls(specs=specs, seed=seed)

    def fires(self, site: str) -> bool:
        """Record a hit on ``site`` and decide whether the fault fires."""
        spec = self.specs.get(site)
        if spec is None:
            return False
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
        if spec.rate is not None:
            return bool(_site_key(self.seed, site, hit).random() < spec.rate)
        return hit < spec.times

    def reset(self) -> None:
        """Zero the hit counters (fresh run against the same plan)."""
        with self._lock:
            self._hits.clear()


_EMPTY = FaultPlan()

# Programmatic plan beats the environment; the env cache is keyed on the raw
# string so changing REPRO_FAULTS mid-process (monkeypatch) takes effect.
_installed: Optional[FaultPlan] = None
_env_cache: Tuple[Optional[str], FaultPlan] = (None, _EMPTY)
_state_lock = threading.Lock()


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` for this process (``None`` reverts to the env var).

    Returns the previously installed plan so tests can restore it.
    """
    global _installed
    with _state_lock:
        previous = _installed
        _installed = plan
    return previous


def active_plan() -> FaultPlan:
    """The plan currently in force: installed plan, else parsed env, else empty."""
    global _env_cache
    if _installed is not None:
        return _installed
    raw = os.environ.get(FAULTS_ENV_VAR)
    if not raw:
        return _EMPTY
    with _state_lock:
        cached_raw, cached_plan = _env_cache
        if cached_raw != raw:
            cached_plan = FaultPlan.parse(raw)
            _env_cache = (raw, cached_plan)
    return cached_plan


def fault_fires(site: str) -> bool:
    """Probe ``site``: count the hit and report whether the fault fires."""
    return active_plan().fires(site)


def inject_fault(site: str, make_exc: Optional[Callable[[], BaseException]] = None) -> None:
    """Raise at ``site`` if the active plan says so; otherwise fall through.

    ``make_exc`` builds the exception to raise (so store probes can raise
    ``OSError(ENOSPC)`` or ``sqlite3.OperationalError`` and exercise the
    *real* handling path); the default is :class:`FaultInjectedError`.
    """
    if fault_fires(site):
        if make_exc is not None:
            raise make_exc()
        raise FaultInjectedError(f"injected fault at site {site!r}")
