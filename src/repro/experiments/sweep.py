"""The incremental sweep planner — catalog-backed invalidation + batching.

The paper's headline artifacts (Table 1, Figure 6, the cost sweeps) are
*grids* of experiment cells: one population recipe crossed with a handful of
replication configs and strategy panels. This module turns such a grid into
an explicit plan keyed by the catalog's outcome-determining tokens
(:mod:`repro.store.catalog`) and executes only the frontier that is actually
invalid:

* **invalidation diff** — every cell's key covers exactly the inputs that
  determine its outcome floats (population recipe, replication config,
  distance, strategy panel, code-version salt). A cell whose key is already
  scored in the catalog is served back bitwise-identically without building
  anything; :func:`diff_manifests` reports *which* component of a changed
  cell's key moved (a seed change invalidates every cell, a single panel's
  ``cost_fraction`` edit invalidates only that cell, a distance swap leaves
  the population rows reusable);
* **work sharing across the cells that do run** — cells are grouped by
  shared population recipe (the population is built **once** per group, the
  streaming engine's identification fixed point is memoised per group) and,
  within a group, by shared outcome config: such a *frame group* differs
  only in its strategy panels and is evaluated in one pass over the shared
  replication pairs by
  :func:`~repro.core.framework.run_pair_panels_stream`, which hoists the
  per-pair dirty reference frame (sigma limits, detector suite, dirty
  annotation, pooled distortion reference) once per pair;
* a first-class :class:`SweepResult` — cells + keys + provenance +
  hit/miss/build counters, diffable across runs, with a mapping facade so
  drivers that used to return ``dict[str, ExperimentResult]`` can return it
  unchanged.

Sharing stops exactly where bitwise identity would break: each panel keeps
its own per-replication random streams and its own distortion grid (the
shared-support grid is a function of the panel composition), and cells whose
config seed is not a plain int fall back to standalone per-cell evaluation
(non-int seeds are consumed order-dependently by the replication loop).

``REPRO_SWEEP_INCREMENTAL=0`` disables catalog serving (every cell
recomputes — the from-scratch reference the benchmarks compare against);
the default is incremental.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence, Union

from repro.cleaning.base import CleaningStrategy
from repro.core.framework import ExperimentConfig, ExperimentResult
from repro.errors import ExperimentError, ResilienceWarning, ValidationError
from repro.utils.rng import Seed

__all__ = [
    "SWEEP_INCREMENTAL_ENV_VAR",
    "sweep_incremental_enabled",
    "SweepCell",
    "CellKey",
    "cell_key",
    "cell_strategies",
    "SweepPlan",
    "plan_sweep",
    "PlanDiff",
    "diff_manifests",
    "CellResult",
    "SweepResult",
    "run_sweep",
    "figure6_cells",
    "table1_cells",
    "cost_cells",
]

#: Environment variable disabling incremental serving (``0``/``off``).
SWEEP_INCREMENTAL_ENV_VAR = "REPRO_SWEEP_INCREMENTAL"


def sweep_incremental_enabled(override: Optional[bool] = None) -> bool:
    """Whether :func:`run_sweep` serves unchanged cells from the catalog.

    An explicit *override* wins; ``None`` defers to the
    ``REPRO_SWEEP_INCREMENTAL`` environment variable; the default is on.
    Disabling never changes a number — every cell then recomputes through
    the same grouped evaluation, bitwise-identical to the served payloads.
    """
    if override is not None:
        return bool(override)
    raw = os.environ.get(SWEEP_INCREMENTAL_ENV_VAR, "").strip().lower()
    return raw not in ("0", "off", "false", "no")


# ---------------------------------------------------------------------------
# Cells and keys
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One cell of a sweep: a population identity crossed with one
    replication config and one strategy panel.

    The population is named either by *recipe* (``scale`` — or an explicit
    ``generator_config``/``injection_config`` pair — plus ``seed``; the
    planner builds it at most once per sweep) or by an already-built
    *bundle* (content-addressed identity; nothing is ever built). An empty
    ``strategies`` tuple means the paper's five-strategy panel.
    """

    name: str
    config: ExperimentConfig
    strategies: tuple[CleaningStrategy, ...] = ()
    scale: str = "small"
    seed: Seed = 0
    generator_config: Optional[object] = None
    injection_config: Optional[object] = None
    bundle: Optional[object] = None  # PopulationBundle

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("every sweep cell needs a name")
        object.__setattr__(self, "strategies", tuple(self.strategies))


def cell_strategies(cell: SweepCell) -> list[CleaningStrategy]:
    """The cell's strategy panel (the paper's five when unspecified)."""
    from repro.cleaning.registry import paper_strategies

    return list(cell.strategies) if cell.strategies else paper_strategies()


def _recipe_configs(cell: SweepCell) -> tuple[object, object]:
    """The (generator, injection) configs naming a recipe cell's population."""
    from repro.data.glitch_injection import GlitchInjectionConfig
    from repro.experiments.config import SCALES

    if cell.generator_config is not None:
        gen_cfg = cell.generator_config
    else:
        if cell.scale not in SCALES:
            raise ExperimentError(
                f"scale must be one of {sorted(SCALES)}, got {cell.scale!r}"
            )
        gen_cfg = SCALES[cell.scale].generator
    inj_cfg = cell.injection_config or GlitchInjectionConfig()
    return gen_cfg, inj_cfg


@dataclass(frozen=True)
class CellKey:
    """The decomposed catalog identity of one cell.

    ``outcome`` is the cell's :func:`~repro.store.catalog.experiment_key` —
    the string the catalog stores under. The components exist so a diff can
    say *why* a cell moved: population recipe, outcome config, strategy
    panel, or code salt.
    """

    population: str
    config: str
    strategies: str
    salt: str
    outcome: str

    def components(self) -> dict[str, str]:
        """The key as a plain dict (the manifest row of this cell)."""
        return {
            "population": self.population,
            "config": self.config,
            "strategies": self.strategies,
            "salt": self.salt,
            "outcome": self.outcome,
        }


def cell_key(cell: SweepCell) -> CellKey:
    """Compute one cell's catalog identity.

    Raises :class:`~repro.errors.ValidationError` when the cell cannot be
    keyed (a live ``Generator`` population or config seed has no replayable
    identity) — the planner then treats the cell as uncacheable and always
    recomputes it.
    """
    import json

    from repro.store.catalog import (
        code_salt,
        config_token,
        experiment_key,
        population_recipe_key,
        strategies_token,
    )

    if cell.bundle is not None:
        pop_key = cell.bundle.content_key()
    else:
        gen_cfg, inj_cfg = _recipe_configs(cell)
        pop_key = population_recipe_key(gen_cfg, inj_cfg, cell.seed)
    strategies = cell_strategies(cell)
    return CellKey(
        population=pop_key,
        config=json.dumps(config_token(cell.config), sort_keys=True),
        strategies=json.dumps(strategies_token(strategies), sort_keys=True),
        salt=code_salt(),
        outcome=experiment_key(pop_key, cell.config, strategies),
    )


# ---------------------------------------------------------------------------
# Plans and diffs
# ---------------------------------------------------------------------------


@dataclass
class SweepPlan:
    """The keyed DAG of one sweep: cells in order, plus their identities.

    ``keys[name]`` is ``None`` for uncacheable cells. The plan is what the
    planner diffs, serves and records — computing it touches no data and
    builds nothing.
    """

    cells: list[SweepCell]
    keys: dict[str, Optional[CellKey]]

    def manifest(self) -> dict[str, dict[str, str]]:
        """``{cell name -> key components}`` for every keyable cell —
        the JSON-serialisable form recorded in the catalog's ``sweeps``
        table and consumed by :func:`diff_manifests`."""
        return {
            name: key.components()
            for name, key in self.keys.items()
            if key is not None
        }


def plan_sweep(cells: Sequence[SweepCell]) -> SweepPlan:
    """Key every cell of a sweep (no data is touched, nothing is built)."""
    cells = list(cells)
    names = [c.name for c in cells]
    if len(set(names)) != len(names):
        raise ExperimentError(f"duplicate cell names: {names}")
    keys: dict[str, Optional[CellKey]] = {}
    for cell in cells:
        try:
            keys[cell.name] = cell_key(cell)
        except ValidationError:
            keys[cell.name] = None
    return SweepPlan(cells=cells, keys=keys)


@dataclass
class PlanDiff:
    """What changed between two sweep manifests.

    ``changed`` maps a cell name to the key components that moved
    (``population`` / ``config`` / ``strategies`` / ``salt``) — the
    invalidation reason the planner reports for every cell it recomputes.
    """

    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    unchanged: list[str] = field(default_factory=list)
    changed: dict[str, list[str]] = field(default_factory=dict)

    @property
    def invalidated(self) -> list[str]:
        """Cells the previous run had whose keys moved (changed only —
        added cells were never valid to begin with)."""
        return list(self.changed)


def diff_manifests(
    old: Optional[Mapping[str, Mapping[str, str]]],
    new: Mapping[str, Mapping[str, str]],
) -> PlanDiff:
    """Diff two key manifests (see :meth:`SweepPlan.manifest`).

    *old* is typically :meth:`~repro.store.catalog.Catalog.last_sweep`;
    ``None`` (no previous run) reports every cell as added.
    """
    old = dict(old or {})
    diff = PlanDiff()
    for name, components in new.items():
        if name not in old:
            diff.added.append(name)
            continue
        prev = old[name]
        if prev.get("outcome") == components.get("outcome"):
            diff.unchanged.append(name)
            continue
        moved = [
            part
            for part in ("population", "config", "strategies", "salt")
            if prev.get(part) != components.get(part)
        ]
        diff.changed[name] = moved or ["outcome"]
    diff.removed = [name for name in old if name not in new]
    return diff


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class CellResult:
    """One scored cell: its identity, its result, and where it came from.

    ``source`` is ``"catalog"`` (served bitwise-identically from a prior
    run), ``"computed"`` (evaluated this run and stored when a catalog is
    attached), ``"uncacheable"`` (evaluated this run; no replayable key) or
    ``"failed"`` (the cell's evaluation raised after every recovery layer;
    ``result`` is ``None`` and ``error`` carries the provenance — the
    exception type and message). Failed cells are never recorded in the
    catalog, so the next run retries exactly them.
    """

    name: str
    key: Optional[CellKey]
    result: Optional[ExperimentResult]
    source: str
    error: Optional[str] = None


@dataclass
class SweepResult:
    """Every cell of one sweep, with provenance and reuse counters.

    Behaves as a mapping ``{cell name -> ExperimentResult}`` (iteration
    order = cell order), so drivers that historically returned a plain dict
    — :func:`~repro.experiments.paper.run_table1` — return a ``SweepResult``
    without breaking a single consumer. The extra surface is the planner's:
    ``cells`` carries per-cell provenance, ``diff`` the invalidation diff
    against the previous recorded run of the same named sweep, and the
    counters say how much work the plan actually avoided
    (``n_hits``/``n_recomputed``/``n_builds``/``n_groups``) and how much of
    it was lost to failures (``n_failed`` — see :meth:`failed`; the
    completed frontier is always kept). ``source_cells`` retains the
    original :class:`SweepCell` objects by name so :meth:`retry_failed`
    can re-plan exactly the failed frontier.
    """

    cells: list[CellResult] = field(default_factory=list)
    diff: Optional[PlanDiff] = None
    n_hits: int = 0
    n_recomputed: int = 0
    n_uncacheable: int = 0
    n_builds: int = 0
    n_groups: int = 0
    n_failed: int = 0
    source_cells: dict = field(default_factory=dict, repr=False)

    # -- mapping facade ---------------------------------------------------------

    def __iter__(self) -> Iterator[str]:
        return (c.name for c in self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, name: object) -> bool:
        return any(c.name == name for c in self.cells)

    def __getitem__(self, name: str) -> ExperimentResult:
        for c in self.cells:
            if c.name == name:
                if c.result is None:
                    raise ExperimentError(
                        f"sweep cell {name!r} failed: {c.error}"
                    )
                return c.result
        raise KeyError(name)

    def keys(self) -> list[str]:
        """Cell names, in cell order."""
        return [c.name for c in self.cells]

    def values(self) -> list[ExperimentResult]:
        """Cell results, in cell order."""
        return [c.result for c in self.cells]

    def items(self) -> list[tuple[str, ExperimentResult]]:
        """``(name, result)`` pairs, in cell order."""
        return [(c.name, c.result) for c in self.cells]

    def get(self, name: str, default=None):
        """Mapping-style ``get``."""
        for c in self.cells:
            if c.name == name:
                return c.result
        return default

    # -- provenance -------------------------------------------------------------

    def cell(self, name: str) -> CellResult:
        """The full :class:`CellResult` of one cell."""
        for c in self.cells:
            if c.name == name:
                return c
        raise KeyError(name)

    def failed(self) -> dict[str, str]:
        """``{cell name -> error provenance}`` of every failed cell."""
        return {
            c.name: c.error or "unknown error"
            for c in self.cells
            if c.source == "failed"
        }

    def degradations(self) -> dict[str, list[str]]:
        """``{cell name -> backend ladder steps}`` of every degraded cell.

        Aggregated from each cell result's
        :attr:`~repro.core.framework.ExperimentResult.degradations` — runs
        that fell back (process→thread→serial, cluster→local) are visible
        here instead of only in the warning stream.
        """
        events: dict[str, list[str]] = {}
        for c in self.cells:
            if c.result is not None and getattr(c.result, "degradations", []):
                events[c.name] = list(c.result.degradations)
        return events

    @property
    def n_degraded(self) -> int:
        """Total backend ladder steps survived across all cells."""
        return sum(len(steps) for steps in self.degradations().values())

    def retry_failed(self, catalog=None, backend=None, incremental=None) -> "SweepResult":
        """Re-plan and re-run exactly the :meth:`failed` cells.

        Closes the loop the planner opened by never caching failures: the
        failed frontier is re-planned through :func:`run_sweep` (so a
        now-healthy environment serves or recomputes it normally) and the
        retried cells are merged over this result's. Completed cells are
        carried over untouched — never re-evaluated. Returns a new
        :class:`SweepResult`; with nothing failed, returns ``self``.
        """
        failed_names = list(self.failed())
        if not failed_names:
            return self
        missing = [name for name in failed_names if name not in self.source_cells]
        if missing:
            raise ExperimentError(
                f"cannot retry cells {missing!r}: their SweepCell definitions "
                "were not retained (result predates retry support?)"
            )
        retry = run_sweep(
            [self.source_cells[name] for name in failed_names],
            catalog=catalog,
            backend=backend,
            incremental=incremental,
        )
        retried = {c.name: c for c in retry.cells}
        merged = SweepResult(
            diff=self.diff,
            n_builds=self.n_builds + retry.n_builds,
            n_groups=self.n_groups + retry.n_groups,
            source_cells=dict(self.source_cells),
        )
        for c in self.cells:
            cell = retried[c.name] if c.source == "failed" else c
            merged.cells.append(cell)
            if cell.source == "catalog":
                merged.n_hits += 1
            elif cell.source == "failed":
                merged.n_failed += 1
            else:
                merged.n_recomputed += 1
                if cell.source == "uncacheable":
                    merged.n_uncacheable += 1
        return merged

    def served(self) -> list[str]:
        """Names of cells served from the catalog."""
        return [c.name for c in self.cells if c.source == "catalog"]

    def recomputed(self) -> list[str]:
        """Names of cells evaluated this run."""
        return [c.name for c in self.cells if c.source != "catalog"]

    def key_manifest(self) -> dict[str, dict[str, str]]:
        """``{name -> key components}`` of every keyed cell — the shape
        :func:`diff_manifests` consumes, so two ``SweepResult``s (or a
        result and a recorded manifest) are directly diffable."""
        return {
            c.name: c.key.components() for c in self.cells if c.key is not None
        }

    def cost_result(self, strategy_name: str):
        """Reassemble the per-fraction cells of one :func:`cost_cells`
        family into a :class:`~repro.core.cost.CostSweepResult`.

        Collects every outcome whose strategy is ``strategy_name@..%``
        (the :class:`~repro.cleaning.partial.PartialCleaner` labels),
        relabels them with the bare strategy name (the
        :func:`~repro.core.cost.cost_sweep` convention — the sweep
        coordinate lives in ``cost_fraction``), and orders fractions as
        first encountered in cell order.
        """
        from repro.core.cost import CostSweepResult
        from repro.core.evaluation import StrategyOutcome

        prefix = f"{strategy_name}@"
        fractions: list[float] = []
        outcomes: list[StrategyOutcome] = []
        for cell in self.cells:
            if cell.result is None:
                continue
            for o in cell.result.outcomes:
                if o.strategy != strategy_name and not o.strategy.startswith(prefix):
                    continue
                if o.cost_fraction not in fractions:
                    fractions.append(o.cost_fraction)
                outcomes.append(
                    StrategyOutcome(
                        strategy=strategy_name,
                        replication=o.replication,
                        improvement=o.improvement,
                        distortion=o.distortion,
                        glitch_index_dirty=o.glitch_index_dirty,
                        glitch_index_treated=o.glitch_index_treated,
                        dirty_fractions=o.dirty_fractions,
                        treated_fractions=o.treated_fractions,
                        cost_fraction=o.cost_fraction,
                    )
                )
        if not outcomes:
            raise ExperimentError(
                f"no outcomes for strategy {strategy_name!r} in this sweep"
            )
        return CostSweepResult(
            strategy=strategy_name,
            fractions=tuple(fractions),
            outcomes=outcomes,
        )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _group_ident(cell: SweepCell, key: Optional[CellKey]) -> tuple:
    """The population-sharing identity of one cell.

    Keyed cells group by their population component (recipe or content
    key). An unkeyable *config* seed still allows population sharing when
    the population itself is replayable, so retry just that half. A live
    ``Generator`` population seed is consumed by building — sharing one
    build across cells would diverge from per-cell semantics, so each such
    cell is its own group.
    """
    if key is not None:
        return ("pop", key.population)
    if cell.bundle is not None:
        return ("bundle", id(cell.bundle))
    try:
        from repro.store.catalog import population_recipe_key

        gen_cfg, inj_cfg = _recipe_configs(cell)
        return ("pop", population_recipe_key(gen_cfg, inj_cfg, cell.seed))
    except ValidationError:
        return ("cell", cell.name)


def _frame_token(cell: SweepCell) -> Optional[str]:
    """The shared-frame identity of one cell's config, or ``None``.

    Cells of one population group whose outcome configs agree (and whose
    seed is a plain int) are evaluated as one multi-panel pass; execution
    fields (backend, workers, streaming) are rightly excluded — they never
    change an outcome float.
    """
    import json

    from repro.store.catalog import config_token

    if not isinstance(cell.config.seed, int):
        return None
    try:
        return json.dumps(config_token(cell.config), sort_keys=True)
    except ValidationError:  # pragma: no cover - int seeds always tokenise
        return None


def _record_cell(cat, cell: SweepCell, key: CellKey, result, engine: str, wall_s: float) -> None:
    """Store one computed cell (population row + outcome payload)."""
    if cell.bundle is not None:
        cat.record_population(
            key.population,
            "content",
            scale=cell.bundle.scale,
            n_series=len(cell.bundle.population),
        )
    else:
        gen_cfg, inj_cfg = _recipe_configs(cell)
        cat.record_population(
            key.population,
            "recipe",
            scale=cell.scale if cell.generator_config is None else None,
            seed=repr(cell.seed),
            generator=repr(gen_cfg),
            injection=repr(inj_cfg),
        )
    cat.put_outcome(
        key.outcome,
        result,
        population_key=key.population,
        config=cell.config,
        strategies=cell_strategies(cell),
        engine=engine,
        wall_s=wall_s,
    )


def run_sweep(
    cells: Sequence[SweepCell],
    catalog=None,
    backend=None,
    incremental: Optional[bool] = None,
    name: Optional[str] = None,
) -> SweepResult:
    """Execute a sweep incrementally: serve what is valid, batch what is not.

    1. **Plan** — key every cell (:func:`plan_sweep`); when *name* is given
       and a catalog is attached, diff the plan against the last recorded
       manifest of that sweep (the invalidation report in ``result.diff``).
    2. **Serve** — with incremental on (the default; *incremental* argument,
       then ``REPRO_SWEEP_INCREMENTAL``), each keyed cell is looked up in
       the catalog exactly once and served bitwise-identically on a hit.
    3. **Batch** — missing cells are grouped by shared population (built at
       most once per group — ``result.n_builds`` counts), then by shared
       outcome config into frame groups evaluated in one multi-panel pass
       over shared replication pairs
       (:func:`~repro.core.framework.run_pair_panels_stream`). Groups whose
       cells all select the streaming engine share one
       :class:`~repro.core.streaming.StreamingExperiment` (one feed, one
       memoised identification fixed point) and never materialise the
       population. Cells that cannot share (non-int seeds) fall back to
       standalone evaluation.
    4. **Record** — computed cells are stored; when *name* is given the
       plan's manifest is appended to the catalog's ``sweeps`` table for
       the next run's diff.

    *backend* overrides every evaluation's execution backend (a name or an
    :class:`~repro.core.executor.ExecutionBackend`); *catalog* follows
    :func:`~repro.store.catalog.resolve_catalog` (an instance, a path, or
    ``None`` deferring to ``REPRO_CATALOG``).
    """
    from repro.store.catalog import resolve_catalog

    plan = plan_sweep(cells)
    incremental = sweep_incremental_enabled(incremental)
    cat, owned = resolve_catalog(catalog)
    try:
        diff = None
        if cat is not None and name is not None:
            diff = diff_manifests(cat.last_sweep(name), plan.manifest())

        served: dict[str, ExperimentResult] = {}
        if cat is not None and incremental:
            for cell in plan.cells:
                key = plan.keys[cell.name]
                if key is None:
                    continue
                cached = cat.get_outcome(key.outcome)
                if cached is not None:
                    served[cell.name] = cached

        to_compute = [c for c in plan.cells if c.name not in served]
        computed, errors, n_builds, n_groups = _compute_cells(
            to_compute, plan.keys, cat, backend
        )

        result = SweepResult(
            diff=diff,
            n_builds=n_builds,
            n_groups=n_groups,
            source_cells={c.name: c for c in plan.cells},
        )
        for cell in plan.cells:
            key = plan.keys[cell.name]
            if cell.name in served:
                result.cells.append(
                    CellResult(cell.name, key, served[cell.name], "catalog")
                )
                result.n_hits += 1
            elif cell.name in errors:
                result.cells.append(
                    CellResult(cell.name, key, None, "failed", errors[cell.name])
                )
                result.n_failed += 1
            else:
                source = "computed" if key is not None else "uncacheable"
                result.cells.append(
                    CellResult(cell.name, key, computed[cell.name], source)
                )
                result.n_recomputed += 1
                if key is None:
                    result.n_uncacheable += 1
        if cat is not None and name is not None:
            cat.record_sweep(name, plan.manifest())
        return result
    finally:
        if owned and cat is not None:
            cat.close()


def _fail_cells(
    cells: Sequence[SweepCell], exc: BaseException, errors: dict
) -> None:
    """Record a failure for *cells* and keep the sweep going.

    The provenance string (exception type + message) lands in every
    affected cell's :class:`CellResult`; a :class:`ResilienceWarning`
    surfaces the loss immediately. The completed frontier is untouched.
    """
    message = f"{type(exc).__name__}: {exc}"
    names = [c.name for c in cells]
    for name in names:
        errors[name] = message
    warnings.warn(
        f"sweep cell(s) {', '.join(repr(n) for n in names)} failed "
        f"({message}); recording the failure and continuing with the "
        "remaining cells",
        ResilienceWarning,
        stacklevel=3,
    )


def _compute_cells(
    cells: Sequence[SweepCell],
    keys: Mapping[str, Optional[CellKey]],
    cat,
    backend,
) -> tuple[dict[str, ExperimentResult], dict[str, str], int, int]:
    """Evaluate the invalid frontier, shared-population group by group.

    Returns ``({cell name -> result}, {cell name -> error}, n_builds,
    n_groups)`` where ``n_builds`` counts population materialisations and
    ``n_groups`` the evaluation batches actually dispatched. A cell appears
    in exactly one of the two dicts: a failure anywhere in a group's
    evaluation fails that group's still-unscored cells (with provenance)
    and never the already-completed frontier.
    """
    from repro.core.streaming import streaming_enabled

    groups: dict[tuple, list[SweepCell]] = {}
    for cell in cells:
        groups.setdefault(_group_ident(cell, keys.get(cell.name)), []).append(cell)

    results: dict[str, ExperimentResult] = {}
    errors: dict[str, str] = {}
    n_builds = 0
    n_groups = 0
    for members in groups.values():
        bundle = next((c.bundle for c in members if c.bundle is not None), None)
        if (
            bundle is None
            and all(streaming_enabled(c.config) for c in members)
            and all(isinstance(c.config.seed, int) for c in members)
        ):
            n_groups += _run_streaming_group(
                members, keys, cat, backend, results, errors
            )
            continue
        if bundle is None:
            from repro.experiments.config import build_population

            head = members[0]
            gen_cfg, inj_cfg = _recipe_configs(head)
            try:
                bundle = build_population(
                    scale=head.scale if head.generator_config is None else "small",
                    seed=head.seed,
                    generator_config=gen_cfg,
                    injection_config=inj_cfg,
                    backend=backend,
                )
            except Exception as exc:
                _fail_cells(members, exc, errors)
                continue
            n_builds += 1
        n_groups += _run_bundle_group(
            members, keys, cat, backend, bundle, results, errors
        )
    return results, errors, n_builds, n_groups


def _run_bundle_group(
    members: Sequence[SweepCell],
    keys: Mapping[str, Optional[CellKey]],
    cat,
    backend,
    bundle,
    results: dict,
    errors: dict,
) -> int:
    """Evaluate one shared-population group on a materialised bundle.

    Cells are sub-grouped by outcome config (:func:`_frame_token`): each
    frame group runs as one multi-panel pass over shared pairs; cells that
    cannot share fall back to a standalone runner. A failed pass fails only
    its own cells (recorded in *errors*). Returns the number of evaluation
    batches dispatched.
    """
    from repro.core.framework import ExperimentRunner, run_pair_panels_stream
    from repro.sampling.replication import generate_test_pairs

    frames: dict[Optional[str], list[SweepCell]] = {}
    for cell in members:
        frames.setdefault(_frame_token(cell), []).append(cell)

    batches = 0
    for token, group in frames.items():
        if token is None:
            # Standalone fallback: non-int seeds must consume their streams
            # in the exact lazy order of the single-panel loop.
            for cell in group:
                t0 = time.perf_counter()
                try:
                    runner = ExperimentRunner(
                        bundle.dirty, bundle.ideal, config=cell.config,
                        backend=backend,
                    )
                    results[cell.name] = runner.run(cell_strategies(cell))
                except Exception as exc:
                    _fail_cells([cell], exc, errors)
                    continue
                batches += 1
                _maybe_record(
                    cat, cell, keys, results[cell.name], "block",
                    time.perf_counter() - t0,
                )
            continue
        t0 = time.perf_counter()
        rep = group[0].config
        try:
            pairs = list(
                generate_test_pairs(
                    bundle.dirty,
                    bundle.ideal,
                    n_pairs=rep.n_replications,
                    sample_size=rep.sample_size,
                    seed=rep.seed,
                )
            )
            panel_results = run_pair_panels_stream(
                pairs,
                [cell_strategies(cell) for cell in group],
                config=rep,
                backend=backend,
                result_configs=[cell.config for cell in group],
            )
        except Exception as exc:
            _fail_cells(group, exc, errors)
            continue
        batches += 1
        wall = time.perf_counter() - t0
        for cell, res in zip(group, panel_results):
            results[cell.name] = res
            _maybe_record(cat, cell, keys, res, "block", wall)
    return batches


def _run_streaming_group(
    members: Sequence[SweepCell],
    keys: Mapping[str, Optional[CellKey]],
    cat,
    backend,
    results: dict,
    errors: dict,
) -> int:
    """Evaluate one shared-recipe group through a single streaming engine.

    The feed (and its spilled shards) and the identification fixed point
    are shared across every cell; each cell runs its own replication loop
    with its own config. An engine that cannot be constructed fails the
    whole group; a failed cell run fails only that cell (recorded in
    *errors*). Returns the number of engine runs dispatched.
    """
    from repro.core.streaming import StreamingExperiment

    head = members[0]
    try:
        gen_cfg, inj_cfg = _recipe_configs(head)
        engine = StreamingExperiment(
            generator_config=gen_cfg,
            injection_config=inj_cfg,
            seed=head.seed,
            config=head.config,
            backend=backend,
        )
    except Exception as exc:
        _fail_cells(members, exc, errors)
        return 0
    batches = 0
    try:
        for cell in members:
            t0 = time.perf_counter()
            try:
                streamed = engine.run(
                    cell_strategies(cell), cleanup=False, config=cell.config
                )
            except Exception as exc:
                _fail_cells([cell], exc, errors)
                continue
            results[cell.name] = streamed.result
            batches += 1
            _maybe_record(
                cat, cell, keys, streamed.result, "streaming",
                time.perf_counter() - t0,
            )
    finally:
        engine.feed.cleanup()
    return batches


def _maybe_record(cat, cell, keys, result, engine: str, wall_s: float) -> None:
    if cat is None:
        return
    key = keys.get(cell.name)
    if key is None:
        return
    _record_cell(cat, cell, key, result, engine, wall_s)


# ---------------------------------------------------------------------------
# Cell builders for the paper's grids
# ---------------------------------------------------------------------------


def figure6_cells(
    scale: str = "small",
    seed: Seed = 0,
    base_config: Optional[ExperimentConfig] = None,
    bundle=None,
) -> list[SweepCell]:
    """The three Figure 6 panels as sweep cells (one shared population).

    Panel (a) log-transformed, (b) raw scale, (c) five-fold sample size —
    all three share the population recipe, so a cold sweep builds it once.
    """
    from repro.experiments.config import experiment_config

    base = base_config or experiment_config(scale)
    variants = {
        "fig6a: log": base.variant(log_transform=True),
        "fig6b: no log": base.variant(log_transform=False),
        "fig6c: B x5": base.variant(
            log_transform=True, sample_size=5 * base.sample_size
        ),
    }
    return [
        SweepCell(name=label, config=cfg, scale=scale, seed=seed, bundle=bundle)
        for label, cfg in variants.items()
    ]


def table1_cells(
    bundle,
    configs: Mapping[str, ExperimentConfig],
) -> list[SweepCell]:
    """Table 1's named configuration blocks as cells over one bundle."""
    return [
        SweepCell(name=label, config=cfg, scale=bundle.scale, bundle=bundle)
        for label, cfg in configs.items()
    ]


def cost_cells(
    strategy: Union[str, CleaningStrategy],
    fractions: Sequence[float],
    config: ExperimentConfig,
    scale: str = "small",
    seed: Seed = 0,
    bundle=None,
) -> list[SweepCell]:
    """A cost sweep as per-fraction cells — one panel per fraction.

    Unlike :func:`~repro.core.cost.cost_sweep` (which scores all fractions
    as **one** strategy panel, sharing one distortion grid), each fraction
    here is its own cell with its own single-strategy panel: a later edit
    to one fraction invalidates only that cell, and every other fraction is
    served from the catalog. The per-fraction numbers differ from the
    one-panel sweep within EMD's binning-insensitivity envelope (the shared
    grid spans a different pooled union) — a sweep is internally consistent
    but the two sweep layouts are distinct experiments. Reassemble with
    :meth:`SweepResult.cost_result`.
    """
    from repro.cleaning.partial import PartialCleaner
    from repro.cleaning.registry import strategy_by_name

    if isinstance(strategy, str):
        strategy = strategy_by_name(strategy)
    fractions = tuple(fractions)
    if len(set(fractions)) != len(fractions):
        raise ExperimentError(f"duplicate fractions: {fractions}")
    return [
        SweepCell(
            name=f"cost: {strategy.name}@{int(round(f * 100))}%",
            config=config,
            strategies=(PartialCleaner(strategy, fraction=f),),
            scale=scale,
            seed=seed,
            bundle=bundle,
        )
        for f in fractions
    ]
