"""Canonical configurations and drivers for every experiment in the paper."""

from repro.experiments.config import (
    SCALES,
    PopulationBundle,
    backend_from_env,
    build_population,
    experiment_config,
    scale_from_env,
)
from repro.experiments.paper import (
    ScatterData,
    collect_treatment_scatter,
    figure3_counts,
    figure4_stats,
    figure5_stats,
    run_experiment,
    run_figure6,
    run_figure7,
    run_table1,
)
from repro.experiments.report import (
    render_cost_summary,
    render_counts_series,
    render_strategy_summaries,
    render_table1,
)

__all__ = [
    "SCALES",
    "PopulationBundle",
    "build_population",
    "experiment_config",
    "scale_from_env",
    "backend_from_env",
    "figure3_counts",
    "figure4_stats",
    "figure5_stats",
    "run_experiment",
    "run_figure6",
    "run_figure7",
    "run_table1",
    "ScatterData",
    "collect_treatment_scatter",
    "render_table1",
    "render_strategy_summaries",
    "render_cost_summary",
    "render_counts_series",
]
