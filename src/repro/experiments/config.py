"""Experiment scale presets and population construction.

The paper's population is 20,000 sector streams of length <= 170 with three
attributes; its experiments run R = 50 replications of B in {100, 500} series
(Section 4). Full scale is minutes of compute, so three presets are provided
and selected by the ``REPRO_SCALE`` environment variable:

======  ==================  =======================  =====================
scale   population           replications R           sample size B
======  ==================  =======================  =====================
tiny    100 series x 60     3                        12
small   600 series x 170    10                       40
paper   20,000 series x 170 50                       100 (500 for panel c)
======  ==================  =======================  =====================

"tiny" keeps unit tests fast; "small" is the benchmark default and already
shows every qualitative result; "paper" is the faithful reproduction.

Independently of the scale, the ``REPRO_BACKEND`` environment variable (or
the ``backend`` argument of :func:`experiment_config`) selects the execution
backend that fans the replication pairs out — ``serial``, ``thread`` or
``process``, optionally with a worker count as in ``process:4``. Backends
change only the wall clock, never the numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.core.executor import parse_backend_spec
from repro.core.framework import ExperimentConfig
from repro.core.pipeline import Pipeline
from repro.data.dataset import StreamDataset
from repro.data.generator import GeneratorConfig, NetworkDataGenerator
from repro.data.glitch_injection import (
    GlitchInjectionConfig,
    GlitchInjector,
    InjectionResult,
)
from repro.errors import ExperimentError
from repro.glitches.detectors import (
    CleanlinessPartition,
    DetectorSuite,
    identify_ideal,
)
from repro.utils.rng import Seed, as_generator, spawn_sequences

__all__ = [
    "SCALES",
    "scale_from_env",
    "backend_from_env",
    "PopulationBundle",
    "build_population",
    "experiment_config",
]


@dataclass(frozen=True)
class _ScalePreset:
    generator: GeneratorConfig
    n_replications: int
    sample_size: int


SCALES: dict[str, _ScalePreset] = {
    "tiny": _ScalePreset(
        generator=GeneratorConfig(
            n_rnc=2, towers_per_rnc=5, sectors_per_tower=10,
            series_length=60, min_length=60,
        ),
        n_replications=3,
        sample_size=12,
    ),
    "small": _ScalePreset(
        generator=GeneratorConfig(),  # 600 series x 170
        n_replications=10,
        sample_size=40,
    ),
    "paper": _ScalePreset(
        generator=GeneratorConfig(
            n_rnc=20, towers_per_rnc=50, sectors_per_tower=20,
            series_length=170, min_length=170,
        ),
        n_replications=50,
        sample_size=100,
    ),
}


def scale_from_env(default: str = "small") -> str:
    """Resolve the experiment scale from ``REPRO_SCALE`` (tiny/small/paper)."""
    scale = os.environ.get("REPRO_SCALE", default).strip().lower()
    if scale not in SCALES:
        raise ExperimentError(
            f"REPRO_SCALE must be one of {sorted(SCALES)}, got {scale!r}"
        )
    return scale


def backend_from_env(default: Optional[str] = None) -> Optional[str]:
    """Resolve the execution-backend spec from ``REPRO_BACKEND``.

    Returns a validated, normalised (lowercased, stripped) ``"name"`` /
    ``"name:workers"`` spec, or *default* — validated and normalised the
    same way; ``None`` is allowed and makes the runner fall back to serial —
    when the variable is unset or blank. Unknown names raise
    :class:`~repro.errors.ExperimentError` here rather than deep inside a
    run.
    """
    spec = os.environ.get("REPRO_BACKEND", "").strip()
    if not spec:
        if default is None:
            return None
        spec = default
    parse_backend_spec(spec)
    return spec.strip().lower()


@dataclass
class PopulationBundle:
    """Everything the experiment drivers need about one generated population."""

    #: The pre-glitch population (truth).
    clean: StreamDataset
    #: The population after glitch injection.
    population: StreamDataset
    #: Injection ledger (what was actually planted).
    injection: InjectionResult
    #: Dirty/ideal split by the < 5% rule.
    partition: CleanlinessPartition
    #: Detector suite fitted on the final ideal set (raw scale).
    suite: DetectorSuite
    #: The scale preset name this bundle was built with.
    scale: str

    @property
    def dirty(self) -> StreamDataset:
        """The dirty population ``D``."""
        return self.partition.dirty

    @property
    def ideal(self) -> StreamDataset:
        """The ideal population ``DI``."""
        return self.partition.ideal

    def fingerprint(self) -> dict:
        """The bundle reduced to comparable primitives.

        Covers everything the sharded build's determinism contract pins —
        population and clean values, the full injection ledger, the
        dirty/ideal split, and the fitted detector limits. Two bundles are
        bitwise-identical builds iff their fingerprints compare equal; the
        cross-backend tests and benchmarks share this definition so the
        contract is stated once.
        """
        limits = self.suite.outlier_detector.limits
        return {
            "values": [s.values.tobytes() for s in self.population],
            "clean": [s.values.tobytes() for s in self.clean],
            "glitchy": [r.glitchy for r in self.injection.records],
            "missing": [r.missing_mask.tobytes() for r in self.injection.records],
            "corruption": [
                r.corruption_mask.tobytes() for r in self.injection.records
            ],
            "anomaly": [r.anomaly_mask.tobytes() for r in self.injection.records],
            "ideal_indices": self.partition.ideal_indices,
            "dirty_indices": self.partition.dirty_indices,
            "limits": {a: limits.bounds(a) for a in limits.attributes},
        }

    def content_key(self) -> str:
        """Content-addressed identity of the bundle, for the experiment
        catalog (:mod:`repro.store.catalog`).

        A SHA-256 over :meth:`fingerprint` — the bitwise-comparable
        reduction of everything the determinism contract pins — so two
        bundles share a key iff they are bitwise-identical builds, however
        they were produced (any backend, shard layout or engine).
        """
        import hashlib

        fp = self.fingerprint()
        h = hashlib.sha256()
        for name in sorted(fp):
            h.update(name.encode())
            h.update(b"\x00")
            h.update(repr(fp[name]).encode())
            h.update(b"\x00")
        return "content:" + h.hexdigest()


def build_population(
    scale: str = "small",
    seed: Seed = 0,
    generator_config: Optional[GeneratorConfig] = None,
    injection_config: Optional[GlitchInjectionConfig] = None,
    backend: Optional[object] = None,
    n_workers: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> PopulationBundle:
    """Generate, glitch, and partition one population — a staged pipeline.

    The three stages (generate -> inject -> identify_ideal) run shard-parallel
    over one :class:`~repro.core.pipeline.Pipeline`: ``backend`` accepts a
    name (``"serial"``/``"thread"``/``"process:4"``), an
    :class:`~repro.core.executor.ExecutionBackend` instance, or ``None`` to
    defer to the ``REPRO_BACKEND`` environment variable — the same knob the
    experiment runner honours. Every per-series random stream is pre-spawned
    from *seed* by index, so the bundle (values, injection ledger, dirty/ideal
    indices, fitted limits) is bitwise identical on every backend and shard
    layout; backends change only the wall clock.

    The dirty/ideal split uses raw-scale outlier limits (the split is a
    property of the data, not of the per-experiment analysis transform);
    per-replication limits are re-derived from each ideal sample by the
    framework.
    """
    if scale not in SCALES:
        raise ExperimentError(f"scale must be one of {sorted(SCALES)}, got {scale!r}")
    pipeline = Pipeline.coerce(backend, n_workers=n_workers, shard_size=shard_size)
    # One stream per stage, spawned from the root seed; each stage re-spawns
    # per-series child streams by index, keeping the build layout-invariant.
    gen_seq, inject_seq = spawn_sequences(as_generator(seed), 2)
    gen_cfg = generator_config or SCALES[scale].generator
    clean = NetworkDataGenerator(gen_cfg, seed=gen_seq).generate(backend=pipeline)
    injector = GlitchInjector(
        injection_config or GlitchInjectionConfig(), seed=inject_seq
    )
    injection = injector.inject(clean, backend=pipeline)
    partition, suite = identify_ideal(injection.dataset, backend=pipeline)
    return PopulationBundle(
        clean=clean,
        population=injection.dataset,
        injection=injection,
        partition=partition,
        suite=suite,
        scale=scale,
    )


def experiment_config(
    scale: str = "small",
    log_transform: bool = True,
    sample_size: Optional[int] = None,
    seed: Seed = 0,
    backend: Optional[str] = None,
    n_workers: Optional[int] = None,
    distance: Optional[str] = None,
) -> ExperimentConfig:
    """The :class:`ExperimentConfig` matching a scale preset.

    ``sample_size`` overrides the preset (the paper's Figure 6c uses B = 500
    at otherwise-paper scale). ``backend`` names the execution backend; when
    ``None`` the ``REPRO_BACKEND`` environment variable still applies at run
    time. ``distance`` names the distortion distance by registered
    identifier (``"emd"``/``"kl"``/``"js"``/``"ks"``/...); ``None`` keeps
    the paper's EMD.
    """
    if scale not in SCALES:
        raise ExperimentError(f"scale must be one of {sorted(SCALES)}, got {scale!r}")
    preset = SCALES[scale]
    return ExperimentConfig(
        n_replications=preset.n_replications,
        sample_size=sample_size or preset.sample_size,
        log_transform=log_transform,
        seed=seed,
        backend=backend,
        n_workers=n_workers,
        distance=distance,
    )
