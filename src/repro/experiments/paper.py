"""Drivers regenerating every figure and table of the paper's evaluation.

Each function maps one paper artifact to library calls:

* :func:`figure3_counts` — glitch counts over time, aggregated over runs.
* :func:`collect_treatment_scatter` / :func:`figure4_stats` /
  :func:`figure5_stats` — before/after scatter data for Attribute 1
  (Strategy 1, with/without log) and Attribute 3 (Strategies 1-2).
* :func:`run_figure6` — the distortion vs improvement scatter for the five
  strategies.
* :func:`run_figure7` — the cost sweep of Strategy 1.
* :func:`run_table1` — glitch percentages before/after per strategy and
  configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cleaning.base import CleaningContext, CleaningStrategy
from repro.cleaning.registry import paper_strategies, strategy_by_name
from repro.core.cost import PAPER_COST_FRACTIONS, CostSweepResult, cost_sweep
from repro.core.framework import ExperimentConfig, ExperimentResult, ExperimentRunner
from repro.errors import ExperimentError, ValidationError
from repro.experiments.config import PopulationBundle, experiment_config
from repro.glitches.detectors import DetectorSuite
from repro.glitches.outliers import SigmaOutlierDetector
from repro.glitches.patterns import counts_over_time
from repro.glitches.types import DatasetGlitches
from repro.sampling.replication import generate_test_pairs
from repro.utils.rng import Seed, spawn_generators

__all__ = [
    "figure3_counts",
    "ScatterData",
    "collect_treatment_scatter",
    "figure4_stats",
    "figure5_stats",
    "run_experiment",
    "run_figure6",
    "run_figure7",
    "run_table1",
]


#: ``run_experiment`` keyword arguments that are pure execution choices —
#: they never change an outcome float, so a catalog hit stays valid under
#: any combination of them. Anything else (custom configs, identification
#: parameters) bypasses the catalog rather than risk a wrong key.
_EXECUTION_ONLY_KWARGS = frozenset(
    {"shard_size", "spill", "spill_dir", "disk_budget", "sketch_k", "n_workers"}
)


def run_experiment(
    scale: str = "small",
    seed: Seed = 0,
    config: Optional[ExperimentConfig] = None,
    strategies: Optional[Sequence[CleaningStrategy]] = None,
    backend=None,
    distance=None,
    catalog=None,
    **streaming_kwargs,
) -> ExperimentResult:
    """The Figure-6 experiment at a named scale, through either engine.

    The ``REPRO_STREAM`` environment variable / ``config.streaming`` field
    selects the path: the default materialises the population
    (:func:`~repro.experiments.config.build_population` +
    :func:`run_figure6`), while the streaming choice runs the out-of-core
    slab engine (:class:`~repro.core.streaming.StreamingExperiment`) with
    peak memory bounded by the shard size instead of the population. The
    two paths return bitwise-identical outcomes; extra keyword arguments
    (``shard_size=``, ``spill_dir=``, ``disk_budget=``, ``sketch_k=``, ...)
    reach the streaming engine only. *distance* — an instance, or the
    config's ``distance`` name selector — is honoured identically by both
    engines.

    *catalog* — a :class:`~repro.store.catalog.Catalog`, a path, or ``None``
    to defer to ``REPRO_CATALOG`` — enables cross-run reuse: a cell whose
    ``(population recipe, seed, config, distance, strategies)`` key is
    already scored is served back bitwise-identically **without building the
    population at all**, and a computed cell is stored for the next run.
    Because catalog keys cover only outcome-determining inputs, a hit is
    valid for either engine, any backend and any shard layout. An explicit
    *distance* instance that equals its registry default (per
    :func:`~repro.store.catalog.distance_key_name`) is keyed by the registry
    name — the same cell as the equivalent name selector; only genuinely
    customised instances bypass the catalog.
    """
    from repro.core.streaming import run_streaming_experiment, streaming_enabled
    from repro.experiments.config import SCALES, build_population, experiment_config
    from repro.store.catalog import (
        distance_key_name,
        experiment_key,
        population_recipe_key,
        resolve_catalog,
    )

    config = config or experiment_config(scale)
    strategy_list = list(strategies) if strategies else paper_strategies()
    cat, owned = resolve_catalog(catalog)
    try:
        key = pop_key = None
        dist_name = distance_key_name(distance) if distance is not None else None
        if (
            cat is not None
            and (distance is None or dist_name is not None)
            and set(streaming_kwargs) <= _EXECUTION_ONLY_KWARGS
        ):
            from repro.data.glitch_injection import GlitchInjectionConfig

            gen_cfg = SCALES[scale].generator
            inj_cfg = GlitchInjectionConfig()
            try:
                pop_key = population_recipe_key(gen_cfg, inj_cfg, seed)
                key = experiment_key(
                    pop_key, config, strategy_list, distance_name=dist_name
                )
            except ValidationError:
                key = pop_key = None  # non-replayable seed: compute as usual
            if key is not None:
                cached = cat.get_outcome(key)
                if cached is not None:
                    return cached
        t0 = time.perf_counter()
        if streaming_enabled(config):
            engine = "streaming"
            result = run_streaming_experiment(
                scale,
                seed=seed,
                config=config,
                strategies=strategy_list,
                distance=distance,
                backend=backend,
                **streaming_kwargs,
            ).result
        else:
            if streaming_kwargs:
                raise ExperimentError(
                    f"streaming-only arguments {sorted(streaming_kwargs)} given, "
                    "but the streaming engine is not selected"
                )
            engine = "block"
            bundle = build_population(scale=scale, seed=seed, backend=backend)
            result = run_figure6(
                bundle, config=config, strategies=strategy_list, backend=backend,
                distance=distance,
            )
        if key is not None:
            gen_cfg = SCALES[scale].generator
            cat.record_population(
                pop_key,
                "recipe",
                scale=scale,
                seed=repr(seed),
                generator=repr(gen_cfg),
                injection=repr(inj_cfg),
                n_series=gen_cfg.n_rnc
                * gen_cfg.towers_per_rnc
                * gen_cfg.sectors_per_tower,
            )
            cat.put_outcome(
                key,
                result,
                population_key=pop_key,
                config=config,
                strategies=strategy_list,
                engine=engine,
                wall_s=time.perf_counter() - t0,
                distance_name=dist_name,
            )
        return result
    finally:
        if owned and cat is not None:
            cat.close()


# ---------------------------------------------------------------------------
# Figure 3 — glitch counts over time
# ---------------------------------------------------------------------------


def figure3_counts(
    bundle: PopulationBundle,
    n_replications: int = 50,
    sample_size: int = 100,
    seed: Seed = 0,
) -> np.ndarray:
    """``(T, m)`` glitch counts at each time step, pooled over all runs.

    Figure 3 aggregates 50 runs of 100 sampled series ("roughly 5000 data
    points at any given time"); the same aggregation is reproduced on the
    bundle's dirty population with its fitted detector suite.
    """
    matrices = []
    pairs = generate_test_pairs(
        bundle.dirty, bundle.ideal, n_replications, sample_size, seed=seed
    )
    for pair in pairs:
        matrices.extend(bundle.suite.annotate(s) for s in pair.dirty)
    return counts_over_time(DatasetGlitches(matrices))


# ---------------------------------------------------------------------------
# Figures 4 and 5 — before/after scatter of one attribute
# ---------------------------------------------------------------------------


@dataclass
class ScatterData:
    """Before/after cell values of one attribute, pooled over replications.

    The categories mirror the paper's glyphs: ``imputed`` cells were missing
    or inconsistent (grey points — ``before`` is NaN for originally-missing
    cells), ``repaired`` cells were changed by outlier repair (the horizontal
    Winsorization bands), ``untouched`` cells lie on the ``y = x`` line.
    """

    attribute: str
    strategy: str
    imputed_before: np.ndarray = field(default_factory=lambda: np.empty(0))
    imputed_after: np.ndarray = field(default_factory=lambda: np.empty(0))
    repaired_before: np.ndarray = field(default_factory=lambda: np.empty(0))
    repaired_after: np.ndarray = field(default_factory=lambda: np.empty(0))
    untouched: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def n_imputed(self) -> int:
        """Number of imputed cells."""
        return int(self.imputed_after.size)

    @property
    def n_repaired(self) -> int:
        """Number of outlier-repaired cells."""
        return int(self.repaired_after.size)


def collect_treatment_scatter(
    bundle: PopulationBundle,
    strategy: CleaningStrategy,
    attribute: str,
    config: Optional[ExperimentConfig] = None,
) -> ScatterData:
    """Pool before/after values of *attribute* across replications.

    Reproduces the data behind Figures 4 and 5 for any strategy. Values are
    reported on the experiment's analysis scale (log-attr1 when the config
    enables the transform), matching the paper's plot axes.
    """
    config = config or ExperimentConfig()
    transform = config.transform
    imputed_b: list[np.ndarray] = []
    imputed_a: list[np.ndarray] = []
    repaired_b: list[np.ndarray] = []
    repaired_a: list[np.ndarray] = []
    untouched: list[np.ndarray] = []
    pairs = generate_test_pairs(
        bundle.dirty, bundle.ideal, config.n_replications, config.sample_size,
        seed=config.seed,
    )
    seeds = spawn_generators(
        config.seed if not isinstance(config.seed, int) else config.seed + 1,
        config.n_replications,
    )
    for pair, rng in zip(pairs, seeds):
        context = CleaningContext(
            ideal=pair.ideal,
            transform=transform,
            sigma_k=config.sigma_k,
            seed=rng,
        )
        treated = strategy.clean(pair.dirty, context)
        for before_s, after_s in zip(pair.dirty, treated):
            j = before_s.attribute_index(attribute)
            mask = context.treatable_mask(before_s)[:, j]
            before = context.to_analysis(before_s.values, before_s.attributes)[:, j]
            after = context.to_analysis(after_s.values, after_s.attributes)[:, j]
            with np.errstate(invalid="ignore"):
                changed = (
                    ~mask
                    & ~(np.isnan(before) & np.isnan(after))
                    & (np.nan_to_num(before) != np.nan_to_num(after))
                )
            same = ~mask & ~changed & ~np.isnan(before)
            imputed_b.append(before[mask])
            imputed_a.append(after[mask])
            repaired_b.append(before[changed])
            repaired_a.append(after[changed])
            untouched.append(before[same])
    return ScatterData(
        attribute=attribute,
        strategy=strategy.name,
        imputed_before=np.concatenate(imputed_b) if imputed_b else np.empty(0),
        imputed_after=np.concatenate(imputed_a) if imputed_a else np.empty(0),
        repaired_before=np.concatenate(repaired_b) if repaired_b else np.empty(0),
        repaired_after=np.concatenate(repaired_a) if repaired_a else np.empty(0),
        untouched=np.concatenate(untouched) if untouched else np.empty(0),
    )


def figure4_stats(
    bundle: PopulationBundle,
    log_transform: bool,
    config: Optional[ExperimentConfig] = None,
) -> dict[str, float]:
    """Summary statistics of the Figure 4 scatter (Attribute 1, Strategy 1).

    Keys:

    * ``frac_imputed_negative`` — share of imputed raw-scale values below 0
      (the new inconsistencies of Figure 4a; structurally 0 with the log).
    * ``frac_repaired_upper`` / ``frac_repaired_lower`` — which tail
      Winsorization clipped (upper without the log, lower with it).
    * ``n_imputed``, ``n_repaired`` — category sizes.
    """
    config = (config or ExperimentConfig()).variant(log_transform=log_transform)
    scatter = collect_treatment_scatter(
        bundle, strategy_by_name("strategy1"), "attr1", config
    )
    after = scatter.imputed_after
    if log_transform:
        # Analysis scale is log(attr1): imputed raw values are exp(.) > 0.
        frac_negative = 0.0
    else:
        frac_negative = float((after < 0).mean()) if after.size else 0.0
    rep_b, rep_a = scatter.repaired_before, scatter.repaired_after
    upper = int(((rep_a < rep_b)).sum())
    lower = int(((rep_a > rep_b)).sum())
    n_rep = max(rep_a.size, 1)
    return {
        "n_imputed": float(scatter.n_imputed),
        "n_repaired": float(scatter.n_repaired),
        "frac_imputed_negative": frac_negative,
        "frac_repaired_upper": upper / n_rep,
        "frac_repaired_lower": lower / n_rep,
    }


def figure5_stats(
    bundle: PopulationBundle,
    strategy_name: str,
    config: Optional[ExperimentConfig] = None,
) -> dict[str, float]:
    """Summary statistics of the Figure 5 scatter (Attribute 3).

    Keys: ``frac_imputed_above_one`` (the new constraint-2 violations the
    imputer plants), ``max_imputed``, ``n_imputed``, ``n_repaired``.
    """
    config = config or ExperimentConfig()
    scatter = collect_treatment_scatter(
        bundle, strategy_by_name(strategy_name), "attr3", config
    )
    after = scatter.imputed_after
    return {
        "n_imputed": float(scatter.n_imputed),
        "n_repaired": float(scatter.n_repaired),
        "frac_imputed_above_one": float((after > 1).mean()) if after.size else 0.0,
        "max_imputed": float(after.max()) if after.size else float("nan"),
    }


# ---------------------------------------------------------------------------
# Figure 6 — distortion vs improvement for the five strategies
# ---------------------------------------------------------------------------


def run_figure6(
    bundle: PopulationBundle,
    config: Optional[ExperimentConfig] = None,
    strategies: Optional[Sequence[CleaningStrategy]] = None,
    backend=None,
    distance=None,
    catalog=None,
) -> ExperimentResult:
    """Evaluate the five paper strategies on one configuration.

    Panel (a) is the default config with the log transform; pass
    ``config.variant(log_transform=False)`` for panel (b) and
    ``config.variant(sample_size=500)`` for panel (c). ``backend`` (a name
    or :class:`~repro.core.executor.ExecutionBackend`) overrides the
    config's execution backend; replications fan out across it with
    identical results on any choice. ``distance`` (an instance) overrides
    the config's ``distance`` selector, EMD by default.

    *catalog* (a :class:`~repro.store.catalog.Catalog`, a path, or ``None``
    deferring to ``REPRO_CATALOG``) keys the cell by the bundle's
    **content** identity (:meth:`PopulationBundle.content_key`) plus the
    config and strategy panel: a sweep cell already scored against a
    bitwise-identical bundle is served from the catalog instead of
    recomputed, and computed cells are stored. An explicit *distance*
    instance equal to its registry default is keyed by the registry name
    (:func:`~repro.store.catalog.distance_key_name`); only customised
    instances bypass the catalog.
    """
    from repro.store.catalog import (
        distance_key_name,
        experiment_key,
        resolve_catalog,
    )

    strategy_list = list(strategies) if strategies else paper_strategies()
    cat, owned = resolve_catalog(catalog)
    try:
        key = pop_key = None
        dist_name = distance_key_name(distance) if distance is not None else None
        if cat is not None and (distance is None or dist_name is not None):
            cfg = config or ExperimentConfig()
            try:
                pop_key = bundle.content_key()
                key = experiment_key(
                    pop_key, cfg, strategy_list, distance_name=dist_name
                )
            except ValidationError:
                key = pop_key = None  # non-replayable config seed
            if key is not None:
                cached = cat.get_outcome(key)
                if cached is not None:
                    return cached
        t0 = time.perf_counter()
        runner = ExperimentRunner(
            bundle.dirty, bundle.ideal, config=config, backend=backend,
            distance=distance,
        )
        result = runner.run(strategy_list)
        if key is not None:
            cat.record_population(
                pop_key,
                "content",
                scale=bundle.scale,
                n_series=len(bundle.population),
            )
            cat.put_outcome(
                key,
                result,
                population_key=pop_key,
                config=cfg,
                strategies=strategy_list,
                engine="block",
                wall_s=time.perf_counter() - t0,
                distance_name=dist_name,
            )
        return result
    finally:
        if owned and cat is not None:
            cat.close()


# ---------------------------------------------------------------------------
# Figure 7 — cost sweep of Strategy 1
# ---------------------------------------------------------------------------


def run_figure7(
    bundle: PopulationBundle,
    config: Optional[ExperimentConfig] = None,
    fractions: Sequence[float] = PAPER_COST_FRACTIONS,
    backend=None,
) -> CostSweepResult:
    """Sweep Strategy 1 over cleaning fractions (100/50/20/0% in the paper)."""
    runner = ExperimentRunner(
        bundle.dirty, bundle.ideal, config=config, backend=backend
    )
    return cost_sweep(runner, strategy_by_name("strategy1"), fractions)


# ---------------------------------------------------------------------------
# Table 1 — glitch percentages before/after cleaning
# ---------------------------------------------------------------------------


def run_table1(
    bundle: PopulationBundle,
    configs: Optional[dict[str, ExperimentConfig]] = None,
    backend=None,
    base_config: Optional[ExperimentConfig] = None,
    catalog=None,
):
    """Run the five strategies under each named configuration.

    The paper's three blocks are ``n=100, log(attribute 1)``, ``n=500,
    log(attribute 1)`` and ``n=100, no log``. When *configs* is ``None``
    they are derived from *base_config* — pass it for a bundle built with a
    custom generator or replication setup, otherwise the blocks are rebuilt
    from the ``bundle.scale`` preset and any customisation would silently
    revert. Render with :func:`repro.experiments.report.render_table1`.

    The blocks run as one incremental sweep
    (:func:`~repro.experiments.sweep.run_sweep`): with a *catalog*,
    already-scored blocks are served bitwise-identically and only the
    invalid ones recompute. Returns a
    :class:`~repro.experiments.sweep.SweepResult` — a mapping
    ``{label -> ExperimentResult}`` exactly like the dict this driver used
    to return, plus per-cell provenance and hit/recompute counters.
    """
    from repro.experiments.sweep import run_sweep, table1_cells

    if configs is None:
        base = base_config or experiment_config(bundle.scale, log_transform=True)
        configs = {
            f"n={base.sample_size}, log(attr1)": base.variant(log_transform=True),
            f"n={5 * base.sample_size}, log(attr1)": base.variant(
                log_transform=True, sample_size=5 * base.sample_size
            ),
            f"n={base.sample_size}, no log": base.variant(log_transform=False),
        }
    return run_sweep(
        table1_cells(bundle, configs),
        catalog=catalog,
        backend=backend,
        name="table1",
    )
