"""Plain-text rendering of the paper's tables and figure summaries.

The library is plotting-free (no matplotlib offline), so every figure is
reported as the numbers behind it: per-strategy means and standard
deviations for the scatter plots, count series for Figure 3, and the Table 1
percentage grid.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.cleaning.registry import STRATEGY_LABELS
from repro.core.cost import CostSweepResult
from repro.core.evaluation import StrategySummary, glitch_fraction_table
from repro.core.framework import ExperimentResult
from repro.glitches.types import GlitchType

__all__ = [
    "render_table1",
    "render_strategy_summaries",
    "render_cost_summary",
    "render_counts_series",
]


def _fmt(value: float, width: int = 9) -> str:
    return f"{value:{width}.4f}"


def render_table1(results: Mapping[str, ExperimentResult]) -> str:
    """Render the Table 1 grid: % glitches dirty vs treated per strategy.

    *results* maps configuration labels (e.g. ``"n=100, log(attr1)"``) to
    experiment results, as produced by
    :func:`repro.experiments.paper.run_table1`.
    """
    header = (
        f"{'Configuration':<24} {'Strategy':<11} "
        f"{'Miss.Dirty':>10} {'Inc.Dirty':>10} {'Out.Dirty':>10} "
        f"{'Miss.Treat':>10} {'Inc.Treat':>10} {'Out.Treat':>10}"
    )
    lines = [header, "-" * len(header)]
    for label, result in results.items():
        table = glitch_fraction_table(result.outcomes)
        for strategy in result.strategies:
            row = table[strategy]
            lines.append(
                f"{label:<24} {strategy:<11} "
                f"{_fmt(row['missing_dirty'])} {_fmt(row['inconsistent_dirty'])} "
                f"{_fmt(row['outlier_dirty'])} "
                f"{_fmt(row['missing_treated'])} {_fmt(row['inconsistent_treated'])} "
                f"{_fmt(row['outlier_treated'])}"
            )
        lines.append("-" * len(header))
    return "\n".join(lines)


def render_strategy_summaries(
    summaries: Sequence[StrategySummary], title: str = ""
) -> str:
    """Per-strategy improvement/distortion means — the Figure 6 clusters."""
    header = (
        f"{'Strategy':<14} {'Label':<32} "
        f"{'Improv.mean':>11} {'Improv.sd':>10} {'EMD.mean':>9} {'EMD.sd':>8}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, "-" * len(header)])
    for s in summaries:
        label = STRATEGY_LABELS.get(s.strategy, "")
        lines.append(
            f"{s.strategy:<14} {label:<32} "
            f"{s.improvement_mean:>11.3f} {s.improvement_std:>10.3f} "
            f"{s.distortion_mean:>9.3f} {s.distortion_std:>8.3f}"
        )
    return "\n".join(lines)


def render_cost_summary(sweep: CostSweepResult, title: str = "") -> str:
    """Per-fraction improvement/distortion — the Figure 7 clusters."""
    header = (
        f"{'% cleaned':>9} {'Improv.mean':>11} {'Improv.sd':>10} "
        f"{'EMD.mean':>9} {'EMD.sd':>8}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, "-" * len(header)])
    for s in sorted(sweep.summaries(), key=lambda s: -s.cost_fraction):
        lines.append(
            f"{100 * s.cost_fraction:>8.0f}% {s.improvement_mean:>11.3f} "
            f"{s.improvement_std:>10.3f} {s.distortion_mean:>9.3f} "
            f"{s.distortion_std:>8.3f}"
        )
    return "\n".join(lines)


def render_counts_series(
    counts: np.ndarray, stride: int = 10, title: str = ""
) -> str:
    """Render the Figure 3 glitch-count series, sampled every *stride* steps."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'t':>5} " + " ".join(f"{g.label:>12}" for g in GlitchType)
    lines.extend([header, "-" * len(header)])
    for t in range(0, counts.shape[0], stride):
        row = " ".join(f"{int(counts[t, int(g)]):>12d}" for g in GlitchType)
        lines.append(f"{t:>5} {row}")
    totals = " ".join(f"{int(counts[:, int(g)].sum()):>12d}" for g in GlitchType)
    lines.append("-" * len(header))
    lines.append(f"{'sum':>5} {totals}")
    return "\n".join(lines)
