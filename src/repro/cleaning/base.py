"""Strategy protocol, cleaning context, and composition.

The paper's strategies (Section 5.1) pair a treatment for missing and
inconsistent values with a treatment for outliers:

========  ==============================  =========================
Strategy  missing + inconsistent          outliers
========  ==============================  =========================
S1        MVN multiple imputation (MI)    Winsorization
S2        MVN multiple imputation (MI)    ignored
S3        ignored                         Winsorization
S4        ideal-mean replacement          ignored
S5        ideal-mean replacement          Winsorization
========  ==============================  =========================

:class:`CompositeStrategy` realises that table. Outlier repair runs *first*
on the dirty values (the paper's Figure 4 shows imputed values that escaped
Winsorization, so imputation cannot precede it), then the
missing/inconsistent treatment fills the gaps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Optional, TypeVar

import numpy as np

from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.errors import CleaningError
from repro.glitches.constraints import ConstraintSet, paper_constraints
from repro.glitches.detectors import ScaleTransform
from repro.glitches.outliers import SigmaLimits
from repro.utils.rng import Seed, as_generator

_T = TypeVar("_T")

__all__ = [
    "CleaningContext",
    "CleaningStrategy",
    "MissingInconsistentTreatment",
    "OutlierTreatment",
    "CompositeStrategy",
    "IdentityStrategy",
]


@dataclass
class CleaningContext:
    """Everything a strategy may consult while cleaning one sample.

    Parameters
    ----------
    ideal:
        The ideal replication sample ``DiI`` (raw scale). Supplies the
        3-sigma limits (on the analysis scale) and the replacement means.
    transform:
        Optional analysis-scale transform (the log-attr1 factor). ``None``
        means the raw scale is the analysis scale.
    constraints:
        Inconsistency rules; defaults to the paper's three.
    sigma_k:
        Width of the sigma limits (3.0 in the paper).
    seed:
        Seed/generator for stochastic treatments (MVN imputation draws).
    ideal_block:
        Optional columnar layout of the same ideal sample. When present, the
        derived statistics (sigma limits, replacement means) are computed
        from the block columns — the identical pooled values, so the numbers
        match the per-series computation bit for bit.
    """

    ideal: StreamDataset
    transform: Optional[ScaleTransform] = None
    constraints: ConstraintSet = field(default_factory=paper_constraints)
    sigma_k: float = 3.0
    seed: Seed = None
    ideal_block: Optional[SampleBlock] = None

    def __post_init__(self) -> None:
        self.rng = as_generator(self.seed)
        # Per-replication memo for deterministic derived products (e.g. the
        # MVN EM fit, which Strategies 1 and 2 would otherwise each recompute
        # from the identical pooled sample). Caching a pure function of its
        # key cannot change any number — it only skips a bitwise-identical
        # recomputation — so both the per-series and block paths share it.
        self._memo: dict = {}

    # -- derived, lazily computed ----------------------------------------------

    def _ideal_columns(self, analysis_scale: bool) -> dict[str, np.ndarray]:
        """NaN-free pooled columns of the ideal sample, per attribute.

        Reads the block columns when the columnar layout is available, the
        per-series concatenation otherwise — identical values either way
        (series-major, time-minor pooling order).
        """
        if self.ideal_block is not None:
            attributes = self.ideal_block.attributes
            values = self.ideal_block.values
            if analysis_scale and self.transform is not None:
                values = self.transform.forward_values(values, attributes)
            out = {}
            for j, attr in enumerate(attributes):
                col = values[..., j].reshape(-1)
                out[attr] = col[~np.isnan(col)]
            return out
        dataset = self.ideal
        if analysis_scale and self.transform is not None:
            dataset = self.transform.apply_dataset(dataset)
        return {
            attr: dataset.pooled_column(attr, dropna=True)
            for attr in dataset.attributes
        }

    @cached_property
    def limits(self) -> SigmaLimits:
        """Per-attribute sigma limits on the analysis scale, from the ideal sample.

        The sampling variability of these limits across replications is real
        and intended — the paper points to it in Figure 4.
        """
        from repro.stats.descriptive import sigma_limits

        return SigmaLimits(
            {
                attr: sigma_limits(col, k=self.sigma_k)
                for attr, col in self._ideal_columns(analysis_scale=True).items()
            }
        )

    @cached_property
    def ideal_means(self) -> dict[str, float]:
        """Raw-scale attribute means of the ideal sample."""
        return {
            attr: float(np.mean(col))
            for attr, col in self._ideal_columns(analysis_scale=False).items()
        }

    @cached_property
    def analysis_means(self) -> dict[str, float]:
        """Analysis-scale attribute means of the ideal sample (Strategy 4/5).

        "The mean of the attribute computed from the ideal data set"
        (Section 5.1) is taken on the scale the experiment analyses: under
        the log factor, the replacement constant for Attribute 1 is the mean
        of ``log(attr1)`` (i.e. the geometric mean on the raw scale), which
        keeps the replacement spike at the centre of the analysed bulk.
        """
        return {
            attr: float(np.mean(col))
            for attr, col in self._ideal_columns(analysis_scale=True).items()
        }

    # -- masks -------------------------------------------------------------------

    def treatable_mask(self, series: TimeSeries) -> np.ndarray:
        """``(T, v)`` cells that a missing/inconsistent treatment must fill.

        Missing cells plus constraint-violating cells: the paper's strategies
        "impute values to missing and inconsistent data" as one family.
        """
        return np.isnan(series.values) | self.constraints.evaluate(series)

    def treatable_mask_values(
        self, values: np.ndarray, attributes: tuple[str, ...]
    ) -> np.ndarray:
        """Treatable-cell mask for a ``(..., v)`` value array.

        One vectorised pass over a whole sample-block tensor, cell-for-cell
        identical to calling :meth:`treatable_mask` per series.
        """
        return np.isnan(values) | self.constraints.evaluate_values(values, attributes)

    def to_analysis(self, values: np.ndarray, attributes: tuple[str, ...]) -> np.ndarray:
        """Raw ``(..., v)`` values -> analysis scale (identity without transform)."""
        if self.transform is None:
            return np.asarray(values, dtype=float).copy()
        return self.transform.forward_values(values, attributes)

    def from_analysis(self, values: np.ndarray, attributes: tuple[str, ...]) -> np.ndarray:
        """Analysis-scale ``(..., v)`` values -> raw scale."""
        if self.transform is None:
            return np.asarray(values, dtype=float).copy()
        return self.transform.inverse_values(values, attributes)

    def memo(self, key, compute: Callable[[], _T]) -> _T:
        """Cache *compute()* under *key* for the lifetime of this context.

        For deterministic derived products only: the cached value must be a
        pure function of the key, so a hit returns exactly what recomputation
        would.
        """
        try:
            return self._memo[key]
        except KeyError:
            value = compute()
            self._memo[key] = value
            return value


class CleaningStrategy(ABC):
    """A cleaning strategy ``C`` mapping ``Di`` to ``DiC`` (Definition 1)."""

    #: Identifier used in results and reports.
    name: str = "strategy"

    @property
    def cost_fraction(self) -> float:
        """Fraction of the sample this strategy's cost model treats.

        The cost proxy of Section 5.2 (proportion of series cleaned):
        ``1.0`` for a full-sample strategy; cost-limited wrappers such as
        :class:`~repro.cleaning.partial.PartialCleaner` override it with
        their configured fraction. The experiment framework reads this
        property — not an ad-hoc duck-typed attribute — when stamping
        ``StrategyOutcome.cost_fraction``.
        """
        return 1.0

    @abstractmethod
    def clean(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        """Return the treated copy of *sample*. The input is never mutated."""

    def clean_block(
        self, block: SampleBlock, context: CleaningContext
    ) -> Optional[SampleBlock]:
        """Columnar fast path: treat a whole sample block in one pass.

        Returns the treated block, or ``None`` when this strategy has no
        block implementation — callers then fall back to :meth:`clean` on a
        materialised data set. **Contract:** a block implementation must be
        bitwise-identical to :meth:`clean` under the same context (including
        consuming ``context.rng`` in exactly the per-series order), and a
        ``None`` must be returned *before* any random draw so the fallback
        replays the stream from the same point.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class MissingInconsistentTreatment(ABC):
    """Treatment filling missing/inconsistent cells of a whole sample.

    Sample-level (not per-series) because model-based imputation pools all
    series of the replication to fit its joint model.
    """

    name: str = "mi_treatment"

    #: True when :meth:`apply_block` is implemented (checked *before* any
    #: work so a composite never half-runs on the block path).
    supports_block: bool = False

    @abstractmethod
    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        """Return a copy of *sample* with treatable cells filled."""

    def apply_block(
        self, block: SampleBlock, context: CleaningContext
    ) -> SampleBlock:
        """Block-level :meth:`apply`; only called when ``supports_block``."""
        raise NotImplementedError(
            f"{type(self).__name__} has no block implementation"
        )


class OutlierTreatment(ABC):
    """Treatment repairing outlying cells of a whole sample."""

    name: str = "outlier_treatment"

    #: True when :meth:`apply_block` is implemented.
    supports_block: bool = False

    @abstractmethod
    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        """Return a copy of *sample* with outlier cells repaired."""

    def apply_block(
        self, block: SampleBlock, context: CleaningContext
    ) -> SampleBlock:
        """Block-level :meth:`apply`; only called when ``supports_block``."""
        raise NotImplementedError(
            f"{type(self).__name__} has no block implementation"
        )


class CompositeStrategy(CleaningStrategy):
    """Missing/inconsistent treatment followed by outlier repair.

    Either component may be ``None`` (the paper's "ignores outliers" /
    "ignores missing and inconsistent values" strategies).

    The order is dictated by the paper's Table 1: strategies that Winsorize
    leave *exactly zero* treated outliers, so outlier repair must run last,
    over imputed values too. Negative raw-scale imputations still survive
    (Figure 4a) because the raw lower 3-sigma limit of a heavy-right-tailed
    attribute is itself far below zero, and Attribute 3 imputations slightly
    above 1 survive as new inconsistencies (Figure 5) because the upper limit
    sits above 1 — Winsorization only knows about sigma limits, not about
    semantic constraints.
    """

    def __init__(
        self,
        name: str,
        mi_treatment: Optional[MissingInconsistentTreatment] = None,
        outlier_treatment: Optional[OutlierTreatment] = None,
    ):
        if mi_treatment is None and outlier_treatment is None:
            raise CleaningError(
                "CompositeStrategy needs at least one treatment; "
                "use IdentityStrategy for a no-op"
            )
        self.name = name
        self.mi_treatment = mi_treatment
        self.outlier_treatment = outlier_treatment

    def clean(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        treated = sample
        if self.mi_treatment is not None:
            treated = self.mi_treatment.apply(treated, context)
        if self.outlier_treatment is not None:
            treated = self.outlier_treatment.apply(treated, context)
        if treated is sample:  # both components declined to copy
            treated = sample.copy()
        return treated

    def clean_block(
        self, block: SampleBlock, context: CleaningContext
    ) -> Optional[SampleBlock]:
        # Capability is checked up front: the block path either runs both
        # components or neither, so a fallback never replays half-consumed
        # random streams.
        if self.mi_treatment is not None and not self.mi_treatment.supports_block:
            return None
        if self.outlier_treatment is not None and not self.outlier_treatment.supports_block:
            return None
        treated = block
        if self.mi_treatment is not None:
            treated = self.mi_treatment.apply_block(treated, context)
        if self.outlier_treatment is not None:
            treated = self.outlier_treatment.apply_block(treated, context)
        if treated is block:  # pragma: no cover - components always copy
            treated = block.copy()
        return treated

    def describe(self) -> str:
        """Human-readable composition summary."""
        mi = self.mi_treatment.name if self.mi_treatment else "ignore"
        out = self.outlier_treatment.name if self.outlier_treatment else "ignore"
        return f"missing/inconsistent: {mi}; outliers: {out}"


class IdentityStrategy(CleaningStrategy):
    """The do-nothing strategy — the 0%-cleaned anchor of Figure 7."""

    name = "identity"

    def clean(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        return sample.copy()

    def clean_block(
        self, block: SampleBlock, context: CleaningContext
    ) -> Optional[SampleBlock]:
        return block.copy()
