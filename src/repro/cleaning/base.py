"""Strategy protocol, cleaning context, and composition.

The paper's strategies (Section 5.1) pair a treatment for missing and
inconsistent values with a treatment for outliers:

========  ==============================  =========================
Strategy  missing + inconsistent          outliers
========  ==============================  =========================
S1        MVN multiple imputation (MI)    Winsorization
S2        MVN multiple imputation (MI)    ignored
S3        ignored                         Winsorization
S4        ideal-mean replacement          ignored
S5        ideal-mean replacement          Winsorization
========  ==============================  =========================

:class:`CompositeStrategy` realises that table. Outlier repair runs *first*
on the dirty values (the paper's Figure 4 shows imputed values that escaped
Winsorization, so imputation cannot precede it), then the
missing/inconsistent treatment fills the gaps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

import numpy as np

from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.errors import CleaningError
from repro.glitches.constraints import ConstraintSet, paper_constraints
from repro.glitches.detectors import ScaleTransform
from repro.glitches.outliers import SigmaLimits
from repro.utils.rng import Seed, as_generator

__all__ = [
    "CleaningContext",
    "CleaningStrategy",
    "MissingInconsistentTreatment",
    "OutlierTreatment",
    "CompositeStrategy",
    "IdentityStrategy",
]


@dataclass
class CleaningContext:
    """Everything a strategy may consult while cleaning one sample.

    Parameters
    ----------
    ideal:
        The ideal replication sample ``DiI`` (raw scale). Supplies the
        3-sigma limits (on the analysis scale) and the replacement means.
    transform:
        Optional analysis-scale transform (the log-attr1 factor). ``None``
        means the raw scale is the analysis scale.
    constraints:
        Inconsistency rules; defaults to the paper's three.
    sigma_k:
        Width of the sigma limits (3.0 in the paper).
    seed:
        Seed/generator for stochastic treatments (MVN imputation draws).
    """

    ideal: StreamDataset
    transform: Optional[ScaleTransform] = None
    constraints: ConstraintSet = field(default_factory=paper_constraints)
    sigma_k: float = 3.0
    seed: Seed = None

    def __post_init__(self) -> None:
        self.rng = as_generator(self.seed)

    # -- derived, lazily computed ----------------------------------------------

    @cached_property
    def limits(self) -> SigmaLimits:
        """Per-attribute sigma limits on the analysis scale, from the ideal sample.

        The sampling variability of these limits across replications is real
        and intended — the paper points to it in Figure 4.
        """
        scaled = (
            self.transform.apply_dataset(self.ideal) if self.transform else self.ideal
        )
        return SigmaLimits.from_dataset(scaled, k=self.sigma_k)

    @cached_property
    def ideal_means(self) -> dict[str, float]:
        """Raw-scale attribute means of the ideal sample."""
        return {
            attr: float(np.mean(self.ideal.pooled_column(attr, dropna=True)))
            for attr in self.ideal.attributes
        }

    @cached_property
    def analysis_means(self) -> dict[str, float]:
        """Analysis-scale attribute means of the ideal sample (Strategy 4/5).

        "The mean of the attribute computed from the ideal data set"
        (Section 5.1) is taken on the scale the experiment analyses: under
        the log factor, the replacement constant for Attribute 1 is the mean
        of ``log(attr1)`` (i.e. the geometric mean on the raw scale), which
        keeps the replacement spike at the centre of the analysed bulk.
        """
        scaled = (
            self.transform.apply_dataset(self.ideal) if self.transform else self.ideal
        )
        return {
            attr: float(np.mean(scaled.pooled_column(attr, dropna=True)))
            for attr in scaled.attributes
        }

    # -- masks -------------------------------------------------------------------

    def treatable_mask(self, series: TimeSeries) -> np.ndarray:
        """``(T, v)`` cells that a missing/inconsistent treatment must fill.

        Missing cells plus constraint-violating cells: the paper's strategies
        "impute values to missing and inconsistent data" as one family.
        """
        return np.isnan(series.values) | self.constraints.evaluate(series)

    def to_analysis(self, values: np.ndarray, attributes: tuple[str, ...]) -> np.ndarray:
        """Raw ``(T, v)`` values -> analysis scale (identity without transform)."""
        if self.transform is None:
            return np.asarray(values, dtype=float).copy()
        return self.transform.forward_values(values, attributes)

    def from_analysis(self, values: np.ndarray, attributes: tuple[str, ...]) -> np.ndarray:
        """Analysis-scale ``(T, v)`` values -> raw scale."""
        if self.transform is None:
            return np.asarray(values, dtype=float).copy()
        return self.transform.inverse_values(values, attributes)


class CleaningStrategy(ABC):
    """A cleaning strategy ``C`` mapping ``Di`` to ``DiC`` (Definition 1)."""

    #: Identifier used in results and reports.
    name: str = "strategy"

    @abstractmethod
    def clean(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        """Return the treated copy of *sample*. The input is never mutated."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class MissingInconsistentTreatment(ABC):
    """Treatment filling missing/inconsistent cells of a whole sample.

    Sample-level (not per-series) because model-based imputation pools all
    series of the replication to fit its joint model.
    """

    name: str = "mi_treatment"

    @abstractmethod
    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        """Return a copy of *sample* with treatable cells filled."""


class OutlierTreatment(ABC):
    """Treatment repairing outlying cells of a whole sample."""

    name: str = "outlier_treatment"

    @abstractmethod
    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        """Return a copy of *sample* with outlier cells repaired."""


class CompositeStrategy(CleaningStrategy):
    """Missing/inconsistent treatment followed by outlier repair.

    Either component may be ``None`` (the paper's "ignores outliers" /
    "ignores missing and inconsistent values" strategies).

    The order is dictated by the paper's Table 1: strategies that Winsorize
    leave *exactly zero* treated outliers, so outlier repair must run last,
    over imputed values too. Negative raw-scale imputations still survive
    (Figure 4a) because the raw lower 3-sigma limit of a heavy-right-tailed
    attribute is itself far below zero, and Attribute 3 imputations slightly
    above 1 survive as new inconsistencies (Figure 5) because the upper limit
    sits above 1 — Winsorization only knows about sigma limits, not about
    semantic constraints.
    """

    def __init__(
        self,
        name: str,
        mi_treatment: Optional[MissingInconsistentTreatment] = None,
        outlier_treatment: Optional[OutlierTreatment] = None,
    ):
        if mi_treatment is None and outlier_treatment is None:
            raise CleaningError(
                "CompositeStrategy needs at least one treatment; "
                "use IdentityStrategy for a no-op"
            )
        self.name = name
        self.mi_treatment = mi_treatment
        self.outlier_treatment = outlier_treatment

    def clean(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        treated = sample
        if self.mi_treatment is not None:
            treated = self.mi_treatment.apply(treated, context)
        if self.outlier_treatment is not None:
            treated = self.outlier_treatment.apply(treated, context)
        if treated is sample:  # both components declined to copy
            treated = sample.copy()
        return treated

    def describe(self) -> str:
        """Human-readable composition summary."""
        mi = self.mi_treatment.name if self.mi_treatment else "ignore"
        out = self.outlier_treatment.name if self.outlier_treatment else "ignore"
        return f"missing/inconsistent: {mi}; outliers: {out}"


class IdentityStrategy(CleaningStrategy):
    """The do-nothing strategy — the 0%-cleaned anchor of Figure 7."""

    name = "identity"

    def clean(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        return sample.copy()
