"""Data-cleaning strategies (Section 5.1 of the paper).

Every strategy is a :class:`~repro.cleaning.base.CleaningStrategy` operating
on a whole replication sample (a :class:`~repro.data.dataset.StreamDataset`)
given a :class:`~repro.cleaning.base.CleaningContext` holding the ideal
sample, the analysis-scale transform, and the inconsistency constraints.

The paper's five strategies are compositions of a missing/inconsistent
treatment and an outlier treatment; :mod:`repro.cleaning.registry` builds
them by name.
"""

from repro.cleaning.base import (
    CleaningContext,
    CleaningStrategy,
    CompositeStrategy,
    IdentityStrategy,
)
from repro.cleaning.interpolation import InterpolationImputation
from repro.cleaning.mean_imputation import MeanImputation
from repro.cleaning.mvn_imputation import MvnEmEstimate, MvnImputation, fit_mvn_em
from repro.cleaning.partial import PartialCleaner
from repro.cleaning.regression_imputation import RegressionImputation
from repro.cleaning.remeasure import RemeasureStrategy
from repro.cleaning.registry import paper_strategies, strategy_by_name
from repro.cleaning.winsorize import WinsorizeOutliers

__all__ = [
    "CleaningContext",
    "CleaningStrategy",
    "CompositeStrategy",
    "IdentityStrategy",
    "WinsorizeOutliers",
    "MeanImputation",
    "MvnImputation",
    "MvnEmEstimate",
    "fit_mvn_em",
    "InterpolationImputation",
    "RegressionImputation",
    "RemeasureStrategy",
    "PartialCleaner",
    "paper_strategies",
    "strategy_by_name",
]
