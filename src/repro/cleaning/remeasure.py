"""Oracle re-measurement — the expensive strategy of Figure 2.

The paper's budget discussion (Section 2.1) contrasts cheap imputation with
"re-tak[ing] the measurements on the missing data and obtain[ing] exact
values. This is even more expensive and can clean only 30% of the glitches,
but the statistical distortion is lower." Synthetic data give us the oracle:
every dirty series carries its pre-glitch truth, so re-measurement replaces a
treatable cell with the true value. ``coverage`` models the budget — only
that fraction of treatable cells gets re-measured.
"""

from __future__ import annotations

import numpy as np

from typing import Optional

from repro.cleaning.base import CleaningContext, CleaningStrategy
from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.errors import CleaningError
from repro.utils.validation import check_fraction

__all__ = ["RemeasureStrategy"]


class RemeasureStrategy(CleaningStrategy):
    """Replace treatable cells with ground truth, up to a coverage budget.

    Parameters
    ----------
    coverage:
        Fraction of treatable cells re-measured (1.0 = everything).
    include_outliers:
        When True, cells flagged by the context's sigma limits are also
        re-measured (a truly anomalous-but-real value is put back as-is,
        so genuine extreme behaviour survives — that is the point of
        re-measurement).
    """

    name = "remeasure"

    def __init__(self, coverage: float = 1.0, include_outliers: bool = False):
        self.coverage = check_fraction(coverage, "coverage")
        self.include_outliers = bool(include_outliers)

    def clean(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        attributes = sample.attributes

        def treat(series: TimeSeries) -> TimeSeries:
            if series.truth is None:
                raise CleaningError(
                    f"series {series.node} has no ground truth; re-measurement "
                    "is only possible on generated data"
                )
            mask = context.treatable_mask(series)
            if self.include_outliers:
                analysis = context.to_analysis(series.values, attributes)
                for j, attr in enumerate(attributes):
                    if attr not in context.limits:
                        continue
                    lo, hi = context.limits.bounds(attr)
                    col = analysis[:, j]
                    with np.errstate(invalid="ignore"):
                        mask[:, j] |= np.isfinite(col) & ((col < lo) | (col > hi))
            if self.coverage < 1.0 and mask.any():
                flat = np.flatnonzero(mask.ravel())
                keep = context.rng.choice(
                    flat,
                    size=int(round(self.coverage * flat.size)),
                    replace=False,
                )
                mask = np.zeros_like(mask).ravel()
                mask[keep] = True
                mask = mask.reshape(series.values.shape)
            values = series.values.copy()
            values[mask] = series.truth[mask]
            return series.with_values(values)

        return sample.map(treat)

    def clean_block(
        self, block: SampleBlock, context: CleaningContext
    ) -> Optional[SampleBlock]:
        """Block path: mask evaluation and truth scatter run whole-block;
        only the coverage-budget draw stays per series (it must consume
        ``context.rng`` in the per-series order to match :meth:`clean`)."""
        if block.truth is None:
            raise CleaningError(
                "sample block has no ground truth; re-measurement is only "
                "possible on generated data"
            )
        attributes = block.attributes
        mask = context.treatable_mask_values(block.values, attributes)
        if self.include_outliers:
            analysis = context.to_analysis(block.values, attributes)
            for j, attr in enumerate(attributes):
                if attr not in context.limits:
                    continue
                lo, hi = context.limits.bounds(attr)
                col = analysis[..., j]
                with np.errstate(invalid="ignore"):
                    mask[..., j] |= np.isfinite(col) & ((col < lo) | (col > hi))
        if self.coverage < 1.0:
            for i in range(block.n_series):
                series_mask = mask[i]
                if not series_mask.any():
                    continue
                flat = np.flatnonzero(series_mask.ravel())
                keep = context.rng.choice(
                    flat,
                    size=int(round(self.coverage * flat.size)),
                    replace=False,
                )
                series_mask = np.zeros_like(series_mask).ravel()
                series_mask[keep] = True
                mask[i] = series_mask.reshape(mask[i].shape)
        values = block.values.copy()
        values[mask] = block.truth[mask]
        return block.with_values(values)
