"""Ideal-mean replacement — the cheap imputation of Strategies 4 and 5.

Section 5.1: "Strategy 4 ... treats missing and inconsistent values by
replacing them with the mean of the attribute computed from the ideal data
set." The replacement constant is the *analysis-scale* mean of the ideal
replication sample ``DiI`` (the mean of ``log(attr1)`` under the log factor),
mapped back to the raw scale — so it is always a legitimate central value.
That is exactly why this simple strategy wins on new-glitch counts (Table 1
shows zero treated missing/inconsistent for Strategies 4/5) while still
distorting the distribution with a density spike (Figure 2's discussion).
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.base import CleaningContext, MissingInconsistentTreatment
from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries

__all__ = ["MeanImputation"]


class MeanImputation(MissingInconsistentTreatment):
    """Replace missing and inconsistent cells with the ideal-sample mean."""

    name = "mean"
    supports_block = True

    @staticmethod
    def _raw_constants(context: CleaningContext, attributes: tuple[str, ...]) -> np.ndarray:
        """The analysis-scale means materialised back on the raw scale."""
        means = context.analysis_means
        template = np.array([[means[attr] for attr in attributes]])
        return context.from_analysis(template, attributes)[0]

    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        attributes = sample.attributes
        raw_constants = self._raw_constants(context, attributes)

        def treat(series: TimeSeries) -> TimeSeries:
            mask = context.treatable_mask(series)
            if not mask.any():
                return series.copy()
            values = series.values.copy()
            for j in range(len(attributes)):
                col_mask = mask[:, j]
                if col_mask.any():
                    values[col_mask, j] = raw_constants[j]
            return series.with_values(values)

        return sample.map(treat)

    def apply_block(self, block: SampleBlock, context: CleaningContext) -> SampleBlock:
        """Block path: one mask evaluation and one fill per attribute —
        purely elementwise, so cell-for-cell identical to :meth:`apply`."""
        attributes = block.attributes
        raw_constants = self._raw_constants(context, attributes)
        mask = context.treatable_mask_values(block.values, attributes)
        values = block.values.copy()
        for j in range(len(attributes)):
            col = values[..., j]
            col[mask[..., j]] = raw_constants[j]
        return block.with_values(values)
