"""Time-series interpolation imputation (extension strategy).

Not one of the paper's five strategies, but the natural structure-aware
middle ground its future-work section gestures at ("cleaning algorithms that
make use of the correlated data cost less and perform better"): fill missing
and inconsistent cells by linear interpolation along each series' own time
axis, exploiting exactly the temporal structure the whole-series sampling
scheme preserves.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.base import CleaningContext, MissingInconsistentTreatment
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries

__all__ = ["InterpolationImputation"]


def _interpolate_column(col: np.ndarray, gaps: np.ndarray) -> np.ndarray:
    """Linearly interpolate *gaps* from the non-gap entries of *col*.

    Leading/trailing gaps take the nearest valid value; a column with no
    valid entries is returned unchanged (left for a fallback treatment).
    """
    out = col.copy()
    valid = ~gaps & np.isfinite(col)
    if not valid.any():
        return out
    t = np.arange(col.size)
    out[gaps] = np.interp(t[gaps], t[valid], col[valid])
    return out


class InterpolationImputation(MissingInconsistentTreatment):
    """Fill treatable cells by per-attribute linear interpolation in time."""

    name = "interpolation"

    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        means = context.ideal_means
        attributes = sample.attributes

        def treat(series: TimeSeries) -> TimeSeries:
            mask = context.treatable_mask(series)
            if not mask.any():
                return series.copy()
            values = series.values.copy()
            for j, attr in enumerate(attributes):
                gaps = mask[:, j]
                if not gaps.any():
                    continue
                col = _interpolate_column(values[:, j], gaps)
                still_bad = gaps & ~np.isfinite(col)
                col[still_bad] = means[attr]
                values[:, j] = col
            return series.with_values(values)

        return sample.map(treat)
