"""Time-series interpolation imputation (extension strategy).

Not one of the paper's five strategies, but the natural structure-aware
middle ground its future-work section gestures at ("cleaning algorithms that
make use of the correlated data cost less and perform better"): fill missing
and inconsistent cells by linear interpolation along each series' own time
axis, exploiting exactly the temporal structure the whole-series sampling
scheme preserves.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.base import CleaningContext, MissingInconsistentTreatment
from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries

__all__ = ["InterpolationImputation"]


def _interpolate_column(col: np.ndarray, gaps: np.ndarray) -> np.ndarray:
    """Linearly interpolate *gaps* from the non-gap entries of *col*.

    Leading/trailing gaps take the nearest valid value; a column with no
    valid entries is returned unchanged (left for a fallback treatment).
    """
    out = col.copy()
    valid = ~gaps & np.isfinite(col)
    if not valid.any():
        return out
    t = np.arange(col.size)
    out[gaps] = np.interp(t[gaps], t[valid], col[valid])
    return out


class InterpolationImputation(MissingInconsistentTreatment):
    """Fill treatable cells by per-attribute linear interpolation in time."""

    name = "interpolation"
    supports_block = True

    @staticmethod
    def _treat_values(
        values: np.ndarray,
        mask: np.ndarray,
        attributes: tuple[str, ...],
        means: dict[str, float],
    ) -> None:
        """Interpolate one series' ``(T, v)`` values in place."""
        for j, attr in enumerate(attributes):
            gaps = mask[:, j]
            if not gaps.any():
                continue
            col = _interpolate_column(values[:, j], gaps)
            still_bad = gaps & ~np.isfinite(col)
            col[still_bad] = means[attr]
            values[:, j] = col

    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        means = context.ideal_means
        attributes = sample.attributes

        def treat(series: TimeSeries) -> TimeSeries:
            mask = context.treatable_mask(series)
            if not mask.any():
                return series.copy()
            values = series.values.copy()
            self._treat_values(values, mask, attributes, means)
            return series.with_values(values)

        return sample.map(treat)

    def apply_block(self, block: SampleBlock, context: CleaningContext) -> SampleBlock:
        """Block path: the masks come from one vectorised pass; the 1-D
        interpolation itself stays per series (``np.interp`` along each
        series' own time axis is inherently sequential) but runs on block
        rows without any object churn."""
        means = context.ideal_means
        attributes = block.attributes
        mask = context.treatable_mask_values(block.values, attributes)
        values = block.values.copy()
        for i in range(block.n_series):
            if mask[i].any():
                self._treat_values(values[i], mask[i], attributes, means)
        return block.with_values(values)
