"""Multivariate-normal model imputation — the SAS ``PROC MI`` analogue.

Section 5.1's Strategies 1 and 2 impute missing and inconsistent values with
SAS ``PROC MI``, whose default model is a multivariate Gaussian. We implement
the same model from scratch:

1. **EM** (:func:`fit_mvn_em`) estimates the MVN mean and covariance from the
   incomplete pooled sample, grouping rows by missing pattern so each E-step
   is a handful of vectorised conditional-normal computations.
2. **Conditional draws** (:func:`draw_conditional`) impute each incomplete
   row from the conditional normal ``x_miss | x_obs`` under the fitted
   parameters — the stochastic-imputation flavour that reproduces the spread
   of the grey points in the paper's Figure 4.

The paper's central cautionary finding depends on this model being *wrong*
for the data: a Gaussian fitted to a right-skewed positive attribute happily
imputes negative values (new constraint-1 violations, Figure 4a), and a
Gaussian fitted to a ratio hugging 1 imputes values above 1 (new constraint-2
violations, Figure 5). Nothing here tries to prevent that — it is the
phenomenon under study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cleaning.base import CleaningContext, MissingInconsistentTreatment
from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.errors import CleaningError
from repro.utils.validation import check_positive_int

__all__ = ["MvnEmEstimate", "fit_mvn_em", "draw_conditional", "MvnImputation"]


@dataclass(frozen=True)
class MvnEmEstimate:
    """Fitted MVN parameters plus EM diagnostics."""

    mean: np.ndarray
    cov: np.ndarray
    n_iter: int
    converged: bool

    @property
    def dim(self) -> int:
        """Dimensionality of the fitted normal."""
        return int(self.mean.size)


def _pattern_groups(mask: np.ndarray) -> dict[bytes, np.ndarray]:
    """Group row indices by missing pattern (key = packed boolean bytes).

    Groups appear in first-occurrence order with ascending row indices —
    the iteration order both EM accumulation and the conditional draws rely
    on — but the grouping itself is a vectorised sort instead of a Python
    row loop (the old implementation's hottest line at block scale).
    """
    mask = np.asarray(mask, dtype=bool)
    n, d = mask.shape
    if n == 0:
        return {}
    if d > 62:  # pragma: no cover - bit-packing would overflow; row-loop fallback
        groups: dict[bytes, list[int]] = {}
        for i, row in enumerate(mask):
            groups.setdefault(row.tobytes(), []).append(i)
        return {k: np.asarray(v) for k, v in groups.items()}
    bit_weights = np.int64(1) << np.arange(d, dtype=np.int64)
    codes = mask.astype(np.int64) @ bit_weights
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    starts = np.flatnonzero(np.r_[True, sorted_codes[1:] != sorted_codes[:-1]])
    stops = np.r_[starts[1:], n]
    # Stable sort keeps each group's indices ascending; reorder the groups
    # themselves by their first (smallest) index to match insertion order.
    chunks = sorted(
        (int(order[start]), int(sorted_codes[start]), order[start:stop])
        for start, stop in zip(starts, stops)
    )
    out: dict[bytes, np.ndarray] = {}
    for _, code, idx in chunks:
        pattern = ((code >> np.arange(d, dtype=np.int64)) & 1).astype(bool)
        out[pattern.tobytes()] = idx
    return out


def fit_mvn_em(
    data: np.ndarray,
    max_iter: int = 100,
    tol: float = 1e-6,
    ridge: float = 1e-9,
) -> MvnEmEstimate:
    """EM estimate of an MVN mean/covariance from data with NaNs.

    Parameters
    ----------
    data:
        ``(N, d)`` array; NaN marks missing entries. Rows that are entirely
        missing carry no information and are dropped up front.
    max_iter, tol:
        EM stops when the max absolute parameter change falls below *tol*.
    ridge:
        Relative diagonal regulariser keeping the covariance invertible.
    """
    x = np.asarray(data, dtype=float)
    if x.ndim != 2:
        raise CleaningError(f"data must be (N, d), got shape {x.shape}")
    x = x[~np.isnan(x).all(axis=1)]
    n, d = x.shape
    if n < 2:
        raise CleaningError("EM needs at least 2 partially observed rows")
    miss = np.isnan(x)
    if miss.all(axis=0).any():
        raise CleaningError("some attribute is missing in every row; cannot fit")

    mean = np.nanmean(x, axis=0)
    var = np.nanvar(x, axis=0)
    var = np.where(var > 0, var, 1.0)
    cov = np.diag(var)

    # Pattern bookkeeping is iteration-invariant, so it is hoisted out of
    # the EM loop: the complete rows' moment contributions are constants,
    # and the incomplete rows are packed into ONE contiguous matrix whose
    # per-group row ranges and index vectors are precomputed. Each E-step
    # then fills that matrix group by group (a handful of tiny solves) and
    # takes its moments with a single BLAS product instead of per-group
    # Python-dispatched reductions.
    complete_sum = np.zeros(d)
    complete_xx = np.zeros((d, d))
    partial_groups = []
    partial_rows: list[np.ndarray] = []
    start = 0
    for key, idx in _pattern_groups(miss).items():
        pattern = np.frombuffer(key, dtype=bool)
        rows = x[idx]
        if not pattern.any():
            complete_sum = rows.sum(axis=0)
            complete_xx = rows.T @ rows
            continue
        miss_ix = np.flatnonzero(pattern)
        obs_ix = np.flatnonzero(~pattern)
        stop = start + len(idx)
        partial_groups.append(
            (slice(start, stop), rows[:, obs_ix], miss_ix, obs_ix, len(idx))
        )
        partial_rows.append(rows)
        start = stop
    filled = (
        np.concatenate(partial_rows, axis=0) if partial_rows else np.empty((0, d))
    )
    # Groups whose (observed, missing) shapes match share one stacked solve
    # per iteration — LAPACK runs per slice, so a handful of 2x2 systems
    # become a single gufunc call instead of one Python round-trip each.
    # Index grids into ``reg`` are iteration-invariant and precomputed.
    solve_classes: dict[tuple[int, int], dict] = {}
    for gi, (_, _, miss_ix, obs_ix, _) in enumerate(partial_groups):
        if obs_ix.size == 0:  # pragma: no cover - fully missing rows were dropped
            continue
        cls = solve_classes.setdefault(
            (obs_ix.size, miss_ix.size),
            {"members": [], "oo": [], "mo": [], "mm": []},
        )
        cls["members"].append(gi)
        cls["oo"].append((obs_ix[:, None], obs_ix[None, :]))
        cls["mo"].append((miss_ix[:, None], obs_ix[None, :]))
        cls["mm"].append((miss_ix[:, None], miss_ix[None, :]))
    class_grids = []
    for cls in solve_classes.values():
        grids = {
            side: (
                np.stack([np.broadcast_arrays(r, c)[0] for r, c in cls[side]]),
                np.stack([np.broadcast_arrays(r, c)[1] for r, c in cls[side]]),
            )
            for side in ("oo", "mo", "mm")
        }
        class_grids.append((cls["members"], grids))
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        sum_xx = complete_xx.copy()
        reg = cov + ridge * max(np.trace(cov) / d, 1e-12) * np.eye(d)
        gains: dict[int, np.ndarray] = {}
        conds: dict[int, np.ndarray] = {}
        for members, grids in class_grids:
            s_oo = reg[grids["oo"][0], grids["oo"][1]]
            s_mo = reg[grids["mo"][0], grids["mo"][1]]
            gain = np.linalg.solve(s_oo, s_mo.transpose(0, 2, 1)).transpose(0, 2, 1)
            cond = reg[grids["mm"][0], grids["mm"][1]] - gain @ s_mo.transpose(0, 2, 1)
            for k, gi in enumerate(members):
                gains[gi] = gain[k]
                conds[gi] = cond[k]
        for gi, (rng, rows_obs, miss_ix, obs_ix, count) in enumerate(partial_groups):
            if obs_ix.size:
                resid = rows_obs - mean[obs_ix]
                filled[rng, miss_ix] = mean[miss_ix] + resid @ gains[gi].T
                cond_cov = conds[gi]
            else:  # pragma: no cover - fully missing rows were dropped
                filled[rng, miss_ix] = mean[miss_ix]
                cond_cov = reg[miss_ix[:, None], miss_ix[None, :]]
            # Conditional covariance of the missing block enters E[x x'].
            sum_xx[miss_ix[:, None], miss_ix[None, :]] += cond_cov * count
        sum_x = complete_sum + filled.sum(axis=0)
        sum_xx += filled.T @ filled
        new_mean = sum_x / n
        new_cov = sum_xx / n - np.outer(new_mean, new_mean)
        new_cov = 0.5 * (new_cov + new_cov.T)
        delta = max(
            float(np.max(np.abs(new_mean - mean))),
            float(np.max(np.abs(new_cov - cov))),
        )
        mean, cov = new_mean, new_cov
        if delta < tol:
            converged = True
            break
    cov = cov + ridge * max(np.trace(cov) / d, 1e-12) * np.eye(d)
    return MvnEmEstimate(mean=mean, cov=cov, n_iter=it, converged=converged)


def draw_conditional(
    data: np.ndarray,
    estimate: MvnEmEstimate,
    rng: np.random.Generator,
) -> np.ndarray:
    """Impute NaNs in *data* by draws from ``x_miss | x_obs`` under *estimate*.

    Fully missing rows are drawn from the marginal normal. Returns a new
    array; observed entries are untouched. Callers pass the pooled sample
    (all series stacked), so each missing pattern costs exactly one
    conditional-normal solve and one batched noise draw.
    """
    x = np.asarray(data, dtype=float).copy()
    if x.ndim != 2 or x.shape[1] != estimate.dim:
        raise CleaningError(
            f"data must be (N, {estimate.dim}), got shape {x.shape}"
        )
    miss = np.isnan(x)
    mean, cov = estimate.mean, estimate.cov
    d = estimate.dim
    jitter = 1e-12 * max(float(np.trace(cov)) / d, 1e-12)
    for key, idx in _pattern_groups(miss).items():
        pattern = np.frombuffer(key, dtype=bool)
        if not pattern.any():
            continue
        obs = ~pattern
        k = int(pattern.sum())
        miss_ix = np.flatnonzero(pattern)
        obs_ix = np.flatnonzero(obs)
        if obs.any():
            s_oo = cov[np.ix_(obs, obs)]
            s_mo = cov[np.ix_(pattern, obs)]
            gain = np.linalg.solve(s_oo, s_mo.T).T
            cond_mean = mean[miss_ix] + (x[np.ix_(idx, obs_ix)] - mean[obs_ix]) @ gain.T
            cond_cov = cov[np.ix_(pattern, pattern)] - gain @ s_mo.T
        else:
            cond_mean = np.tile(mean[miss_ix], (idx.size, 1))
            cond_cov = cov[np.ix_(pattern, pattern)]
        cond_cov = 0.5 * (cond_cov + cond_cov.T) + jitter * np.eye(k)
        try:
            chol = np.linalg.cholesky(cond_cov)
        except np.linalg.LinAlgError:
            # Clip negative eigenvalues — conditional covariances of a valid
            # MVN are PSD up to round-off.
            w, v = np.linalg.eigh(cond_cov)
            chol = v @ np.diag(np.sqrt(np.clip(w, 0.0, None)))
        noise = rng.standard_normal((idx.size, k)) @ chol.T
        draws = cond_mean + noise
        x[np.ix_(idx, miss_ix)] = draws
    return x


class MvnImputation(MissingInconsistentTreatment):
    """Strategy-1/2 treatment: pooled MVN fit + conditional-draw imputation.

    Workflow per replication sample:

    1. mark missing *and* inconsistent cells as to-treat, blank them to NaN
       (an out-of-range value is not usable as evidence);
    2. move to the analysis scale (log-attr1 when the transform is active —
       this is the difference between Figure 4a and 4b);
    3. pool every row of every series, fit the MVN by EM;
    4. impute the pooled matrix's NaNs with **pattern-grouped batched
       conditional draws** — one conditional-normal solve and one batched
       noise draw per missing pattern over the whole pooled sample (exactly
       how ``PROC MI`` treats the stacked input) — and map each series'
       imputed cells back to the raw scale.

    Because the draws run on the pooled matrix, the per-series and
    block layouts consume the random stream identically by construction:
    both hand :func:`draw_conditional` the same pooled rows in the same
    order.
    """

    name = "mvn_imputation"
    supports_block = True

    #: Default EM convergence criterion. SAS ``PROC MI`` — the reference
    #: implementation the paper's strategies ran — stops its EM at a maximum
    #: parameter change of 1e-4 (the ``CONVERGE=`` default); matching it
    #: keeps the fit faithful and roughly halves the iteration count
    #: relative to the stricter 1e-6.
    DEFAULT_TOL = 1e-4

    def __init__(self, max_iter: int = 100, tol: float = DEFAULT_TOL):
        self.max_iter = check_positive_int(max_iter, "max_iter")
        if tol <= 0:
            raise CleaningError("tol must be positive")
        self.tol = float(tol)

    def _fitted(self, pooled: np.ndarray, context: CleaningContext) -> MvnEmEstimate:
        """EM fit of *pooled*, memoised on the replication context.

        Strategies 1 and 2 blank and pool the identical sample, so within
        one replication the fit is computed once; the memo key includes the
        pooled bytes, making a hit provably bitwise-equal to a refit.
        """
        key = ("mvn_em_fit", self.max_iter, self.tol, pooled.tobytes())
        return context.memo(
            key, lambda: fit_mvn_em(pooled, max_iter=self.max_iter, tol=self.tol)
        )

    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        attributes = sample.attributes
        blanked: list[np.ndarray] = []
        masks: list[np.ndarray] = []
        for series in sample:
            mask = context.treatable_mask(series)
            values = series.values.copy()
            values[mask] = np.nan
            blanked.append(context.to_analysis(values, attributes))
            masks.append(mask)
        pooled = np.concatenate(blanked, axis=0)
        estimate = self._fitted(pooled, context)
        imputed_pooled = draw_conditional(pooled, estimate, context.rng)

        treated: list[TimeSeries] = []
        offset = 0
        for series, mask in zip(sample, masks):
            imputed = imputed_pooled[offset : offset + series.length]
            offset += series.length
            raw_imputed = context.from_analysis(imputed, attributes)
            values = series.values.copy()
            values[mask] = raw_imputed[mask]
            treated.append(series.with_values(values))
        return StreamDataset(treated)

    def apply_block(self, block: SampleBlock, context: CleaningContext) -> SampleBlock:
        """Block path: one vectorised blank/transform/pool pass, then the
        same pooled pattern-grouped draws as :meth:`apply` — both layouts
        hand :func:`draw_conditional` the identical pooled matrix, so the
        treated values are bitwise-identical by construction."""
        attributes = block.attributes
        mask = context.treatable_mask_values(block.values, attributes)
        blanked = block.values.copy()
        blanked[mask] = np.nan
        analysis = context.to_analysis(blanked, attributes)
        pooled = analysis.reshape(-1, analysis.shape[-1])
        estimate = self._fitted(pooled, context)
        imputed = draw_conditional(pooled, estimate, context.rng).reshape(
            analysis.shape
        )
        raw_imputed = context.from_analysis(imputed, attributes)
        values = block.values.copy()
        values[mask] = raw_imputed[mask]
        return block.with_values(values)
