"""Multivariate-normal model imputation — the SAS ``PROC MI`` analogue.

Section 5.1's Strategies 1 and 2 impute missing and inconsistent values with
SAS ``PROC MI``, whose default model is a multivariate Gaussian. We implement
the same model from scratch:

1. **EM** (:func:`fit_mvn_em`) estimates the MVN mean and covariance from the
   incomplete pooled sample, grouping rows by missing pattern so each E-step
   is a handful of vectorised conditional-normal computations.
2. **Conditional draws** (:func:`draw_conditional`) impute each incomplete
   row from the conditional normal ``x_miss | x_obs`` under the fitted
   parameters — the stochastic-imputation flavour that reproduces the spread
   of the grey points in the paper's Figure 4.

The paper's central cautionary finding depends on this model being *wrong*
for the data: a Gaussian fitted to a right-skewed positive attribute happily
imputes negative values (new constraint-1 violations, Figure 4a), and a
Gaussian fitted to a ratio hugging 1 imputes values above 1 (new constraint-2
violations, Figure 5). Nothing here tries to prevent that — it is the
phenomenon under study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cleaning.base import CleaningContext, MissingInconsistentTreatment
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.errors import CleaningError
from repro.utils.validation import check_positive_int

__all__ = ["MvnEmEstimate", "fit_mvn_em", "draw_conditional", "MvnImputation"]


@dataclass(frozen=True)
class MvnEmEstimate:
    """Fitted MVN parameters plus EM diagnostics."""

    mean: np.ndarray
    cov: np.ndarray
    n_iter: int
    converged: bool

    @property
    def dim(self) -> int:
        """Dimensionality of the fitted normal."""
        return int(self.mean.size)


def _pattern_groups(mask: np.ndarray) -> dict[bytes, np.ndarray]:
    """Group row indices by missing pattern (key = packed boolean bytes)."""
    groups: dict[bytes, list[int]] = {}
    for i, row in enumerate(mask):
        groups.setdefault(row.tobytes(), []).append(i)
    return {k: np.asarray(v) for k, v in groups.items()}


def fit_mvn_em(
    data: np.ndarray,
    max_iter: int = 100,
    tol: float = 1e-6,
    ridge: float = 1e-9,
) -> MvnEmEstimate:
    """EM estimate of an MVN mean/covariance from data with NaNs.

    Parameters
    ----------
    data:
        ``(N, d)`` array; NaN marks missing entries. Rows that are entirely
        missing carry no information and are dropped up front.
    max_iter, tol:
        EM stops when the max absolute parameter change falls below *tol*.
    ridge:
        Relative diagonal regulariser keeping the covariance invertible.
    """
    x = np.asarray(data, dtype=float)
    if x.ndim != 2:
        raise CleaningError(f"data must be (N, d), got shape {x.shape}")
    x = x[~np.isnan(x).all(axis=1)]
    n, d = x.shape
    if n < 2:
        raise CleaningError("EM needs at least 2 partially observed rows")
    miss = np.isnan(x)
    if miss.all(axis=0).any():
        raise CleaningError("some attribute is missing in every row; cannot fit")

    mean = np.nanmean(x, axis=0)
    var = np.nanvar(x, axis=0)
    var = np.where(var > 0, var, 1.0)
    cov = np.diag(var)

    groups = _pattern_groups(miss)
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        sum_x = np.zeros(d)
        sum_xx = np.zeros((d, d))
        reg = cov + ridge * max(np.trace(cov) / d, 1e-12) * np.eye(d)
        for key, idx in groups.items():
            pattern = np.frombuffer(key, dtype=bool)
            rows = x[idx]
            if not pattern.any():
                sum_x += rows.sum(axis=0)
                sum_xx += rows.T @ rows
                continue
            obs = ~pattern
            filled = rows.copy()
            if obs.any():
                s_oo = reg[np.ix_(obs, obs)]
                s_mo = reg[np.ix_(pattern, obs)]
                gain = np.linalg.solve(s_oo, s_mo.T).T
                resid = rows[:, obs] - mean[obs]
                filled[:, pattern] = mean[pattern] + resid @ gain.T
                cond_cov = reg[np.ix_(pattern, pattern)] - gain @ s_mo.T
            else:  # pragma: no cover - fully missing rows were dropped
                filled[:, pattern] = mean[pattern]
                cond_cov = reg[np.ix_(pattern, pattern)]
            sum_x += filled.sum(axis=0)
            sum_xx += filled.T @ filled
            # Conditional covariance of the missing block enters E[x x'].
            block = np.zeros((d, d))
            block[np.ix_(pattern, pattern)] = cond_cov * len(idx)
            sum_xx += block
        new_mean = sum_x / n
        new_cov = sum_xx / n - np.outer(new_mean, new_mean)
        new_cov = 0.5 * (new_cov + new_cov.T)
        delta = max(
            float(np.max(np.abs(new_mean - mean))),
            float(np.max(np.abs(new_cov - cov))),
        )
        mean, cov = new_mean, new_cov
        if delta < tol:
            converged = True
            break
    cov = cov + ridge * max(np.trace(cov) / d, 1e-12) * np.eye(d)
    return MvnEmEstimate(mean=mean, cov=cov, n_iter=it, converged=converged)


def draw_conditional(
    data: np.ndarray,
    estimate: MvnEmEstimate,
    rng: np.random.Generator,
) -> np.ndarray:
    """Impute NaNs in *data* by draws from ``x_miss | x_obs`` under *estimate*.

    Fully missing rows are drawn from the marginal normal. Returns a new
    array; observed entries are untouched.
    """
    x = np.asarray(data, dtype=float).copy()
    if x.ndim != 2 or x.shape[1] != estimate.dim:
        raise CleaningError(
            f"data must be (N, {estimate.dim}), got shape {x.shape}"
        )
    miss = np.isnan(x)
    mean, cov = estimate.mean, estimate.cov
    d = estimate.dim
    jitter = 1e-12 * max(float(np.trace(cov)) / d, 1e-12)
    for key, idx in _pattern_groups(miss).items():
        pattern = np.frombuffer(key, dtype=bool)
        if not pattern.any():
            continue
        obs = ~pattern
        k = int(pattern.sum())
        if obs.any():
            s_oo = cov[np.ix_(obs, obs)]
            s_mo = cov[np.ix_(pattern, obs)]
            gain = np.linalg.solve(s_oo, s_mo.T).T
            cond_mean = mean[pattern] + (x[np.ix_(idx, np.flatnonzero(obs))] - mean[obs]) @ gain.T
            cond_cov = cov[np.ix_(pattern, pattern)] - gain @ s_mo.T
        else:
            cond_mean = np.tile(mean[pattern], (idx.size, 1))
            cond_cov = cov[np.ix_(pattern, pattern)]
        cond_cov = 0.5 * (cond_cov + cond_cov.T) + jitter * np.eye(k)
        try:
            chol = np.linalg.cholesky(cond_cov)
        except np.linalg.LinAlgError:
            # Clip negative eigenvalues — conditional covariances of a valid
            # MVN are PSD up to round-off.
            w, v = np.linalg.eigh(cond_cov)
            chol = v @ np.diag(np.sqrt(np.clip(w, 0.0, None)))
        noise = rng.standard_normal((idx.size, k)) @ chol.T
        draws = cond_mean + noise
        x[np.ix_(idx, np.flatnonzero(pattern))] = draws
    return x


class MvnImputation(MissingInconsistentTreatment):
    """Strategy-1/2 treatment: pooled MVN fit + conditional-draw imputation.

    Workflow per replication sample:

    1. mark missing *and* inconsistent cells as to-treat, blank them to NaN
       (an out-of-range value is not usable as evidence);
    2. move to the analysis scale (log-attr1 when the transform is active —
       this is the difference between Figure 4a and 4b);
    3. pool every row of every series, fit the MVN by EM;
    4. impute each series' NaNs with conditional draws and map the imputed
       cells back to the raw scale.
    """

    name = "mvn_imputation"

    def __init__(self, max_iter: int = 100, tol: float = 1e-6):
        self.max_iter = check_positive_int(max_iter, "max_iter")
        if tol <= 0:
            raise CleaningError("tol must be positive")
        self.tol = float(tol)

    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        attributes = sample.attributes
        blanked: list[np.ndarray] = []
        masks: list[np.ndarray] = []
        for series in sample:
            mask = context.treatable_mask(series)
            values = series.values.copy()
            values[mask] = np.nan
            blanked.append(context.to_analysis(values, attributes))
            masks.append(mask)
        pooled = np.concatenate(blanked, axis=0)
        estimate = fit_mvn_em(pooled, max_iter=self.max_iter, tol=self.tol)

        treated: list[TimeSeries] = []
        for series, analysis, mask in zip(sample, blanked, masks):
            imputed = draw_conditional(analysis, estimate, context.rng)
            raw_imputed = context.from_analysis(imputed, attributes)
            values = series.values.copy()
            values[mask] = raw_imputed[mask]
            treated.append(series.with_values(values))
        return StreamDataset(treated)
