"""Winsorization — the paper's outlier repair.

Section 1.1: "repair the outliers by setting them to the closest acceptable
value, a process known as Winsorization in statistics." Detection and repair
use the same 3-sigma limits computed from the ideal replication sample on the
analysis scale (Section 4.1 / Figure 4); repaired values are mapped back to
the raw scale through the transform's inverse.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.base import CleaningContext, OutlierTreatment
from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.errors import ValidationError

__all__ = ["WinsorizeOutliers"]


class WinsorizeOutliers(OutlierTreatment):
    """Clip cells outside the per-attribute sigma limits to the nearest limit.

    NaN (missing) cells pass through untouched — they belong to the
    missing/inconsistent treatment. Cells that are NaN *on the analysis
    scale only* (e.g. the log of a negative value) also pass through: they
    are inconsistencies, not outliers.
    """

    name = "winsorize"
    supports_block = True

    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        limits = context.limits
        attributes = sample.attributes

        def treat(series: TimeSeries) -> TimeSeries:
            analysis = context.to_analysis(series.values, attributes)
            raw = series.values.copy()
            for j, attr in enumerate(attributes):
                if attr not in limits:
                    continue
                lo, hi = limits.bounds(attr)
                col = analysis[:, j]
                with np.errstate(invalid="ignore"):
                    outlying = np.isfinite(col) & ((col < lo) | (col > hi))
                if not outlying.any():
                    continue
                clipped = analysis.copy()
                clipped[outlying, j] = np.clip(col[outlying], lo, hi)
                repaired_raw = context.from_analysis(clipped, attributes)
                raw[outlying, j] = repaired_raw[outlying, j]
            return series.with_values(raw)

        return sample.map(treat)

    def apply_block(self, block: SampleBlock, context: CleaningContext) -> SampleBlock:
        """Block path: clip every attribute across the whole ``(n, T, v)``
        tensor at once, mapping only the clipped cells back through the
        transform's inverse. The per-series path routes the whole series
        array through ``from_analysis`` and reads one column back; since the
        inverse is elementwise and untransformed columns pass through
        unchanged, repairing just the gathered outlying cells yields the
        identical raw values cell for cell."""
        limits = context.limits
        attributes = block.attributes
        transform = context.transform
        analysis = context.to_analysis(block.values, attributes)
        raw = block.values.copy()
        for j, attr in enumerate(attributes):
            if attr not in limits:
                continue
            lo, hi = limits.bounds(attr)
            col = analysis[..., j]
            with np.errstate(invalid="ignore"):
                outlying = np.isfinite(col) & ((col < lo) | (col > hi))
            if not outlying.any():
                continue
            clipped = np.clip(col[outlying], lo, hi)
            if transform is None:
                repaired = clipped
            elif transform.inverse is None:
                # Match the per-series path, which raises through
                # ``from_analysis`` whenever any attribute needs repair.
                raise ValidationError(f"transform {transform.name!r} has no inverse")
            elif attr == transform.attribute:
                with np.errstate(invalid="ignore", over="ignore"):
                    repaired = transform.inverse(clipped)
            else:
                repaired = clipped
            raw[..., j][outlying] = repaired
        return block.with_values(raw)
