"""Named construction of the paper's five strategies (Section 5.1).

* **Strategy 1** — MVN imputation for missing/inconsistent + Winsorization.
* **Strategy 2** — MVN imputation only (outliers ignored).
* **Strategy 3** — Winsorization only (missing/inconsistent ignored).
* **Strategy 4** — ideal-mean replacement only (outliers ignored).
* **Strategy 5** — ideal-mean replacement + Winsorization.

Plot-legend aliases from Figure 6 are also accepted ("impute only",
"winsorize only", ...).
"""

from __future__ import annotations

from repro.cleaning.base import CleaningStrategy, CompositeStrategy
from repro.cleaning.interpolation import InterpolationImputation
from repro.cleaning.mean_imputation import MeanImputation
from repro.cleaning.mvn_imputation import MvnImputation
from repro.cleaning.regression_imputation import RegressionImputation
from repro.cleaning.winsorize import WinsorizeOutliers
from repro.errors import CleaningError

__all__ = ["paper_strategies", "strategy_by_name", "STRATEGY_LABELS"]

#: Figure 6 legend labels, keyed by canonical strategy name.
STRATEGY_LABELS = {
    "strategy1": "Winsorize and impute",
    "strategy2": "Impute only",
    "strategy3": "Winsorize only",
    "strategy4": "Replace with mean",
    "strategy5": "Winsorize and replace with mean",
}

_ALIASES = {
    "winsorize and impute": "strategy1",
    "impute only": "strategy2",
    "winsorize only": "strategy3",
    "replace with mean": "strategy4",
    "winsorize and replace with mean": "strategy5",
    "s1": "strategy1",
    "s2": "strategy2",
    "s3": "strategy3",
    "s4": "strategy4",
    "s5": "strategy5",
}


def _build(canonical: str) -> CleaningStrategy:
    if canonical == "strategy1":
        return CompositeStrategy(
            "strategy1",
            mi_treatment=MvnImputation(),
            outlier_treatment=WinsorizeOutliers(),
        )
    if canonical == "strategy2":
        return CompositeStrategy("strategy2", mi_treatment=MvnImputation())
    if canonical == "strategy3":
        return CompositeStrategy("strategy3", outlier_treatment=WinsorizeOutliers())
    if canonical == "strategy4":
        return CompositeStrategy("strategy4", mi_treatment=MeanImputation())
    if canonical == "strategy5":
        return CompositeStrategy(
            "strategy5",
            mi_treatment=MeanImputation(),
            outlier_treatment=WinsorizeOutliers(),
        )
    if canonical == "interpolate":
        return CompositeStrategy("interpolate", mi_treatment=InterpolationImputation())
    if canonical == "interpolate+winsorize":
        return CompositeStrategy(
            "interpolate+winsorize",
            mi_treatment=InterpolationImputation(),
            outlier_treatment=WinsorizeOutliers(),
        )
    if canonical == "regression":
        return CompositeStrategy("regression", mi_treatment=RegressionImputation())
    raise CleaningError(f"unknown strategy {canonical!r}")


def strategy_by_name(name: str) -> CleaningStrategy:
    """Build one strategy by canonical name, alias, or Figure 6 legend label."""
    canonical = _ALIASES.get(name.strip().lower(), name.strip().lower())
    return _build(canonical)


def paper_strategies() -> list[CleaningStrategy]:
    """The paper's five strategies, in order."""
    return [strategy_by_name(f"strategy{i}") for i in range(1, 6)]
