"""Cost-limited cleaning: treat only the top-x% dirtiest series.

Section 5.2: "we computed the normalized glitch score, and ranked all the
series in the dirty data set by glitch score. We applied the cleaning
strategy to the top x% of the time series." The proportion cleaned is the
paper's cost proxy; sweeping it produces Figure 7.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cleaning.base import CleaningContext, CleaningStrategy
from repro.core.glitch_index import GlitchWeights, series_glitch_scores
from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.glitches.detectors import DetectorSuite
from repro.glitches.outliers import SigmaOutlierDetector
from repro.utils.validation import check_fraction

__all__ = ["PartialCleaner"]


class PartialCleaner(CleaningStrategy):
    """Wrap a strategy so it cleans only the dirtiest *fraction* of series.

    Series are ranked by their length-normalised weighted glitch score under
    the context-derived detector suite; ties at the cut-off are broken by
    original position (stable sort), mirroring the paper's note that ties can
    make the 0%-cleaned point not exactly identical to the dirty data
    (Figure 7's caption).

    Parameters
    ----------
    strategy:
        The underlying cleaning strategy.
    fraction:
        Share of series to clean (0.0 = nothing, 1.0 = everything).
    weights:
        Glitch-type weights used for ranking; defaults to the paper's.
    """

    def __init__(
        self,
        strategy: CleaningStrategy,
        fraction: float,
        weights: GlitchWeights | None = None,
    ):
        self.strategy = strategy
        self.fraction = check_fraction(fraction, "fraction")
        self.weights = weights or GlitchWeights()
        self.name = f"{strategy.name}@{int(round(self.fraction * 100))}%"

    @property
    def cost_fraction(self) -> float:
        """The cost proxy of Section 5.2: the configured cleaned fraction.

        This overrides :attr:`CleaningStrategy.cost_fraction` (1.0 for full
        strategies), so ``StrategyOutcome.cost_fraction`` lands on the sweep
        coordinate Figure 7 plots.
        """
        return self.fraction

    def _ranking_suite(self, context: CleaningContext) -> DetectorSuite:
        """The full detector suite (outlier limits from the ideal sample)."""
        return DetectorSuite(
            constraints=context.constraints,
            outlier_detector=SigmaOutlierDetector(context.limits),
            transform=context.transform,
        )

    def clean(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        if self.fraction == 0.0:
            return sample.copy()
        if self.fraction == 1.0:
            return self.strategy.clean(sample, context)
        # Rank with the full suite (outlier limits from the ideal sample).
        suite = self._ranking_suite(context)
        glitches = suite.annotate_dataset(sample)
        scores = series_glitch_scores(glitches, self.weights)
        n_clean = int(round(self.fraction * len(sample)))
        order = np.argsort(-scores, kind="stable")
        chosen = set(int(i) for i in order[:n_clean])
        if not chosen:
            return sample.copy()
        cleaned_subset = self.strategy.clean(
            sample.subset(sorted(chosen)), context
        )
        cleaned_iter = iter(cleaned_subset)
        out = []
        for i, series in enumerate(sample):
            if i in chosen:
                out.append(next(cleaned_iter))
            else:
                out.append(series.copy())
        return StreamDataset(out)

    def clean_block(
        self, block: SampleBlock, context: CleaningContext
    ) -> Optional[SampleBlock]:
        """Block path: whole-block ranking, then the wrapped strategy's block
        path on the chosen sub-block; the merge is one row scatter. ``None``
        (fall back to :meth:`clean`) when the wrapped strategy has no block
        path — capability is known before any random draw."""
        if self.fraction == 0.0:
            return block.copy()
        if self.fraction == 1.0:
            return self.strategy.clean_block(block, context)
        suite = self._ranking_suite(context)
        glitches = suite.annotate_block(block)
        scores = glitches.series_scores(self.weights.as_array())
        n_clean = int(round(self.fraction * block.n_series))
        order = np.argsort(-scores, kind="stable")
        chosen = sorted(int(i) for i in order[:n_clean])
        if not chosen:
            return block.copy()
        cleaned_subset = self.strategy.clean_block(block.take(chosen), context)
        if cleaned_subset is None:
            return None
        values = block.values.copy()
        values[np.asarray(chosen, dtype=np.intp)] = cleaned_subset.values
        return block.with_values(values)
