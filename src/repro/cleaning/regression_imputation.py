"""Regression imputation (extension strategy).

Deterministic counterpart of the MVN conditional draw: each attribute is
ridge-regressed on the others over the complete rows of the pooled sample,
and treatable cells are filled with the regression prediction (falling back
to the ideal mean when no predictor is observed). Sits between mean
replacement (no conditioning) and MVN draws (conditioning + noise) in the
distortion spectrum — the ablation benches use it to decompose *where* the
MI distortion comes from.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.base import CleaningContext, MissingInconsistentTreatment
from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.errors import CleaningError

__all__ = ["RegressionImputation"]


class RegressionImputation(MissingInconsistentTreatment):
    """Fill treatable cells with ridge-regression predictions.

    Parameters
    ----------
    ridge:
        L2 penalty (relative to predictor scale) keeping the normal equations
        well posed even when attributes are collinear.
    """

    name = "regression"
    supports_block = True

    def __init__(self, ridge: float = 1e-6):
        if ridge < 0:
            raise CleaningError("ridge must be >= 0")
        self.ridge = float(ridge)

    def _fit(self, pooled: np.ndarray) -> list[tuple[np.ndarray, float]]:
        """Per-target ``(coef, intercept)`` fitted on complete rows."""
        complete = pooled[~np.isnan(pooled).any(axis=1)]
        d = pooled.shape[1]
        if complete.shape[0] < d + 1:
            raise CleaningError(
                f"regression imputation needs > {d} complete rows, "
                f"got {complete.shape[0]}"
            )
        models: list[tuple[np.ndarray, float]] = []
        for target in range(d):
            predictors = [j for j in range(d) if j != target]
            x = complete[:, predictors]
            y = complete[:, target]
            x_mean = x.mean(axis=0)
            y_mean = y.mean()
            xc = x - x_mean
            yc = y - y_mean
            gram = xc.T @ xc
            penalty = self.ridge * max(float(np.trace(gram)) / max(d - 1, 1), 1e-12)
            coef = np.linalg.solve(gram + penalty * np.eye(d - 1), xc.T @ yc)
            intercept = float(y_mean - x_mean @ coef)
            models.append((coef, intercept))
        return models

    @staticmethod
    def _predict_series(
        analysis: np.ndarray, models: "list[tuple[np.ndarray, float]]"
    ) -> np.ndarray:
        """One series' analysis-scale values with regression-filled gaps.

        Shared by the per-series and block paths so the gap predictions are
        the same arithmetic (shape for shape) on both.
        """
        d = analysis.shape[1]
        filled = analysis.copy()
        for target in range(d):
            gaps = np.isnan(analysis[:, target])
            if not gaps.any():
                continue
            predictors = [j for j in range(d) if j != target]
            coef, intercept = models[target]
            x = analysis[np.ix_(np.flatnonzero(gaps), predictors)]
            usable = ~np.isnan(x).any(axis=1)
            pred = np.full(int(gaps.sum()), np.nan)
            pred[usable] = x[usable] @ coef + intercept
            filled[gaps, target] = pred
        return filled

    def apply(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        attributes = sample.attributes
        blanked: list[np.ndarray] = []
        masks: list[np.ndarray] = []
        for series in sample:
            mask = context.treatable_mask(series)
            values = series.values.copy()
            values[mask] = np.nan
            blanked.append(context.to_analysis(values, attributes))
            masks.append(mask)
        pooled = np.concatenate(blanked, axis=0)
        models = self._fit(pooled)
        means = context.ideal_means

        treated: list[TimeSeries] = []
        for series, analysis, mask in zip(sample, blanked, masks):
            filled = self._predict_series(analysis, models)
            raw_filled = context.from_analysis(filled, attributes)
            values = series.values.copy()
            values[mask] = raw_filled[mask]
            # Cells with no observed predictors fall back to the ideal mean.
            for j, attr in enumerate(attributes):
                hole = mask[:, j] & np.isnan(values[:, j])
                values[hole, j] = means[attr]
            treated.append(series.with_values(values))
        return StreamDataset(treated)

    def apply_block(self, block: SampleBlock, context: CleaningContext) -> SampleBlock:
        """Block path: vectorised blanking/transform/pooling and one model
        fit; the per-series gap predictions replay the per-series arithmetic
        (same matrix shapes) so the result is bitwise-identical to
        :meth:`apply`."""
        attributes = block.attributes
        mask = context.treatable_mask_values(block.values, attributes)
        blanked = block.values.copy()
        blanked[mask] = np.nan
        analysis = context.to_analysis(blanked, attributes)
        pooled = analysis.reshape(-1, analysis.shape[-1])
        models = self._fit(pooled)
        means = context.ideal_means

        filled = np.empty_like(analysis)
        for i in range(block.n_series):
            filled[i] = self._predict_series(analysis[i], models)
        raw_filled = context.from_analysis(filled, attributes)
        values = block.values.copy()
        values[mask] = raw_filled[mask]
        for j, attr in enumerate(attributes):
            col = values[..., j]
            hole = mask[..., j] & np.isnan(col)
            col[hole] = means[attr]
        return block.with_values(values)
