"""Three-dimensional trade-off analysis: choosing a viable strategy.

The paper's framework "helps the user identify viable data cleaning
strategies, and choose the most suitable from among them" (Section 2.1) under
three criteria — glitch improvement (maximise), statistical distortion
(minimise) and cost (minimise). This module provides the decision-support
layer: Pareto dominance over the three axes, knee-point selection on the
improvement/distortion plane (Figure 2's budget story), and constraint-based
filtering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.evaluation import StrategySummary
from repro.errors import ExperimentError

__all__ = [
    "TradeoffPoint",
    "tradeoff_points",
    "pareto_front",
    "knee_point",
    "viable_strategies",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One strategy's coordinates in the three-dimensional metric space."""

    strategy: str
    improvement: float
    distortion: float
    cost: float

    @classmethod
    def from_summary(cls, summary: StrategySummary) -> "TradeoffPoint":
        """Project a :class:`StrategySummary` onto the three axes."""
        return cls(
            strategy=summary.strategy,
            improvement=summary.improvement_mean,
            distortion=summary.distortion_mean,
            cost=summary.cost_fraction,
        )

    def dominates(self, other: "TradeoffPoint", tol: float = 1e-12) -> bool:
        """True if this point is at least as good on all axes and strictly
        better on one (improvement up, distortion down, cost down)."""
        at_least = (
            self.improvement >= other.improvement - tol
            and self.distortion <= other.distortion + tol
            and self.cost <= other.cost + tol
        )
        strictly = (
            self.improvement > other.improvement + tol
            or self.distortion < other.distortion - tol
            or self.cost < other.cost - tol
        )
        return at_least and strictly


def _as_points(
    items: Iterable[StrategySummary | TradeoffPoint],
) -> list[TradeoffPoint]:
    points = []
    for item in items:
        if isinstance(item, TradeoffPoint):
            points.append(item)
        else:
            points.append(TradeoffPoint.from_summary(item))
    if not points:
        raise ExperimentError("need at least one strategy point")
    return points


def tradeoff_points(result) -> list[TradeoffPoint]:
    """Three-axis points of every strategy in an experiment result.

    Accepts an :class:`~repro.core.framework.ExperimentResult` (anything
    with a ``summaries()`` method) and projects each per-strategy summary
    onto the (improvement, distortion, cost) axes — the one-liner between a
    finished run and :func:`pareto_front` / :func:`knee_point`.
    """
    return [TradeoffPoint.from_summary(s) for s in result.summaries()]


def pareto_front(
    items: Iterable[StrategySummary | TradeoffPoint],
) -> list[TradeoffPoint]:
    """Non-dominated strategies under the three-dimensional metric.

    These are the *viable* strategies: for any strategy off the front there
    is another that is no worse on every axis and better on at least one.
    """
    points = _as_points(items)
    front = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return front


def viable_strategies(
    items: Iterable[StrategySummary | TradeoffPoint],
    max_distortion: Optional[float] = None,
    min_improvement: Optional[float] = None,
    max_cost: Optional[float] = None,
) -> list[TradeoffPoint]:
    """Pareto-front strategies that also satisfy the user's hard limits.

    Mirrors the paper's user stories: "a user who is required by corporate
    mandate to have no missing values" sets ``min_improvement``; "a user who
    wishes to capture the underlying distribution" sets ``max_distortion``.
    """
    front = pareto_front(items)
    out = []
    for p in front:
        if max_distortion is not None and p.distortion > max_distortion:
            continue
        if min_improvement is not None and p.improvement < min_improvement:
            continue
        if max_cost is not None and p.cost > max_cost:
            continue
        out.append(p)
    return out


def knee_point(
    items: Iterable[StrategySummary | TradeoffPoint],
) -> TradeoffPoint:
    """The knee of the improvement/distortion trade-off.

    Coordinates are min-max normalised; the knee is the point maximising
    (normalised improvement - normalised distortion) — the strategy buying
    the most glitch removal per unit of distortion. With a single candidate
    the candidate is returned.
    """
    points = _as_points(items)
    if len(points) == 1:
        return points[0]
    imp = np.array([p.improvement for p in points])
    dist = np.array([p.distortion for p in points])

    def norm(x: np.ndarray) -> np.ndarray:
        span = x.max() - x.min()
        if span == 0:
            return np.zeros_like(x)
        return (x - x.min()) / span

    score = norm(imp) - norm(dist)
    return points[int(np.argmax(score))]
