"""The paper's primary contribution: the three-dimensional data-quality
metric (glitch improvement, statistical distortion, cost) and the
sampling-based experimental framework that evaluates cleaning strategies
along those axes.
"""

from repro.core.cost import CostSweepResult, cost_sweep
from repro.core.distortion import (
    StreamingDistortion,
    slab_streams,
    statistical_distortion,
    statistical_distortion_batch,
    statistical_distortion_stream,
)
from repro.core.evaluation import (
    StrategyOutcome,
    StrategySummary,
    glitch_fraction_table,
    summarize_outcomes,
)
from repro.core.cluster import ClusterBackend, local_workers, start_local_workers
from repro.core.executor import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.core.framework import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    evaluate_pair_outcomes,
    run_pair_stream,
)
from repro.core.glitch_index import (
    GlitchWeights,
    glitch_improvement,
    glitch_index,
    series_glitch_scores,
)
from repro.core.pipeline import (
    Pipeline,
    ShardSpec,
    ShardedStage,
    build_shards,
    plan_shards,
)
from repro.core.streaming import (
    StreamingExperiment,
    StreamingResult,
    run_streaming_experiment,
    streaming_enabled,
)
from repro.core.tradeoff import (
    TradeoffPoint,
    knee_point,
    pareto_front,
    tradeoff_points,
    viable_strategies,
)

__all__ = [
    "GlitchWeights",
    "glitch_index",
    "glitch_improvement",
    "series_glitch_scores",
    "statistical_distortion",
    "statistical_distortion_batch",
    "statistical_distortion_stream",
    "StreamingDistortion",
    "slab_streams",
    "ExperimentConfig",
    "ExperimentRunner",
    "ExperimentResult",
    "evaluate_pair_outcomes",
    "run_pair_stream",
    "StreamingExperiment",
    "StreamingResult",
    "run_streaming_experiment",
    "streaming_enabled",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ClusterBackend",
    "start_local_workers",
    "local_workers",
    "resolve_backend",
    "Pipeline",
    "ShardSpec",
    "ShardedStage",
    "plan_shards",
    "build_shards",
    "StrategyOutcome",
    "StrategySummary",
    "summarize_outcomes",
    "glitch_fraction_table",
    "cost_sweep",
    "CostSweepResult",
    "TradeoffPoint",
    "tradeoff_points",
    "pareto_front",
    "knee_point",
    "viable_strategies",
]
