"""The paper's primary contribution: the three-dimensional data-quality
metric (glitch improvement, statistical distortion, cost) and the
sampling-based experimental framework that evaluates cleaning strategies
along those axes.
"""

from repro.core.cost import CostSweepResult, cost_sweep
from repro.core.distortion import statistical_distortion
from repro.core.evaluation import (
    StrategyOutcome,
    StrategySummary,
    glitch_fraction_table,
    summarize_outcomes,
)
from repro.core.framework import ExperimentConfig, ExperimentResult, ExperimentRunner
from repro.core.glitch_index import (
    GlitchWeights,
    glitch_improvement,
    glitch_index,
    series_glitch_scores,
)
from repro.core.tradeoff import TradeoffPoint, knee_point, pareto_front, viable_strategies

__all__ = [
    "GlitchWeights",
    "glitch_index",
    "glitch_improvement",
    "series_glitch_scores",
    "statistical_distortion",
    "ExperimentConfig",
    "ExperimentRunner",
    "ExperimentResult",
    "StrategyOutcome",
    "StrategySummary",
    "summarize_outcomes",
    "glitch_fraction_table",
    "cost_sweep",
    "CostSweepResult",
    "TradeoffPoint",
    "pareto_front",
    "knee_point",
    "viable_strategies",
]
