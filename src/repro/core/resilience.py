"""Retry policy with deterministic backoff for pure work units.

Work units in this library are pure functions of ``(item, pre-spawned RNG
stream)`` — the determinism contract that makes every backend bitwise-
identical also makes *retry-anywhere* sound: re-running a failed unit
cannot change any other unit's result, so the retried run's payload is
bitwise-identical to a clean run.

:class:`RetryPolicy` is the single knob surface:

* ``max_attempts`` — total tries per unit (``REPRO_RETRIES``; 1 disables),
* exponential backoff capped at ``max_delay`` with *seeded* jitter — the
  jitter stream is keyed on ``(jitter_seed, unit, attempt)``, so two runs
  of the same plan sleep identically (no wall-clock entropy),
* ``unit_timeout`` — per-unit watchdog seconds. The process backend uses it
  to declare a wedged pool dead; the serial, thread and cluster backends
  apply it *in-process* (``guard_timeout=True``) so a single wedged unit
  raises :class:`~repro.errors.UnitTimeoutError` — retryable like any other
  transient — instead of hanging the map (``REPRO_UNIT_TIMEOUT``;
  unset/0 disables).

:func:`resilient` wraps a work-unit callable in a picklable retrying
proxy; :func:`is_retryable` encodes which failures are worth retrying
(transient injected faults and unexpected runtime errors — not validation
or shape errors, which are deterministic and would fail identically again).

:func:`record_degradation` / :func:`drain_degradations` are the provenance
channel for ladder steps: when a backend falls back (process→thread→serial,
cluster→local), the event is recorded here as well as warned, and the
framework attaches the drained events to the run's
:class:`~repro.core.framework.ExperimentResult` so a silently degraded run
is visible in saved outcomes.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import (
    FaultInjectedError,
    ReproError,
    UnitTimeoutError,
    ValidationError,
)

__all__ = [
    "RETRIES_ENV_VAR",
    "UNIT_TIMEOUT_ENV_VAR",
    "RetryPolicy",
    "resolve_retry_policy",
    "is_retryable",
    "Resilient",
    "resilient",
    "record_degradation",
    "drain_degradations",
]

RETRIES_ENV_VAR = "REPRO_RETRIES"
UNIT_TIMEOUT_ENV_VAR = "REPRO_UNIT_TIMEOUT"

_DEFAULT_MAX_ATTEMPTS = 3


def is_retryable(exc: BaseException) -> bool:
    """Whether retrying the same pure unit could plausibly succeed.

    Injected faults are transient by construction (the registry counts
    hits), and so is a unit-timeout watchdog trip — a wedged unit is an
    environmental accident, not a property of the unit.  Library errors
    other than those are deterministic — a
    ``ValidationError`` or ``DataShapeError`` fails the same way every
    time — as is ``MemoryError``.  Anything else (I/O hiccups, pool
    plumbing, OS-level transients) is worth another attempt.
    """
    if isinstance(exc, (FaultInjectedError, UnitTimeoutError)):
        return True
    if isinstance(exc, (ReproError, MemoryError)):
        return False
    return isinstance(exc, Exception)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter."""

    max_attempts: int = _DEFAULT_MAX_ATTEMPTS
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter_seed: int = 0
    unit_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("backoff delays must be non-negative")
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ValidationError(
                f"unit_timeout must be positive (or None), got {self.unit_timeout}"
            )

    def delay(self, attempt: int, unit: int = 0) -> float:
        """Sleep before retry number ``attempt`` (0-based) of ``unit``.

        Deterministic: the jitter factor in ``[0.5, 1.5)`` comes from a
        generator seeded on ``(jitter_seed, unit, attempt)``, never the
        clock, so backoff schedules are reproducible run-over-run.
        """
        base = min(self.base_delay * (2.0 ** attempt), self.max_delay)
        rng = np.random.default_rng([self.jitter_seed, unit, attempt])
        return base * (0.5 + rng.random())

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        retryable: Callable[[BaseException], bool] = is_retryable,
        unit: int = 0,
        **kwargs: Any,
    ) -> Any:
        """Run ``fn(*args, **kwargs)``, retrying per this policy."""
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except Exception as exc:
                if attempt + 1 >= self.max_attempts or not retryable(exc):
                    raise
                pause = self.delay(attempt, unit=unit)
                if pause > 0:
                    time.sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover


def resolve_retry_policy(
    policy: Optional[RetryPolicy] = None, **overrides: Any
) -> RetryPolicy:
    """An explicit policy wins; otherwise build one from the environment.

    ``REPRO_RETRIES`` sets ``max_attempts`` (min 1); ``REPRO_UNIT_TIMEOUT``
    sets ``unit_timeout`` in seconds (unset, empty, or ``<= 0`` disables).
    """
    if policy is not None:
        return replace(policy, **overrides) if overrides else policy
    kwargs = dict(overrides)
    raw = os.environ.get(RETRIES_ENV_VAR, "").strip()
    if raw and "max_attempts" not in kwargs:
        try:
            kwargs["max_attempts"] = max(1, int(raw))
        except ValueError:
            raise ValidationError(
                f"{RETRIES_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    raw = os.environ.get(UNIT_TIMEOUT_ENV_VAR, "").strip()
    if raw and "unit_timeout" not in kwargs:
        try:
            seconds = float(raw)
        except ValueError:
            raise ValidationError(
                f"{UNIT_TIMEOUT_ENV_VAR} must be a number of seconds, got {raw!r}"
            ) from None
        kwargs["unit_timeout"] = seconds if seconds > 0 else None
    return RetryPolicy(**kwargs)


class _TimeoutGuard:
    """Picklable per-unit watchdog: run ``fn`` in a daemon thread, give up
    after ``seconds``.

    The timed-out thread is abandoned (Python cannot kill it), which is
    safe here because work units are pure — an orphaned computation cannot
    corrupt shared state, and its eventual result is simply discarded. The
    caller sees :class:`~repro.errors.UnitTimeoutError`, which
    :func:`is_retryable` treats as transient.
    """

    def __init__(self, fn: Callable[..., Any], seconds: float):
        self.fn = fn
        self.seconds = float(seconds)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        box: dict[str, Any] = {}

        def target() -> None:
            try:
                box["value"] = self.fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        thread.join(self.seconds)
        if thread.is_alive():
            raise UnitTimeoutError(
                f"work unit exceeded unit_timeout={self.seconds}s; "
                "abandoning the wedged attempt (pure units are safe to re-run)"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_TimeoutGuard({self.fn!r}, seconds={self.seconds})"


class Resilient:
    """Picklable retrying proxy around a work-unit callable.

    A plain class (not a closure) so process backends can ship it to
    workers; equality/hash delegate to the wrapped pieces so backends that
    key on the map function keep working. With ``guard_timeout`` set and a
    policy ``unit_timeout``, every attempt runs under a per-unit
    :class:`_TimeoutGuard` watchdog.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        policy: RetryPolicy,
        guard_timeout: bool = False,
    ):
        self.fn = fn
        self.policy = policy
        self.guard_timeout = bool(guard_timeout)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        fn = self.fn
        if self.guard_timeout and self.policy.unit_timeout:
            fn = _TimeoutGuard(fn, self.policy.unit_timeout)
        return self.policy.call(fn, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resilient({self.fn!r}, attempts={self.policy.max_attempts})"


def resilient(
    fn: Callable[..., Any],
    policy: Optional[RetryPolicy] = None,
    guard_timeout: bool = False,
) -> Callable[..., Any]:
    """Wrap ``fn`` per ``policy`` (env-resolved when ``None``).

    Returns ``fn`` unchanged when the wrapper would be a no-op (retries
    disabled and no in-process timeout to enforce) so the no-fault fast
    path adds zero call overhead. ``guard_timeout`` opts in to the
    per-attempt :class:`_TimeoutGuard` — used by the serial, thread and
    cluster paths; the process backend keeps its pool-level watchdog
    instead (a guard thread inside a pool worker could not terminate a
    wedged C extension either, while terminating the pool can).
    """
    resolved = resolve_retry_policy(policy)
    guard = bool(guard_timeout and resolved.unit_timeout)
    if resolved.max_attempts <= 1 and not guard:
        return fn
    return Resilient(fn, resolved, guard_timeout=guard)


# ---------------------------------------------------------------------------
# Degradation provenance
# ---------------------------------------------------------------------------

# Process-wide, thread-safe ledger of backend ladder steps. Backends append
# via record_degradation() at the moment they fall back; the framework
# drains the ledger after each map and attaches the events to the run's
# ExperimentResult, so provenance survives into saved outcomes instead of
# evaporating with the warning stream.
_degradations: list[str] = []
_degradations_lock = threading.Lock()


def record_degradation(event: str) -> None:
    """Record one backend ladder step (also warned by the caller)."""
    with _degradations_lock:
        _degradations.append(str(event))


def drain_degradations() -> list[str]:
    """Return and clear every degradation recorded since the last drain."""
    with _degradations_lock:
        events = list(_degradations)
        _degradations.clear()
    return events
