"""The experimental framework (Sections 2.1.1 and 4).

:class:`ExperimentRunner` drives the full loop:

1. generate ``R`` replication pairs ``(Di, DiI)`` by whole-series sampling
   with replacement from the dirty and ideal populations;
2. per replication, derive the cleaning context from ``DiI`` (sigma limits on
   the analysis scale, ideal means) — so the sampling variability of the
   limits across runs is faithfully present (Figure 4's caption);
3. apply every candidate strategy to ``Di``;
4. score glitch improvement with the weighted glitch index and statistical
   distortion with the configured distance (EMD by default).

Replications are independent by construction — each draws from its own
pre-spawned random stream — so the loop is expressed as picklable per-pair
work units evaluated through an :mod:`execution backend
<repro.core.executor>`. Serial, threaded and multi-process runs of the same
config produce identical outcome lists; pick the backend through
``ExperimentConfig(backend=...)``, the runner's ``backend`` argument, or the
``REPRO_BACKEND`` environment variable.

The outcome stream feeds Figures 6 and 7 and Table 1 directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Optional, Sequence, Union

from repro.cleaning.base import CleaningContext, CleaningStrategy
from repro.core.distortion import _pooled_analysis, statistical_distortion_batch
from repro.core.evaluation import StrategyOutcome, StrategySummary, summarize_outcomes
from repro.core.executor import ExecutionBackend, parse_backend_spec, resolve_backend
from repro.core.resilience import drain_degradations
from repro.core.glitch_index import (
    GlitchWeights,
    series_glitch_scores,
    series_glitch_scores_block,
)
from repro.data.block import block_fast_path_enabled
from repro.data.dataset import StreamDataset
from repro.distance.base import Distance
from repro.distance.emd import EarthMoverDistance
from repro.errors import ExperimentError
from repro.glitches.constraints import ConstraintSet, paper_constraints
from repro.glitches.detectors import DetectorSuite, ScaleTransform
from repro.glitches.outliers import SigmaOutlierDetector
from repro.sampling.replication import TestPair, generate_test_pairs
from repro.testing.faults import inject_fault
from repro.utils.rng import Seed, spawn_generators
from repro.utils.validation import check_positive_int

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "evaluate_pair_outcomes",
    "evaluate_pair_panels",
    "run_pair_stream",
    "run_pair_panels_stream",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one experimental configuration.

    The paper's three Figure 6 panels are
    ``ExperimentConfig(sample_size=100, log_transform=True)`` (a),
    ``... log_transform=False`` (b) and ``... sample_size=500`` (c), all with
    ``n_replications=50``.

    ``backend`` names the execution backend evaluating the replication work
    units (``"serial"``/``"thread"``/``"process"``, optionally with a worker
    count as in ``"process:4"``); ``None`` defers to the ``REPRO_BACKEND``
    environment variable and falls back to serial. The backend never changes
    the numbers — only the wall clock. ``n_workers`` sizes worker-aware
    backends (default: all available CPUs).

    ``streaming`` selects the out-of-core slab engine
    (:mod:`repro.core.streaming`) for drivers that support both paths:
    ``True``/``False`` pin it, ``None`` defers to the ``REPRO_STREAM``
    environment variable and falls back to the in-memory path. Like the
    backend, streaming is a pure execution choice — the streamed experiment
    is bitwise-identical to the materialised one.

    ``distance`` names the distortion distance by its registered identifier
    (``"emd"``/``"kl"``/``"js"``/``"ks"``/...; see
    :data:`repro.distance.DISTANCES`); ``None`` keeps the paper's EMD. An
    explicit :class:`~repro.distance.base.Distance` *instance* passed to a
    runner or evaluator always wins over the config name. Both engines
    honour the selector, so a block run and a streamed run of the same
    config score with the same distance — and stay bitwise-identical to
    each other.
    """

    n_replications: int = 50
    sample_size: int = 100
    log_transform: bool = True
    sigma_k: float = 3.0
    seed: Seed = 0
    backend: Optional[str] = None
    n_workers: Optional[int] = None
    streaming: Optional[bool] = None
    distance: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive_int(self.n_replications, "n_replications")
        check_positive_int(self.sample_size, "sample_size")
        if self.sigma_k <= 0:
            raise ExperimentError("sigma_k must be positive")
        if self.backend is not None:
            parse_backend_spec(self.backend)
        if self.n_workers is not None:
            check_positive_int(self.n_workers, "n_workers")
        if self.streaming is not None and not isinstance(self.streaming, bool):
            raise ExperimentError(
                f"streaming must be None or a bool, got {self.streaming!r}"
            )
        if self.distance is not None:
            from repro.distance import parse_distance_spec

            parse_distance_spec(self.distance)

    @property
    def transform(self) -> Optional[ScaleTransform]:
        """The analysis-scale transform implied by ``log_transform``."""
        return ScaleTransform.log_attr1() if self.log_transform else None

    def make_distance(self) -> Distance:
        """The configured distortion distance, freshly instantiated.

        The paper's :class:`~repro.distance.emd.EarthMoverDistance` when
        ``distance`` is ``None``, otherwise the registered class named by
        the selector with its default parameters (construct an instance and
        pass it explicitly for non-default parameters).
        """
        if self.distance is None:
            return EarthMoverDistance()
        from repro.distance import distance_by_name

        return distance_by_name(self.distance)

    def variant(self, **changes) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class ExperimentResult:
    """All outcomes of one experiment run.

    ``degradations`` is execution provenance, not an outcome: the backend
    ladder steps (process→thread→serial, cluster→local) the run survived,
    drained from :func:`~repro.core.resilience.drain_degradations`. A run
    that silently fell back to a slower backend is thereby visible in
    saved outcomes — the outcome floats themselves are unchanged by any
    ladder step (units are pure).
    """

    config: ExperimentConfig
    outcomes: list[StrategyOutcome] = field(default_factory=list)
    degradations: list[str] = field(default_factory=list)

    def __getattr__(self, name: str):
        # Results unpickled from catalogs written before degradation
        # provenance existed lack the attribute; treat them as clean runs.
        if name == "degradations":
            return []
        raise AttributeError(name)

    @property
    def n_degraded(self) -> int:
        """Number of backend ladder steps this run survived."""
        return len(self.degradations)

    @property
    def strategies(self) -> list[str]:
        """Strategy names in first-appearance order."""
        seen: dict[str, None] = {}
        for o in self.outcomes:
            seen.setdefault(o.strategy, None)
        return list(seen)

    def for_strategy(self, name: str) -> list[StrategyOutcome]:
        """Outcomes of one strategy across replications."""
        return [o for o in self.outcomes if o.strategy == name]

    def summaries(self) -> list[StrategySummary]:
        """Per-strategy mean/std aggregates."""
        return summarize_outcomes(self.outcomes)

    def scatter(self, name: str) -> tuple[list[float], list[float]]:
        """(improvement, distortion) point lists for one strategy — one
        Figure 6 glyph series."""
        rows = self.for_strategy(name)
        return [r.improvement for r in rows], [r.distortion for r in rows]


def _shared_context(template: CleaningContext, seed: Seed) -> CleaningContext:
    """A per-panel cleaning context sharing *template*'s derived state.

    The derived statistics (sigma limits, replacement means) are pure
    functions of the ideal sample, and everything in the memo is a pure
    function of its key (the :meth:`CleaningContext.memo` contract), so
    sharing them across panels only skips bitwise-identical recomputation.
    The random stream is **not** shared — each panel consumes its own
    *seed*, exactly as it would in a standalone run.
    """
    ctx = CleaningContext(
        ideal=template.ideal,
        transform=template.transform,
        constraints=template.constraints,
        sigma_k=template.sigma_k,
        seed=seed,
        ideal_block=template.ideal_block,
    )
    ctx._memo = template._memo
    for name in ("limits", "ideal_means", "analysis_means"):
        if name in template.__dict__:
            ctx.__dict__[name] = template.__dict__[name]
    return ctx


def evaluate_pair_panels(
    pair: TestPair,
    panels: Sequence[Sequence[CleaningStrategy]],
    config: ExperimentConfig,
    distances: Optional[Sequence[Optional[Distance]]] = None,
    weights: Optional[GlitchWeights] = None,
    constraints: Optional[ConstraintSet] = None,
    seeds: Optional[Sequence[Seed]] = None,
) -> list[list[StrategyOutcome]]:
    """Evaluate many strategy panels on one replication pair, sharing the
    dirty reference frame.

    The sweep planner's work-sharing core: all panels of one shared-frame
    cell group see the same pair, so the expensive panel-independent work —
    the cleaning context's sigma limits, the detector suite, the dirty
    sample's glitch annotation, and the pooled dirty reference rows of the
    distortion distance — is computed **once** and reused, while everything
    panel-dependent stays per panel: each panel cleans with its own random
    stream (*seeds*, one per panel), and each panel's distortion grid spans
    its own pooled union (the shared-support semantics of
    :func:`~repro.core.distortion.statistical_distortion_batch` make the
    grid a function of the panel composition, so merging panels would
    change the numbers — sharing stops exactly where bitwise identity
    would break).

    *distances* supplies one distance per panel (``None`` entries — or the
    argument itself being ``None`` — fall back to a fresh
    ``config.make_distance()`` per panel, matching the one-instance-per-run
    layout of the standalone path). Returns one outcome list per panel, in
    panel order; a single-panel call is exactly
    :func:`evaluate_pair_outcomes`.
    """
    panels = [list(panel) for panel in panels]
    if not panels:
        raise ExperimentError("need at least one strategy panel")
    weights = weights or GlitchWeights()
    constraints = constraints if constraints is not None else paper_constraints()
    panel_distances = [
        (distances[k] if distances is not None and distances[k] is not None
         else config.make_distance())
        for k in range(len(panels))
    ]
    panel_seeds = list(seeds) if seeds is not None else [None] * len(panels)
    if len(panel_seeds) != len(panels):
        raise ExperimentError(
            f"got {len(panel_seeds)} seeds for {len(panels)} panels"
        )
    template = CleaningContext(
        ideal=pair.ideal,
        transform=config.transform,
        constraints=constraints,
        sigma_k=config.sigma_k,
        seed=None,
        ideal_block=getattr(pair, "ideal_block", None),
    )
    suite = DetectorSuite(
        constraints=constraints,
        outlier_detector=SigmaOutlierDetector(template.limits),
        transform=config.transform,
    )
    block = getattr(pair, "dirty_block", None)
    use_block = block is not None and block_fast_path_enabled()
    # Glitch indexes are reported per reference sample of 100 series, so
    # experiments with different B land on directly comparable axes —
    # the paper's Figures 6(a) and 6(c) (B = 100 vs 500) share their
    # improvement axis, which only works under such a normalisation.
    if use_block:
        per_100 = 100.0 / block.n_series
        dirty_glitches = suite.annotate_block(block)
        g_dirty = per_100 * float(
            series_glitch_scores_block(dirty_glitches, weights).sum()
        )
    else:
        per_100 = 100.0 / len(pair.dirty)
        dirty_glitches = suite.annotate_dataset(pair.dirty)
        g_dirty = per_100 * float(
            series_glitch_scores(dirty_glitches, weights).sum()
        )
    dirty_fractions = dirty_glitches.record_fractions()
    # The pooled dirty reference is panel-independent (for one NaN
    # semantics); pool it once per semantics and hand it to every panel's
    # batched distortion call.
    pooled_refs: dict[bool, object] = {}

    results: list[list[StrategyOutcome]] = []
    for panel, distance, seed in zip(panels, panel_distances, panel_seeds):
        context = _shared_context(template, seed)
        keep_partial = not getattr(distance, "complete_case", True)
        if keep_partial not in pooled_refs:
            pooled_refs[keep_partial] = _pooled_analysis(
                block if use_block else pair.dirty,
                config.transform,
                keep_partial=keep_partial,
            )
        if use_block:
            treated_list: list = []
            for strategy in panel:
                # A strategy without a block implementation transparently
                # falls back to its per-series ``clean`` (on zero-copy
                # views) for just that panel slot.
                treated = strategy.clean_block(block, context)
                if treated is None:
                    treated = strategy.clean(pair.dirty, context).to_block()
                treated_list.append(treated)
            distortions = statistical_distortion_batch(
                block, treated_list, distance=distance,
                transform=config.transform,
                pooled_reference=pooled_refs[keep_partial],
            )
        else:
            treated_list = [
                strategy.clean(pair.dirty, context) for strategy in panel
            ]
            distortions = statistical_distortion_batch(
                pair.dirty, treated_list, distance=distance,
                transform=config.transform,
                pooled_reference=pooled_refs[keep_partial],
            )
        # Derived statistics a panel computed lazily (replacement means,
        # say) are pure — promote them so later panels reuse instead of
        # recompute.
        for name in ("limits", "ideal_means", "analysis_means"):
            if name in context.__dict__ and name not in template.__dict__:
                template.__dict__[name] = context.__dict__[name]
        outcomes = []
        for strategy, treated, distortion in zip(panel, treated_list, distortions):
            if use_block:
                treated_glitches = suite.annotate_block(treated)
                g_treated = per_100 * float(
                    series_glitch_scores_block(treated_glitches, weights).sum()
                )
            else:
                treated_glitches = suite.annotate_dataset(treated)
                g_treated = per_100 * float(
                    series_glitch_scores(treated_glitches, weights).sum()
                )
            outcomes.append(
                StrategyOutcome(
                    strategy=strategy.name,
                    replication=pair.index,
                    improvement=g_dirty - g_treated,
                    distortion=distortion,
                    glitch_index_dirty=g_dirty,
                    glitch_index_treated=g_treated,
                    dirty_fractions=dict(dirty_fractions),
                    treated_fractions=dict(treated_glitches.record_fractions()),
                    cost_fraction=float(strategy.cost_fraction),
                )
            )
        results.append(outcomes)
    return results


def evaluate_pair_outcomes(
    pair: TestPair,
    strategies: Sequence[CleaningStrategy],
    config: ExperimentConfig,
    distance: Optional[Distance] = None,
    weights: Optional[GlitchWeights] = None,
    constraints: Optional[ConstraintSet] = None,
    seed: Seed = None,
) -> list[StrategyOutcome]:
    """Evaluate every strategy on one replication pair.

    Module-level (and free of runner state) so a ``functools.partial`` of it
    pickles cleanly into process-pool workers. Strategies are cleaned first
    in list order — preserving the per-replication random stream layout of
    the serial loop — then all treated samples are scored against the dirty
    sample in one batched distortion call, which bins the dirty side once on
    a grid shared by the whole strategy panel.

    Pairs carrying a columnar :class:`~repro.data.block.SampleBlock` (the
    default for uniform-length populations, see ``generate_test_pairs``) run
    the whole clean → annotate → score loop on block tensors — bitwise-
    identical outcomes, a fraction of the wall clock. ``REPRO_BLOCK=0``
    forces the per-series reference path.

    The single-panel specialisation of :func:`evaluate_pair_panels`.
    """
    return evaluate_pair_panels(
        pair,
        [strategies],
        config,
        distances=[distance] if distance is not None else None,
        weights=weights,
        constraints=constraints,
        seeds=[seed],
    )[0]


@dataclass(frozen=True)
class _RunSpec:
    """Everything a worker needs to evaluate one replication pair.

    Shipped (pickled) to process-pool workers once per chunk; deliberately
    excludes the populations — workers receive already-sampled pairs.
    """

    config: ExperimentConfig
    strategies: tuple[CleaningStrategy, ...]
    distance: Distance
    weights: GlitchWeights
    constraints: ConstraintSet


def _evaluate_work_unit(spec: _RunSpec, unit: tuple) -> list[StrategyOutcome]:
    """Evaluate one ``(pair, seed)`` work unit under a run spec."""
    inject_fault("unit")
    pair, seed = unit
    return evaluate_pair_outcomes(
        pair,
        spec.strategies,
        config=spec.config,
        distance=spec.distance,
        weights=spec.weights,
        constraints=spec.constraints,
        seed=seed,
    )


def run_pair_stream(
    pairs,
    strategies: Sequence[CleaningStrategy],
    config: ExperimentConfig,
    distance: Optional[Distance] = None,
    weights: Optional[GlitchWeights] = None,
    constraints: Optional[ConstraintSet] = None,
    backend: Union[None, str, ExecutionBackend] = None,
) -> ExperimentResult:
    """Evaluate all strategies over an already-drawn stream of test pairs.

    The evaluation half of :meth:`ExperimentRunner.run`, factored out so
    pair *producers* are pluggable: the runner feeds it pairs sampled from
    materialised populations, the streaming slab engine feeds it pairs
    gathered from a bounded parent subset — the per-replication strategy
    seed streams, work-unit layout and backend fan-out are shared, which is
    what keeps the two paths' outcomes bitwise-identical.

    *pairs* must yield ``config.n_replications`` pairs in replication order;
    the serial backend consumes the stream lazily (one pair in memory at a
    time), parallel backends materialise it to dispatch.
    """
    if not strategies:
        raise ExperimentError("need at least one strategy")
    names = [s.name for s in strategies]
    if len(set(names)) != len(names):
        raise ExperimentError(f"duplicate strategy names: {names}")
    # Independent per-replication streams for the stochastic treatments.
    strategy_seeds = spawn_generators(
        config.seed if not isinstance(config.seed, int) else config.seed + 1,
        config.n_replications,
    )
    spec = _RunSpec(
        config=config,
        strategies=tuple(strategies),
        distance=distance or config.make_distance(),
        weights=weights or GlitchWeights(),
        constraints=constraints if constraints is not None else paper_constraints(),
    )
    resolved = resolve_backend(
        backend if backend is not None else config.backend,
        n_workers=config.n_workers,
    )
    batches = resolved.map(
        partial(_evaluate_work_unit, spec), zip(pairs, strategy_seeds)
    )
    result = ExperimentResult(config=config)
    result.degradations.extend(drain_degradations())
    for batch in batches:
        result.outcomes.extend(batch)
    return result


@dataclass(frozen=True)
class _PanelsSpec:
    """Everything a worker needs to evaluate one pair across many panels."""

    config: ExperimentConfig
    panels: tuple[tuple[CleaningStrategy, ...], ...]
    distances: tuple[Distance, ...]
    weights: GlitchWeights
    constraints: ConstraintSet


def _evaluate_panels_unit(spec: _PanelsSpec, unit: tuple) -> list[list[StrategyOutcome]]:
    """Evaluate one ``(pair, per-panel seeds)`` work unit under a spec."""
    inject_fault("unit")
    pair, seeds = unit
    return evaluate_pair_panels(
        pair,
        spec.panels,
        config=spec.config,
        distances=spec.distances,
        weights=spec.weights,
        constraints=spec.constraints,
        seeds=seeds,
    )


def run_pair_panels_stream(
    pairs,
    panels: Sequence[Sequence[CleaningStrategy]],
    config: ExperimentConfig,
    distances: Optional[Sequence[Optional[Distance]]] = None,
    weights: Optional[GlitchWeights] = None,
    constraints: Optional[ConstraintSet] = None,
    backend: Union[None, str, ExecutionBackend] = None,
    result_configs: Optional[Sequence[ExperimentConfig]] = None,
) -> list[ExperimentResult]:
    """Evaluate many strategy panels over one shared stream of test pairs.

    The group-level driver of the incremental sweep planner
    (:mod:`repro.experiments.sweep`): sweep cells that share a population
    and an outcome-determining config — differing only in their strategy
    panel — are evaluated in **one** pass over the replication pairs, with
    the per-pair dirty reference frame hoisted by
    :func:`evaluate_pair_panels`. Every panel gets its own pre-spawned
    per-replication random streams, derived exactly as a standalone
    :func:`run_pair_stream` of that panel would derive them, which is what
    keeps each panel's outcomes bitwise-identical to its from-scratch run.

    *pairs* must yield ``config.n_replications`` pairs in replication
    order; they are shared by every panel (pairs are never mutated — every
    strategy copies). Requires an int ``config.seed``: non-int seeds are
    consumed order-dependently by the single-panel loop, so a multi-panel
    pass could not replay the same streams. *result_configs* optionally
    stamps each returned :class:`ExperimentResult` with its own cell
    config (the cells of one group may differ in execution-only fields);
    outcome evaluation always uses *config*. Returns one result per panel,
    in panel order.
    """
    panels = tuple(tuple(panel) for panel in panels)
    if not panels:
        raise ExperimentError("need at least one strategy panel")
    for panel in panels:
        if not panel:
            raise ExperimentError("need at least one strategy")
        names = [s.name for s in panel]
        if len(set(names)) != len(names):
            raise ExperimentError(f"duplicate strategy names: {names}")
    if not isinstance(config.seed, int):
        raise ExperimentError(
            "run_pair_panels_stream requires an int config seed; "
            "SeedSequence/Generator seeds are consumed order-dependently "
            "by the single-panel replication loop"
        )
    if result_configs is not None and len(result_configs) != len(panels):
        raise ExperimentError(
            f"got {len(result_configs)} result configs for {len(panels)} panels"
        )
    # One independent per-replication stream family per panel — the exact
    # spawn a standalone run of that panel performs.
    seed_lists = [
        spawn_generators(config.seed + 1, config.n_replications)
        for _ in panels
    ]
    spec = _PanelsSpec(
        config=config,
        panels=panels,
        distances=tuple(
            (distances[k] if distances is not None and distances[k] is not None
             else config.make_distance())
            for k in range(len(panels))
        ),
        weights=weights or GlitchWeights(),
        constraints=constraints if constraints is not None else paper_constraints(),
    )
    resolved = resolve_backend(
        backend if backend is not None else config.backend,
        n_workers=config.n_workers,
    )
    batches = resolved.map(
        partial(_evaluate_panels_unit, spec), zip(pairs, zip(*seed_lists))
    )
    results = [
        ExperimentResult(
            config=result_configs[k] if result_configs is not None else config
        )
        for k in range(len(panels))
    ]
    # Ladder steps of the shared pass belong to every panel it evaluated.
    events = drain_degradations()
    for result in results:
        result.degradations.extend(events)
    for batch in batches:
        for k, outcomes in enumerate(batch):
            results[k].outcomes.extend(outcomes)
    return results


class ExperimentRunner:
    """Evaluates cleaning strategies on replication pairs.

    Parameters
    ----------
    dirty:
        The dirty population ``D`` (after partitioning off the ideal part).
    ideal:
        The ideal population ``DI``.
    config:
        Experiment parameters.
    distance:
        Distortion distance instance; defaults to the config's ``distance``
        selector (the paper's EMD when that is unset too).
    weights:
        Glitch-index weights; defaults to the paper's (0.25/0.25/0.5).
    constraints:
        Inconsistency rules; defaults to the paper's three.
    backend:
        Execution backend evaluating the replication work units: a name
        (``"serial"``/``"thread"``/``"process"``/``"process:4"``), an
        :class:`~repro.core.executor.ExecutionBackend` instance, or ``None``
        to defer to ``config.backend`` and the ``REPRO_BACKEND`` environment
        variable. Any choice yields identical results.
    """

    def __init__(
        self,
        dirty: StreamDataset,
        ideal: StreamDataset,
        config: ExperimentConfig | None = None,
        distance: Optional[Distance] = None,
        weights: GlitchWeights | None = None,
        constraints: Optional[ConstraintSet] = None,
        backend: Union[None, str, ExecutionBackend] = None,
    ):
        self.dirty = dirty
        self.ideal = ideal
        self.config = config or ExperimentConfig()
        # An explicit instance wins; otherwise the config's named selector
        # (falling back to the paper's EMD) — one resolution for every run.
        self.distance = distance or self.config.make_distance()
        self.weights = weights or GlitchWeights()
        self.constraints = constraints if constraints is not None else paper_constraints()
        self.backend = backend

    # -- single replication -----------------------------------------------------

    def evaluate_pair(
        self,
        pair: TestPair,
        strategies: Sequence[CleaningStrategy],
        seed: Seed = None,
    ) -> list[StrategyOutcome]:
        """Evaluate every strategy on one replication pair."""
        return evaluate_pair_outcomes(
            pair,
            strategies,
            config=self.config,
            distance=self.distance,
            weights=self.weights,
            constraints=self.constraints,
            seed=seed,
        )

    # -- full run -------------------------------------------------------------------

    def resolve_backend(self) -> ExecutionBackend:
        """The execution backend this runner will use for :meth:`run`."""
        return resolve_backend(
            self.backend if self.backend is not None else self.config.backend,
            n_workers=self.config.n_workers,
        )

    def run(self, strategies: Sequence[CleaningStrategy]) -> ExperimentResult:
        """Run all replications against all strategies.

        Work units stream out of the pair generator zipped with
        pre-spawned per-replication random streams (both deterministic
        functions of the config seed) into the resolved execution backend:
        the serial backend consumes them one at a time — the original
        loop's memory footprint — while parallel backends materialise them
        to dispatch. Because each unit carries its own generator and the
        backends preserve order, the outcome list is identical for serial,
        threaded and multi-process execution.
        """
        cfg = self.config
        pair_stream = generate_test_pairs(
            self.dirty,
            self.ideal,
            n_pairs=cfg.n_replications,
            sample_size=cfg.sample_size,
            seed=cfg.seed,
        )
        return run_pair_stream(
            pair_stream,
            strategies,
            config=cfg,
            distance=self.distance,
            weights=self.weights,
            constraints=self.constraints,
            backend=self.resolve_backend(),
        )
