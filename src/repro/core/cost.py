"""Cost-of-cleaning sweeps (Sections 5.2 and 5.6, Figure 7).

The cost proxy is the proportion of series cleaned: the sweep wraps one
strategy in :class:`~repro.cleaning.partial.PartialCleaner` at each fraction
and reuses the experiment runner, so every fraction sees the *same*
replication pairs (the seeds are shared) and points are comparable across
fractions, exactly like the paper's overlaid scatter plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cleaning.base import CleaningStrategy
from repro.core.evaluation import StrategyOutcome, StrategySummary
from repro.core.framework import ExperimentRunner
from repro.errors import ExperimentError
from repro.glitches.types import GlitchType
from repro.utils.validation import check_fraction

__all__ = ["CostSweepResult", "cost_sweep", "PAPER_COST_FRACTIONS"]

#: The paper's Figure 7 sweep: complete, 50%, 20% and no cleaning.
PAPER_COST_FRACTIONS = (1.0, 0.5, 0.2, 0.0)


@dataclass
class CostSweepResult:
    """Outcomes of one strategy swept over cleaning fractions."""

    strategy: str
    fractions: tuple[float, ...]
    outcomes: list[StrategyOutcome] = field(default_factory=list)

    def at_fraction(self, fraction: float) -> list[StrategyOutcome]:
        """Outcomes of one sweep point."""
        return [o for o in self.outcomes if np.isclose(o.cost_fraction, fraction)]

    def summaries(self) -> list[StrategySummary]:
        """Per-fraction aggregates, ordered like ``fractions``."""
        summaries = []
        for f in self.fractions:
            rows = self.at_fraction(f)
            if not rows:
                continue
            imp = np.array([r.improvement for r in rows])
            dist = np.array([r.distortion for r in rows])
            summaries.append(
                StrategySummary(
                    strategy=f"{self.strategy}@{int(round(f * 100))}%",
                    n_replications=len(rows),
                    improvement_mean=float(imp.mean()),
                    improvement_std=float(imp.std(ddof=1)) if imp.size > 1 else 0.0,
                    distortion_mean=float(dist.mean()),
                    distortion_std=float(dist.std(ddof=1)) if dist.size > 1 else 0.0,
                    dirty_fractions={
                        g: float(np.mean([r.dirty_fractions.get(g, 0.0) for r in rows]))
                        for g in GlitchType
                    },
                    treated_fractions={
                        g: float(
                            np.mean([r.treated_fractions.get(g, 0.0) for r in rows])
                        )
                        for g in GlitchType
                    },
                    cost_fraction=f,
                )
            )
        return summaries

    def marginal_gains(self) -> list[tuple[float, float, float]]:
        """``(fraction, d_improvement, d_distortion)`` between sweep points.

        Sorted by ascending fraction; quantifies the diminishing returns the
        paper reads off Figure 7 ("cleaning more than 50% of the data results
        in relatively small changes").
        """
        ordered = sorted(self.summaries(), key=lambda s: s.cost_fraction)
        gains = []
        for prev, cur in zip(ordered, ordered[1:]):
            gains.append(
                (
                    cur.cost_fraction,
                    cur.improvement_mean - prev.improvement_mean,
                    cur.distortion_mean - prev.distortion_mean,
                )
            )
        return gains


def cost_sweep(
    runner: ExperimentRunner,
    strategy: CleaningStrategy,
    fractions: Sequence[float] = PAPER_COST_FRACTIONS,
) -> CostSweepResult:
    """Evaluate *strategy* at each cleaning fraction.

    Fraction 1.0 applies the strategy unwrapped (identical to a plain run);
    other fractions clean only the top-x% dirtiest series of each sample.
    The returned outcomes carry the bare strategy name with ``cost_fraction``
    holding the sweep coordinate.
    """
    # Imported here to keep repro.core importable without triggering the
    # cleaning package's own import of repro.core.glitch_index.
    from repro.cleaning.partial import PartialCleaner

    if not fractions:
        raise ExperimentError("need at least one fraction")
    fractions = tuple(check_fraction(f, "fraction") for f in fractions)
    if len(set(fractions)) != len(fractions):
        raise ExperimentError(f"duplicate fractions: {fractions}")
    wrapped: list[CleaningStrategy] = [
        PartialCleaner(strategy, fraction=f) for f in fractions
    ]
    result = runner.run(wrapped)
    relabelled = [
        StrategyOutcome(
            strategy=strategy.name,
            replication=o.replication,
            improvement=o.improvement,
            distortion=o.distortion,
            glitch_index_dirty=o.glitch_index_dirty,
            glitch_index_treated=o.glitch_index_treated,
            dirty_fractions=o.dirty_fractions,
            treated_fractions=o.treated_fractions,
            cost_fraction=o.cost_fraction,
        )
        for o in result.outcomes
    ]
    return CostSweepResult(
        strategy=strategy.name, fractions=fractions, outcomes=relabelled
    )
