"""The glitch index ``G(D)`` — Sections 2.1.3 and 3.4 of the paper.

The overall glitch score of a data set is

.. math::

    G(D) = I_{1 \\times v} \\Big[ \\sum_{ijk} \\sum_t G_{t,ijk} / T_{ijk} \\Big] W

— per series, the glitch bit matrix is summed over time and normalised by the
series' own length ("to adjust for the amount of data available at each node,
to ensure that it contributes equally"), summed over attributes, and weighted
per glitch type by the user-supplied weight vector ``W``. The paper's
experiments use weights 0.25 (missing), 0.25 (inconsistent), 0.5 (outlier)
(Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import StreamDataset
from repro.errors import ValidationError
from repro.glitches.detectors import DetectorSuite
from repro.glitches.types import BlockGlitches, DatasetGlitches, GlitchMatrix, GlitchType

__all__ = [
    "GlitchWeights",
    "series_glitch_score",
    "series_glitch_scores",
    "series_glitch_scores_block",
    "glitch_index",
    "glitch_improvement",
]


@dataclass(frozen=True)
class GlitchWeights:
    """User-supplied glitch-type weights ``W`` (Section 2.1.3).

    Defaults are the paper's experimental choice: "a weight of 0.25 each to
    missing and inconsistent values, and 0.5 to outlier glitches"
    (Section 5.1).
    """

    missing: float = 0.25
    inconsistent: float = 0.25
    outlier: float = 0.5

    def __post_init__(self) -> None:
        for name in ("missing", "inconsistent", "outlier"):
            if getattr(self, name) < 0:
                raise ValidationError(f"weight {name} must be >= 0")
        if self.missing + self.inconsistent + self.outlier <= 0:
            raise ValidationError("at least one weight must be positive")

    def as_array(self) -> np.ndarray:
        """``(m,)`` weight vector ordered by :class:`GlitchType`."""
        out = np.empty(len(GlitchType))
        out[int(GlitchType.MISSING)] = self.missing
        out[int(GlitchType.INCONSISTENT)] = self.inconsistent
        out[int(GlitchType.OUTLIER)] = self.outlier
        return out


def series_glitch_score(matrix: GlitchMatrix, weights: GlitchWeights | None = None) -> float:
    """Length-normalised weighted glitch score of one series.

    ``sum_j sum_k (sum_t bits[t, j, k] / T) * w_k`` — one node's contribution
    to ``G(D)``.
    """
    weights = weights or GlitchWeights()
    if matrix.length == 0:
        return 0.0
    per_attr_type = matrix.bits.sum(axis=0) / matrix.length  # (v, m)
    return float((per_attr_type @ weights.as_array()).sum())


def series_glitch_scores(
    glitches: DatasetGlitches, weights: GlitchWeights | None = None
) -> np.ndarray:
    """Per-series normalised glitch scores, in data-set order.

    These scores drive the cost model: series are ranked by score and only
    the top x% get cleaned (Section 5.2).
    """
    weights = weights or GlitchWeights()
    return np.array([series_glitch_score(m, weights) for m in glitches])


def series_glitch_scores_block(
    glitches: BlockGlitches, weights: GlitchWeights | None = None
) -> np.ndarray:
    """Per-series scores from a whole-block annotation tensor.

    Bitwise-identical to :func:`series_glitch_scores` over the equivalent
    :class:`~repro.glitches.types.DatasetGlitches` — the time-axis bit counts
    are one batched integer reduction and the float tail replays the
    per-series arithmetic.
    """
    weights = weights or GlitchWeights()
    return glitches.series_scores(weights.as_array())


def glitch_index(
    dataset: StreamDataset,
    suite: DetectorSuite,
    weights: GlitchWeights | None = None,
) -> float:
    """The overall glitch index ``G(D)`` of a data set.

    Lower is cleaner. Annotation and scoring are separated so callers that
    already hold a :class:`DatasetGlitches` can sum
    :func:`series_glitch_scores` directly.
    """
    glitches = suite.annotate_dataset(dataset)
    return float(series_glitch_scores(glitches, weights).sum())


def glitch_improvement(
    dirty: StreamDataset,
    treated: StreamDataset,
    suite: DetectorSuite,
    weights: GlitchWeights | None = None,
) -> float:
    """``G(D) - G(DC)`` — the x-axis of Figures 6 and 7.

    Positive values mean the strategy removed more weighted glitches than it
    introduced; a strategy that plants new inconsistencies (Gaussian
    imputation on skewed data) pays for them here.
    """
    return glitch_index(dirty, suite, weights) - glitch_index(treated, suite, weights)
