"""The engine-agnostic incremental scoring core.

Every execution front of the experiment — the in-memory block path, the
pull-driven streaming slab engine (:mod:`repro.core.streaming`), and the
push-driven live monitoring service (:mod:`repro.service`) — computes the
same per-series statistics: record-level cleanliness fractions, weighted
glitch scores, sigma-limit fits over pooled ideal columns, and distortion
accumulators on frozen grids or ECDF sketches. This module owns those folds
once, engine-agnostically, so the engines reduce to *drivers* that decide
where the windows come from (shard passes, live feeds) and what executes
them (serial/thread/process/cluster backends) — never what the numbers are.

The identity contract every fold honours: folding a series window by window
(any window widths, any arrival order, duplicates deduplicated upstream)
yields results **bitwise-identical** to the one-shot per-series computation,
because

* every per-record verdict (missing, inconsistent, outlier) is row-local —
  a window's annotation is literally a slice of the full series' annotation;
* fold state is held as exact integers (record counts, glitch-cell counts),
  whose accumulation is associative and commutative;
* the floats the batch path reports are *derived* from those integers by a
  fixed expression (one division, one matmul, one sum), replayed here
  operation for operation at read time.

The distortion fold inherits the mergeable-accumulator guarantees of
:class:`~repro.distance.histogram.HistogramAccumulator` and
:class:`~repro.stats.ecdf.EcdfSketch`; see :class:`DistortionFold` for the
per-mode contract against the pooled path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Sequence

import numpy as np

from repro.data.stream import TimeSeries
from repro.data.window import StreamWindow, cut_series_windows
from repro.distance.base import Distance
from repro.distance.emd import EarthMoverDistance
from repro.errors import DistanceError, ValidationError
from repro.glitches.constraints import ConstraintSet
from repro.glitches.detectors import (
    DetectorSuite,
    ScaleTransform,
    SigmaLimits,
    SigmaOutlierDetector,
)
from repro.glitches.missing import detect_missing
from repro.core.glitch_index import GlitchWeights
from repro.sampling.replication import ParentGather, TestPair
from repro.stats.descriptive import sigma_limits
from repro.stats.ecdf import EcdfSketch

__all__ = [
    "StreamWindow",
    "cut_series_windows",
    "WindowDelta",
    "WindowJournal",
    "CleanlinessFold",
    "GlitchFold",
    "DistortionFold",
    "IncrementalScorer",
    "analysis_column",
    "outlier_record_fraction",
    "split_verdicts",
    "identify_fixed_point",
    "fit_sigma_limits",
    "build_parent_gathers",
    "iter_test_pairs",
]


# ---------------------------------------------------------------------------
# Shared per-series arithmetic (the batch passes replay these exactly)
# ---------------------------------------------------------------------------


def analysis_column(
    series: TimeSeries,
    attr_index: int,
    attr_name: str,
    transform: Optional[ScaleTransform],
) -> np.ndarray:
    """One series' finite analysis-scale values of one attribute.

    The per-series inner step of the sigma-limit fit: apply the transform
    when it targets this attribute, then keep the finite values. Both the
    elementwise transform and the finite filter commute with any
    concatenation of the series' windows, so a fit pooled from these columns
    — in series order — is bitwise-identical whether the columns came from
    materialised series, streamed shards, or reassembled live windows.
    """
    col = series.values[:, attr_index]
    if transform is not None and transform.attribute == attr_name:
        with np.errstate(invalid="ignore", divide="ignore"):
            col = np.asarray(transform.forward(col), dtype=float)
        return col[np.isfinite(col)]
    return col[~np.isnan(col)]


def outlier_record_fraction(series: TimeSeries, suite: DetectorSuite) -> float:
    """Record-level outlier fraction of one series under a fitted suite.

    Replays ``GlitchMatrix.record_fraction(OUTLIER)``: scale, detect,
    any-attribute reduce, mean over records.
    """
    transform = suite.transform
    detector = suite.outlier_detector
    scaled = transform.apply(series) if transform else series
    return float(detector.detect(scaled).any(axis=1).mean())


def split_verdicts(verdicts: np.ndarray) -> tuple[list[int], list[int]]:
    """``(dirty_indices, ideal_indices)`` of a cleanliness verdict vector.

    Raises when either side is empty — an experiment needs both a dirty
    population to clean and an ideal one to calibrate against.
    """
    dirty_idx = [int(i) for i in np.flatnonzero(~verdicts)]
    ideal_idx = [int(i) for i in np.flatnonzero(verdicts)]
    if not ideal_idx:
        raise ValidationError(
            "no series met the cleanliness requirement; loosen max_fraction"
        )
    if not dirty_idx:
        raise ValidationError("every series is ideal; nothing to clean")
    return dirty_idx, ideal_idx


def fit_sigma_limits(
    attributes: Sequence[str],
    columns: Callable[[int, str], Sequence[np.ndarray]],
    k: float,
) -> SigmaLimits:
    """The 3-sigma fit over pooled per-attribute ideal columns.

    *columns(attr_index, attr_name)* yields the kept series' filtered
    analysis-scale columns **in population order** — the concatenation
    order is part of the bitwise contract (``np.mean`` accumulates
    pairwise, so the pooled column must be assembled identically by every
    engine). Peak memory is one attribute's pooled column.
    """
    limits: dict[str, tuple[float, float]] = {}
    for j, attr in enumerate(attributes):
        cols = list(columns(j, attr))
        col = np.concatenate(cols or [np.empty(0)])
        limits[attr] = sigma_limits(col, k=k)
    return SigmaLimits(limits)


def identify_fixed_point(
    miss: np.ndarray,
    inc: np.ndarray,
    constraints: ConstraintSet,
    transform: Optional[ScaleTransform],
    fit_limits: Callable[[np.ndarray], SigmaLimits],
    outlier_fractions: Callable[[DetectorSuite], np.ndarray],
    max_fraction: float,
    max_iter: int,
) -> tuple[np.ndarray, DetectorSuite]:
    """The ideal-set / outlier-limit fixed point, engine-agnostically.

    Replays :func:`~repro.glitches.detectors.identify_ideal` round for
    round — bootstrap split on the suite-independent missing/inconsistent
    rates, then fit → re-verdict → re-split until membership is stable —
    with the two engine-specific steps injected: *fit_limits(verdicts)*
    fits the sigma limits on the current ideal set, *outlier_fractions
    (suite)* computes every series' record-level outlier rate under the
    fitted suite. The pull engine fans both over shard passes; the push
    service reads both off its window journal. Identical callables in,
    identical verdicts and suite out — bit for bit.
    """
    mf = max_fraction
    verdicts = (miss < mf) & (inc < mf)
    split_verdicts(verdicts)
    previous = set(np.flatnonzero(verdicts).tolist())
    suite = DetectorSuite(constraints=constraints, outlier_detector=None)
    for _ in range(max_iter):
        suite = DetectorSuite(
            constraints=constraints,
            outlier_detector=SigmaOutlierDetector(fit_limits(verdicts)),
            transform=transform,
        )
        out = outlier_fractions(suite)
        verdicts = (miss < mf) & (inc < mf) & (out < mf)
        split_verdicts(verdicts)
        current = set(np.flatnonzero(verdicts).tolist())
        if current == previous:
            break
        previous = current
    return verdicts, suite


# ---------------------------------------------------------------------------
# Replication-pair construction (shared by the pull engine and the service)
# ---------------------------------------------------------------------------


def build_parent_gathers(
    dirty_idx: Sequence[int],
    ideal_idx: Sequence[int],
    entries: Dict[int, TimeSeries],
    lengths: np.ndarray,
) -> tuple[ParentGather, ParentGather, bool]:
    """Both sides' :class:`ParentGather` stand-ins plus the layout decision.

    *entries* maps population index → series for (at least) every series
    the replication draws touch; *lengths* holds every series' length so
    the uniform-layout decision matches the **population**, not the
    gathered subset — both engines must take the same block/per-series
    branch for the evaluation arithmetic to be shared.
    """
    dirty_gather = ParentGather(
        n_total=len(dirty_idx),
        entries={
            pos: entries[idx]
            for pos, idx in enumerate(dirty_idx)
            if idx in entries
        },
        uniform=bool((lengths[list(dirty_idx)] == lengths[dirty_idx[0]]).all()),
    )
    ideal_gather = ParentGather(
        n_total=len(ideal_idx),
        entries={
            pos: entries[idx]
            for pos, idx in enumerate(ideal_idx)
            if idx in entries
        },
        uniform=bool((lengths[list(ideal_idx)] == lengths[ideal_idx[0]]).all()),
    )
    use_block = dirty_gather.block_layout and ideal_gather.block_layout
    return dirty_gather, ideal_gather, use_block


def iter_test_pairs(
    draws: Sequence[tuple[np.ndarray, np.ndarray]],
    dirty_gather: ParentGather,
    ideal_gather: ParentGather,
    use_block: bool,
) -> Iterator[TestPair]:
    """Materialise the replication pairs of pre-drawn index streams."""
    for i, (d_idx, i_idx) in enumerate(draws):
        if use_block:
            yield TestPair(
                index=i,
                dirty_block=dirty_gather.sample(d_idx, block=True),
                ideal_block=ideal_gather.sample(i_idx, block=True),
            )
        else:
            yield TestPair(
                index=i,
                dirty=dirty_gather.sample(d_idx, block=False),
                ideal=ideal_gather.sample(i_idx, block=False),
            )


# ---------------------------------------------------------------------------
# Window journal — dedup and canonical reassembly
# ---------------------------------------------------------------------------


class WindowJournal:
    """Arrival-order-invariant record of the windows a stream delivered.

    Windows are keyed by ``(stream_id, seq)``; duplicates are refused at
    :meth:`offer` (the fold layer above therefore counts every record
    exactly once, whatever the delivery pattern), and :meth:`series`
    reassembles a stream by concatenating its windows in ``seq`` order —
    the exact inverse of :func:`cut_series_windows`, so the reassembled
    series equals the source bit for bit regardless of how arrival
    shuffled, duplicated, or batched the windows.
    """

    def __init__(self) -> None:
        self._streams: Dict[int, Dict[int, StreamWindow]] = {}
        self._attributes: Optional[tuple[str, ...]] = None

    def offer(self, window: StreamWindow) -> bool:
        """Record *window*; ``False`` (and no state change) on a duplicate."""
        per_stream = self._streams.setdefault(window.stream_id, {})
        if window.seq in per_stream:
            return False
        if self._attributes is None:
            self._attributes = tuple(window.attributes)
        elif tuple(window.attributes) != self._attributes:
            raise ValidationError(
                f"window attributes {window.attributes} do not match the "
                f"journal's {self._attributes}"
            )
        per_stream[window.seq] = window
        return True

    @property
    def attributes(self) -> Optional[tuple[str, ...]]:
        """The attribute schema, discovered from the first window."""
        return self._attributes

    @property
    def n_streams(self) -> int:
        """Number of distinct streams seen so far."""
        return len(self._streams)

    @property
    def n_windows(self) -> int:
        """Number of distinct ``(stream, seq)`` windows retained."""
        return sum(len(s) for s in self._streams.values())

    def stream_ids(self) -> list[int]:
        """Stream ids seen so far, ascending."""
        return sorted(self._streams)

    def series(self, stream_id: int) -> TimeSeries:
        """The reassembled series of one stream (its windows must be
        gap-free from ``seq=0``)."""
        per_stream = self._streams.get(stream_id)
        if not per_stream:
            raise ValidationError(f"no windows journaled for stream {stream_id}")
        seqs = sorted(per_stream)
        if seqs != list(range(len(seqs))):
            missing = sorted(set(range(seqs[-1] + 1)) - set(seqs))
            raise ValidationError(
                f"stream {stream_id} has window gaps at seq {missing}; "
                "cannot reassemble"
            )
        ordered = [per_stream[s] for s in seqs]
        first = ordered[0]
        values = np.concatenate([w.values for w in ordered], axis=0)
        truth = None
        if all(w.truth is not None for w in ordered):
            truth = np.concatenate([w.truth for w in ordered], axis=0)
        return TimeSeries(first.node, values, first.attributes, truth)

    def assemble(self) -> list[TimeSeries]:
        """Every stream reassembled, in population (stream-id) order.

        Requires a dense id space ``0..n_streams-1`` — a population, not a
        sparse sample of one.
        """
        ids = self.stream_ids()
        if ids != list(range(len(ids))):
            missing = sorted(set(range(ids[-1] + 1)) - set(ids))
            raise ValidationError(
                f"missing streams {missing}; cannot assemble the population"
            )
        return [self.series(i) for i in ids]


# ---------------------------------------------------------------------------
# The per-stream folds
# ---------------------------------------------------------------------------


class CleanlinessFold:
    """Per-stream record-level glitch-rate counters.

    Folds each window's row-local verdicts into exact integer counts:
    records with any missing cell, records violating any constraint, and —
    when a fitted *suite* is attached — records with any outlier cell. The
    fractions read back as ``count / n_records``, which is bitwise what the
    batch pass's ``mask.any(axis=1).mean()`` computes (a boolean mean is an
    exact integer sum divided by the length), so fold order and window
    widths never show in the result.
    """

    def __init__(
        self,
        constraints: ConstraintSet,
        suite: Optional[DetectorSuite] = None,
    ):
        self.constraints = constraints
        self.suite = suite
        self._miss: Dict[int, int] = {}
        self._inc: Dict[int, int] = {}
        self._out: Dict[int, int] = {}
        self._records: Dict[int, int] = {}

    def fold(self, stream_id: int, window: TimeSeries) -> None:
        """Fold one window's rows into the stream's counters."""
        self._records[stream_id] = self._records.get(stream_id, 0) + window.length
        self._miss[stream_id] = self._miss.get(stream_id, 0) + int(
            detect_missing(window).any(axis=1).sum()
        )
        self._inc[stream_id] = self._inc.get(stream_id, 0) + int(
            self.constraints.evaluate(window).any(axis=1).sum()
        )
        if self.suite is not None and self.suite.outlier_detector is not None:
            transform = self.suite.transform
            scaled = transform.apply(window) if transform else window
            self._out[stream_id] = self._out.get(stream_id, 0) + int(
                self.suite.outlier_detector.detect(scaled).any(axis=1).sum()
            )

    def n_records(self, stream_id: int) -> int:
        """Records folded for one stream so far."""
        return self._records.get(stream_id, 0)

    def _fraction(self, counter: Dict[int, int], stream_id: int) -> float:
        total = self._records.get(stream_id, 0)
        if total == 0:
            return 0.0
        return counter.get(stream_id, 0) / total

    def miss_fraction(self, stream_id: int) -> float:
        """Fraction of the stream's records with a missing cell."""
        return self._fraction(self._miss, stream_id)

    def inc_fraction(self, stream_id: int) -> float:
        """Fraction of the stream's records violating a constraint."""
        return self._fraction(self._inc, stream_id)

    def out_fraction(self, stream_id: int) -> float:
        """Fraction of the stream's records with an outlier cell (needs a
        suite with a fitted detector)."""
        return self._fraction(self._out, stream_id)

    def fraction_arrays(self, n_streams: int) -> tuple[np.ndarray, np.ndarray]:
        """``(miss, inc)`` fraction vectors over streams ``0..n-1``."""
        miss = np.empty(n_streams)
        inc = np.empty(n_streams)
        for i in range(n_streams):
            if self._records.get(i, 0) == 0:
                raise ValidationError(f"stream {i} has no folded records")
            miss[i] = self.miss_fraction(i)
            inc[i] = self.inc_fraction(i)
        return miss, inc


class GlitchFold:
    """Per-stream weighted glitch-score state under a frozen detector suite.

    Folds each window's full ``(w, v, m)`` glitch annotation into exact
    per-``(attribute, type)`` integer cell counts. :meth:`score` then
    replays :func:`~repro.core.glitch_index.series_glitch_score` — the same
    count-over-length division, the same weight matmul, the same sum — so a
    stream's live score after its last window is bitwise the batch score of
    the whole series, however the windows arrived.
    """

    def __init__(self, suite: DetectorSuite, weights: Optional[GlitchWeights] = None):
        self.suite = suite
        self.weights = weights or GlitchWeights()
        self._counts: Dict[int, np.ndarray] = {}
        self._length: Dict[int, int] = {}

    def fold(self, stream_id: int, window: TimeSeries) -> None:
        """Fold one window's glitch annotation into the stream's counts."""
        matrix = self.suite.annotate(window)
        counts = matrix.bits.sum(axis=0)  # (v, m) exact integers
        if stream_id in self._counts:
            self._counts[stream_id] += counts
            self._length[stream_id] += matrix.length
        else:
            self._counts[stream_id] = counts
            self._length[stream_id] = matrix.length

    def score(self, stream_id: int) -> float:
        """The stream's length-normalised weighted glitch score so far."""
        length = self._length.get(stream_id, 0)
        if length == 0:
            return 0.0
        per_attr_type = self._counts[stream_id] / length
        return float((per_attr_type @ self.weights.as_array()).sum())

    def n_records(self, stream_id: int) -> int:
        """Records annotated for one stream so far."""
        return self._length.get(stream_id, 0)


class DistortionFold:
    """The mergeable distortion-accumulation core, over raw row slabs.

    Owns what used to live inside
    :class:`~repro.core.distortion.StreamingDistortion` (which is now a
    thin sample-level driver over this fold): the streamed reference
    frame/support sketch, the accumulation-mode decision
    (:meth:`~repro.distance.base.Distance.stream_mode`), the frozen
    :class:`~repro.distance.histogram.HistogramGrid` with per-candidate
    count accumulators, or the per-attribute
    :class:`~repro.stats.ecdf.EcdfSketch` panels — all operating on
    already-pooled ``(N, d)`` row arrays, so any engine that can produce
    rows (slab passes, live window arrivals) can drive it.

    Quantile-binning histogram distances (the default KL/JS) are
    streaming-capable here: the reference pre-pass additionally folds one
    exact :class:`EcdfSketch` per dimension, and :meth:`freeze` places the
    bin edges with
    :meth:`~repro.distance.histogram.HistogramBinner.grid_from_sketches`,
    which replays the pooled ``np.quantile`` edge arithmetic bit for bit
    (on the reference support — the documented streaming grid semantics).
    ``support_margin`` only applies to uniform edges; quantile edges follow
    the reference mass, and out-of-support candidate mass clips into the
    boundary bins as usual.

    ``finalize`` is non-destructive — reading the panel distortions mid-
    stream and folding more slabs afterwards is the live-monitoring read
    path.
    """

    def __init__(
        self,
        n_candidates: int,
        distance: Optional[Distance] = None,
        sketch_size: Optional[int] = None,
    ):
        if n_candidates < 1:
            raise DistanceError("need at least one candidate")
        self.distance = distance or EarthMoverDistance()
        binner = getattr(self.distance, "binner", None)
        sketch_capable = callable(getattr(self.distance, "sketch_distances", None))
        histogram_capable = binner is not None and callable(
            getattr(self.distance, "between_histograms_batch", None)
        )
        if not histogram_capable and not sketch_capable:
            raise DistanceError(
                f"{type(self.distance).__name__} is not streaming-capable: "
                "it exposes neither a histogram path (binner + "
                "between_histograms_batch) nor an ECDF sketch path "
                "(see Distance.stream_mode)"
            )
        self.n_candidates = n_candidates
        self.sketch_size = sketch_size
        self._quantile_edges = bool(
            histogram_capable and binner.binning == "quantile"
        )
        self._mode: Optional[str] = None
        self._dim: Optional[int] = None
        self._count = 0
        self._sum: Optional[np.ndarray] = None
        self._sumsq: Optional[np.ndarray] = None
        self._mins: Optional[np.ndarray] = None
        self._maxs: Optional[np.ndarray] = None
        self._shift: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self._edge_sketches: "Optional[list[EcdfSketch]]" = None
        self._grid = None
        self._accumulators = None
        self._ref_sketches: "Optional[list[EcdfSketch]]" = None
        self._cand_sketches: "Optional[list[list[EcdfSketch]]]" = None

    # -- pass 1: the reference sketch --------------------------------------

    @property
    def mode(self) -> Optional[str]:
        """The frozen accumulation mode (``None`` before :meth:`freeze`)."""
        return self._mode

    @property
    def grid(self):
        """The frozen shared grid (``None`` before :meth:`freeze`, and
        always ``None`` in ECDF mode)."""
        return self._grid

    @property
    def scale(self) -> Optional[np.ndarray]:
        """The streamed frame scale (for standardising sketch distances)."""
        return self._scale

    def observe_reference(self, rows: np.ndarray) -> None:
        """Fold one slab of reference rows into the frame/support sketch."""
        if self._mode is not None:
            raise DistanceError("grid already frozen; no more reference slabs")
        if rows.shape[0] == 0:
            return
        if self._dim is None:
            self._dim = rows.shape[1]
            self._sum = np.zeros(self._dim)
            self._sumsq = np.zeros(self._dim)
            self._mins = np.full(self._dim, np.inf)
            self._maxs = np.full(self._dim, -np.inf)
            if self._quantile_edges:
                self._edge_sketches = [
                    EcdfSketch(self.sketch_size) for _ in range(self._dim)
                ]
        elif rows.shape[1] != self._dim:
            raise DistanceError(
                f"dimension mismatch: expected d={self._dim}, got {rows.shape[1]}"
            )
        self._count += rows.shape[0]
        self._sum += rows.sum(axis=0)
        self._sumsq += (rows * rows).sum(axis=0)
        self._mins = np.minimum(self._mins, rows.min(axis=0))
        self._maxs = np.maximum(self._maxs, rows.max(axis=0))
        if self._edge_sketches is not None:
            for j, sketch in enumerate(self._edge_sketches):
                sketch.add(rows[:, j])

    def freeze(self, support_margin: float = 0.0) -> None:
        """Fix the accumulation mode from the reference sketch."""
        if self._mode is not None:
            return
        binner = getattr(self.distance, "binner", None)
        if self._count == 0:
            if binner is None:
                # Scale-free ECDF distance: no frame/support sketch needed;
                # the dimension is discovered on the first observed slab.
                self._mode = "ecdf"
                return
            raise DistanceError("no reference rows observed")
        if binner is None or not binner.standardize:
            shift = np.zeros(self._dim)
            scale = np.ones(self._dim)
        else:
            mean = self._sum / self._count
            var = self._sumsq / self._count - mean * mean
            scale = np.sqrt(np.maximum(var, 0.0))
            scale = np.where(scale > 0, scale, 1.0)
            shift = mean
        self._shift, self._scale = shift, scale
        mode = self.distance.stream_mode(self._dim)
        if mode == "histogram":
            if self._quantile_edges:
                self._grid = binner.grid_from_sketches(
                    shift, scale, self._edge_sketches
                )
            else:
                mins = (self._mins - shift) / scale
                maxs = (self._maxs - shift) / scale
                if support_margin:
                    widths = maxs - mins
                    mins = mins - support_margin * widths
                    maxs = maxs + support_margin * widths
                self._grid = binner.grid_from_stats(shift, scale, mins, maxs)
            self._accumulators = [
                self._grid.accumulator() for _ in range(self.n_candidates + 1)
            ]
        elif mode == "ecdf":
            self._init_sketches(self._dim)
        else:  # pragma: no cover - constructor already screens for this
            raise DistanceError(
                f"{type(self.distance).__name__} is not streaming-capable"
            )
        self._mode = mode

    def _init_sketches(self, dim: int) -> None:
        self._dim = dim
        self._ref_sketches = [EcdfSketch(self.sketch_size) for _ in range(dim)]
        self._cand_sketches = [
            [EcdfSketch(self.sketch_size) for _ in range(dim)]
            for _ in range(self.n_candidates)
        ]

    # -- pass 2: the one pass over candidate slabs --------------------------

    def observe(
        self, reference_rows: np.ndarray, candidate_rows: Sequence[np.ndarray]
    ) -> None:
        """Fold one aligned slab of the reference and every candidate.

        In histogram mode rows must be complete-case filtered by the
        caller; in ECDF mode rows arrive whole and each attribute's sketch
        drops its own non-finite values.
        """
        if self._mode is None:
            self.freeze()
        if len(candidate_rows) != self.n_candidates:
            raise DistanceError(
                f"expected {self.n_candidates} candidate slabs, "
                f"got {len(candidate_rows)}"
            )
        if self._mode == "histogram":
            self._accumulators[0].add(reference_rows)
            for acc, rows in zip(self._accumulators[1:], candidate_rows):
                acc.add(rows)
            return
        if self._ref_sketches is None:
            self._init_sketches(reference_rows.shape[1])
        self._fold_sketch_rows(self._ref_sketches, reference_rows)
        for panel, rows in zip(self._cand_sketches, candidate_rows):
            self._fold_sketch_rows(panel, rows)

    def _fold_sketch_rows(self, panel: "list[EcdfSketch]", rows: np.ndarray) -> None:
        if rows.shape[1] != self._dim:
            raise DistanceError(
                f"dimension mismatch: expected d={self._dim}, got {rows.shape[1]}"
            )
        for j, sketch in enumerate(panel):
            sketch.add(rows[:, j])

    def finalize(self) -> list[float]:
        """Panel distortions from the accumulated summaries (repeatable —
        accumulation may continue afterwards)."""
        if self._mode == "histogram":
            if self._accumulators[0].total == 0:
                raise DistanceError("no slabs observed")
            hp = self._accumulators[0].finalize()
            hqs = [acc.finalize() for acc in self._accumulators[1:]]
            return [
                float(v) for v in self.distance.between_histograms_batch(hp, hqs)
            ]
        if self._mode == "ecdf" and self._ref_sketches is not None:
            return [
                float(v)
                for v in self.distance.sketch_distances(
                    self._ref_sketches, self._cand_sketches, scale=self._scale
                )
            ]
        raise DistanceError("no slabs observed")


# ---------------------------------------------------------------------------
# The incremental scorer — per-arrival fold state over a window journal
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WindowDelta:
    """What one window arrival changed.

    ``accepted`` is ``False`` for a duplicate delivery (no state changed);
    the fractions and scores are the stream's **live** values after this
    arrival — derived from exact counts, so they are arrival-order
    invariant, and once a stream is complete they equal the batch values
    bitwise. ``glitch_score``/``out_fraction`` are ``None`` until a
    detector suite has been frozen.
    """

    stream_id: int
    seq: int
    arrival: int
    accepted: bool
    n_records: int
    miss_fraction: float
    inc_fraction: float
    out_fraction: Optional[float] = None
    glitch_score: Optional[float] = None


class IncrementalScorer:
    """Engine-agnostic per-stream fold state with ``fold(window) -> delta``.

    The core the push service sits on: windows arrive in any order, with
    duplicates, from any number of interleaved streams; each accepted
    window updates exact per-stream counters (cleanliness fractions, and —
    once :meth:`freeze_suite` has fixed a detector suite — weighted glitch
    scores), and the journal retains the deduplicated windows for
    canonical reassembly into the batch engine's exact inputs. Live reads
    are derived from the counters at ask time, so they are independent of
    arrival order at every prefix that covers the same window set.
    """

    def __init__(
        self,
        constraints: ConstraintSet,
        transform: Optional[ScaleTransform] = None,
        weights: Optional[GlitchWeights] = None,
    ):
        self.constraints = constraints
        self.transform = transform
        self.weights = weights or GlitchWeights()
        self.journal = WindowJournal()
        self.cleanliness = CleanlinessFold(constraints)
        self.suite: Optional[DetectorSuite] = None
        self._glitch: Optional[GlitchFold] = None
        self._outliers: Optional[CleanlinessFold] = None
        self._arrivals = 0
        self._duplicates = 0

    @property
    def n_arrivals(self) -> int:
        """Total window deliveries seen (including duplicates)."""
        return self._arrivals

    @property
    def n_duplicates(self) -> int:
        """Deliveries refused as duplicates."""
        return self._duplicates

    def freeze_suite(self, suite: DetectorSuite) -> None:
        """Fix the detector suite for live glitch scoring.

        Windows journaled before the freeze are backfilled into the glitch
        fold — counts are order-invariant, so freezing late equals having
        frozen before the first arrival.
        """
        self.suite = suite
        self._glitch = GlitchFold(suite, self.weights)
        self._outliers = CleanlinessFold(self.constraints, suite=suite)
        for stream_id in self.journal.stream_ids():
            for seq in sorted(self.journal._streams[stream_id]):
                window = self.journal._streams[stream_id][seq]
                w_series = self._window_series(window)
                self._glitch.fold(stream_id, w_series)
                self._outliers.fold(stream_id, w_series)

    @staticmethod
    def _window_series(window: StreamWindow) -> TimeSeries:
        return TimeSeries(
            window.node, window.values, window.attributes, window.truth
        )

    def fold(self, window: StreamWindow) -> WindowDelta:
        """Fold one arriving window; returns the stream's live delta."""
        self._arrivals += 1
        accepted = self.journal.offer(window)
        sid = window.stream_id
        if accepted:
            w_series = self._window_series(window)
            self.cleanliness.fold(sid, w_series)
            if self._glitch is not None:
                self._glitch.fold(sid, w_series)
                self._outliers.fold(sid, w_series)
        else:
            self._duplicates += 1
        return WindowDelta(
            stream_id=sid,
            seq=window.seq,
            arrival=self._arrivals,
            accepted=accepted,
            n_records=self.cleanliness.n_records(sid),
            miss_fraction=self.cleanliness.miss_fraction(sid),
            inc_fraction=self.cleanliness.inc_fraction(sid),
            out_fraction=(
                self._outliers.out_fraction(sid)
                if self._outliers is not None
                else None
            ),
            glitch_score=(
                self._glitch.score(sid) if self._glitch is not None else None
            ),
        )

    def glitch_score(self, stream_id: int) -> Optional[float]:
        """The stream's live glitch score (``None`` before a suite froze)."""
        if self._glitch is None:
            return None
        return self._glitch.score(stream_id)

    # -- identification over the journal ------------------------------------

    def identify(
        self,
        k: float = 3.0,
        max_fraction: float = 0.05,
        max_iter: int = 3,
    ) -> tuple[np.ndarray, DetectorSuite]:
        """The ideal-set fixed point over the journaled population.

        Reassembles the streams (they must be complete) and runs
        :func:`identify_fixed_point` with journal-backed fit and verdict
        callables — the same callables the pull engine computes over shard
        passes, so the verdicts and fitted suite replay
        :meth:`StreamingExperiment.identify` bit for bit. Freezes the
        fitted suite for live scoring as a side effect.
        """
        series = self.journal.assemble()
        attributes = series[0].attributes
        n = len(series)
        miss, inc = self.cleanliness.fraction_arrays(n)

        def fit_limits(verdicts: np.ndarray) -> SigmaLimits:
            def columns(j: int, attr: str) -> list[np.ndarray]:
                return [
                    analysis_column(s, j, attr, self.transform)
                    for s, keep in zip(series, verdicts)
                    if keep
                ]

            return fit_sigma_limits(attributes, columns, k)

        def outlier_fractions(suite: DetectorSuite) -> np.ndarray:
            return np.array(
                [outlier_record_fraction(s, suite) for s in series]
            )

        verdicts, suite = identify_fixed_point(
            miss,
            inc,
            self.constraints,
            self.transform,
            fit_limits,
            outlier_fractions,
            max_fraction,
            max_iter,
        )
        self.freeze_suite(suite)
        return verdicts, suite
