"""Outcome records and aggregation for strategy evaluation.

One :class:`StrategyOutcome` is one point of Figure 6/7: a (strategy,
replication) pair with its glitch improvement, statistical distortion, and
the dirty/treated glitch-rate breakdown that Table 1 averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.glitches.types import GlitchType

__all__ = [
    "StrategyOutcome",
    "StrategySummary",
    "summarize_outcomes",
    "glitch_fraction_table",
]


@dataclass(frozen=True)
class StrategyOutcome:
    """Metrics of one strategy on one replication pair ``(Di, DiC)``."""

    strategy: str
    replication: int
    #: ``G(Di) - G(DiC)`` — weighted glitch improvement (x-axis of Fig. 6).
    improvement: float
    #: ``d(Di, DiC)`` — statistical distortion (y-axis of Fig. 6).
    distortion: float
    #: Glitch index of the dirty sample.
    glitch_index_dirty: float
    #: Glitch index of the treated sample.
    glitch_index_treated: float
    #: Record-level glitch rates of the dirty sample, by type.
    dirty_fractions: dict[GlitchType, float] = field(default_factory=dict)
    #: Record-level glitch rates of the treated sample, by type.
    treated_fractions: dict[GlitchType, float] = field(default_factory=dict)
    #: Cost proxy: fraction of series the strategy was applied to.
    cost_fraction: float = 1.0


@dataclass(frozen=True)
class StrategySummary:
    """Across-replication aggregates for one strategy."""

    strategy: str
    n_replications: int
    improvement_mean: float
    improvement_std: float
    distortion_mean: float
    distortion_std: float
    dirty_fractions: dict[GlitchType, float]
    treated_fractions: dict[GlitchType, float]
    cost_fraction: float


def summarize_outcomes(outcomes: Iterable[StrategyOutcome]) -> list[StrategySummary]:
    """Aggregate outcomes per strategy (mean/std over replications).

    Strategies are returned in first-appearance order so reports follow the
    order in which strategies were evaluated.
    """
    grouped: dict[str, list[StrategyOutcome]] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.strategy, []).append(outcome)
    summaries = []
    for name, rows in grouped.items():
        imp = np.array([r.improvement for r in rows])
        dist = np.array([r.distortion for r in rows])
        dirty = {
            g: float(np.mean([r.dirty_fractions.get(g, 0.0) for r in rows]))
            for g in GlitchType
        }
        treated = {
            g: float(np.mean([r.treated_fractions.get(g, 0.0) for r in rows]))
            for g in GlitchType
        }
        summaries.append(
            StrategySummary(
                strategy=name,
                n_replications=len(rows),
                improvement_mean=float(imp.mean()),
                improvement_std=float(imp.std(ddof=1)) if imp.size > 1 else 0.0,
                distortion_mean=float(dist.mean()),
                distortion_std=float(dist.std(ddof=1)) if dist.size > 1 else 0.0,
                dirty_fractions=dirty,
                treated_fractions=treated,
                cost_fraction=float(np.mean([r.cost_fraction for r in rows])),
            )
        )
    return summaries


def glitch_fraction_table(
    outcomes: Iterable[StrategyOutcome],
) -> dict[str, dict[str, float]]:
    """Table 1 rows: mean glitch percentages before and after cleaning.

    Returns ``{strategy: {"missing_dirty": %, ..., "outlier_treated": %}}``
    with values already scaled to percentages, matching the paper's table.
    """
    table: dict[str, dict[str, float]] = {}
    for summary in summarize_outcomes(outcomes):
        row: dict[str, float] = {}
        for g in GlitchType:
            row[f"{g.label}_dirty"] = 100.0 * summary.dirty_fractions[g]
            row[f"{g.label}_treated"] = 100.0 * summary.treated_fractions[g]
        table[summary.strategy] = row
    return table
