"""Distributed execution — a fault-tolerant TCP cluster backend.

:class:`ClusterBackend` dispatches the framework's existing picklable work
units (pair units, shard stages, streaming gathers — the unit shape is
unchanged) to remote ``repro-worker`` processes (:mod:`repro.worker`,
``python -m repro.worker``). The scaling lesson it encodes is the LSST
one: node loss is routine, so recovery must be cheap and *exact* — which
the library's determinism contract supplies for free. Every unit carries
its own pre-spawned random stream, so any unit can be re-run anywhere, any
number of times, and the payload is bitwise-identical to a serial run.

Robustness layers, outermost first:

* **Framing** — every message is ``MAGIC + length + CRC32 + pickle``.
  A torn read (EOF or timeout mid-frame) or a checksum/magic mismatch
  raises :class:`~repro.errors.ClusterError`; a corrupt frame can never be
  half-applied.
* **Leases + heartbeats** — each in-flight unit is leased to exactly one
  worker link; workers heartbeat between (and during) tasks. A link silent
  past ``lease_ttl`` seconds is declared dead and *its units — and only
  its units —* are released back to the queue for re-dispatch.
* **Reconnect with backoff** — a dropped/corrupt connection is retried
  through the shared :class:`~repro.core.resilience.RetryPolicy` (bounded
  attempts, deterministic jitter) before the link is declared dead.
* **Speculative re-dispatch** — once a latency profile exists, an idle
  worker duplicates the longest-running straggler past the
  ``speculate_quantile`` of completed unit durations. Duplicates are safe
  (pure units) and resolved first-result-wins.
* **Degradation** — when live links drop below ``quorum`` (or none ever
  connect), the not-yet-completed units — and only those — finish on the
  local :class:`~repro.core.executor.ProcessBackend`, which carries its
  own process→thread→serial ladder. Same numbers, lower throughput,
  never an abort; the step is recorded via
  :func:`~repro.core.resilience.record_degradation`.

Fault sites (coordinator-side: ``conn.drop``, ``conn.corrupt``,
``lease.expire``; worker-side, via the inherited ``REPRO_FAULTS``
environment: ``worker.lost``, ``worker.slow``) make every one of those
recovery paths deterministically testable — see ``tests/test_cluster.py``.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import select
import socket
import struct
import subprocess
import sys
import threading
import time
import warnings
import weakref
import zlib
from collections import deque
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

import numpy as np

from repro.core.resilience import (
    RetryPolicy,
    record_degradation,
    resilient,
    resolve_retry_policy,
)
from repro.errors import ClusterError, ExperimentError, ResilienceWarning, ValidationError
from repro.testing.faults import fault_fires
from repro.utils.validation import check_positive_int

__all__ = [
    "CLUSTER_WORKERS_ENV_VAR",
    "LEASE_TTL_ENV_VAR",
    "SPECULATE_ENV_VAR",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_SPECULATE_QUANTILE",
    "send_message",
    "recv_message",
    "parse_cluster_spec",
    "resolve_lease_ttl",
    "resolve_speculate_quantile",
    "LocalWorker",
    "start_local_workers",
    "local_workers",
    "ClusterBackend",
]

T = TypeVar("T")
R = TypeVar("R")

#: Worker count for locally spawned workers when the spec does not pin one.
CLUSTER_WORKERS_ENV_VAR = "REPRO_CLUSTER_WORKERS"
#: Lease/heartbeat liveness window in seconds.
LEASE_TTL_ENV_VAR = "REPRO_LEASE_TTL"
#: Straggler quantile in (0, 1); ``0``/``off``/``none`` disables speculation.
SPECULATE_ENV_VAR = "REPRO_SPECULATE_QUANTILE"

DEFAULT_LEASE_TTL = 10.0
DEFAULT_SPECULATE_QUANTILE = 0.9
#: Locally spawned workers when neither spec nor env pins a count. Two is
#: deliberate: each worker is a full interpreter, and the backend exists to
#: reach *other* boxes — heavy local fan-out is ProcessBackend's job.
_DEFAULT_LOCAL_WORKERS = 2

#: A straggler must exceed quantile × slack (with an absolute floor) before
#: an idle worker duplicates it — the slack keeps natural jitter around the
#: quantile from triggering useless duplicates.
_SPECULATE_SLACK = 1.5
_SPECULATE_FLOOR_S = 0.05

# ---------------------------------------------------------------------------
# Framing — length-prefixed, checksummed, torn/corrupt frames rejected
# ---------------------------------------------------------------------------

MAGIC = b"RPRO"
_HEADER = struct.Struct("<II")  # payload length, CRC32
_MAX_FRAME = 1 << 30


def send_message(sock: socket.socket, message: dict, probes: bool = False) -> None:
    """Send one framed message; the ``conn.drop`` site lives on this path.

    ``probes`` is enabled only on the coordinator side so injected
    connection faults fire deterministically in exactly one process.
    """
    if probes and fault_fires("conn.drop"):
        with contextlib.suppress(OSError):
            sock.close()
        raise ConnectionResetError("injected fault at site 'conn.drop'")
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > _MAX_FRAME:
        raise ClusterError(f"message of {len(payload)} bytes exceeds frame limit")
    sock.sendall(MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int, mid_frame: bool) -> bytes:
    """Read exactly *n* bytes; EOF or a timeout mid-frame is a torn frame."""
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except TimeoutError:
            if buf or mid_frame:
                raise ClusterError(
                    f"torn frame: timed out after {len(buf)} of {n} bytes"
                ) from None
            raise
        if not chunk:
            if buf or mid_frame:
                raise ClusterError(
                    f"torn frame: connection closed after {len(buf)} of {n} bytes"
                )
            raise ConnectionError("connection closed")
        buf += chunk
    return bytes(buf)


def recv_message(
    sock: socket.socket,
    timeout: Optional[float] = None,
    probes: bool = False,
) -> dict:
    """Receive one framed message, rejecting torn or corrupt frames.

    ``timeout`` applies per read; a timeout *before any bytes of a frame*
    propagates as :class:`TimeoutError` (the caller's liveness tick), while
    one mid-frame is a torn frame (:class:`~repro.errors.ClusterError`).
    The ``conn.corrupt`` site flips a payload byte *before* the checksum
    check, so the real rejection path is what recovers from it.
    """
    sock.settimeout(timeout)
    header = _recv_exact(sock, len(MAGIC) + _HEADER.size, mid_frame=False)
    if header[: len(MAGIC)] != MAGIC:
        raise ClusterError(f"bad frame magic {header[:len(MAGIC)]!r}")
    length, crc = _HEADER.unpack(header[len(MAGIC):])
    if length > _MAX_FRAME:
        raise ClusterError(f"frame length {length} exceeds limit")
    payload = _recv_exact(sock, length, mid_frame=True)
    if probes and payload and fault_fires("conn.corrupt"):
        payload = bytes([payload[0] ^ 0xFF]) + payload[1:]
    if zlib.crc32(payload) != crc:
        # The full payload was consumed, so the stream is still framed
        # correctly — receivers may answer instead of dropping the link.
        error = ClusterError("corrupt frame: checksum mismatch")
        error.in_sync = True
        raise error
    try:
        return pickle.loads(payload)
    except Exception as exc:
        error = ClusterError(f"undecodable frame payload: {exc}")
        error.in_sync = True
        raise error from exc


# ---------------------------------------------------------------------------
# Spec parsing and knobs
# ---------------------------------------------------------------------------


def parse_cluster_spec(
    spec: str,
) -> tuple[Optional[list[tuple[str, int]]], Optional[int]]:
    """Split a ``cluster[...]`` backend spec into ``(addresses, count)``.

    Grammar: ``cluster`` (spawn local workers, count from
    ``REPRO_CLUSTER_WORKERS``), ``cluster:4`` (spawn 4 local workers) or
    ``cluster:host:port,host:port`` (connect to already-running workers).
    Exactly one of the returned values is non-``None`` unless the spec is
    bare.
    """
    name, _, rest = spec.strip().partition(":")
    if name.strip().lower() != "cluster":
        raise ExperimentError(f"not a cluster backend spec: {spec!r}")
    rest = rest.strip()
    if not rest:
        return None, None
    if rest.isdigit():
        count = int(rest)
        if count < 1:
            raise ExperimentError(f"worker count must be >= 1, got {count}")
        return None, count
    addresses: list[tuple[str, int]] = []
    for part in rest.split(","):
        host, sep, port_text = part.strip().rpartition(":")
        if not sep or not host:
            raise ExperimentError(
                f"cluster address must be host:port, got {part.strip()!r} "
                f"in backend spec {spec!r}"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ExperimentError(
                f"invalid port {port_text!r} in backend spec {spec!r}"
            ) from None
        if not 1 <= port <= 65535:
            raise ExperimentError(f"port out of range in backend spec {spec!r}")
        addresses.append((host, port))
    return addresses, None


def resolve_lease_ttl(explicit: Optional[float] = None) -> float:
    """Lease/heartbeat liveness window: explicit, env, or default seconds."""
    if explicit is not None:
        ttl = float(explicit)
    else:
        raw = os.environ.get(LEASE_TTL_ENV_VAR, "").strip()
        if not raw:
            return DEFAULT_LEASE_TTL
        try:
            ttl = float(raw)
        except ValueError:
            raise ValidationError(
                f"{LEASE_TTL_ENV_VAR} must be a number of seconds, got {raw!r}"
            ) from None
    if ttl <= 0:
        raise ValidationError(f"lease ttl must be positive, got {ttl}")
    return ttl


def resolve_speculate_quantile(explicit: Optional[float] = None) -> Optional[float]:
    """Straggler quantile in (0, 1), or ``None`` when speculation is off."""
    if explicit is not None:
        raw = str(explicit)
    else:
        raw = os.environ.get(SPECULATE_ENV_VAR, "").strip()
        if not raw:
            return DEFAULT_SPECULATE_QUANTILE
    if raw.lower() in ("0", "0.0", "off", "none", "disabled"):
        return None
    try:
        quantile = float(raw)
    except ValueError:
        raise ValidationError(
            f"{SPECULATE_ENV_VAR} must be a quantile in (0, 1) or 'off', got {raw!r}"
        ) from None
    if not 0.0 < quantile < 1.0:
        raise ValidationError(f"speculate quantile must be in (0, 1), got {quantile}")
    return quantile


# ---------------------------------------------------------------------------
# Local worker processes
# ---------------------------------------------------------------------------


class LocalWorker:
    """Handle on one locally spawned ``repro-worker`` subprocess."""

    def __init__(self, process: subprocess.Popen, host: str, port: int):
        self.process = process
        self.host = host
        self.port = port

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self, timeout: float = 5.0) -> None:
        """Stop the worker process (terminate, then kill)."""
        if self.process.poll() is None:
            with contextlib.suppress(OSError):
                self.process.terminate()
            try:
                self.process.wait(timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                with contextlib.suppress(OSError):
                    self.process.kill()
                self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalWorker(pid={self.process.pid}, port={self.port})"


def _worker_env() -> dict:
    """Child environment with the ``repro`` package importable.

    Spawned workers inherit everything else — including ``REPRO_FAULTS``,
    which is what lets fault plans cross the process boundary into
    freshly spawned (not just forked) workers.
    """
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_root = os.path.dirname(src_dir)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
    return env


def _read_port_line(process: subprocess.Popen, timeout: float) -> int:
    """Parse the ``repro-worker listening on host:port`` banner."""
    deadline = time.monotonic() + timeout
    stdout = process.stdout
    assert stdout is not None
    line = b""
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise ClusterError(
                f"worker process exited with code {process.returncode} before "
                "announcing its port"
            )
        ready, _, _ = select.select([stdout], [], [], 0.1)
        if not ready:
            continue
        line = stdout.readline()
        break
    if not line:
        raise ClusterError(f"worker did not announce a port within {timeout}s")
    text = line.decode("utf-8", "replace").strip()
    _, _, address = text.rpartition(" ")
    _, _, port_text = address.rpartition(":")
    try:
        return int(port_text)
    except ValueError:
        raise ClusterError(f"unparseable worker banner {text!r}") from None


def start_local_workers(
    count: int,
    host: str = "127.0.0.1",
    start_timeout: float = 20.0,
) -> list[LocalWorker]:
    """Spawn *count* ``repro-worker`` processes on ephemeral localhost ports.

    Each worker announces its bound port on stdout; this blocks until every
    banner arrives (or tears everything down on failure).
    """
    check_positive_int(count, "count")
    processes: list[subprocess.Popen] = []
    workers: list[LocalWorker] = []
    try:
        # Launch all interpreters first, then collect banners: start-up cost
        # (interpreter + imports) is paid once in parallel, not per worker.
        for _ in range(count):
            processes.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro.worker", "--host", host, "--port", "0"],
                    stdout=subprocess.PIPE,
                    env=_worker_env(),
                )
            )
        for process in processes:
            port = _read_port_line(process, start_timeout)
            workers.append(LocalWorker(process, host, port))
        return workers
    except BaseException:
        for process in processes:
            with contextlib.suppress(OSError):
                process.terminate()
        for process in processes:
            with contextlib.suppress(Exception):
                process.wait(5.0)
        raise


@contextlib.contextmanager
def local_workers(count: int, **kwargs):
    """``with local_workers(2) as ws: ...`` — spawn and always tear down."""
    workers = start_local_workers(count, **kwargs)
    try:
        yield workers
    finally:
        for worker in workers:
            worker.terminate()


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class _LinkFailure(Exception):
    """Internal: this link's connection is unusable; requeue and reconnect."""

    def __init__(self, reason: str, reconnect: bool = True):
        super().__init__(reason)
        self.reconnect = reconnect


class _MapState:
    """Shared bookkeeping of one ``map``: queue, leases, results, liveness.

    All mutation happens under one lock. ``results`` is first-result-wins:
    a speculative duplicate that loses the race is simply discarded, which
    is sound because units are pure and bitwise-deterministic.
    """

    def __init__(
        self,
        items: list,
        lease_ttl: float,
        speculate_quantile: Optional[float],
    ):
        self.items = items
        self.lease_ttl = lease_ttl
        self.speculate_quantile = speculate_quantile
        self.lock = threading.Lock()
        self.done = threading.Event()
        self.shutdown = threading.Event()
        self.queue: deque[int] = deque(range(len(items)))
        #: unit -> {link: lease start time} (speculation means >1 owner).
        self.leases: dict[int, dict[Any, float]] = {}
        self.results: dict[int, Any] = {}
        self.durations: list[float] = []
        self.failure: Optional[BaseException] = None
        self.n_speculated = 0
        self.n_requeued = 0

    def finished(self) -> bool:
        return self.done.is_set()

    def next_unit(self, link) -> Optional[int]:
        """Lease the next pending unit to *link* — or duplicate a straggler.

        Speculation needs a latency profile (>= 3 completed units) and only
        ever adds a second owner to the single longest-running unit past
        ``quantile × slack`` of the completed durations.
        """
        with self.lock:
            while self.queue:
                unit = self.queue.popleft()
                if unit in self.results:
                    continue
                self.leases.setdefault(unit, {})[link] = time.monotonic()
                return unit
            if self.speculate_quantile is None or len(self.durations) < 3:
                return None
            threshold = max(
                float(np.quantile(self.durations, self.speculate_quantile))
                * _SPECULATE_SLACK,
                _SPECULATE_FLOOR_S,
            )
            now = time.monotonic()
            straggler: Optional[int] = None
            longest = threshold
            for unit, owners in self.leases.items():
                if unit in self.results or link in owners or len(owners) > 1:
                    continue
                elapsed = now - min(owners.values())
                if elapsed > longest:
                    straggler, longest = unit, elapsed
            if straggler is not None:
                self.leases[straggler][link] = now
                self.n_speculated += 1
            return straggler

    def complete(self, unit: int, value, link) -> None:
        """Record one unit's result (first result wins) and drop its lease."""
        with self.lock:
            owners = self.leases.pop(unit, {})
            if unit not in self.results:
                self.results[unit] = value
                started = owners.get(link)
                if started is not None:
                    self.durations.append(time.monotonic() - started)
            if len(self.results) == len(self.items):
                self.done.set()

    def release(self, link) -> None:
        """Return *link*'s leased, still-unfinished units to the queue.

        Only this link's leases move — a healthy worker's in-flight units
        are untouched, which is the "its units and only its units" half of
        the lease contract.
        """
        with self.lock:
            for unit in list(self.leases):
                owners = self.leases[unit]
                if link not in owners:
                    continue
                del owners[link]
                if not owners:
                    del self.leases[unit]
                    if unit not in self.results:
                        self.queue.appendleft(unit)
                        self.n_requeued += 1

    def fail(self, exc: BaseException) -> None:
        """Record a non-recoverable unit failure; the map re-raises it."""
        with self.lock:
            if self.failure is None:
                self.failure = exc
            self.done.set()

    def missing_units(self) -> list[int]:
        with self.lock:
            return [i for i in range(len(self.items)) if i not in self.results]


class _WorkerLink(threading.Thread):
    """One coordinator thread driving one worker connection.

    Owns the socket, the lease clock for its in-flight unit, and the
    reconnect/backoff loop. A link that cannot be revived declares itself
    dead; the map-level quorum check decides what that means.
    """

    #: Receive-tick granularity while waiting on a worker (seconds).
    TICK = 0.2

    def __init__(
        self,
        address: tuple[str, int],
        call: Callable,
        state: _MapState,
        policy: RetryPolicy,
        index: int,
    ):
        super().__init__(daemon=True, name=f"cluster-link-{index}")
        self.address = address
        self.call = call
        self.state = state
        self.policy = policy
        self.index = index
        self.sock: Optional[socket.socket] = None
        self.last_seen = 0.0
        self.dead = False
        self.death_reason: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        try:
            if not self._connect_with_backoff(first=True):
                self._die(f"cannot connect to {self.address[0]}:{self.address[1]}")
                return
            while not self.state.finished() and not self.state.shutdown.is_set():
                unit = self.state.next_unit(self)
                if unit is None:
                    if not self._idle_tick():
                        return
                    continue
                try:
                    try:
                        send_message(
                            self.sock,
                            {"type": "task", "unit": unit, "item": self.state.items[unit]},
                            probes=True,
                        )
                    except (ConnectionError, ClusterError, OSError) as exc:
                        raise _LinkFailure(f"dispatch failed: {exc}") from exc
                    self._await_result(unit)
                except _LinkFailure as failure:
                    self.state.release(self)
                    if self.state.finished() or self.state.shutdown.is_set():
                        return  # teardown race, not a worker death
                    if not failure.reconnect or not self._revive(failure):
                        self._die(str(failure))
                        return
            self._farewell()
        except Exception as exc:  # pragma: no cover - defensive backstop
            self.state.release(self)
            self._die(f"unexpected link failure: {exc!r}")

    def alive(self) -> bool:
        return not self.dead

    def _die(self, reason: str) -> None:
        self.dead = True
        self.death_reason = reason
        self.state.release(self)
        self._close()

    def _close(self) -> None:
        if self.sock is not None:
            with contextlib.suppress(OSError):
                self.sock.close()
            self.sock = None

    def close(self) -> None:
        """Main-thread teardown: closing the socket unblocks any recv."""
        self._close()

    def _farewell(self) -> None:
        """Best-effort shutdown frame so persistent workers free the slot."""
        if self.sock is not None:
            with contextlib.suppress(Exception):
                send_message(self.sock, {"type": "shutdown"})
        self._close()

    # -- connection management ---------------------------------------------

    def _connect_once(self) -> None:
        self._close()
        sock = socket.create_connection(self.address, timeout=2.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            hello = recv_message(sock, timeout=5.0)
        except Exception:
            with contextlib.suppress(OSError):
                sock.close()
            raise
        if hello.get("type") != "hello":
            with contextlib.suppress(OSError):
                sock.close()
            raise ClusterError(f"expected hello, got {hello.get('type')!r}")
        heartbeat = min(max(self.state.lease_ttl / 4.0, 0.05), 2.0)
        send_message(sock, {"type": "spec", "call": self.call, "heartbeat": heartbeat})
        self.sock = sock
        self.last_seen = time.monotonic()

    def _connect_with_backoff(self, first: bool = False) -> bool:
        """Bounded connection attempts through the retry policy's backoff."""
        for attempt in range(max(1, self.policy.max_attempts)):
            if self.state.finished() or self.state.shutdown.is_set():
                return False
            try:
                self._connect_once()
                return True
            except (OSError, ClusterError, ConnectionError):
                if attempt + 1 < self.policy.max_attempts:
                    time.sleep(self.policy.delay(attempt, unit=self.index))
        return False

    def _revive(self, failure: _LinkFailure) -> bool:
        warnings.warn(
            f"cluster worker {self.address[0]}:{self.address[1]} link failed "
            f"({failure}); its leased units were re-queued, reconnecting with "
            "backoff",
            ResilienceWarning,
            stacklevel=2,
        )
        return self._connect_with_backoff()

    # -- protocol ----------------------------------------------------------

    def _idle_tick(self) -> bool:
        """No work to lease: drain heartbeats, watch for shutdown/finish."""
        try:
            message = recv_message(self.sock, timeout=0.05, probes=True)
        except TimeoutError:
            return True
        except (ConnectionError, ClusterError, OSError) as exc:
            if self.state.finished() or self.state.shutdown.is_set():
                return False
            if not self._revive(_LinkFailure(f"idle connection failed: {exc}")):
                self._die(f"idle connection failed: {exc}")
                return False
            return True
        self.last_seen = time.monotonic()
        if message.get("type") == "result":
            self.state.complete(message["unit"], message["value"], self)
        return True

    def _await_result(self, unit: int) -> None:
        """Block on *unit*'s result, enforcing the heartbeat lease.

        Raises :class:`_LinkFailure` on connection trouble, checksum
        rejection, heartbeat silence past the lease TTL, or an injected
        ``lease.expire``; the caller requeues this link's units.
        """
        if fault_fires("lease.expire"):
            raise _LinkFailure("injected lease expiry")
        while True:
            if self.state.finished() or self.state.shutdown.is_set():
                self.state.release(self)
                return
            try:
                message = recv_message(self.sock, timeout=self.TICK, probes=True)
            except TimeoutError:
                silence = time.monotonic() - self.last_seen
                if silence > self.state.lease_ttl:
                    raise _LinkFailure(
                        f"lease expired: no heartbeat for {silence:.1f}s "
                        f"(ttl {self.state.lease_ttl:.1f}s)"
                    ) from None
                continue
            except (ConnectionError, ClusterError, OSError) as exc:
                raise _LinkFailure(f"connection failed: {exc}") from exc
            self.last_seen = time.monotonic()
            kind = message.get("type")
            if kind == "heartbeat":
                continue
            if kind == "result":
                self.state.complete(message["unit"], message["value"], self)
                if message["unit"] == unit:
                    return
                continue
            if kind == "error":
                # The worker already ran the unit through the retry policy;
                # what comes back is a final failure, surfaced to the caller
                # exactly as a serial run would surface it.
                self.state.release(self)
                self.state.fail(message["exc"])
                return
            if kind == "reject":
                raise _LinkFailure(
                    f"worker rejected the dispatch: {message.get('message')}",
                    reconnect=False,
                )
            raise _LinkFailure(f"unexpected message type {kind!r}")


class ClusterBackend:
    """Coordinator dispatching work units to ``repro-worker`` processes.

    Parameters
    ----------
    addresses:
        ``(host, port)`` pairs of already-running workers. ``None`` spawns
        local workers on demand (count from *n_workers*, then
        ``REPRO_CLUSTER_WORKERS``, then 2) and owns their lifetime.
    n_workers:
        Local-spawn count when *addresses* is ``None``; ignored otherwise
        (the address list defines the worker set).
    lease_ttl:
        Heartbeat liveness window in seconds (``REPRO_LEASE_TTL``).
    speculate_quantile:
        Straggler duplication threshold in (0, 1), ``None`` to defer to
        ``REPRO_SPECULATE_QUANTILE`` (pass ``0``/``"off"`` there to
        disable).
    retry_policy:
        Shared :class:`~repro.core.resilience.RetryPolicy`: shipped to
        workers for per-unit retries, and reused by the coordinator for
        reconnect backoff. ``None`` resolves from the environment per map.
    quorum:
        Minimum live links; below it the remaining units degrade to the
        local process ladder.
    min_units:
        Item counts below this run as a plain in-process serial loop
        (bitwise-identical; none of the dispatch overhead).
    """

    name = "cluster"

    def __init__(
        self,
        addresses: Optional[Sequence[tuple[str, int]]] = None,
        n_workers: Optional[int] = None,
        lease_ttl: Optional[float] = None,
        speculate_quantile: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        quorum: int = 1,
        min_units: int = 2,
    ):
        self.addresses = (
            [(str(host), int(port)) for host, port in addresses]
            if addresses is not None
            else None
        )
        if self.addresses is not None and not self.addresses:
            raise ValidationError("cluster backend needs at least one address")
        self.n_workers = (
            check_positive_int(n_workers, "n_workers") if n_workers is not None else None
        )
        self.lease_ttl = lease_ttl
        self.speculate_quantile = speculate_quantile
        self.retry_policy = retry_policy
        self.quorum = check_positive_int(quorum, "quorum")
        self.min_units = check_positive_int(min_units, "min_units")
        #: Observability of the most recent map (speculation/requeue/degrade
        #: counters) — read by tests and the cluster bench.
        self.last_map_stats: dict = {}
        self._local: list[LocalWorker] = []
        self._finalizer: Optional[weakref.finalize] = None

    @classmethod
    def from_spec(cls, spec: str, n_workers: Optional[int] = None) -> "ClusterBackend":
        """Build a backend from a ``cluster[:N|:host:port,...]`` spec."""
        addresses, count = parse_cluster_spec(spec)
        return cls(addresses=addresses, n_workers=count or n_workers)

    # -- local worker lifetime ---------------------------------------------

    def _spawn_count(self) -> int:
        if self.n_workers is not None:
            return self.n_workers
        raw = os.environ.get(CLUSTER_WORKERS_ENV_VAR, "").strip()
        if raw:
            try:
                return max(1, int(raw))
            except ValueError:
                raise ValidationError(
                    f"{CLUSTER_WORKERS_ENV_VAR} must be an integer, got {raw!r}"
                ) from None
        return _DEFAULT_LOCAL_WORKERS

    def _worker_addresses(self) -> list[tuple[str, int]]:
        if self.addresses is not None:
            return self.addresses
        self._local = [worker for worker in self._local if worker.alive()]
        if not self._local:
            self._local = start_local_workers(self._spawn_count())
            if self._finalizer is not None:
                self._finalizer.detach()
            self._finalizer = weakref.finalize(
                self, _terminate_workers, list(self._local)
            )
        return [worker.address for worker in self._local]

    def close(self) -> None:
        """Terminate any locally spawned workers."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        for worker in self._local:
            worker.terminate()
        self._local = []

    # -- execution ----------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Evaluate items across the worker set, preserving order.

        Dispatch is pull-based (one unit in flight per worker), leases
        re-dispatch a dead worker's units, stragglers are speculated, and
        anything left when the worker set drops below quorum finishes on
        the local process ladder — always converging on the serial payload.
        """
        policy = resolve_retry_policy(self.retry_policy)
        call = resilient(fn, policy, guard_timeout=True)
        items = list(items)
        if len(items) < max(2, self.min_units):
            return [call(item) for item in items]

        try:
            addresses = self._worker_addresses()
        except ClusterError as exc:
            return self._degrade_all(fn, items, f"cannot start local workers: {exc}")

        state = _MapState(
            items,
            lease_ttl=resolve_lease_ttl(self.lease_ttl),
            speculate_quantile=resolve_speculate_quantile(self.speculate_quantile),
        )
        links = [
            _WorkerLink(address, call, state, policy, index)
            for index, address in enumerate(addresses)
        ]
        for link in links:
            link.start()
        try:
            while not state.done.wait(0.05):
                if sum(1 for link in links if link.alive()) < self.quorum:
                    break
        finally:
            state.shutdown.set()
            state.done.set()
            for link in links:
                link.close()
            for link in links:
                link.join(timeout=5.0)

        self.last_map_stats = {
            "n_units": len(items),
            "n_workers": len(links),
            "n_dead_links": sum(1 for link in links if not link.alive()),
            "n_speculated": state.n_speculated,
            "n_requeued": state.n_requeued,
            "n_degraded_units": 0,
        }
        if state.failure is not None:
            raise state.failure
        missing = state.missing_units()
        if missing:
            reasons = sorted(
                {link.death_reason for link in links if link.death_reason}
            )
            self.last_map_stats["n_degraded_units"] = len(missing)
            values = self._degrade_remaining(fn, [items[i] for i in missing], reasons)
            for unit, value in zip(missing, values):
                state.results[unit] = value
        return [state.results[i] for i in range(len(items))]

    def _degrade_remaining(self, fn, remaining: list, reasons: list) -> list:
        """Quorum lost: finish *remaining* on the local process ladder."""
        detail = f" ({'; '.join(reasons)})" if reasons else ""
        event = (
            f"cluster backend degraded {len(remaining)} unit(s) to local "
            f"execution: worker set fell below quorum={self.quorum}{detail}"
        )
        warnings.warn(
            event + " — results are unchanged (units are pure)",
            ResilienceWarning,
            stacklevel=3,
        )
        record_degradation(event)
        from repro.core.executor import ProcessBackend

        fallback = ProcessBackend(retry_policy=self.retry_policy)
        return fallback.map(fn, remaining)

    def _degrade_all(self, fn, items: list, reason: str) -> list:
        return self._degrade_remaining(fn, items, [reason])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.addresses is not None:
            where = ",".join(f"{host}:{port}" for host, port in self.addresses)
        else:
            where = f"local:{self.n_workers or '?'}"
        return f"ClusterBackend({where})"


def _terminate_workers(workers: list) -> None:
    """Finalizer body (module-level so the weakref holds no self cycle)."""
    for worker in workers:
        with contextlib.suppress(Exception):
            worker.terminate()
