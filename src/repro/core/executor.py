"""Execution backends — parallel evaluation of independent work units.

The framework's replication pairs are embarrassingly parallel: each pair is
cleaned, annotated and scored in isolation, with its own spawned random
stream. This module owns the machinery that fans those units out:

* :class:`SerialBackend` — a plain loop; the reference semantics.
* :class:`ThreadBackend` — a thread pool; effective because the hot loops
  (numpy binning, scipy's HiGHS solve) release the GIL.
* :class:`ProcessBackend` — a chunked process pool for CPU-bound scaling
  across cores; work functions and items must pickle.
* :class:`~repro.core.cluster.ClusterBackend` (``"cluster"``,
  ``"cluster:4"``, ``"cluster:host:port,..."``) — TCP dispatch to
  ``repro-worker`` processes with leases, heartbeats, speculative
  re-dispatch and degradation back to the local ladder; see
  :mod:`repro.core.cluster`.

All backends preserve input order and evaluate every unit exactly once, so a
parallel run is *bitwise identical* to a serial one as long as the work
function is pure — which the framework guarantees by handing each unit its
own pre-spawned :class:`numpy.random.Generator`.

Purity also makes the backends *fault-tolerant*: every backend wraps the
work function in the :class:`~repro.core.resilience.RetryPolicy` resolved
from ``REPRO_RETRIES``/``REPRO_UNIT_TIMEOUT`` (retrying a pure unit cannot
change any other unit's result), and :class:`ProcessBackend` survives
worker death — it rebuilds the pool and re-dispatches only the unfinished
chunks, then degrades process→thread→serial if pools keep dying, always
converging on the same payload a clean run produces.

Selection is by name (``"serial"``/``"thread"``/``"process"``, optionally
``"process:4"`` to pin the worker count) through :func:`resolve_backend`;
the ``REPRO_BACKEND`` environment variable overrides any name passed in
code, so a whole benchmark suite can be switched from the shell.
"""

from __future__ import annotations

import math
import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from typing import Callable, Iterable, Optional, Protocol, TypeVar, Union, runtime_checkable

from repro.core.resilience import (
    RetryPolicy,
    record_degradation,
    resilient,
    resolve_retry_policy,
)
from repro.errors import ExperimentError, ResilienceWarning
from repro.testing.faults import fault_fires
from repro.utils.validation import check_positive_int

__all__ = [
    "BACKEND_NAMES",
    "MIN_UNITS_ENV_VAR",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "default_worker_count",
    "parse_backend_spec",
    "resolve_backend",
]

T = TypeVar("T")
R = TypeVar("R")

#: Names accepted by :func:`resolve_backend` and ``REPRO_BACKEND``.
BACKEND_NAMES = ("serial", "thread", "process", "cluster")

_ENV_VAR = "REPRO_BACKEND"


def default_worker_count() -> int:
    """Number of CPUs actually available to this process."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


@runtime_checkable
class ExecutionBackend(Protocol):
    """Evaluates a pure function over independent work units.

    Implementations must preserve item order and evaluate each item exactly
    once; given a pure ``fn`` the result list is identical across backends.
    ``items`` may be any iterable: the serial backend consumes it lazily
    (one unit in memory at a time), parallel backends materialise it to
    dispatch.
    """

    #: Short identifier ("serial"/"thread"/"process"), used in reports.
    name: str

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(x) for x in items]``, possibly in parallel."""
        ...


class SerialBackend:
    """In-process sequential evaluation — the reference backend."""

    name = "serial"

    def __init__(self, retry_policy: Optional[RetryPolicy] = None):
        self.retry_policy = retry_policy

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Evaluate every item in order in the calling thread.

        Consumes *items* lazily, so a streamed work-unit generator keeps
        its one-unit-at-a-time memory footprint. When the policy sets a
        ``unit_timeout``, every unit runs under the in-process watchdog —
        a wedged unit raises a retryable
        :class:`~repro.errors.UnitTimeoutError` instead of hanging the map.
        """
        call = resilient(fn, self.retry_policy, guard_timeout=True)
        return [call(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialBackend()"


class ThreadBackend:
    """Thread-pool evaluation.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to the available CPU count. Threads share every
        object, so work functions must not mutate shared state — the
        framework's units are pure by construction.
    retry_policy:
        Per-unit retry policy; ``None`` resolves from the environment at
        each ``map`` call (``REPRO_RETRIES``/``REPRO_UNIT_TIMEOUT``).
    """

    name = "thread"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.n_workers = (
            check_positive_int(n_workers, "n_workers")
            if n_workers is not None
            else default_worker_count()
        )
        self.retry_policy = retry_policy

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Evaluate items through a thread pool, preserving order.

        Units run under the in-process ``unit_timeout`` watchdog when the
        policy sets one (see :class:`SerialBackend`).
        """
        call = resilient(fn, self.retry_policy, guard_timeout=True)
        items = list(items)
        workers = min(self.n_workers, len(items))
        if workers <= 1:
            return [call(item) for item in items]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(call, items))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(n_workers={self.n_workers})"


#: Environment variable overriding :class:`ProcessBackend`'s serial-fallback
#: threshold (an item count; ``0``/``1`` disable the fallback entirely).
MIN_UNITS_ENV_VAR = "REPRO_PROCESS_MIN_UNITS"

#: Default fallback threshold: below this many items, pool start-up and
#: per-unit pickling dominate the work itself and a plain serial loop wins
#: (the ~10-unit small-scale regression recorded in the PR 3 bench), so the
#: backend degrades to the serial reference — which is bitwise-identical by
#: the backend contract, so the fallback can never change a number. The
#: constant is deliberately absolute, not per-worker: scaling it with the
#: worker count would make *more* cores *more* likely to silently serialise
#: a typical R=50 replication run.
_DEFAULT_MIN_UNITS = 16


def _run_chunk(call: Callable[[T], R], chunk: list[T]) -> list[R]:
    """Worker-side chunk loop, shipped to pool processes.

    The ``worker`` fault site sits here — a hard ``os._exit`` before any
    work, the closest deterministic stand-in for an OOM-killed or
    segfaulted worker — so pool-death recovery is exercised end to end.
    """
    if fault_fires("worker"):
        os._exit(1)
    return [call(item) for item in chunk]


class _PoolFailure(Exception):
    """Internal: the current pool died or wedged; rebuild and re-dispatch."""


class ProcessBackend:
    """Chunked process-pool evaluation with pool-death recovery.

    Work functions and items must pickle (the framework ships a
    ``functools.partial`` of a module-level function plus dataclass state,
    which does). Items are dispatched in contiguous chunks so per-chunk
    pickling overhead is amortised; results are reassembled in input order.

    A dead pool (:class:`BrokenProcessPool` — a worker was OOM-killed,
    segfaulted, or exited) is not fatal: completed chunks are kept, the
    pool is rebuilt, and only the unfinished chunks are re-dispatched.
    Because units are pure, the recovered payload is bitwise-identical to
    an undisturbed run. After ``max_pool_rebuilds`` consecutive pool deaths
    the backend stops fighting the environment and degrades the remaining
    work to a thread pool, and to a plain serial loop if even threads
    cannot be created — same numbers, lower throughput, never an abort.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to the available CPU count.
    chunksize:
        Items per dispatched chunk; defaults to an even split of the items
        over the workers (one chunk per worker), which pickles the shared
        work-function state only once per worker.
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/...);
        ``None`` uses the platform default.
    min_units:
        Smallest item count worth starting a pool for. Below it the map
        degrades to the serial in-process loop (identical numbers, none of
        the fork/pickle overhead). ``None`` defers to the
        ``REPRO_PROCESS_MIN_UNITS`` environment variable and then to a
        flat default of 16; pass ``1`` to always use the pool.
    retry_policy:
        Per-unit retry policy; ``None`` resolves from the environment at
        each ``map`` call. Its ``unit_timeout`` doubles as the wedged-pool
        watchdog: if no chunk completes within ``unit_timeout`` × the
        largest pending chunk × ``max_attempts`` seconds, the pool is
        presumed hung, its workers are terminated, and the map recovers as
        for any other pool death.
    max_pool_rebuilds:
        Consecutive pool deaths tolerated before degrading to threads.
    """

    name = "process"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        start_method: Optional[str] = None,
        min_units: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        max_pool_rebuilds: int = 2,
    ):
        self.n_workers = (
            check_positive_int(n_workers, "n_workers")
            if n_workers is not None
            else default_worker_count()
        )
        self.chunksize = (
            check_positive_int(chunksize, "chunksize") if chunksize is not None else None
        )
        self.start_method = start_method
        self.min_units = (
            check_positive_int(min_units, "min_units") if min_units is not None else None
        )
        self.retry_policy = retry_policy
        self.max_pool_rebuilds = check_positive_int(max_pool_rebuilds, "max_pool_rebuilds")

    def resolved_min_units(self) -> int:
        """The serial-fallback threshold this backend will apply."""
        if self.min_units is not None:
            return self.min_units
        env = os.environ.get(MIN_UNITS_ENV_VAR, "").strip()
        if env:
            try:
                value = int(env)
            except ValueError:
                raise ExperimentError(
                    f"{MIN_UNITS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
            return max(1, value)
        return _DEFAULT_MIN_UNITS

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Evaluate items through a process pool, preserving order.

        Item counts below :meth:`resolved_min_units` run as a plain serial
        loop: the work function is pure, so the fallback is bitwise-identical
        and only the pool start-up / pickling overhead disappears.
        """
        policy = resolve_retry_policy(self.retry_policy)
        call = resilient(fn, policy)
        items = list(items)
        workers = min(self.n_workers, len(items))
        if workers <= 1 or len(items) < self.resolved_min_units():
            return [call(item) for item in items]

        chunksize = self.chunksize or max(1, math.ceil(len(items) / workers))
        chunks = [items[i : i + chunksize] for i in range(0, len(items), chunksize)]
        results: list[Optional[list[R]]] = [None] * len(chunks)
        pending = set(range(len(chunks)))
        deaths = 0
        while pending:
            try:
                self._drain_pool(call, chunks, results, pending, workers, policy)
            except _PoolFailure as failure:
                deaths += 1
                if deaths > self.max_pool_rebuilds:
                    event = (
                        f"process pool died {deaths} times ({failure}); degrading "
                        f"{len(pending)} of {len(chunks)} chunks to the thread "
                        "backend"
                    )
                    warnings.warn(
                        event + " (results are unchanged — units are pure)",
                        ResilienceWarning,
                        stacklevel=2,
                    )
                    record_degradation(event)
                    self._degrade(call, chunks, results, pending)
                else:
                    warnings.warn(
                        f"process pool died ({failure}); rebuilding and "
                        f"re-dispatching {len(pending)} of {len(chunks)} chunks",
                        ResilienceWarning,
                        stacklevel=2,
                    )
        return [value for chunk in results for value in chunk]  # type: ignore[union-attr]

    def _drain_pool(
        self,
        call: Callable[[T], R],
        chunks: list[list[T]],
        results: list[Optional[list[R]]],
        pending: set[int],
        workers: int,
        policy: RetryPolicy,
    ) -> None:
        """Run every pending chunk through one pool, harvesting as they land.

        Completed chunks are removed from ``pending`` immediately, so a
        pool death part-way through loses only the chunks still in flight.
        Raises :class:`_PoolFailure` on worker death or watchdog expiry.
        """
        import multiprocessing as mp

        ctx = mp.get_context(self.start_method)
        budget: Optional[float] = None
        if policy.unit_timeout:
            largest = max(len(chunks[i]) for i in pending)
            budget = policy.unit_timeout * largest * policy.max_attempts
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=ctx
        )
        try:
            futures = {
                pool.submit(_run_chunk, call, chunks[i]): i for i in sorted(pending)
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(
                    not_done, timeout=budget, return_when=FIRST_COMPLETED
                )
                if not done:
                    self._terminate_workers(pool)
                    raise _PoolFailure(
                        f"no chunk completed within {budget:.1f}s; pool presumed wedged"
                    )
                for future in done:
                    index = futures[future]
                    results[index] = future.result()
                    pending.discard(index)
        except BrokenProcessPool as exc:
            raise _PoolFailure(f"worker process died: {exc}") from exc
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Kill a wedged pool's workers so shutdown cannot hang on them."""
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    def _degrade(
        self,
        call: Callable[[T], R],
        chunks: list[list[T]],
        results: list[Optional[list[R]]],
        pending: set[int],
    ) -> None:
        """Last rungs of the ladder: finish pending chunks on threads,
        or serially if the thread pool itself cannot be brought up."""
        remaining = sorted(pending)
        try:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                finished = list(
                    pool.map(lambda i: [call(x) for x in chunks[i]], remaining)
                )
        except RuntimeError:  # e.g. "can't start new thread"
            warnings.warn(
                "thread backend unavailable; finishing the map serially",
                ResilienceWarning,
                stacklevel=2,
            )
            record_degradation("thread backend unavailable; finished the map serially")
            finished = [[call(x) for x in chunks[i]] for i in remaining]
        for index, value in zip(remaining, finished):
            results[index] = value
            pending.discard(index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(n_workers={self.n_workers})"


def parse_backend_spec(spec: str) -> tuple[str, Optional[int]]:
    """Split a ``"name"`` or ``"name:workers"`` spec into its parts.

    ``"process:4"`` -> ``("process", 4)``; names are case-insensitive and
    whitespace-tolerant. The cluster backend additionally accepts an
    address list — ``"cluster:host:port,host:port"`` parses (and is
    validated) to ``("cluster", None)``; :func:`resolve_backend` hands the
    full spec to :class:`~repro.core.cluster.ClusterBackend`. Unknown names
    and non-positive worker counts raise
    :class:`~repro.errors.ExperimentError`.
    """
    name, _, workers_part = spec.strip().lower().partition(":")
    name = name.strip()
    if name not in BACKEND_NAMES:
        raise ExperimentError(
            f"backend must be one of {list(BACKEND_NAMES)}, got {spec!r}"
        )
    workers: Optional[int] = None
    if workers_part:
        workers_part = workers_part.strip()
        if name == "cluster" and not workers_part.isdigit():
            from repro.core.cluster import parse_cluster_spec

            parse_cluster_spec(spec)  # address-list validation
            return name, None
        try:
            workers = int(workers_part)
        except ValueError:
            raise ExperimentError(f"invalid worker count in backend spec {spec!r}")
        if workers < 1:
            raise ExperimentError(f"worker count must be >= 1, got {workers}")
    return name, workers


def resolve_backend(
    spec: Union[None, str, ExecutionBackend] = None,
    n_workers: Optional[int] = None,
) -> ExecutionBackend:
    """Turn a backend spec into a backend instance.

    Resolution order:

    1. An :class:`ExecutionBackend` *instance* is returned unchanged — an
       explicitly constructed backend always wins.
    2. The ``REPRO_BACKEND`` environment variable, when set, overrides any
       *name* passed in code (so experiments can be re-run in parallel
       without touching call sites).
    3. The *spec* name itself.
    4. The default: ``"serial"``.

    ``n_workers`` applies when the chosen name is worker-aware and the spec
    did not pin a count of its own (``"process:4"`` beats ``n_workers``).
    """
    if spec is not None and not isinstance(spec, str):
        if not callable(getattr(spec, "map", None)):
            raise ExperimentError(
                f"backend must be a name or provide .map(fn, items), got {spec!r}"
            )
        return spec
    env = os.environ.get(_ENV_VAR)
    chosen = env if env is not None and env.strip() else (spec or "serial")
    name, spec_workers = parse_backend_spec(chosen)
    workers = spec_workers if spec_workers is not None else n_workers
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(n_workers=workers)
    if name == "cluster":
        from repro.core.cluster import ClusterBackend

        return ClusterBackend.from_spec(chosen, n_workers=workers)
    return ProcessBackend(n_workers=workers)
