"""Execution backends — parallel evaluation of independent work units.

The framework's replication pairs are embarrassingly parallel: each pair is
cleaned, annotated and scored in isolation, with its own spawned random
stream. This module owns the machinery that fans those units out:

* :class:`SerialBackend` — a plain loop; the reference semantics.
* :class:`ThreadBackend` — a thread pool; effective because the hot loops
  (numpy binning, scipy's HiGHS solve) release the GIL.
* :class:`ProcessBackend` — a chunked :mod:`multiprocessing` pool for
  CPU-bound scaling across cores; work functions and items must pickle.

All backends preserve input order and evaluate every unit exactly once, so a
parallel run is *bitwise identical* to a serial one as long as the work
function is pure — which the framework guarantees by handing each unit its
own pre-spawned :class:`numpy.random.Generator`.

Selection is by name (``"serial"``/``"thread"``/``"process"``, optionally
``"process:4"`` to pin the worker count) through :func:`resolve_backend`;
the ``REPRO_BACKEND`` environment variable overrides any name passed in
code, so a whole benchmark suite can be switched from the shell.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Optional, Protocol, TypeVar, Union, runtime_checkable

from repro.errors import ExperimentError
from repro.utils.validation import check_positive_int

__all__ = [
    "BACKEND_NAMES",
    "MIN_UNITS_ENV_VAR",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "default_worker_count",
    "parse_backend_spec",
    "resolve_backend",
]

T = TypeVar("T")
R = TypeVar("R")

#: Names accepted by :func:`resolve_backend` and ``REPRO_BACKEND``.
BACKEND_NAMES = ("serial", "thread", "process")

_ENV_VAR = "REPRO_BACKEND"


def default_worker_count() -> int:
    """Number of CPUs actually available to this process."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


@runtime_checkable
class ExecutionBackend(Protocol):
    """Evaluates a pure function over independent work units.

    Implementations must preserve item order and evaluate each item exactly
    once; given a pure ``fn`` the result list is identical across backends.
    ``items`` may be any iterable: the serial backend consumes it lazily
    (one unit in memory at a time), parallel backends materialise it to
    dispatch.
    """

    #: Short identifier ("serial"/"thread"/"process"), used in reports.
    name: str

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(x) for x in items]``, possibly in parallel."""
        ...


class SerialBackend:
    """In-process sequential evaluation — the reference backend."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Evaluate every item in order in the calling thread.

        Consumes *items* lazily, so a streamed work-unit generator keeps
        its one-unit-at-a-time memory footprint.
        """
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialBackend()"


class ThreadBackend:
    """Thread-pool evaluation.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to the available CPU count. Threads share every
        object, so work functions must not mutate shared state — the
        framework's units are pure by construction.
    """

    name = "thread"

    def __init__(self, n_workers: Optional[int] = None):
        self.n_workers = (
            check_positive_int(n_workers, "n_workers")
            if n_workers is not None
            else default_worker_count()
        )

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Evaluate items through a thread pool, preserving order."""
        items = list(items)
        workers = min(self.n_workers, len(items))
        if workers <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(n_workers={self.n_workers})"


#: Environment variable overriding :class:`ProcessBackend`'s serial-fallback
#: threshold (an item count; ``0``/``1`` disable the fallback entirely).
MIN_UNITS_ENV_VAR = "REPRO_PROCESS_MIN_UNITS"

#: Default fallback threshold: below this many items, pool start-up and
#: per-unit pickling dominate the work itself and a plain serial loop wins
#: (the ~10-unit small-scale regression recorded in the PR 3 bench), so the
#: backend degrades to the serial reference — which is bitwise-identical by
#: the backend contract, so the fallback can never change a number. The
#: constant is deliberately absolute, not per-worker: scaling it with the
#: worker count would make *more* cores *more* likely to silently serialise
#: a typical R=50 replication run.
_DEFAULT_MIN_UNITS = 16


class ProcessBackend:
    """Chunked :mod:`multiprocessing` pool evaluation.

    Work functions and items must pickle (the framework ships a
    ``functools.partial`` of a module-level function plus dataclass state,
    which does). Items are dispatched in contiguous chunks so per-chunk
    pickling overhead is amortised; order is preserved by ``Pool.map``.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to the available CPU count.
    chunksize:
        Items per dispatched chunk; defaults to an even split of the items
        over the workers (one chunk per worker), which pickles the shared
        work-function state only once per worker.
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/...);
        ``None`` uses the platform default.
    min_units:
        Smallest item count worth starting a pool for. Below it the map
        degrades to the serial in-process loop (identical numbers, none of
        the fork/pickle overhead). ``None`` defers to the
        ``REPRO_PROCESS_MIN_UNITS`` environment variable and then to a
        flat default of 16; pass ``1`` to always use the pool.
    """

    name = "process"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        start_method: Optional[str] = None,
        min_units: Optional[int] = None,
    ):
        self.n_workers = (
            check_positive_int(n_workers, "n_workers")
            if n_workers is not None
            else default_worker_count()
        )
        self.chunksize = (
            check_positive_int(chunksize, "chunksize") if chunksize is not None else None
        )
        self.start_method = start_method
        self.min_units = (
            check_positive_int(min_units, "min_units") if min_units is not None else None
        )

    def resolved_min_units(self) -> int:
        """The serial-fallback threshold this backend will apply."""
        if self.min_units is not None:
            return self.min_units
        env = os.environ.get(MIN_UNITS_ENV_VAR, "").strip()
        if env:
            try:
                value = int(env)
            except ValueError:
                raise ExperimentError(
                    f"{MIN_UNITS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
            return max(1, value)
        return _DEFAULT_MIN_UNITS

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Evaluate items through a process pool, preserving order.

        Item counts below :meth:`resolved_min_units` run as a plain serial
        loop: the work function is pure, so the fallback is bitwise-identical
        and only the pool start-up / pickling overhead disappears.
        """
        import multiprocessing as mp

        items = list(items)
        workers = min(self.n_workers, len(items))
        if workers <= 1 or len(items) < self.resolved_min_units():
            return [fn(item) for item in items]
        ctx = mp.get_context(self.start_method)
        chunksize = self.chunksize or max(1, math.ceil(len(items) / workers))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(fn, items, chunksize=chunksize)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(n_workers={self.n_workers})"


def parse_backend_spec(spec: str) -> tuple[str, Optional[int]]:
    """Split a ``"name"`` or ``"name:workers"`` spec into its parts.

    ``"process:4"`` -> ``("process", 4)``; names are case-insensitive and
    whitespace-tolerant. Unknown names and non-positive worker counts raise
    :class:`~repro.errors.ExperimentError`.
    """
    name, _, workers_part = spec.strip().lower().partition(":")
    name = name.strip()
    if name not in BACKEND_NAMES:
        raise ExperimentError(
            f"backend must be one of {list(BACKEND_NAMES)}, got {spec!r}"
        )
    workers: Optional[int] = None
    if workers_part:
        try:
            workers = int(workers_part.strip())
        except ValueError:
            raise ExperimentError(f"invalid worker count in backend spec {spec!r}")
        if workers < 1:
            raise ExperimentError(f"worker count must be >= 1, got {workers}")
    return name, workers


def resolve_backend(
    spec: Union[None, str, ExecutionBackend] = None,
    n_workers: Optional[int] = None,
) -> ExecutionBackend:
    """Turn a backend spec into a backend instance.

    Resolution order:

    1. An :class:`ExecutionBackend` *instance* is returned unchanged — an
       explicitly constructed backend always wins.
    2. The ``REPRO_BACKEND`` environment variable, when set, overrides any
       *name* passed in code (so experiments can be re-run in parallel
       without touching call sites).
    3. The *spec* name itself.
    4. The default: ``"serial"``.

    ``n_workers`` applies when the chosen name is worker-aware and the spec
    did not pin a count of its own (``"process:4"`` beats ``n_workers``).
    """
    if spec is not None and not isinstance(spec, str):
        if not callable(getattr(spec, "map", None)):
            raise ExperimentError(
                f"backend must be a name or provide .map(fn, items), got {spec!r}"
            )
        return spec
    env = os.environ.get(_ENV_VAR)
    chosen = env if env is not None and env.strip() else (spec or "serial")
    name, spec_workers = parse_backend_spec(chosen)
    workers = spec_workers if spec_workers is not None else n_workers
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(n_workers=workers)
    return ProcessBackend(n_workers=workers)
