"""Sharded pipeline — staged, backend-parallel maps over population shards.

The population build (generate -> inject -> identify_ideal) is a sequence of
per-series computations punctuated by global synchronisation points (the
event-window draw, the detector fit, the fixed-point test). This module owns
the generic machinery that fans the per-series parts out:

* :func:`plan_shards` splits ``n`` items into contiguous index ranges — the
  *shard layout*. The layout is a pure performance knob: every per-item
  random stream is pre-spawned from the root seed by item index
  (:func:`repro.utils.rng.spawn_sequences`), so regrouping items into more
  or fewer shards can never change a single drawn number.
* :class:`ShardSpec` describes one shard — its index range plus the
  pre-spawned per-item seed sequences. Specs are plain picklable data.
* :class:`ShardedStage` pairs a picklable work function with a work-unit
  builder; :class:`Pipeline` runs stages through an
  :class:`~repro.core.executor.ExecutionBackend` and re-assembles per-item
  results in shard order.

Because backends preserve order and every work function is pure (all
randomness comes through the shard's own seed sequences), a pipeline run is
*bitwise identical* across the serial, thread and process backends — the
same contract the replication loop already honours.

The default shard size targets a few shards per worker (so stragglers level
out) and can be pinned with the ``REPRO_SHARD_SIZE`` environment variable
or a ``shard_size=`` argument at any entry point.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Generic, Optional, Sequence, TypeVar

import numpy as np

from repro.core.executor import (
    MIN_UNITS_ENV_VAR,
    ExecutionBackend,
    ProcessBackend,
    default_worker_count,
    resolve_backend,
)
from repro.errors import ExperimentError
from repro.utils.rng import Seed, spawn_sequences
from repro.utils.validation import check_positive_int

__all__ = [
    "SHARD_SIZE_ENV_VAR",
    "ShardSpec",
    "plan_shards",
    "build_shards",
    "ShardedStage",
    "Pipeline",
]

U = TypeVar("U")
R = TypeVar("R")

#: Environment variable pinning the shard size of every sharded stage.
SHARD_SIZE_ENV_VAR = "REPRO_SHARD_SIZE"

#: Target number of shards per worker; a few shards each lets fast workers
#: absorb a slow shard without idling (pure wall-clock tuning, never numbers).
_SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice ``[start, stop)`` of a population of items.

    ``seeds`` holds the pre-spawned per-item seed sequences for the slice
    (``seeds[i]`` belongs to item ``start + i``); stages without randomness
    carry an empty tuple. Instances are small and picklable by design —
    they ride inside every process-backend work unit.
    """

    index: int
    start: int
    stop: int
    seeds: tuple[np.random.SeedSequence, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.stop:
            raise ExperimentError(f"bad shard range [{self.start}, {self.stop})")
        if self.seeds and len(self.seeds) != self.n_items:
            raise ExperimentError(
                f"shard has {self.n_items} items but {len(self.seeds)} seeds"
            )

    @property
    def n_items(self) -> int:
        """Number of items in the shard."""
        return self.stop - self.start


def _exempt_from_small_batch_fallback(backend: ExecutionBackend) -> ExecutionBackend:
    """Disable the process backend's small-batch serial fallback for stages.

    The fallback threshold exists for streams of *cheap* work units (the
    replication loop's ~10-unit small-scale runs, where pool start-up
    dominates). Sharded stages are the opposite regime by construction:
    a handful of *coarse* shards, each seconds of generation/injection
    work, where the pool pays for itself — an item-count heuristic would
    silently serialise exactly the workload this module parallelises. An
    explicitly configured threshold (constructor ``min_units`` or the
    ``REPRO_PROCESS_MIN_UNITS`` variable) is respected as given.
    """
    if (
        type(backend) is ProcessBackend
        and backend.min_units is None
        and not os.environ.get(MIN_UNITS_ENV_VAR, "").strip()
    ):
        return ProcessBackend(
            n_workers=backend.n_workers,
            chunksize=backend.chunksize,
            start_method=backend.start_method,
            min_units=1,
        )
    return backend


def _resolve_shard_size(n_items: int, shard_size: Optional[int]) -> int:
    if shard_size is None:
        env = os.environ.get(SHARD_SIZE_ENV_VAR, "").strip()
        if env:
            try:
                shard_size = int(env)
            except ValueError:
                raise ExperimentError(
                    f"{SHARD_SIZE_ENV_VAR} must be an integer, got {env!r}"
                ) from None
    if shard_size is None:
        target = _SHARDS_PER_WORKER * default_worker_count()
        shard_size = max(1, math.ceil(n_items / target))
    return check_positive_int(shard_size, "shard_size")


def plan_shards(
    n_items: int, shard_size: Optional[int] = None
) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` ranges covering ``range(n_items)``.

    ``shard_size`` defaults to the ``REPRO_SHARD_SIZE`` environment variable
    and then to an even split targeting a few shards per available worker.
    The layout affects scheduling only — per-item seed streams make every
    layout produce identical numbers.
    """
    if n_items < 0:
        raise ExperimentError(f"n_items must be >= 0, got {n_items}")
    if n_items == 0:
        return []
    size = _resolve_shard_size(n_items, shard_size)
    return [(lo, min(lo + size, n_items)) for lo in range(0, n_items, size)]


def build_shards(
    n_items: int,
    seed: Seed = None,
    shard_size: Optional[int] = None,
    with_seeds: bool = True,
) -> list[ShardSpec]:
    """Shard specs for ``n_items`` items with per-item streams from *seed*.

    All ``n_items`` child sequences are spawned up front and sliced into the
    shards, so item ``i`` receives the same stream no matter the layout.
    ``with_seeds=False`` builds seedless specs for deterministic stages.

    A randomized stage must say where its randomness comes from:
    ``seed=None`` with ``with_seeds=True`` raises rather than silently
    spawning OS-entropy streams that would break the bitwise-determinism
    contract two layers up. Callers that genuinely want fresh entropy can
    pass ``numpy.random.default_rng()`` explicitly.
    """
    if with_seeds and seed is None:
        raise ExperimentError(
            "a randomized sharded stage needs an explicit seed (int, "
            "SeedSequence or Generator); pass with_seeds=False for a "
            "deterministic stage or numpy.random.default_rng() for entropy"
        )
    bounds = plan_shards(n_items, shard_size)
    seeds: Sequence[np.random.SeedSequence] = (
        spawn_sequences(seed, n_items) if with_seeds else ()
    )
    return [
        ShardSpec(
            index=k,
            start=lo,
            stop=hi,
            seeds=tuple(seeds[lo:hi]) if with_seeds else (),
        )
        for k, (lo, hi) in enumerate(bounds)
    ]


class ShardedStage(Generic[U, R]):
    """One named stage of a sharded pipeline.

    Parameters
    ----------
    name:
        Stage label used in reprs and error messages.
    fn:
        The work function, mapping one work unit to the *list* of per-item
        results for its shard. Must be a module-level callable (picklable)
        for the process backend.
    make_unit:
        Builds the picklable work unit for one :class:`ShardSpec` —
        typically a frozen dataclass bundling the shard with the stage's
        configuration and input slice.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[U], Sequence[R]],
        make_unit: Callable[[ShardSpec], U],
    ):
        if not callable(fn) or not callable(make_unit):
            raise ExperimentError("fn and make_unit must be callable")
        self.name = name
        self.fn = fn
        self.make_unit = make_unit

    def units(self, shards: Sequence[ShardSpec]) -> list[U]:
        """The picklable work units for *shards*, in shard order."""
        return [self.make_unit(shard) for shard in shards]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardedStage({self.name!r})"


class Pipeline:
    """Runs sharded stages through one resolved execution backend.

    ``backend`` accepts anything :func:`~repro.core.executor.resolve_backend`
    does — a name (``"serial"``/``"thread"``/``"process:4"``), an
    :class:`~repro.core.executor.ExecutionBackend` instance, or ``None`` to
    defer to ``REPRO_BACKEND`` and fall back to serial.
    """

    def __init__(
        self,
        backend: Optional[object] = None,
        n_workers: Optional[int] = None,
        shard_size: Optional[int] = None,
    ):
        self.backend: ExecutionBackend = _exempt_from_small_batch_fallback(
            resolve_backend(backend, n_workers=n_workers)
        )
        self.shard_size = (
            check_positive_int(shard_size, "shard_size")
            if shard_size is not None
            else None
        )

    @classmethod
    def coerce(
        cls,
        backend: Optional[object] = None,
        n_workers: Optional[int] = None,
        shard_size: Optional[int] = None,
    ) -> "Pipeline":
        """Normalise any backend spec into a :class:`Pipeline`.

        A passed-in :class:`Pipeline` is reused; when an explicit
        ``shard_size`` disagrees with its own, a sibling on the same
        resolved backend is built so the argument is never silently
        dropped. ``n_workers`` cannot be applied to a pipeline's
        already-resolved backend, so that combination raises instead of
        being ignored. Everything else goes through the constructor. All
        sharded entry points coerce through here, so the precedence rule is
        one decision, not one per call site.
        """
        if isinstance(backend, cls):
            if n_workers is not None:
                raise ExperimentError(
                    "n_workers cannot be applied to an existing Pipeline; "
                    "construct the Pipeline with the desired worker count"
                )
            if shard_size is not None and shard_size != backend.shard_size:
                return cls(backend.backend, shard_size=shard_size)
            return backend
        return cls(backend, n_workers=n_workers, shard_size=shard_size)

    def shards(
        self, n_items: int, seed: Seed = None, with_seeds: bool = True
    ) -> list[ShardSpec]:
        """Shard specs for ``n_items`` under this pipeline's shard size."""
        return build_shards(
            n_items, seed=seed, shard_size=self.shard_size, with_seeds=with_seeds
        )

    def run_chunks(
        self, stage: ShardedStage[U, R], shards: Sequence[ShardSpec]
    ) -> list[list[R]]:
        """Evaluate *stage* over *shards*, returning per-shard result lists.

        Each shard's result list must have one entry per item; the check
        catches work functions that silently drop or duplicate items, which
        would desynchronise the downstream merge.
        """
        chunks = self.backend.map(stage.fn, stage.units(shards))
        out: list[list[R]] = []
        for shard, chunk in zip(shards, chunks):
            chunk = list(chunk)
            if len(chunk) != shard.n_items:
                raise ExperimentError(
                    f"stage {stage.name!r} returned {len(chunk)} results for "
                    f"shard {shard.index} of {shard.n_items} items"
                )
            out.append(chunk)
        return out

    def run(self, stage: ShardedStage[U, R], shards: Sequence[ShardSpec]) -> list[R]:
        """Evaluate *stage* over *shards*, flattened to per-item order."""
        return [r for chunk in self.run_chunks(stage, shards) for r in chunk]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pipeline(backend={self.backend.name!r}, shard_size={self.shard_size})"
